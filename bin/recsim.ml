(* recsim: run any implemented recovery protocol on a synthetic workload
   with injected failures, and print normalized metrics.

   Examples:
     dune exec bin/recsim.exe -- run --protocol damani-garg -n 6 \
       --failures 3 --oracle
     dune exec bin/recsim.exe -- run --protocol checkpoint-only -n 8 \
       --failures 2 --rate 0.1
     dune exec bin/recsim.exe -- run --failures 2 --trace out.jsonl
     dune exec bin/recsim.exe -- run --failures 2 --trace out.json \
       --trace-format chrome   # load in Perfetto / about://tracing
     dune exec bin/recsim.exe -- trace out.jsonl --pid 1 --kind rollback
     dune exec bin/recsim.exe -- run --failures 2 --check        # sanitize live
     dune exec bin/recsim.exe -- check out.jsonl --strict       # lint a trace
     dune exec bin/recsim.exe -- compare -n 6 --failures 3
     dune exec bin/recsim.exe -- list *)

module Runner = Optimist_runner.Runner
module Trace = Optimist_obs.Trace
module Json = Optimist_obs.Json
module Check = Optimist_check.Check
module Schedule = Optimist_workload.Schedule
module Traffic = Optimist_workload.Traffic
module Network = Optimist_net.Network
module Table = Optimist_util.Table
module Validate = Optimist_util.Validate
module Live = Optimist_live.Supervisor
module Live_worker = Optimist_live.Worker
module Report = Optimist_obs.Report
module Soak = Optimist_soak.Soak
module Scenario = Optimist_soak.Scenario
module Cluster = Optimist_cluster.Coordinator
module Cluster_agent = Optimist_cluster.Agent
open Cmdliner

(* --- validated numeric conversions ---

   Nonsense values (0 processes, a negative rate, a probability of 3)
   must die at argument parsing with a one-line message, not as an
   exception backtrace out of the simulation. The parsers live in
   Optimist_util.Validate so the table-driven tests exercise exactly the
   strings the CLI prints. *)

let conv_of parse print =
  Arg.conv ((fun s -> Result.map_error (fun m -> `Msg m) (parse s)), print)

let int_at_least min = conv_of (Validate.int_at_least min) Format.pp_print_int
let positive_float = conv_of Validate.positive_float Format.pp_print_float

let non_negative_float =
  conv_of Validate.non_negative_float Format.pp_print_float

let probability = conv_of Validate.probability Format.pp_print_float

(* --- shared argument definitions --- *)

let protocol_conv =
  let parse s =
    match Runner.protocol_of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown protocol %S (see `recsim list')" s))
  in
  let print ppf p = Format.pp_print_string ppf (Runner.protocol_name p) in
  Arg.conv (parse, print)

let pattern_conv =
  let parse = function
    | "uniform" -> Ok Traffic.Uniform
    | "ring" -> Ok Traffic.Ring
    | "pipeline" -> Ok Traffic.Pipeline
    | s -> (
        match String.index_opt s ':' with
        | Some i when String.sub s 0 i = "client-server" -> (
            match
              Validate.int_at_least 1
                (String.sub s (i + 1) (String.length s - i - 1))
            with
            | Ok k -> Ok (Traffic.Client_server k)
            | Error m -> Error (`Msg ("client-server:<servers> " ^ m)))
        | _ ->
            Error
              (`Msg
                "expected uniform | ring | pipeline | client-server:<servers>"))
  in
  let print ppf = function
    | Traffic.Uniform -> Format.pp_print_string ppf "uniform"
    | Traffic.Ring -> Format.pp_print_string ppf "ring"
    | Traffic.Pipeline -> Format.pp_print_string ppf "pipeline"
    | Traffic.Client_server k -> Format.fprintf ppf "client-server:%d" k
  in
  Arg.conv (parse, print)

let n_arg =
  Arg.(
    value
    & opt (int_at_least 2) 4
    & info [ "n" ] ~docv:"N" ~doc:"Number of processes (at least 2).")

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let rate_arg =
  Arg.(
    value
    & opt positive_float 0.05
    & info [ "rate" ] ~docv:"RATE"
        ~doc:"Environment injections per process per time unit.")

let duration_arg =
  Arg.(
    value
    & opt positive_float 500.0
    & info [ "duration" ] ~docv:"T" ~doc:"Injection window in virtual time.")

let hops_arg =
  Arg.(
    value
    & opt (int_at_least 0) 6
    & info [ "hops" ] ~docv:"HOPS" ~doc:"Forwarding chain length per stimulus.")

let failures_arg =
  Arg.(
    value
    & opt (int_at_least 0) 0
    & info [ "failures" ] ~docv:"K"
        ~doc:"Random crashes in the middle 80% of the run.")

let drop_arg =
  Arg.(
    value
    & opt probability 0.0
    & info [ "drop" ] ~docv:"P"
        ~doc:"Probability of losing each Data message in transit.")

let dup_arg =
  Arg.(
    value
    & opt probability 0.0
    & info [ "dup" ] ~docv:"P"
        ~doc:"Probability of duplicating each Data message in transit.")

let fifo_arg =
  Arg.(value & flag & info [ "fifo" ] ~doc:"Use FIFO channels (default: reordering).")

let oracle_arg =
  Arg.(
    value
    & flag
    & info [ "oracle" ]
        ~doc:
          "Attach the ground-truth oracle and audit the run (Damani-Garg \
           variants only).")

let pattern_arg =
  Arg.(
    value
    & opt pattern_conv Traffic.Uniform
    & info [ "pattern" ] ~docv:"PATTERN"
        ~doc:"Workload: uniform, ring, pipeline, client-server:<servers>.")

let make_params ?(trace = Trace.null) ?(check = Runner.No_check)
    ?(drop = 0.0) ?(dup = 0.0) protocol n seed rate duration hops failures
    fifo oracle pattern =
  let faults =
    if failures = 0 then []
    else
      Schedule.random_crashes
        ~seed:(Int64.add seed 100L)
        ~n ~failures
        ~window:(0.1 *. duration, 0.9 *. duration)
  in
  {
    Runner.protocol;
    n;
    seed;
    pattern;
    rate;
    duration;
    hops;
    faults;
    ordering = (if fifo then Network.Fifo else Network.Reorder);
    drop;
    dup;
    with_oracle = oracle;
    trace;
    check;
  }

(* Build a recorder writing to [path] (if given), run [f] with it, and
   finalize the file even on failure: the chrome format is only valid
   JSON once the sink is closed. *)
let with_recorder path format f =
  match path with
  | None -> f Trace.null
  | Some path ->
      let oc =
        try open_out path
        with Sys_error msg ->
          Printf.eprintf "recsim: cannot open trace file: %s\n" msg;
          exit 2
      in
      let sink =
        match format with
        | `Jsonl -> Trace.jsonl_sink (output_string oc)
        | `Chrome -> Trace.chrome_sink (output_string oc)
      in
      let tr = Trace.create () in
      Trace.attach tr sink;
      Fun.protect
        ~finally:(fun () ->
          Trace.close tr;
          close_out oc)
        (fun () -> f tr)

(* --- run --- *)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a structured event trace of the run to $(docv).")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Trace encoding: $(b,jsonl) (one event per line, replayable with \
           `recsim trace') or $(b,chrome) (trace_event JSON, loadable in \
           Perfetto / about://tracing).")

let check_mode_arg =
  Arg.(
    value
    & opt
        ~vopt:(Some `On)
        (some (enum [ ("on", `On); ("strict", `Strict) ]))
        None
    & info [ "check" ] ~docv:"MODE"
        ~doc:
          "Attach the online protocol sanitizer (optimist.check) to the run. \
           Violations are printed and fail the run; with $(b,--check=strict) \
           warnings fail it too.")

let run_cmd =
  let protocol_arg =
    Arg.(
      value
      & opt protocol_conv Runner.Damani_garg
      & info [ "protocol"; "p" ] ~docv:"PROTOCOL" ~doc:"Protocol to run.")
  in
  let action protocol n seed rate duration hops failures fifo oracle pattern
      drop dup trace_file trace_format check_mode =
    let check =
      match check_mode with
      | None -> Runner.No_check
      | Some `On -> Runner.Check
      | Some `Strict -> Runner.Check_strict
    in
    let report =
      with_recorder trace_file trace_format (fun trace ->
          Runner.run
            (make_params ~trace ~check ~drop ~dup protocol n seed rate
               duration hops failures fifo oracle pattern))
    in
    Format.printf "%a@." Runner.pp_report report;
    let check_failed =
      let strict = check = Runner.Check_strict in
      List.exists
        (fun (v : Check.violation) ->
          strict || v.rule.Check.severity = Check.Error)
        report.Runner.r_check
    in
    if report.Runner.r_violations <> [] || check_failed then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one protocol and print its metrics.")
    Term.(
      const action $ protocol_arg $ n_arg $ seed_arg $ rate_arg $ duration_arg
      $ hops_arg $ failures_arg $ fifo_arg $ oracle_arg $ pattern_arg
      $ drop_arg $ dup_arg $ trace_file_arg $ trace_format_arg
      $ check_mode_arg)

(* --- trace --- *)

let trace_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace written by `recsim run --trace'.")
  in
  let pid_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pid" ] ~docv:"PID" ~doc:"Only events at this process.")
  in
  let kind_arg =
    let kind_conv = Arg.enum (List.map (fun k -> (k, k)) Trace.kind_names) in
    Arg.(
      value
      & opt (some kind_conv) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Only events of this kind (e.g. rollback, drop_obsolete).")
  in
  let strict_arg =
    Arg.(
      value
      & flag
      & info [ "strict" ]
          ~doc:
            "Exit non-zero on unparsable lines and schema-version mismatch.")
  in
  let action file pid kind strict =
    let errors = ref 0 in
    let mismatch = ref None in
    Trace.iter_file file ~f:(fun ~line res ->
        match res with
        | Error msg ->
            incr errors;
            Printf.eprintf "%s:%d: %s\n" file line msg
        | Ok e -> (
            match Trace.schema_of_event e with
            | Some v ->
                (* The header is bookkeeping, not a protocol event: check
                   it, don't render it. v2 and v3 both read fine. *)
                if (not (Trace.schema_accepts v)) && !mismatch = None then
                  mismatch := Some v
            | None ->
                let keep =
                  (match pid with Some p -> e.Trace.pid = p | None -> true)
                  && match kind with
                     | Some k -> Trace.kind_name e.Trace.kind = k
                     | None -> true
                in
                if keep then Format.printf "%a@." Trace.pp_event e));
    (match !mismatch with
    | Some v ->
        Printf.eprintf
          "%s: %s: trace declares schema version %d but this reader accepts \
           2..%d\n"
          file
          (if strict then "error" else "warning")
          v Trace.schema_version
    | None -> ());
    if !errors > 0 || (strict && !mismatch <> None) then exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Pretty-print a JSONL trace, optionally filtered.")
    Term.(const action $ file_arg $ pid_arg $ kind_arg $ strict_arg)

(* --- check --- *)

let check_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace written by `recsim run --trace'.")
  in
  let strict_arg =
    Arg.(
      value
      & flag
      & info [ "strict" ]
          ~doc:
            "Exit non-zero on warnings, unparsable lines and schema-version \
             mismatches too.")
  in
  let rule_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "rule" ] ~docv:"RULE"
          ~doc:
            "Check only $(docv) (repeatable; a rule id like $(b,OPT005) or \
             its slug like $(b,clock-monotonic)). Default: every offline \
             rule.")
  in
  let ignore_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "ignore" ] ~docv:"RULE"
          ~doc:"Skip $(docv) (repeatable; wins over $(b,--rule)).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Report format: $(b,human) or $(b,json).")
  in
  let list_rules_arg =
    Arg.(
      value
      & flag
      & info [ "list-rules" ] ~doc:"List every rule id and exit.")
  in
  let action file strict only ignore format list_rules =
    if list_rules then
      List.iter
        (fun (r : Check.rule) ->
          Printf.printf "%s  %-22s %-7s  %-7s  %-32s  %s\n" r.Check.id
            r.Check.slug
            (match r.Check.severity with
            | Check.Error -> "error"
            | Check.Warning -> "warning")
            (if r.Check.online_only then "online" else "-")
            r.Check.reference r.Check.doc)
        Check.rules
    else
      match file with
      | None ->
          prerr_endline "recsim check: a trace FILE is required";
          exit 2
      | Some file -> (
          match Check.Lint.run ~only ~ignore file with
          | Error msg ->
              Printf.eprintf "recsim check: %s\n" msg;
              exit 2
          | Ok report ->
              (match format with
              | `Human -> Format.printf "%a@?" Check.Lint.pp_human report
              | `Json ->
                  print_endline (Json.to_string (Check.Lint.to_json report)));
              let failed =
                Check.Lint.errors report > 0
                || strict
                   && (Check.Lint.warnings report > 0
                      || report.Check.Lint.parse_errors > 0
                      || Check.Lint.schema_mismatch report <> None)
              in
              if failed then exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Lint a recorded JSONL trace against the protocol invariants \
          (no re-execution).")
    Term.(
      const action $ file_arg $ strict_arg $ rule_arg $ ignore_arg
      $ format_arg $ list_rules_arg)

(* --- live --- *)

let live_protocol_names =
  String.concat " | "
    (List.map Live_worker.protocol_name Live_worker.all_protocols)

let live_protocol_conv =
  let parse s =
    match Live_worker.protocol_of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown live protocol %S (%s)" s
               live_protocol_names))
  in
  let print ppf p = Format.pp_print_string ppf (Live_worker.protocol_name p) in
  Arg.conv (parse, print)

let fault_conv =
  conv_of Validate.fault (fun ppf (at, pid) -> Format.fprintf ppf "%g:%d" at pid)

let live_out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"DIR"
        ~doc:"Run directory (sockets, stores, traces; previous run cleared).")

let live_run_cmd =
  let protocol_arg =
    Arg.(
      value
      & opt live_protocol_conv Live_worker.Dg
      & info [ "protocol"; "p" ] ~docv:"PROTOCOL"
          ~doc:
            (Printf.sprintf "Protocol to run live: %s." live_protocol_names))
  in
  let rate_arg =
    Arg.(
      value
      & opt positive_float 8.0
      & info [ "rate" ] ~docv:"RATE"
          ~doc:"Environment injections per process per second.")
  in
  let duration_arg =
    Arg.(
      value
      & opt positive_float 3.0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Injection window in wall-clock seconds.")
  in
  let settle_arg =
    Arg.(
      value
      & opt non_negative_float 2.0
      & info [ "settle" ] ~docv:"SECONDS"
          ~doc:"Drain time after the injection window.")
  in
  let hops_arg =
    Arg.(
      value
      & opt (int_at_least 0) 3
      & info [ "hops" ] ~docv:"HOPS"
          ~doc:"Forwarding chain length per stimulus.")
  in
  let faults_arg =
    Arg.(
      value
      & opt_all fault_conv []
      & info [ "fault"; "faults" ] ~docv:"SECONDS:PID"
          ~doc:
            "SIGKILL worker $(b,PID) that many seconds into the run \
             (repeatable).")
  in
  let failures_arg =
    Arg.(
      value
      & opt (int_at_least 0) 0
      & info [ "failures" ] ~docv:"K"
          ~doc:
            "Additionally SIGKILL $(docv) random workers at seeded times in \
             the middle 80% of the injection window.")
  in
  let live_drop_arg =
    Arg.(
      value
      & opt probability 0.0
      & info [ "drop" ] ~docv:"P"
          ~doc:"Probability of dropping each Data datagram at send time.")
  in
  let live_dup_arg =
    Arg.(
      value
      & opt probability 0.0
      & info [ "dup" ] ~docv:"P"
          ~doc:"Probability of duplicating each Data datagram at send time.")
  in
  let restart_delay_arg =
    Arg.(
      value
      & opt positive_float 0.3
      & info [ "restart-delay" ] ~docv:"SECONDS"
          ~doc:"Crash-to-respawn delay.")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("off", Live_worker.Off);
               ("ring", Live_worker.Ring);
               ("full", Live_worker.Full);
             ])
          Live_worker.Full
      & info [ "telemetry" ] ~docv:"MODE"
          ~doc:
            "Worker telemetry: $(b,full) (JSONL trace files, the default), \
             $(b,ring) (in-memory ring only) or $(b,off).")
  in
  let action protocol n seed rate duration settle hops pattern faults
      failures drop dup restart_delay telemetry out =
    let random_faults =
      if failures = 0 then []
      else
        Schedule.random_crashes
          ~seed:(Int64.add seed 100L)
          ~n ~failures
          ~window:(0.1 *. duration, 0.9 *. duration)
        |> List.filter_map (function
             | Schedule.Crash { at; pid } -> Some (at, pid)
             | _ -> None)
    in
    let cfg =
      {
        Live.dir = out;
        n;
        protocol;
        seed;
        duration;
        settle;
        rate;
        hops;
        pattern;
        faults = List.sort compare (faults @ random_faults);
        net_faults =
          {
            Optimist_live.Livenet.drop_rate = drop;
            dup_rate = dup;
            partitions = [];
          };
        restart_delay;
        jitter = Live.default_cfg.Live.jitter;
        telemetry;
        link = None;
      }
    in
    match Live.run cfg with
    | r ->
        Printf.printf
          "live run complete: %d workers, %d crash(es) injected, %d clean \
           exit(s)\n"
          n r.Live.crashes r.Live.clean_exits;
        Printf.printf "merged trace: %s (%d events, %d torn lines dropped)\n"
          r.Live.merged r.Live.events r.Live.dropped;
        Printf.printf "chrome trace: %s\n" r.Live.chrome;
        Printf.printf "lint it with: recsim check %s --strict\n" r.Live.merged;
        Printf.printf "profile it with: recsim report %s\n" r.Live.merged
    | exception Invalid_argument msg ->
        Printf.eprintf "recsim live run: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the protocol over real OS processes and Unix-domain sockets, \
          with SIGKILL crash injection.")
    Term.(
      const action $ protocol_arg $ n_arg $ seed_arg $ rate_arg
      $ duration_arg $ settle_arg $ hops_arg $ pattern_arg $ faults_arg
      $ failures_arg $ live_drop_arg $ live_dup_arg
      $ restart_delay_arg $ telemetry_arg $ live_out_arg)

(* --- live soak --- *)

let live_soak_cmd =
  let protocols_arg =
    let protocols_conv =
      let parse s =
        if s = "all" then Ok Live_worker.all_protocols
        else
          match Live_worker.protocol_of_string s with
          | Some p -> Ok [ p ]
          | None ->
              Error
                (`Msg
                  (Printf.sprintf "unknown live protocol %S (all | %s)" s
                     live_protocol_names))
      in
      let print ppf ps =
        Format.pp_print_string ppf
          (String.concat "," (List.map Live_worker.protocol_name ps))
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt protocols_conv [ Live_worker.Dg ]
      & info [ "protocol"; "p" ] ~docv:"PROTOCOL"
          ~doc:
            (Printf.sprintf
               "Protocol matrix the scenarios cycle through: $(b,all) or one \
                of %s."
               live_protocol_names))
  in
  let scenarios_arg =
    Arg.(
      value
      & opt (int_at_least 1) 10
      & info [ "scenarios" ] ~docv:"N"
          ~doc:"Number of randomized scenarios to generate and run.")
  in
  let shrink_budget_arg =
    Arg.(
      value
      & opt (int_at_least 0) 12
      & info [ "shrink-budget" ] ~docv:"RUNS"
          ~doc:
            "Maximum live runs the shrinker may spend per failing scenario \
             (0 disables shrinking).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"TOKEN"
          ~doc:
            "Replay a single scenario instead of a campaign: a \
             $(b,SEED:INDEX:PROTOCOL) token printed by a previous soak, or \
             the path of a minimal-scenario JSON artifact.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "soak-run"
      & info [ "out"; "o" ] ~docv:"DIR"
          ~doc:"Campaign directory (scenario run dirs, campaign.jsonl).")
  in
  let print_scenario_result (s : Scenario.t) = function
    | Error msg ->
        Printf.printf "scenario %d (%s): ERROR %s\n" s.Scenario.sc_index
          s.Scenario.sc_protocol msg
    | Ok r ->
        Printf.printf "scenario %d (%s): %s — %d crash(es), %d events%s%s\n"
          s.Scenario.sc_index s.Scenario.sc_protocol
          (if Soak.failed r then "FAILED" else "ok")
          r.Soak.rr_crashes r.Soak.rr_events
          (match r.Soak.rr_violations with
          | [] -> ""
          | vs ->
              ", violations: "
              ^ String.concat ", "
                  (List.map
                     (fun (id, n) -> Printf.sprintf "%s x%d" id n)
                     vs))
          (match r.Soak.rr_oracle with
          | None -> ""
          | Some msg -> ", oracle: " ^ msg)
  in
  let action seed scenarios protocols shrink_budget replay out =
    match replay with
    | Some token -> (
        match Scenario.of_token token with
        | Error msg ->
            Printf.eprintf "recsim live soak: %s\n" msg;
            exit 2
        | Ok s -> (
            if not (Sys.file_exists out) then Unix.mkdir out 0o755;
            let dir =
              Filename.concat out
                (Printf.sprintf "replay.%d" s.Scenario.sc_index)
            in
            print_endline (Json.to_string (Scenario.to_json s));
            let result = Soak.run_scenario ~dir s in
            print_scenario_result s result;
            match result with
            | Ok r when not (Soak.failed r) -> ()
            | Ok _ -> exit 1
            | Error _ -> exit 2))
    | None ->
        let plan = Scenario.plan ~seed ~count:scenarios ~protocols in
        let summary =
          Soak.run_campaign ~shrink_budget ~log:print_endline ~out ~plan ()
        in
        List.iter
          (fun (o : Soak.outcome) ->
            print_scenario_result o.Soak.oc_scenario o.Soak.oc_result;
            match o.Soak.oc_minimal with
            | Some _ ->
                Printf.printf
                  "  minimal reproducer: %s\n  replay with: recsim live soak \
                   --replay %s\n"
                  (Soak.minimal_file out o.Soak.oc_scenario.Scenario.sc_index)
                  (Soak.minimal_file out o.Soak.oc_scenario.Scenario.sc_index)
            | None -> ())
          summary.Soak.sm_outcomes;
        Printf.printf
          "soak campaign: %d scenario(s), %d failing, %d error(s), %d \
           crash(es) injected, %d merged events\n"
          (List.length summary.Soak.sm_outcomes)
          summary.Soak.sm_failed summary.Soak.sm_errors summary.Soak.sm_crashes
          summary.Soak.sm_events;
        (match summary.Soak.sm_rule_counts with
        | [] -> ()
        | counts ->
            Printf.printf "violations by rule: %s\n"
              (String.concat ", "
                 (List.map
                    (fun (id, n) -> Printf.sprintf "%s x%d" id n)
                    counts)));
        Printf.printf "campaign summary: %s\n" (Soak.campaign_file out);
        if summary.Soak.sm_failed > 0 || summary.Soak.sm_errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Generate seeded fault scenarios, run them on the live runtime, \
          lint every merged trace, and shrink failures to minimal \
          reproducers.")
    Term.(
      const action $ seed_arg $ scenarios_arg $ protocols_arg
      $ shrink_budget_arg $ replay_arg $ out_arg)

let report_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("csv", `Csv) ]) `Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text), $(b,json) or $(b,csv).")

let require_recovery_arg =
  Arg.(
    value
    & flag
    & info [ "require-recovery" ]
        ~doc:"Exit non-zero when the input contains no recovery records.")

let print_report t format =
  match format with
  | `Text -> print_string (Report.to_text t)
  | `Json -> print_endline (Report.to_json t)
  | `Csv -> print_string (Report.to_csv t)

(* --- report (offline recovery profiler) --- *)

let report_cmd =
  let files_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "JSONL traces to aggregate (e.g. a live run's merged.jsonl; \
             several runs may be given, and a fault-free run serves as the \
             overhead baseline).")
  in
  let action files format require =
    match Report.of_files files with
    | Error msg ->
        Printf.eprintf "recsim report: %s\n" msg;
        exit 2
    | Ok t ->
        print_report t format;
        if require && Report.total_recoveries t = 0 then begin
          prerr_endline "recsim report: no recovery records in the input";
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate telemetry (spans, metric snapshots) out of JSONL traces \
          into per-protocol recovery statistics.")
    Term.(const action $ files_arg $ report_format_arg $ require_recovery_arg)

let live_report_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Run directory written by `recsim live run'.")
  in
  let field j name = Json.mem name j in
  let int_field j name = Option.bind (field j name) Json.to_int in
  let action dir format require =
    let merged = Live.merged_file dir in
    let profile () =
      if Sys.file_exists merged then
        match Report.of_files [ merged ] with
        | Ok t -> Some t
        | Error msg ->
            Printf.eprintf "recsim live report: %s\n" msg;
            None
      else None
    in
    let check_require t_opt =
      if require then
        match t_opt with
        | Some t when Report.total_recoveries t > 0 -> ()
        | _ ->
            prerr_endline
              "recsim live report: no recovery records in the merged trace";
            exit 1
    in
    (match format with
    | (`Json | `Csv) as f -> (
        match profile () with
        | Some t ->
            print_report t f;
            check_require (Some t)
        | None ->
            Printf.eprintf "recsim live report: no merged trace at %s\n" merged;
            exit 2)
    | `Text ->
    let run_path = Live.run_file dir in
    if not (Sys.file_exists run_path) then begin
      Printf.eprintf "recsim live report: %s not found (not a run directory?)\n"
        run_path;
      exit 2
    end;
    let ic = open_in run_path in
    let line = input_line ic in
    close_in ic;
    let summary =
      match Json.of_string line with
      | Ok j -> j
      | Error msg ->
          Printf.eprintf "recsim live report: %s: %s\n" run_path msg;
          exit 2
    in
    let n = Option.value ~default:0 (int_field summary "n") in
    Printf.printf "protocol:     %s\n"
      (Option.value ~default:"?"
         (Option.bind (field summary "protocol") Json.string_value));
    List.iter
      (fun name ->
        match int_field summary name with
        | Some v -> Printf.printf "%-13s %d\n" (name ^ ":") v
        | None -> ())
      [ "n"; "crashes"; "clean_exits"; "events"; "dropped_lines" ];
    (* Final incarnation of each worker: highest generation with a stats
       file (a gen that died to SIGKILL never wrote one). *)
    let t =
      Table.create
        ~columns:
          [
            ("pid", Table.Right);
            ("gens", Table.Right);
            ("digest", Table.Right);
            ("delivered", Table.Right);
            ("replayed", Table.Right);
            ("restarts", Table.Right);
            ("rollbacks", Table.Right);
          ]
    in
    let final_gen pid =
      match Option.bind (field summary "generations") Json.list_value with
      | Some l -> (
          match List.nth_opt l pid with
          | Some g -> Option.value ~default:0 (Json.to_int g)
          | None -> 0)
      | None -> 0
    in
    for pid = 0 to n - 1 do
      (* Walk down from the final generation: an incarnation that died to
         a SIGKILL wrote no stats file, only cleanly-exiting ones did. *)
      let rec last_stats gen =
        if gen < 0 then None
        else
          let path = Live_worker.stats_file ~dir ~me:pid ~gen in
          if Sys.file_exists path then Some (path, gen)
          else last_stats (gen - 1)
      in
      match last_stats (final_gen pid) with
      | None -> Table.add_row t [ string_of_int pid; "?"; "-"; "-"; "-"; "-"; "-" ]
      | Some (path, gen) ->
          let ic = open_in path in
          let j = Json.of_string (input_line ic) in
          close_in ic;
          let j = match j with Ok j -> j | Error _ -> Json.Null in
          let counters = Option.value ~default:Json.Null (field j "counters") in
          let c name =
            match Option.bind (Json.mem name counters) Json.to_int with
            | Some v -> string_of_int v
            | None -> "0"
          in
          Table.add_row t
            [
              string_of_int pid;
              string_of_int (gen + 1);
              (match int_field j "digest" with
              | Some d -> Printf.sprintf "%08x" (d land 0xffffffff)
              | None -> "-");
              c "delivered";
              c "replayed";
              c "restarts";
              c "rollbacks";
            ]
    done;
    Format.printf "%s@." (Table.render t);
    (if Sys.file_exists merged then
       match Check.Lint.run ~only:[] ~ignore:[] merged with
       | Ok report ->
           Printf.printf "sanitizer:    %d error(s), %d warning(s)%s\n"
             (Check.Lint.errors report)
             (Check.Lint.warnings report)
             (match Check.Lint.schema_mismatch report with
             | Some v -> Printf.sprintf " (schema mismatch: %d)" v
             | None -> "")
       | Error msg -> Printf.printf "sanitizer:    unavailable (%s)\n" msg
     else Printf.printf "sanitizer:    no merged trace at %s\n" merged);
    let t_opt = profile () in
    (match t_opt with
    | Some t ->
        Printf.printf "\nrecovery profile:\n%s" (Report.to_text t)
    | None -> ());
    check_require t_opt)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Summarize a live run directory.")
    Term.(const action $ dir_arg $ report_format_arg $ require_recovery_arg)

let live_cmd =
  Cmd.group
    (Cmd.info "live"
       ~doc:
         "Run the protocol over real processes and sockets (crash injection \
          included).")
    [ live_run_cmd; live_soak_cmd; live_report_cmd ]

(* --- cluster --- *)

let host_port_conv =
  conv_of Validate.host_port (fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let port_conv = conv_of Validate.port Format.pp_print_int

let peers_arg =
  Arg.(
    value
    & opt_all host_port_conv []
    & info [ "peer" ; "peers" ] ~docv:"HOST:PORT"
        ~doc:
          "Control endpoint of an already-running `recsim cluster agent' \
           (repeatable, one per agent). When absent, $(b,--agents) localhost \
           agents are forked instead.")

let agents_arg =
  Arg.(
    value
    & opt (int_at_least 1) 2
    & info [ "agents" ] ~docv:"K"
        ~doc:
          "Number of localhost agents to fork when no $(b,--peer) is given.")

let port_base_arg =
  Arg.(
    value
    & opt port_conv 7800
    & info [ "port-base" ] ~docv:"PORT"
        ~doc:"First control port for forked localhost agents.")

let worker_base_arg =
  Arg.(
    value
    & opt port_conv 7900
    & info [ "worker-base" ] ~docv:"PORT"
        ~doc:"Worker pid $(b,i) listens for mesh data on $(docv)$(b,+i).")

let cluster_agent_cmd =
  let dir_arg =
    Arg.(
      value
      & opt string "cluster-agent"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Local run directory (cleared at each new plan).")
  in
  let port_arg =
    Arg.(
      value
      & opt port_conv 7800
      & info [ "port" ] ~docv:"PORT" ~doc:"Control port to listen on.")
  in
  let once_arg =
    Arg.(
      value
      & flag
      & info [ "once" ] ~doc:"Exit after serving one coordinator connection.")
  in
  let action dir port once =
    match Cluster_agent.serve ~once ~dir ~port () with
    | () -> ()
    | exception Unix.Unix_error (e, fn, _) ->
        Printf.eprintf "recsim cluster agent: %s: %s\n" fn
          (Unix.error_message e);
        exit 2
  in
  Cmd.v
    (Cmd.info "agent"
       ~doc:
         "Host a block of live workers on this machine on behalf of a remote \
          `recsim cluster run' coordinator.")
    Term.(const action $ dir_arg $ port_arg $ once_arg)

let cluster_run_cmd =
  let rate_arg =
    Arg.(
      value
      & opt positive_float 8.0
      & info [ "rate" ] ~docv:"RATE"
          ~doc:"Environment injections per process per second.")
  in
  let duration_arg =
    Arg.(
      value
      & opt positive_float 3.0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Injection window in wall-clock seconds.")
  in
  let settle_arg =
    Arg.(
      value
      & opt non_negative_float 2.0
      & info [ "settle" ] ~docv:"SECONDS"
          ~doc:"Drain time after the injection window.")
  in
  let hops_arg =
    Arg.(
      value
      & opt (int_at_least 0) 3
      & info [ "hops" ] ~docv:"HOPS"
          ~doc:"Forwarding chain length per stimulus.")
  in
  let protocol_arg =
    Arg.(
      value
      & opt live_protocol_conv Live_worker.Dg
      & info [ "protocol"; "p" ] ~docv:"PROTOCOL"
          ~doc:(Printf.sprintf "Protocol to run: %s." live_protocol_names))
  in
  let faults_arg =
    Arg.(
      value
      & opt_all fault_conv []
      & info [ "fault"; "faults" ] ~docv:"SECONDS:PID"
          ~doc:
            "SIGKILL worker $(b,PID) that many seconds into the run \
             (repeatable); the kill is delivered by whichever agent hosts \
             the pid.")
  in
  let failures_arg =
    Arg.(
      value
      & opt (int_at_least 0) 0
      & info [ "failures" ] ~docv:"K"
          ~doc:
            "Additionally SIGKILL $(docv) random workers at seeded times in \
             the middle 80% of the injection window.")
  in
  let drop_arg =
    Arg.(
      value
      & opt probability 0.0
      & info [ "drop" ] ~docv:"P"
          ~doc:"Probability of dropping each Data frame at send time.")
  in
  let dup_arg =
    Arg.(
      value
      & opt probability 0.0
      & info [ "dup" ] ~docv:"P"
          ~doc:"Probability of duplicating each Data frame at send time.")
  in
  let restart_delay_arg =
    Arg.(
      value
      & opt positive_float 0.3
      & info [ "restart-delay" ] ~docv:"SECONDS"
          ~doc:"Crash-to-respawn delay.")
  in
  let lead_arg =
    Arg.(
      value
      & opt positive_float 0.5
      & info [ "lead" ] ~docv:"SECONDS"
          ~doc:
            "How far in the future the shared start instant is placed, so \
             every agent's workers are connected before time starts.")
  in
  let action protocol n seed rate duration settle hops pattern faults failures
      drop dup restart_delay lead peers agents port_base worker_base out =
    let random_faults =
      if failures = 0 then []
      else
        Schedule.random_crashes
          ~seed:(Int64.add seed 100L)
          ~n ~failures
          ~window:(0.1 *. duration, 0.9 *. duration)
        |> List.filter_map (function
             | Schedule.Crash { at; pid } -> Some (at, pid)
             | _ -> None)
    in
    let cfg =
      {
        Cluster.cc_out = out;
        cc_n = n;
        cc_protocol = protocol;
        cc_seed = seed;
        cc_duration = duration;
        cc_settle = settle;
        cc_rate = rate;
        cc_hops = hops;
        cc_pattern = pattern;
        cc_kills = List.sort compare (faults @ random_faults);
        cc_net =
          {
            Optimist_live.Livenet.drop_rate = drop;
            dup_rate = dup;
            partitions = [];
          };
        cc_restart_delay = restart_delay;
        cc_telemetry = Live_worker.Full;
        cc_lead = lead;
        cc_worker_base = worker_base;
      }
    in
    let result =
      match peers with
      | [] -> Cluster.run_forked ~log:print_endline ~port_base ~agents cfg
      | peers -> Cluster.run ~log:print_endline cfg ~peers
    in
    match result with
    | Error msg ->
        Printf.eprintf "recsim cluster run: %s\n" msg;
        exit 2
    | Ok r ->
        Printf.printf
          "cluster run complete: %d workers on %d agent(s), %d crash(es) \
           injected, %d clean exit(s)\n"
          n
          (match peers with [] -> agents | ps -> List.length ps)
          r.Cluster.cs_crashes r.Cluster.cs_clean_exits;
        Printf.printf "merged trace: %s (%d events, %d torn lines dropped)\n"
          r.Cluster.cs_merged r.Cluster.cs_events r.Cluster.cs_dropped;
        Printf.printf "chrome trace: %s\n" r.Cluster.cs_chrome;
        Printf.printf "lint it with: recsim check %s --strict\n"
          r.Cluster.cs_merged
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the protocol across several machines (or several localhost \
          agent processes) over the TCP mesh, with remotely scheduled \
          SIGKILL injection.")
    Term.(
      const action $ protocol_arg $ n_arg $ seed_arg $ rate_arg $ duration_arg
      $ settle_arg $ hops_arg $ pattern_arg $ faults_arg $ failures_arg
      $ drop_arg $ dup_arg $ restart_delay_arg $ lead_arg $ peers_arg
      $ agents_arg $ port_base_arg $ worker_base_arg $ live_out_arg)

let cluster_soak_cmd =
  let scenarios_arg =
    Arg.(
      value
      & opt (int_at_least 1) 6
      & info [ "scenarios" ] ~docv:"N"
          ~doc:"Number of randomized scenarios to generate and run.")
  in
  let shrink_budget_arg =
    Arg.(
      value
      & opt (int_at_least 0) 8
      & info [ "shrink-budget" ] ~docv:"RUNS"
          ~doc:
            "Maximum cluster runs the shrinker may spend per failing \
             scenario (0 disables shrinking).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "cluster-soak"
      & info [ "out"; "o" ] ~docv:"DIR"
          ~doc:"Campaign directory (scenario run dirs, campaign.jsonl).")
  in
  let action seed scenarios shrink_budget agents port_base worker_base out =
    let plan =
      Scenario.plan ~seed ~count:scenarios
        ~protocols:[ Live_worker.Dg ]
    in
    let runner = Cluster.scenario_runner ~agents ~port_base ~worker_base () in
    let summary =
      Soak.run_campaign ~runner ~shrink_budget ~log:print_endline ~out ~plan ()
    in
    Printf.printf
      "cluster soak: %d scenario(s) on %d agent(s), %d failing, %d error(s), \
       %d crash(es) injected, %d merged events\n"
      (List.length summary.Soak.sm_outcomes)
      agents summary.Soak.sm_failed summary.Soak.sm_errors
      summary.Soak.sm_crashes summary.Soak.sm_events;
    if summary.Soak.sm_failed > 0 || summary.Soak.sm_errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run seeded fault scenarios on a forked-localhost TCP cluster and \
          lint every merged trace.")
    Term.(
      const action $ seed_arg $ scenarios_arg $ shrink_budget_arg $ agents_arg
      $ port_base_arg $ worker_base_arg $ out_arg)

let cluster_cmd =
  Cmd.group
    (Cmd.info "cluster"
       ~doc:
         "Run the live protocol across multiple hosts (or localhost agent \
          processes) over TCP.")
    [ cluster_agent_cmd; cluster_run_cmd; cluster_soak_cmd ]

(* --- mc --- *)

module Mc_model = Optimist_mc.Model
module Mc_explorer = Optimist_mc.Explorer
module Mc_dpor = Optimist_mc.Dpor
module Mc_cx = Optimist_mc.Counterexample

let mc_print_counterexample (decisions, violations) =
  Printf.printf "counterexample (%d decisions):\n" (List.length decisions);
  List.iteri
    (fun i d -> Printf.printf "  %2d. %s\n" (i + 1) (Mc_dpor.to_string d))
    decisions;
  List.iter (fun v -> Printf.printf "VIOLATION %s\n" v) violations

let mc_explore_term =
  let protocol_arg =
    Arg.(
      value
      & opt protocol_conv Runner.Damani_garg
      & info [ "protocol"; "p" ] ~docv:"PROTOCOL"
          ~doc:
            "Protocol to model-check (ignored when $(b,--mutate) is given: \
             the mutant picks its own protocol).")
  in
  let procs_arg =
    Arg.(
      value
      & opt (int_at_least 2) 3
      & info [ "procs" ] ~docv:"N" ~doc:"Number of processes (2-4 is typical).")
  in
  let depth_arg =
    Arg.(
      value
      & opt (int_at_least 0) 8
      & info [ "depth" ] ~docv:"D"
          ~doc:
            "Maximum branch points per execution; beyond it the run is \
             completed with the deterministic default schedule.")
  in
  let msgs_arg =
    Arg.(
      value
      & opt (int_at_least 1) 2
      & info [ "msgs" ] ~docv:"K"
          ~doc:"Application messages injected at t=0, round-robin over pids.")
  in
  let hops_arg =
    Arg.(
      value
      & opt (int_at_least 0) 2
      & info [ "hops" ] ~docv:"H" ~doc:"Forwarding hops per injected message.")
  in
  let crashes_arg =
    Arg.(
      value
      & opt (int_at_least 0) 1
      & info [ "crashes" ] ~docv:"C"
          ~doc:"Crash-injection budget per execution.")
  in
  let naive_arg =
    Arg.(
      value
      & flag
      & info [ "naive" ]
          ~doc:
            "Disable partial-order reduction and enumerate every schedule \
             (the default is $(b,--dpor)).")
  in
  let dpor_arg =
    Arg.(
      value
      & flag
      & info [ "dpor" ]
          ~doc:"Sleep-set partial-order reduction (the default).")
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"MUTANT"
          ~doc:
            "Check a deliberately broken protocol variant (see \
             $(b,--list-mutants)).")
  in
  let list_mutants_arg =
    Arg.(
      value
      & flag
      & info [ "list-mutants" ] ~doc:"List the shipped mutants and exit.")
  in
  let max_schedules_arg =
    Arg.(
      value
      & opt (int_at_least 0) 0
      & info [ "max-schedules" ] ~docv:"M"
          ~doc:"Stop after exploring $(docv) schedules (0 = exhaustive).")
  in
  let max_steps_arg =
    Arg.(
      value
      & opt (int_at_least 1) 200_000
      & info [ "max-steps" ] ~docv:"S"
          ~doc:"Per-execution event budget (runaway guard).")
  in
  let no_fingerprint_arg =
    Arg.(
      value
      & flag
      & info [ "no-fingerprint" ]
          ~doc:"Disable state-fingerprint pruning of revisited states.")
  in
  let keep_going_arg =
    Arg.(
      value
      & flag
      & info [ "keep-going" ]
          ~doc:
            "Do not stop at the first counterexample; report every distinct \
             violation found.")
  in
  let cx_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cx" ] ~docv:"FILE"
          ~doc:
            "Write the first counterexample as JSON to $(docv) (replayable \
             with `recsim mc replay').")
  in
  let action protocol procs depth msgs hops crashes naive dpor mutate
      list_mutants max_schedules max_steps no_fingerprint keep_going cx_file =
    if list_mutants then begin
      List.iter
        (fun (m : Mc_model.mutant) ->
          Printf.printf "%-18s %-12s %s  %s\n" m.Mc_model.mu_name
            (Runner.protocol_name m.Mc_model.mu_protocol) m.Mc_model.mu_rule
            m.Mc_model.mu_doc)
        Mc_model.mutants;
      exit 0
    end;
    if naive && dpor then begin
      prerr_endline "recsim mc: --naive and --dpor are mutually exclusive";
      exit 2
    end;
    let protocol, mutation =
      match mutate with
      | None -> (protocol, "")
      | Some name -> (
          match Mc_model.find_mutant name with
          | Some m -> (m.Mc_model.mu_protocol, name)
          | None ->
              Printf.eprintf
                "recsim mc: unknown mutant %S (see --list-mutants)\n" name;
              exit 2)
    in
    let cfg =
      { Mc_model.protocol; n = procs; msgs; hops; crashes; mutation }
    in
    (try Mc_model.validate cfg
     with Invalid_argument msg ->
       Printf.eprintf "recsim mc: %s\n" msg;
       exit 2);
    let opts =
      {
        Mc_explorer.depth;
        max_steps;
        max_schedules;
        fingerprint = not no_fingerprint;
        mode = (if naive then Mc_explorer.Naive else Mc_explorer.Dpor);
        stop_on_violation = not keep_going;
        log_schedules = false;
      }
    in
    let outcome =
      Mc_explorer.explore ~build:(fun () -> Mc_model.build cfg) ~crashes opts
    in
    Printf.printf "protocol: %s%s\n" (Runner.protocol_name protocol)
      (if mutation = "" then "" else "  mutation: " ^ mutation);
    Printf.printf "mode: %s  depth: %d  procs: %d  msgs: %d  hops: %d  crashes: %d\n"
      (if naive then "naive" else "dpor")
      depth procs msgs hops crashes;
    Printf.printf
      "schedules: %d  pruned(sleep): %d  pruned(fp): %d  truncated: %d  max \
       branch depth: %d\n"
      outcome.Mc_explorer.o_schedules outcome.Mc_explorer.o_pruned_sleep
      outcome.Mc_explorer.o_pruned_fp outcome.Mc_explorer.o_truncated
      outcome.Mc_explorer.o_max_points;
    Printf.printf "exploration: %s\n"
      (if outcome.Mc_explorer.o_exhausted then "exhaustive"
       else if outcome.Mc_explorer.o_violation <> None then
         "stopped at first counterexample"
       else "stopped at schedule limit");
    match outcome.Mc_explorer.o_violation with
    | None -> Printf.printf "no violations found\n"
    | Some ((decisions, violations) as cxpair) ->
        mc_print_counterexample cxpair;
        if outcome.Mc_explorer.o_all_violations <> violations then
          List.iter
            (fun v -> Printf.printf "also seen: %s\n" v)
            (List.filter
               (fun v -> not (List.mem v violations))
               outcome.Mc_explorer.o_all_violations);
        (match cx_file with
        | None -> ()
        | Some path ->
            let cx =
              {
                Mc_cx.cx_cfg = cfg;
                cx_decisions = decisions;
                cx_violations = violations;
              }
            in
            let oc = open_out path in
            output_string oc (Mc_cx.to_string cx);
            output_char oc '\n';
            close_out oc;
            Printf.printf "counterexample written to %s\n" path);
        exit 1
  in
  Term.(
    const action $ protocol_arg $ procs_arg $ depth_arg $ msgs_arg $ hops_arg
    $ crashes_arg $ naive_arg $ dpor_arg $ mutate_arg $ list_mutants_arg
    $ max_schedules_arg $ max_steps_arg $ no_fingerprint_arg $ keep_going_arg
    $ cx_arg)

let mc_replay_cmd =
  let cx_file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"CX" ~doc:"Counterexample JSON written by `recsim mc --cx'.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write the re-executed schedule as a JSONL trace to $(docv) \
             (default: stdout), ready for `recsim check' / `recsim trace'.")
  in
  let action cx_file out =
    match cx_file with
    | None ->
        prerr_endline "recsim mc replay: a counterexample FILE is required";
        exit 2
    | Some path -> (
        let contents =
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Mc_cx.of_string (String.trim contents) with
        | Error msg ->
            Printf.eprintf "recsim mc replay: %s\n" msg;
            exit 2
        | Ok cx ->
            let run write = Mc_cx.replay ~write cx in
            let violations =
              match out with
              | None -> run print_string
              | Some file ->
                  let oc = open_out file in
                  Fun.protect
                    ~finally:(fun () -> close_out oc)
                    (fun () -> run (output_string oc))
            in
            List.iter
              (fun v -> Printf.eprintf "VIOLATION %s\n" v)
              violations;
            if violations = [] then begin
              prerr_endline
                "recsim mc replay: schedule no longer violates (stale \
                 counterexample?)";
              exit 1
            end)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a counterexample and emit it as a standard JSONL trace.")
    Term.(const action $ cx_file_arg $ out_arg)

let mc_cmd =
  Cmd.group
    ~default:mc_explore_term
    (Cmd.info "mc"
       ~doc:
         "Exhaustively model-check small configurations: enumerate schedules \
          and crash points (with partial-order reduction) and report any \
          invariant violation as a replayable counterexample.")
    [ mc_replay_cmd ]

(* --- compare --- *)

let compare_cmd =
  let action n seed rate duration hops failures pattern =
    let t =
      Table.create
        ~columns:
          [
            ("protocol", Table.Left);
            ("delivered", Table.Right);
            ("rollbacks", Table.Right);
            ("restarts", Table.Right);
            ("obsolete", Table.Right);
            ("piggyback w/msg", Table.Right);
            ("blocked time", Table.Right);
          ]
    in
    List.iter
      (fun protocol ->
        let fifo =
          match protocol with
          | Runner.Strom_yemini | Runner.Peterson_kearns -> true
          | _ -> false
        in
        let params =
          make_params protocol n seed rate duration hops failures fifo false
            pattern
        in
        let r = Runner.run params in
        let piggyback =
          float_of_int (Runner.counter r "piggyback_words")
          /. float_of_int (max 1 (Runner.counter r "sent"))
        in
        Table.add_row t
          [
            r.Runner.r_protocol;
            string_of_int (Runner.counter r "delivered");
            string_of_int (Runner.counter r "rollbacks");
            string_of_int (Runner.counter r "restarts");
            string_of_int (Runner.counter r "discarded_obsolete");
            Printf.sprintf "%.1f" piggyback;
            Printf.sprintf "%.1f"
              (float_of_int (Runner.counter r "blocked_time_x1000") /. 1000.0);
          ])
      Runner.all_protocols;
    Format.printf "%s@." (Table.render t)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run every protocol on the same schedule and tabulate.")
    Term.(
      const action $ n_arg $ seed_arg $ rate_arg $ duration_arg $ hops_arg
      $ failures_arg $ pattern_arg)

(* --- list --- *)

let list_cmd =
  let action () =
    List.iter
      (fun p -> print_endline (Runner.protocol_name p))
      Runner.all_protocols
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the implemented protocols.")
    Term.(const action $ const ())

let () =
  let doc =
    "Simulate optimistic rollback-recovery protocols (Damani-Garg 1996 and \
     baselines)."
  in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "recsim" ~doc)
          [
            run_cmd;
            trace_cmd;
            check_cmd;
            report_cmd;
            mc_cmd;
            live_cmd;
            cluster_cmd;
            compare_cmd;
            list_cmd;
          ]))
