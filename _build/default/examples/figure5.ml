(* Figure 5 of the paper: the worked recovery example, reproduced on the
   full protocol stack.

   The scripted scenario (paper Section 6.6):
   - P1 receives a stimulus and sends m1 to P0; its delivery of the
     stimulus is still unflushed when P1 crashes, so that state is lost.
   - P1 restarts, broadcasts the token for its version 0, and (already in
     version 1) sends m2 to P0. The data plane is faster than the control
     plane here, so m2 reaches P0 before the token: P0 must POSTPONE m2
     because m2's clock names version 1 of P1 while P0 has no token for
     version 0 (Section 6.1 deliverability).
   - P0, meanwhile an orphan (it delivered m1 from the lost state), sends
     m0 to P2 just before the token reaches anyone; m0 arrives at P2 after
     the token does, so P2 detects m0 as OBSOLETE and discards it
     (Lemma 4).
   - When the token reaches P0 it detects orphanhood via its history
     (Lemma 3), rolls back past m1, and only then delivers the held m2.

   Run with:  dune exec examples/figure5.exe *)

module Network = Optimist_net.Network
module Ftvc = Optimist_clock.Ftvc
module Types = Optimist_core.Types
module Process = Optimist_core.Process
module System = Optimist_core.System
module Oracle = Optimist_oracle.Oracle

(* Scripted application: payload tags name the figure's messages. *)
type tag = Stim_a | M1 | Stim_c | M2 | Stim_b | M0

let tag_name = function
  | Stim_a -> "stimulus-a"
  | M1 -> "m1"
  | Stim_c -> "stimulus-c"
  | M2 -> "m2"
  | Stim_b -> "stimulus-b"
  | M0 -> "m0"

let app : (tag list, tag) Types.app =
  {
    Types.init = (fun _ -> []);
    on_message =
      (fun ~me ~src:_ state m ->
        let state' = m :: state in
        let sends =
          match (me, m) with
          | 1, Stim_a -> [ (0, M1) ] (* P1 -> P0 *)
          | 1, Stim_c -> [ (0, M2) ] (* restarted P1 -> P0 *)
          | 0, Stim_b -> [ (2, M0) ] (* orphan P0 -> P2 *)
          | _ -> []
        in
        (state', sends));
  }

let () =
  let n = 3 in
  let oracle = Oracle.create ~n in
  let otr = Oracle.tracer oracle in
  let events = ref [] in
  let note e = events := e :: !events in
  let say fmt = Format.printf (fmt ^^ "@.") in
  let tracer =
    {
      otr with
      Types.held =
        (fun ~pid ~uid ->
          note `Held;
          say "P%d postpones a message: it names version 1 of P1 but the
   version-0 token has not arrived (Section 6.1)" pid;
          otr.Types.held ~pid ~uid);
      discarded_obsolete =
        (fun ~pid ~uid ->
          note `Obsolete;
          say "P%d discards an OBSOLETE message (Lemma 4): it depends on a
   lost state of P1's version 0" pid;
          otr.Types.discarded_obsolete ~pid ~uid);
      restored =
        (fun ~pid ~clock ~failure ->
          if failure then begin
            note `Restart;
            say "P1 restarts from its checkpoint; token (0,%d) broadcast"
              (Ftvc.get clock 1).Ftvc.ts
          end
          else begin
            note `Rollback;
            say "P%d rolls back: the token revealed it was an orphan (Lemma 3)"
              pid
          end;
          otr.Types.restored ~pid ~clock ~failure);
      failed =
        (fun ~pid ->
          say "P%d crashes; its unflushed delivery is lost" pid;
          otr.Types.failed ~pid);
    }
  in
  (* Data plane faster than control plane: m2 beats the token to P0, and
     m0 (sent late) loses to the token at P2 — the races of Figure 5. *)
  let net_config =
    {
      (Network.default_config ~n) with
      Network.latency = Network.Constant 2.0;
      control_latency = Some (Network.Constant 10.0);
    }
  in
  let config =
    {
      Types.default_config with
      Types.flush_interval = 10_000.0;
      checkpoint_interval = 10_000.0;
      restart_delay = 5.0;
    }
  in
  let sys = System.create ~seed:9L ~net_config ~config ~tracer ~n ~app () in

  System.inject_at sys ~at:5.0 ~pid:1 Stim_a;
  (* m1 arrives at P0 at t=7: P0 now depends on P1's doomed state. *)
  System.fail_at sys ~at:30.0 ~pid:1;
  (* restart at t=35: token sent (arrives everywhere at t=45). *)
  System.inject_at sys ~at:36.0 ~pid:1 Stim_c;
  (* m2 sent at 36, arrives at P0 at 38 — before the token: postponed. *)
  System.inject_at sys ~at:43.5 ~pid:0 Stim_b;
  (* m0 sent at 43.5 by the orphan P0, arrives at P2 at 45.5 — after the
     token: discarded as obsolete. *)
  System.run sys;

  say "--- quiescent ---";
  Array.iter
    (fun p ->
      say "P%d: incarnation %d, received [%s]" (Process.id p) (Process.version p)
        (String.concat "; " (List.rev_map tag_name (Process.state p))))
    (System.processes sys);

  (* The figure's behaviours, in order of occurrence. The two obsolete
     discards: the rollback re-offers P0's unlogged suffix and finds m1
     obsolete (Lemma 4), and the orphan-sent copy of m0 is discarded at
     P2. *)
  let got = List.rev !events in
  let expected = [ `Restart; `Held; `Rollback; `Obsolete; `Obsolete ] in
  if got <> expected then begin
    say "UNEXPECTED event sequence (%d events)" (List.length got);
    exit 1
  end;
  (* After rolling back, P0 must have delivered the held m2 and nothing
     that depends on the lost state. *)
  let p0 = System.process sys 0 in
  assert (List.mem M2 (Process.state p0));
  assert (not (List.mem M1 (Process.state p0)));
  (* P0's stimulus-b survives the rollback (re-offered, Section 6.5: "no
     message is lost" in a rollback) and re-executes in a healthy state,
     re-sending m0; P2 applies that copy while the orphan-sent original
     was discarded. The maximum recoverable state keeps this work. *)
  assert (List.mem Stim_b (Process.state p0));
  assert (List.mem M0 (Process.state (System.process sys 2)));
  assert (System.total sys "discarded_obsolete" = 2);
  (match Oracle.check oracle with
  | [] -> say "oracle: consistent; every orphan was rolled back (Theorem 2)"
  | vs ->
      List.iter (fun v -> say "VIOLATION %s: %s" v.Oracle.check v.Oracle.detail) vs;
      exit 1);
  say "";
  say "space-time diagram of the run (compare with the paper's Figure 5):";
  print_string (Optimist_oracle.Timeline.render oracle);
  say "figure 5 reproduced: postponement, orphan rollback, obsolete discard"
