examples/figure5.mli:
