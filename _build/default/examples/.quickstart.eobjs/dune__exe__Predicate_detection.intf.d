examples/predicate_detection.mli:
