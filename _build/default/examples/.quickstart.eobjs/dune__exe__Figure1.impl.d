examples/figure1.ml: Array Format List Optimist_clock
