examples/figure5.ml: Array Format List Optimist_clock Optimist_core Optimist_net Optimist_oracle String
