examples/kv_store.ml: Array Format Int List Map Optimist_core Optimist_net Optimist_oracle Optimist_util String
