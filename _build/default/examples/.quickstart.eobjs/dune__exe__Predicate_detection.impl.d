examples/predicate_detection.ml: Array Format Hashtbl List Optimist_clock Optimist_core Optimist_oracle Optimist_workload Option Queue
