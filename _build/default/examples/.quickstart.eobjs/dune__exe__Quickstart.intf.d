examples/quickstart.mli:
