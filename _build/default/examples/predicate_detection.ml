(* FTVC beyond recovery: weak conjunctive predicate detection on a failing
   computation.

   Section 4 of the paper notes that the fault-tolerant vector clock "is of
   independent interest as it can also be applied to other distributed
   algorithms such as distributed predicate detection [9]". This example
   plays that out: a passive monitor collects the FTVCs of the states in
   which each process satisfies a local predicate, and — because Theorem 1
   guarantees the FTVC order coincides with causality on useful states even
   across failures and rollbacks — detects whether some consistent cut
   satisfied the conjunction, using the classic Garg-Waldecker queue
   algorithm with FTVC concurrency.

   Run with:  dune exec examples/predicate_detection.exe *)

module Ftvc = Optimist_clock.Ftvc
module Types = Optimist_core.Types
module Process = Optimist_core.Process
module System = Optimist_core.System
module Oracle = Optimist_oracle.Oracle
module Traffic = Optimist_workload.Traffic
module Schedule = Optimist_workload.Schedule

(* The local predicate: the process has processed a number of messages
   congruent to 2 mod 5. *)
let local_predicate (s : Traffic.state) = s.Traffic.count mod 5 = 2

(* Weak-conjunctive-predicate detection: advance per-process candidate
   queues until the heads are pairwise concurrent (a consistent cut) or a
   queue runs dry. *)
let detect_wcp queues =
  let n = Array.length queues in
  let heads = Array.map (fun q -> Queue.peek_opt q) queues in
  let rec loop () =
    if Array.exists (fun h -> h = None) heads then None
    else begin
      (* Find a head that happens-before another: it can never be part of
         a concurrent cut with the later one, so discard it. *)
      let advanced = ref false in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then
            match (heads.(i), heads.(j)) with
            | Some ci, Some cj when Ftvc.lt ci cj ->
                ignore (Queue.pop queues.(i));
                heads.(i) <- Queue.peek_opt queues.(i);
                advanced := true
            | _ -> ()
        done
      done;
      if not !advanced then
        Some (Array.map (fun h -> Option.get h) heads)
      else loop ()
    end
  in
  loop ()

let () =
  let n = 3 in
  let oracle = Oracle.create ~n in
  let otr = Oracle.tracer oracle in

  (* The monitor: record the clock of every state satisfying the local
     predicate. States later lost or rolled back must be purged — exactly
     the bookkeeping the oracle already does, so we reuse its statuses by
     recording candidate clocks and filtering at the end. *)
  let candidates = Array.init n (fun _ -> ref []) in
  let tracer =
    {
      otr with
      Types.state_created =
        (fun ~pid ~clock ~kind ->
          otr.Types.state_created ~pid ~clock ~kind;
          ());
    }
  in
  let app0 = Traffic.app ~n Traffic.Uniform in
  (* Wrap the application to evaluate the local predicate on each new
     state; the clock to record is the process's clock after delivery,
     which we capture through a post-delivery peek. *)
  let sys = ref None in
  let app =
    {
      app0 with
      Types.on_message =
        (fun ~me ~src s m ->
          let s', sends = app0.Types.on_message ~me ~src s m in
          (match !sys with
          | Some system when local_predicate s' ->
              let p = System.process system me in
              (* The clock of the delivery state: current clock of the
                 process (already advanced for this delivery). During
                 replay this re-fires, which is harmless: the same clock
                 value is recorded again and deduplicated below. *)
              candidates.(me) := Process.clock p :: !(candidates.(me))
          | _ -> ());
          (s', sends));
    }
  in
  let system = System.create ~seed:4242L ~tracer ~n ~app () in
  sys := Some system;
  let injections =
    Schedule.poisson_injections ~seed:99L ~n ~rate:0.05 ~duration:500.0 ~hops:6
  in
  List.iter
    (fun i ->
      System.inject_at system ~at:i.Schedule.at ~pid:i.Schedule.pid
        (Traffic.fresh ~key:i.Schedule.key ~hops:i.Schedule.hops))
    injections;
  System.fail_at system ~at:250.0 ~pid:2;
  System.run system;

  (match Oracle.check oracle with
  | [] -> ()
  | _ ->
      Format.printf "computation inconsistent, aborting@.";
      exit 1);

  (* Deduplicate (replay re-records) and keep only clocks of useful
     states: a clock is useful here iff it is dominated by the owner's
     final clock in the surviving computation (rolled-back branches are
     not). *)
  let final = Array.map Process.clock (System.processes system) in
  let queues =
    Array.init n (fun i ->
        let q = Queue.create () in
        let seen = Hashtbl.create 64 in
        List.iter
          (fun c ->
            let key = Format.asprintf "%a" Ftvc.pp c in
            if (not (Hashtbl.mem seen key)) && Ftvc.leq c final.(i) then begin
              Hashtbl.add seen key ();
              Queue.push c q
            end)
          (List.rev !(candidates.(i)));
        q)
  in
  Array.iteri
    (fun i q ->
      Format.printf "P%d: %d candidate states satisfy the local predicate@." i
        (Queue.length q))
    queues;
  match detect_wcp queues with
  | Some cut ->
      Format.printf "consistent cut found where all local predicates hold:@.";
      Array.iteri (fun i c -> Format.printf "  P%d at %a@." i Ftvc.pp c) cut;
      (* Verify pairwise concurrency — the defining property of a cut. *)
      Array.iteri
        (fun i ci ->
          Array.iteri
            (fun j cj -> if i <> j then assert (Ftvc.concurrent ci cj))
            cut)
        cut;
      Format.printf
        "predicate detected across a failure: FTVC causality (Theorem 1) @.";
      Format.printf "made the monitor work unmodified@."
  | None ->
      Format.printf "no consistent cut satisfies the predicate in this run@."
