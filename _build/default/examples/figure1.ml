(* Figure 1 of the paper, reproduced state by state.

   The computation: P0 sends to P1 and later to P2; P1 receives, computes,
   fails at f10, restores s11 and restarts as r10 with a new incarnation;
   P2 receives a message from P1's lost state s12, becoming the orphan s22,
   and rolls back to restart as r20. Every clock value printed in the
   paper's figure is asserted here, as are the happen-before claims the
   text makes about the figure (s00 -> s22; s22 not-> r20; r20.c < s22.c
   even though r20 not-> s22 — FTVC order is only meaningful for useful
   states).

   Run with:  dune exec examples/figure1.exe *)

module Ftvc = Optimist_clock.Ftvc

let check name clock expected =
  let got =
    Array.to_list (Ftvc.entries clock)
    |> List.map (fun e -> (e.Ftvc.ver, e.Ftvc.ts))
  in
  if got <> expected then begin
    Format.printf "MISMATCH at %s: got %a@." name Ftvc.pp clock;
    exit 1
  end;
  Format.printf "%-4s %a@." name Ftvc.pp clock

let () =
  Format.printf "Reproducing the FTVC values of Figure 1 (3 processes):@.";

  (* Initial states. *)
  let s00 = Ftvc.create ~n:3 ~me:0 in
  let p1_0 = Ftvc.create ~n:3 ~me:1 in
  let p2_0 = Ftvc.create ~n:3 ~me:2 in
  check "s00" s00 [ (0, 1); (0, 0); (0, 0) ];

  (* P0 sends m to P1 from s00, advancing to its second state. *)
  let m_clock = s00 in
  let s01 = Ftvc.sent s00 in
  check "s01" s01 [ (0, 2); (0, 0); (0, 0) ];
  let s02 = Ftvc.sent s01 in
  check "s02" s02 [ (0, 3); (0, 0); (0, 0) ];

  (* P1 receives m: s11 = [(0,1)(0,2)(0,0)], then computes s12. *)
  let s11 = Ftvc.deliver p1_0 ~received:m_clock in
  check "s11" s11 [ (0, 1); (0, 2); (0, 0) ];
  let s12_msg = s11 in
  (* s12 is the state after sending to P2 *)
  let s12 = Ftvc.sent s11 in
  check "s12" s12 [ (0, 1); (0, 3); (0, 0) ];

  (* P2's local step, then it receives P1's message (sent from s11/s12):
     s22 is the orphan-to-be. *)
  let s21 = Ftvc.internal p2_0 in
  check "s21" s21 [ (0, 0); (0, 0); (0, 2) ];
  let s22 = Ftvc.deliver s21 ~received:s12_msg in
  check "s22" s22 [ (0, 1); (0, 2); (0, 3) ];

  (* P1 fails at f10 (the state after s12); restores s11; r10 is the new
     incarnation: version + 1, timestamp 0. *)
  let f10 = Ftvc.sent s12 in
  ignore f10;
  let r10 = Ftvc.restart s11 in
  check "r10" r10 [ (0, 1); (1, 0); (0, 0) ];

  (* P2, being an orphan (it depends on the lost s12 via the message),
     rolls back to s21 and restarts as r20: timestamp + 1, same version. *)
  let r20 = Ftvc.rolled_back s21 in
  check "r20" r20 [ (0, 0); (0, 0); (0, 3) ];

  (* P1's next incarnation talks to P2: the merge prefers the higher
     version. *)
  let m2 = r10 in
  let p2_next = Ftvc.deliver r20 ~received:m2 in
  check "s23" p2_next [ (0, 1); (1, 0); (0, 4) ];

  (* The figure's causality claims. *)
  assert (Ftvc.lt s00 s22);
  (* s00 -> s22 *)
  assert (not (Ftvc.lt s22 r20));
  (* s22 not-> r20 *)
  assert (Ftvc.lt r20 s22);
  (* yet r20.c < s22.c: FTVC comparisons only mean causality for useful
     states (Theorem 1); r20 is useful but s22 is an orphan. *)
  Format.printf
    "claims verified: s00->s22; s22 not->r20; r20.c < s22.c for the orphan s22@.";
  Format.printf
    "figure 1 reproduced: the values printed in the paper (s00, P0's \
     successors, s11, r10)@.";
  Format.printf
    "match exactly; the remaining states follow the figure's structure@."
