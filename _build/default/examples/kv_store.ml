(* A replicated key-value store on top of the recovery protocol.

   Every PUT is injected at one replica and forwarded around the ring so
   all replicas apply it. Crashes are injected while traffic flows. The
   demo runs the same schedule twice:

   - with the plain paper protocol, deliveries wiped by a crash are lost
     forever (the paper's Section 6.5 remark 1), so replicas can diverge
     on the keys whose replication chain died;
   - with the send-history retransmission extension enabled, peers resend
     exactly the messages the restored state does not cover, and all
     replicas converge to identical stores.

   Run with:  dune exec examples/kv_store.exe *)

module Network = Optimist_net.Network
module Types = Optimist_core.Types
module Process = Optimist_core.Process
module System = Optimist_core.System
module Oracle = Optimist_oracle.Oracle
module Prng = Optimist_util.Prng

(* --- the application: a ring-replicated store --- *)

module IntMap = Map.Make (Int)

type op = { op_key : int; op_value : int; hops_left : int }

let app ~n : (int IntMap.t, op) Types.app =
  {
    Types.init = (fun _ -> IntMap.empty);
    on_message =
      (fun ~me ~src:_ store op ->
        let store' = IntMap.add op.op_key op.op_value store in
        let sends =
          if op.hops_left > 0 then
            [ ((me + 1) mod n, { op with hops_left = op.hops_left - 1 }) ]
          else []
        in
        (store', sends));
  }

let run ~retransmit ~n ~puts ~crashes =
  let oracle = Oracle.create ~n in
  let config =
    {
      Types.default_config with
      Types.retransmit_lost = retransmit;
      flush_interval = 40.0;
      checkpoint_interval = 150.0;
      restart_delay = 15.0;
    }
  in
  let sys =
    System.create ~seed:77L ~config ~tracer:(Oracle.tracer oracle) ~n
      ~app:(app ~n) ()
  in
  let rng = Prng.create 123L in
  for k = 1 to puts do
    let at = 5.0 +. Prng.float rng 600.0 in
    let pid = Prng.int rng n in
    System.inject_at sys ~at ~pid
      { op_key = k; op_value = (k * 7919) land 0xFFFF; hops_left = n - 1 }
  done;
  List.iter (fun (at, pid) -> System.fail_at sys ~at ~pid) crashes;
  System.run sys;
  (sys, oracle)

let store_sizes sys =
  Array.to_list
    (Array.map (fun p -> IntMap.cardinal (Process.state p)) (System.processes sys))

let stores_equal sys =
  let stores = Array.map Process.state (System.processes sys) in
  Array.for_all (fun s -> IntMap.equal ( = ) s stores.(0)) stores

let missing_keys sys ~puts =
  let stores = Array.map Process.state (System.processes sys) in
  let missing = ref 0 in
  for k = 1 to puts do
    if not (Array.for_all (fun s -> IntMap.mem k s) stores) then incr missing
  done;
  !missing

let () =
  let n = 4 and puts = 120 in
  let crashes = [ (200.0, 1); (350.0, 3); (480.0, 1) ] in

  Format.printf "Replicated KV store: %d replicas, %d PUTs, %d crashes@.@." n
    puts (List.length crashes);

  let sys, oracle = run ~retransmit:false ~n ~puts ~crashes in
  Format.printf "WITHOUT retransmission (plain paper protocol):@.";
  Format.printf "  store sizes per replica: %s@."
    (String.concat " " (List.map string_of_int (store_sizes sys)));
  Format.printf "  keys not fully replicated: %d (lost deliveries, Section 6.5)@."
    (missing_keys sys ~puts);
  Format.printf "  consistent (oracle): %b@." (Oracle.check oracle = []);

  let sys, oracle = run ~retransmit:true ~n ~puts ~crashes in
  Format.printf "@.WITH send-history retransmission (remark 6.5-1):@.";
  Format.printf "  store sizes per replica: %s@."
    (String.concat " " (List.map string_of_int (store_sizes sys)));
  Format.printf "  resends: %d, duplicates filtered: %d@."
    (System.total sys "retransmitted")
    (System.total sys "duplicates_dropped");
  Format.printf "  keys not fully replicated: %d@." (missing_keys sys ~puts);
  Format.printf "  all replicas identical: %b@." (stores_equal sys);
  Format.printf "  consistent (oracle): %b@." (Oracle.check oracle = []);

  if not (stores_equal sys) then begin
    Format.printf "ERROR: replicas diverged with retransmission enabled@.";
    exit 1
  end;
  if Oracle.check oracle <> [] then exit 1;
  Format.printf "@.kv_store: convergence demonstrated@."
