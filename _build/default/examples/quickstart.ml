(* Quickstart: three processes exchange messages; one crashes mid-run; the
   Damani-Garg protocol restores a consistent global state asynchronously.

   Run with:  dune exec examples/quickstart.exe *)

module Network = Optimist_net.Network
module Ftvc = Optimist_clock.Ftvc
module Types = Optimist_core.Types
module Process = Optimist_core.Process
module System = Optimist_core.System
module Oracle = Optimist_oracle.Oracle
module Traffic = Optimist_workload.Traffic
module Schedule = Optimist_workload.Schedule

let () =
  let n = 3 in

  (* The oracle watches everything and will certify consistency at the
     end; a narrating tracer prints the interesting events on the way. *)
  let oracle = Oracle.create ~n in
  let otr = Oracle.tracer oracle in
  let engine_time = ref (fun () -> 0.0) in
  let say fmt =
    Format.printf ("[t=%7.1f] " ^^ fmt ^^ "@.") (!engine_time ())
  in
  let tracer =
    {
      otr with
      Types.failed =
        (fun ~pid ->
          say "P%d CRASHES (volatile state wiped)" pid;
          otr.Types.failed ~pid);
      restored =
        (fun ~pid ~clock ~failure ->
          say "P%d %s to clock %a" pid
            (if failure then "RESTARTS: restored checkpoint + replayed log"
             else "ROLLS BACK an orphan suffix")
            Ftvc.pp clock;
          otr.Types.restored ~pid ~clock ~failure);
      discarded_obsolete =
        (fun ~pid ~uid ->
          say "P%d discards OBSOLETE message #%d" pid uid;
          otr.Types.discarded_obsolete ~pid ~uid);
      held =
        (fun ~pid ~uid ->
          say "P%d postpones message #%d (token still missing)" pid uid;
          otr.Types.held ~pid ~uid);
    }
  in

  (* A generic forwarding workload from the library. *)
  let app = Traffic.app ~n Traffic.Uniform in
  let sys = System.create ~seed:2026L ~tracer ~n ~app () in
  (engine_time := fun () -> Optimist_sim.Engine.now (System.engine sys));

  (* Poisson stimulus on every process; P1 crashes at t=300. *)
  let injections =
    Schedule.poisson_injections ~seed:7L ~n ~rate:0.04 ~duration:600.0 ~hops:5
  in
  List.iter
    (fun i ->
      System.inject_at sys ~at:i.Schedule.at ~pid:i.Schedule.pid
        (Traffic.fresh ~key:i.Schedule.key ~hops:i.Schedule.hops))
    injections;
  System.fail_at sys ~at:300.0 ~pid:1;

  Format.printf "--- running: 3 processes, ~%d stimuli, crash of P1 at t=300@."
    (List.length injections);
  System.run sys;

  Format.printf "--- quiescent at t=%.1f@." (!engine_time ());
  Array.iter
    (fun p ->
      Format.printf "P%d: incarnation %d, clock %a, digest %d@." (Process.id p)
        (Process.version p) Ftvc.pp (Process.clock p)
        (Traffic.digest (Process.state p)))
    (System.processes sys);
  Format.printf "totals: delivered=%d rollbacks=%d restarts=%d obsolete=%d held=%d@."
    (System.total sys "delivered")
    (System.total sys "rollbacks")
    (System.total sys "restarts")
    (System.total sys "discarded_obsolete")
    (System.total sys "held");

  match Oracle.check oracle with
  | [] ->
      Format.printf
        "oracle: the surviving computation is consistent (Theorem 2 holds)@.";
      Format.printf "oracle: %a@." Oracle.pp_stats oracle
  | vs ->
      List.iter
        (fun v -> Format.printf "VIOLATION %s: %s@." v.Oracle.check v.Oracle.detail)
        vs;
      exit 1
