(* Tests of checkpoint/log garbage collection (Section 6.5 remark 2):
   space is reclaimed below the newest stable checkpoint, and recovery
   still works afterwards. *)

module Network = Optimist_net.Network
module Types = Optimist_core.Types
module Process = Optimist_core.Process
module System = Optimist_core.System
module Oracle = Optimist_oracle.Oracle
module Traffic = Optimist_workload.Traffic
module Schedule = Optimist_workload.Schedule

let make ?(commit = true) ?(n = 3) ?(seed = 15L) () =
  let oracle = Oracle.create ~n in
  let config =
    {
      Types.default_config with
      Types.commit_outputs = commit;
      flush_interval = 20.0;
      checkpoint_interval = 60.0;
      restart_delay = 10.0;
    }
  in
  let sys =
    System.create ~seed ~config ~tracer:(Oracle.tracer oracle) ~n
      ~app:(Traffic.app ~n Traffic.Uniform) ()
  in
  (sys, oracle)

let load sys ~n ~until =
  List.iter
    (fun i ->
      System.inject_at sys ~at:i.Schedule.at ~pid:i.Schedule.pid
        (Traffic.fresh ~key:i.Schedule.key ~hops:i.Schedule.hops))
    (Schedule.poisson_injections ~seed:77L ~n ~rate:0.08 ~duration:until ~hops:5)

let total_checkpoints sys =
  Array.fold_left
    (fun acc p -> acc + Process.checkpoint_count p)
    0 (System.processes sys)

let total_log sys =
  Array.fold_left (fun acc p -> acc + Process.log_length p) 0 (System.processes sys)

let test_gc_reclaims () =
  let sys, _ = make () in
  load sys ~n:3 ~until:600.0;
  System.run sys;
  System.settle_outputs sys;
  let cps_before = total_checkpoints sys and log_before = total_log sys in
  let cps, entries = System.collect_garbage sys in
  Alcotest.(check bool) "checkpoints reclaimed" true (cps > 0);
  Alcotest.(check bool) "log entries reclaimed" true (entries > 0);
  Alcotest.(check int) "checkpoint accounting" (cps_before - cps)
    (total_checkpoints sys);
  Alcotest.(check int) "log accounting" (log_before - entries) (total_log sys)

let test_gc_noop_without_frontiers () =
  let sys, _ = make ~commit:false () in
  load sys ~n:3 ~until:300.0;
  System.run sys;
  Alcotest.(check (pair int int)) "no tracking, no gc" (0, 0)
    (System.collect_garbage sys)

let test_gc_idempotent () =
  let sys, _ = make () in
  load sys ~n:3 ~until:400.0;
  System.run sys;
  System.settle_outputs sys;
  ignore (System.collect_garbage sys);
  Alcotest.(check (pair int int)) "second pass reclaims nothing" (0, 0)
    (System.collect_garbage sys)

(* Recovery after GC: crash every process in turn; the retained suffix must
   still restore a consistent computation. *)
let test_recovery_after_gc () =
  let sys, oracle = make () in
  load sys ~n:3 ~until:400.0;
  System.run sys;
  System.settle_outputs sys;
  ignore (System.collect_garbage sys);
  (* More traffic, then failures. *)
  List.iter
    (fun i ->
      System.inject_at sys ~at:(500.0 +. i.Schedule.at) ~pid:i.Schedule.pid
        (Traffic.fresh ~key:i.Schedule.key ~hops:i.Schedule.hops))
    (Schedule.poisson_injections ~seed:78L ~n:3 ~rate:0.08 ~duration:300.0 ~hops:5);
  System.fail_at sys ~at:560.0 ~pid:0;
  System.fail_at sys ~at:640.0 ~pid:2;
  System.run sys;
  Alcotest.(check bool) "all alive" true (System.all_alive sys);
  Alcotest.(check string) "consistent after gc + crashes" ""
    (String.concat "; "
       (List.map (fun v -> v.Oracle.check ^ ": " ^ v.Oracle.detail)
          (Oracle.check oracle)))

(* GC must never reclaim the restore point a pending rollback needs: run
   GC concurrently with failures and audit. *)
let test_gc_under_failures () =
  let sys, oracle = make ~seed:21L () in
  load sys ~n:3 ~until:800.0;
  List.iter
    (fun at -> System.fail_at sys ~at ~pid:(int_of_float at mod 3))
    [ 150.0; 340.0; 520.0; 700.0 ];
  (* Interleave GC passes with the run. *)
  List.iter
    (fun at ->
      ignore
        (Optimist_sim.Engine.schedule_at (System.engine sys) at (fun () ->
             ignore (System.collect_garbage sys))))
    [ 200.0; 400.0; 600.0 ];
  System.run sys;
  Alcotest.(check bool) "all alive" true (System.all_alive sys);
  Alcotest.(check string) "consistent with interleaved gc" ""
    (String.concat "; "
       (List.map (fun v -> v.Oracle.check ^ ": " ^ v.Oracle.detail)
          (Oracle.check oracle)))

let suite =
  [
    Alcotest.test_case "gc reclaims space" `Quick test_gc_reclaims;
    Alcotest.test_case "gc is a no-op without frontier tracking" `Quick
      test_gc_noop_without_frontiers;
    Alcotest.test_case "gc is idempotent" `Quick test_gc_idempotent;
    Alcotest.test_case "recovery works after gc" `Quick test_recovery_after_gc;
    Alcotest.test_case "gc interleaved with failures" `Quick
      test_gc_under_failures;
  ]
