(* Tests of the classic Mattern vector clock. *)

module Vclock = Optimist_clock.Vclock

let test_create () =
  let c = Vclock.create ~n:3 ~me:1 in
  Alcotest.(check (list int)) "init" [ 0; 1; 0 ] (Vclock.to_list c)

let test_tick () =
  let c = Vclock.create ~n:3 ~me:0 in
  let c = Vclock.tick c ~me:0 in
  Alcotest.(check (list int)) "ticked" [ 2; 0; 0 ] (Vclock.to_list c)

let test_merge () =
  let a = Vclock.of_list [ 3; 1; 0 ] and b = Vclock.of_list [ 1; 4; 2 ] in
  let m = Vclock.merge a ~me:0 b in
  Alcotest.(check (list int)) "componentwise max + own tick" [ 4; 4; 2 ]
    (Vclock.to_list m)

let test_orders () =
  let a = Vclock.of_list [ 1; 2; 3 ]
  and b = Vclock.of_list [ 2; 2; 4 ]
  and c = Vclock.of_list [ 3; 1; 0 ] in
  Alcotest.(check bool) "a < b" true (Vclock.lt a b);
  Alcotest.(check bool) "not b < a" false (Vclock.lt b a);
  Alcotest.(check bool) "a || c concurrent" true (Vclock.concurrent a c);
  Alcotest.(check bool) "a <= a" true (Vclock.leq a a);
  Alcotest.(check bool) "not a < a" false (Vclock.lt a a)

let clock_gen n =
  QCheck.Gen.(list_repeat n (0 -- 20) >|= Vclock.of_list)

let arb n = QCheck.make ~print:(fun c -> Format.asprintf "%a" Vclock.pp c) (clock_gen n)

let prop_leq_partial_order =
  QCheck.Test.make ~name:"leq is a partial order" ~count:500
    QCheck.(triple (arb 4) (arb 4) (arb 4))
    (fun (a, b, c) ->
      Vclock.leq a a
      && ((not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b)
      && ((not (Vclock.leq a b && Vclock.leq b c)) || Vclock.leq a c))

let prop_merge_upper_bound =
  QCheck.Test.make ~name:"merge dominates both inputs" ~count:500
    QCheck.(pair (arb 4) (arb 4))
    (fun (a, b) ->
      let m = Vclock.merge a ~me:0 b in
      let n = Vclock.size a in
      let rec ok i =
        i >= n
        || (Vclock.get m i >= Vclock.get a i
            && Vclock.get m i >= Vclock.get b i
            && ok (i + 1))
      in
      ok 0 && Vclock.get m 0 > max (Vclock.get a 0) (Vclock.get b 0))

let prop_concurrent_symmetric =
  QCheck.Test.make ~name:"concurrency is symmetric" ~count:500
    QCheck.(pair (arb 3) (arb 3))
    (fun (a, b) -> Vclock.concurrent a b = Vclock.concurrent b a)

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "tick" `Quick test_tick;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "orders" `Quick test_orders;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_leq_partial_order; prop_merge_upper_bound; prop_concurrent_symmetric ]
