(* Unit tests of the oracle itself, on hand-driven traces: the checks must
   fire on bad runs, stay silent on good ones, and classify states per the
   paper's definitions. *)

module Oracle = Optimist_oracle.Oracle
module Ftvc = Optimist_clock.Ftvc
module Types = Optimist_core.Types

(* A tiny harness that mimics what two processes would report. Clocks are
   maintained with the real FTVC rules so the oracle's clock-matching walk
   works. *)
type driver = {
  oracle : Oracle.t;
  tr : Types.tracer;
  mutable clocks : Ftvc.t array;
}

let make n =
  let oracle = Oracle.create ~n in
  {
    oracle;
    tr = Oracle.tracer oracle;
    clocks = Array.init n (fun me -> Ftvc.create ~n ~me);
  }

let step d ~pid =
  d.clocks.(pid) <- Ftvc.internal d.clocks.(pid);
  d.tr.Types.state_created ~pid ~clock:d.clocks.(pid) ~kind:Types.K_send

let send d ~src ~uid =
  d.tr.Types.message_sent ~src ~uid;
  let clock = d.clocks.(src) in
  d.clocks.(src) <- Ftvc.sent clock;
  d.tr.Types.state_created ~pid:src ~clock:d.clocks.(src) ~kind:Types.K_send;
  clock (* the clock carried by the message *)

let deliver d ~dst ~uid ~msg_clock =
  d.clocks.(dst) <- Ftvc.deliver d.clocks.(dst) ~received:msg_clock;
  d.tr.Types.delivered ~pid:dst ~uid;
  d.tr.Types.state_created ~pid:dst ~clock:d.clocks.(dst)
    ~kind:(Types.K_deliver uid)

let crash_back_to d ~pid ~clock =
  d.tr.Types.failed ~pid;
  d.tr.Types.restored ~pid ~clock ~failure:true;
  d.clocks.(pid) <- Ftvc.restart clock;
  d.tr.Types.state_created ~pid ~clock:d.clocks.(pid) ~kind:Types.K_restart

let rollback_to d ~pid ~clock =
  d.tr.Types.restored ~pid ~clock ~failure:false;
  d.clocks.(pid) <- Ftvc.rolled_back clock;
  d.tr.Types.state_created ~pid ~clock:d.clocks.(pid) ~kind:Types.K_rollback

let checks_of d = List.map (fun v -> v.Oracle.check) (Oracle.check d.oracle)

(* --- a clean failure-free run --- *)

let test_clean_run () =
  let d = make 2 in
  let m = send d ~src:0 ~uid:1 in
  deliver d ~dst:1 ~uid:1 ~msg_clock:m;
  Alcotest.(check (list string)) "no violations" [] (checks_of d);
  let live, lost, discarded = Oracle.status_counts d.oracle in
  Alcotest.(check (triple int int int)) "counts" (4, 0, 0) (live, lost, discarded)

(* --- an undetected orphan must be flagged --- *)

let test_live_orphan_detected () =
  let d = make 2 in
  let init0 = d.clocks.(0) in
  (* A local step first, so the send state is not the (indestructible)
     initial state. *)
  step d ~pid:0;
  let m = send d ~src:0 ~uid:1 in
  deliver d ~dst:1 ~uid:1 ~msg_clock:m;
  (* P0 crashes back past the send; P1 never rolls back. *)
  crash_back_to d ~pid:0 ~clock:init0;
  let checks = checks_of d in
  Alcotest.(check bool) "live orphan flagged" true
    (List.mem "no-live-orphan" checks);
  Alcotest.(check bool) "dead sender flagged" true
    (List.mem "live-delivery-live-sender" checks)

(* --- the orphan is cleared once the dependent rolls back --- *)

let test_orphan_rolled_back_is_clean () =
  let d = make 2 in
  let init0 = d.clocks.(0) and init1 = d.clocks.(1) in
  step d ~pid:0;
  let m = send d ~src:0 ~uid:1 in
  deliver d ~dst:1 ~uid:1 ~msg_clock:m;
  crash_back_to d ~pid:0 ~clock:init0;
  rollback_to d ~pid:1 ~clock:init1;
  Alcotest.(check (list string)) "clean after rollback" [] (checks_of d);
  let _, lost, discarded = Oracle.status_counts d.oracle in
  (* the pre-send step and the post-send state *)
  Alcotest.(check int) "lost states" 2 lost;
  Alcotest.(check int) "discarded states" 1 discarded

(* --- a rollback with no failure anywhere is needless --- *)

let test_needless_rollback_detected () =
  let d = make 2 in
  let init1 = d.clocks.(1) in
  let m = send d ~src:0 ~uid:1 in
  deliver d ~dst:1 ~uid:1 ~msg_clock:m;
  rollback_to d ~pid:1 ~clock:init1;
  Alcotest.(check bool) "needless rollback flagged" true
    (List.mem "no-needless-rollback" (checks_of d))

(* --- rollback counting --- *)

let test_rollback_counting () =
  let d = make 2 in
  let init1 = d.clocks.(1) in
  let m = send d ~src:0 ~uid:1 in
  deliver d ~dst:1 ~uid:1 ~msg_clock:m;
  rollback_to d ~pid:1 ~clock:init1;
  Alcotest.(check int) "P1 rollbacks" 1 (Oracle.rollbacks_of d.oracle 1);
  Alcotest.(check int) "P0 rollbacks" 0 (Oracle.rollbacks_of d.oracle 0);
  (* One rollback but zero failures: the bounded-rollbacks check fires. *)
  Alcotest.(check bool) "bound violated" true
    (List.mem "bounded-rollbacks" (checks_of d))

(* --- theorem 1 auditing catches clock lies --- *)

let test_theorem1_audit () =
  let d = make 2 in
  let m = send d ~src:0 ~uid:1 in
  deliver d ~dst:1 ~uid:1 ~msg_clock:m;
  Alcotest.(check (list string)) "true clocks pass" []
    (List.map
       (fun v -> v.Oracle.check)
       (Oracle.check_theorem1 d.oracle ~sample:100 ~seed:1L));
  (* Now report a state whose clock pretends to be concurrent with its own
     causal past: the audit must object. *)
  let bogus = Ftvc.create ~n:2 ~me:1 in
  let bogus = Ftvc.with_own bogus { Ftvc.ver = 9; ts = 9 } in
  d.tr.Types.state_created ~pid:1 ~clock:bogus ~kind:Types.K_send;
  Alcotest.(check bool) "lying clock caught" true
    (Oracle.check_theorem1 d.oracle ~sample:200 ~seed:1L <> [])

(* --- failure accounting --- *)

let test_failures_counted () =
  let d = make 2 in
  let init0 = d.clocks.(0) in
  ignore (send d ~src:0 ~uid:1);
  crash_back_to d ~pid:0 ~clock:init0;
  Alcotest.(check int) "one failure" 1 (Oracle.failures d.oracle)

let suite =
  [
    Alcotest.test_case "clean run" `Quick test_clean_run;
    Alcotest.test_case "live orphan detected" `Quick test_live_orphan_detected;
    Alcotest.test_case "rolled-back orphan is clean" `Quick
      test_orphan_rolled_back_is_clean;
    Alcotest.test_case "needless rollback detected" `Quick
      test_needless_rollback_detected;
    Alcotest.test_case "rollback counting" `Quick test_rollback_counting;
    Alcotest.test_case "theorem 1 audit" `Quick test_theorem1_audit;
    Alcotest.test_case "failures counted" `Quick test_failures_counted;
  ]
