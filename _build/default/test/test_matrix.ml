(* Tests of the matrix clock (the Smith-Johnson-Tygar vector-of-vectors
   structure the paper's Table 1 compares against). *)

module Ftvc = Optimist_clock.Ftvc
module Matrix = Optimist_clock.Matrix
module Prng = Optimist_util.Prng

let test_create () =
  let m = Matrix.create ~n:3 ~me:1 in
  Alcotest.(check int) "size" 3 (Matrix.size m);
  Alcotest.(check int) "me" 1 (Matrix.me m);
  (* Own row is the ordinary initial clock; rows about peers hold their
     initial clocks. *)
  Alcotest.(check bool) "own row" true
    (Ftvc.equal (Matrix.own m) (Ftvc.create ~n:3 ~me:1));
  Alcotest.(check bool) "peer row" true
    (Ftvc.equal (Matrix.get m ~about:0) (Ftvc.create ~n:3 ~me:0))

let test_size_words () =
  Alcotest.(check int) "2n^2" 32 (Matrix.size_words (Matrix.create ~n:4 ~me:0))

(* Drive matrices and plain FTVCs side by side over a random computation:
   the own row must behave exactly like the plain clock, and rows about
   peers must never exceed what the peer actually reached (no
   clairvoyance) while eventually reflecting relayed knowledge. *)
let prop_own_row_is_ftvc =
  QCheck.Test.make ~name:"own row tracks the plain FTVC" ~count:100
    QCheck.(int_bound 10_000)
    (fun seed ->
      let n = 4 in
      let rng = Prng.create (Int64.of_int (seed + 1)) in
      let matrices = Array.init n (fun me -> ref (Matrix.create ~n ~me)) in
      let clocks = Array.init n (fun me -> ref (Ftvc.create ~n ~me)) in
      let ok = ref true in
      for _ = 1 to 40 do
        let src = Prng.int rng n in
        let dst = (src + 1 + Prng.int rng (n - 1)) mod n in
        (* send: matrix piggybacked whole; both clocks tick *)
        let m_wire = !(matrices.(src)) in
        let c_wire = !(clocks.(src)) in
        matrices.(src) := Matrix.set_own m_wire (Ftvc.sent (Matrix.own m_wire));
        clocks.(src) := Ftvc.sent c_wire;
        matrices.(dst) := Matrix.deliver !(matrices.(dst)) ~received:m_wire;
        clocks.(dst) := Ftvc.deliver !(clocks.(dst)) ~received:c_wire;
        for i = 0 to n - 1 do
          if not (Ftvc.equal (Matrix.own !(matrices.(i))) !(clocks.(i))) then
            ok := false;
          (* no clairvoyance: row about j never exceeds j's real clock *)
          for j = 0 to n - 1 do
            if not (Ftvc.leq (Matrix.get !(matrices.(i)) ~about:j) !(clocks.(j)))
            then ok := false
          done
        done
      done;
      !ok)

(* Knowledge relays transitively: after a -> b -> c, c's row about a
   reflects a's clock at the first send. *)
let test_transitive_knowledge () =
  let n = 3 in
  let ma = ref (Matrix.create ~n ~me:0)
  and mb = ref (Matrix.create ~n ~me:1)
  and mc = ref (Matrix.create ~n ~me:2) in
  (* a steps a few times so its clock is distinctive *)
  ma := Matrix.set_own !ma (Ftvc.sent (Ftvc.sent (Matrix.own !ma)));
  let a_at_send = Matrix.own !ma in
  let wire_a = !ma in
  ma := Matrix.set_own !ma (Ftvc.sent (Matrix.own !ma));
  mb := Matrix.deliver !mb ~received:wire_a;
  let wire_b = !mb in
  mb := Matrix.set_own !mb (Ftvc.sent (Matrix.own !mb));
  mc := Matrix.deliver !mc ~received:wire_b;
  (* c never talked to a, yet knows a's state at the send. *)
  Alcotest.(check bool) "c knows a's send state" true
    (Ftvc.leq a_at_send (Matrix.get !mc ~about:0))

let test_set_own_immutable () =
  let m = Matrix.create ~n:2 ~me:0 in
  let m' = Matrix.set_own m (Ftvc.sent (Matrix.own m)) in
  Alcotest.(check bool) "original untouched" true
    (Ftvc.equal (Matrix.own m) (Ftvc.create ~n:2 ~me:0));
  Alcotest.(check bool) "copy updated" false (Ftvc.equal (Matrix.own m') (Matrix.own m))

let test_entries_roundtrip () =
  let m = Matrix.create ~n:3 ~me:0 in
  let m = Matrix.set_own m (Ftvc.sent (Matrix.own m)) in
  let m' = Matrix.of_entries ~me:0 (Matrix.entries m) in
  Alcotest.(check bool) "roundtrip" true
    (Matrix.entries m = Matrix.entries m')

(* join laws on the underlying clocks *)
let prop_join_laws =
  QCheck.Test.make ~name:"ftvc join is a lattice join" ~count:300
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (s1, s2) ->
      let mk seed =
        let rng = Prng.create (Int64.of_int (seed + 7)) in
        let c = ref (Ftvc.create ~n:3 ~me:0) in
        for _ = 1 to Prng.int rng 6 do
          c := Ftvc.sent !c
        done;
        !c
      in
      let a = mk s1 and b = mk s2 in
      let j = Ftvc.join a b in
      Ftvc.leq a j && Ftvc.leq b j
      && Ftvc.equal (Ftvc.join a a) a
      && Ftvc.equal (Ftvc.join a b) (Ftvc.join b a))

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "size in words" `Quick test_size_words;
    Alcotest.test_case "transitive knowledge" `Quick test_transitive_knowledge;
    Alcotest.test_case "set_own is persistent" `Quick test_set_own_immutable;
    Alcotest.test_case "entries roundtrip" `Quick test_entries_roundtrip;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_own_row_is_ftvc; prop_join_laws ]
