(* Tests of the storage substrate: volatile/stable message log and the
   checkpoint store. *)

module Message_log = Optimist_storage.Message_log
module Checkpoint_store = Optimist_storage.Checkpoint_store

(* --- Message_log --- *)

let test_append_flush_crash () =
  let log = Message_log.create () in
  Message_log.append log "a";
  Message_log.append log "b";
  Alcotest.(check int) "volatile only" 0 (Message_log.stable_length log);
  Alcotest.(check int) "total" 2 (Message_log.total_length log);
  Message_log.flush log;
  Message_log.append log "c";
  Alcotest.(check int) "stable after flush" 2 (Message_log.stable_length log);
  Message_log.crash log;
  Alcotest.(check int) "crash wipes volatile" 2 (Message_log.total_length log);
  Alcotest.(check string) "stable survives" "b" (Message_log.get log 1)

let test_get_spans_stable_and_volatile () =
  let log = Message_log.create () in
  Message_log.append log "a";
  Message_log.flush log;
  Message_log.append log "b";
  Message_log.append log "c";
  Alcotest.(check string) "stable" "a" (Message_log.get log 0);
  Alcotest.(check string) "volatile 1" "b" (Message_log.get log 1);
  Alcotest.(check string) "volatile 2" "c" (Message_log.get log 2)

let test_get_out_of_range () =
  let log = Message_log.create () in
  Message_log.append log "a";
  let raised = try ignore (Message_log.get log 1); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "oob raises" true raised

let test_truncate_stable () =
  let log = Message_log.create () in
  List.iter (Message_log.append log) [ "a"; "b"; "c"; "d" ];
  Message_log.flush log;
  Message_log.truncate log 2;
  Alcotest.(check int) "stable truncated" 2 (Message_log.stable_length log);
  Alcotest.(check int) "total truncated" 2 (Message_log.total_length log)

let test_truncate_volatile () =
  let log = Message_log.create () in
  Message_log.append log "a";
  Message_log.flush log;
  List.iter (Message_log.append log) [ "b"; "c"; "d" ];
  Message_log.truncate log 2;
  Alcotest.(check int) "total" 2 (Message_log.total_length log);
  Alcotest.(check string) "kept volatile prefix" "b" (Message_log.get log 1);
  Message_log.flush log;
  Alcotest.(check int) "flush after truncate" 2 (Message_log.stable_length log)

let test_iter_range () =
  let log = Message_log.create () in
  List.iter (Message_log.append log) [ "a"; "b"; "c"; "d" ];
  let acc = ref [] in
  Message_log.iter_range log ~from:1 ~until:3 (fun e -> acc := e :: !acc);
  Alcotest.(check (list string)) "range" [ "b"; "c" ] (List.rev !acc)

let test_gc_prefix () =
  let log = Message_log.create () in
  List.iter (Message_log.append log) [ "a"; "b"; "c" ];
  Message_log.flush log;
  Message_log.gc_prefix log 2;
  Alcotest.(check int) "floor" 2 (Message_log.gc_floor log);
  Alcotest.(check string) "still readable" "c" (Message_log.get log 2);
  let raised = try ignore (Message_log.get log 1); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "reclaimed raises" true raised

let test_flush_counters () =
  let log = Message_log.create () in
  Message_log.append log "a";
  Message_log.append log "b";
  Message_log.flush log;
  Message_log.append log "c";
  Message_log.crash log;
  let get = Optimist_util.Stats.Counters.get (Message_log.counters log) in
  Alcotest.(check int) "appends" 3 (get "appends");
  Alcotest.(check int) "flushed entries" 2 (get "flushed_entries");
  Alcotest.(check int) "lost entries" 1 (get "lost_entries")

(* --- Checkpoint_store --- *)

let test_checkpoint_latest () =
  let s = Checkpoint_store.create () in
  Checkpoint_store.record s ~position:0 "cp0";
  Checkpoint_store.record s ~position:5 "cp5";
  (match Checkpoint_store.latest s with
  | Some ("cp5", 5) -> ()
  | _ -> Alcotest.fail "latest should be cp5");
  Alcotest.(check (list int)) "positions" [ 0; 5 ] (Checkpoint_store.positions s)

let test_checkpoint_monotonic_positions () =
  let s = Checkpoint_store.create () in
  Checkpoint_store.record s ~position:5 "cp5";
  let raised =
    try Checkpoint_store.record s ~position:3 "cp3"; false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "decreasing rejected" true raised

let test_latest_satisfying () =
  let s = Checkpoint_store.create () in
  Checkpoint_store.record s ~position:0 1;
  Checkpoint_store.record s ~position:3 2;
  Checkpoint_store.record s ~position:7 3;
  (match Checkpoint_store.latest_satisfying s (fun v _ -> v <= 2) with
  | Some (2, 3) -> ()
  | _ -> Alcotest.fail "should pick the newest satisfying checkpoint");
  Alcotest.(check bool) "none satisfying" true
    (Checkpoint_store.latest_satisfying s (fun v _ -> v > 10) = None)

let test_discard_after () =
  let s = Checkpoint_store.create () in
  Checkpoint_store.record s ~position:0 "a";
  Checkpoint_store.record s ~position:4 "b";
  Checkpoint_store.record s ~position:9 "c";
  Checkpoint_store.discard_after s ~position:4;
  Alcotest.(check (list int)) "positions" [ 0; 4 ] (Checkpoint_store.positions s)

let test_gc_before () =
  let s = Checkpoint_store.create () in
  Checkpoint_store.record s ~position:0 "a";
  Checkpoint_store.record s ~position:4 "b";
  Checkpoint_store.record s ~position:9 "c";
  let reclaimed = Checkpoint_store.gc_before s ~position:8 in
  (* The newest checkpoint at or below 8 (position 4) must be kept as the
     rollback anchor; only position 0 is reclaimable. *)
  Alcotest.(check int) "one reclaimed" 1 reclaimed;
  Alcotest.(check (list int)) "anchor kept" [ 4; 9 ] (Checkpoint_store.positions s)

let test_gc_before_nothing_old () =
  let s = Checkpoint_store.create () in
  Checkpoint_store.record s ~position:5 "a";
  let reclaimed = Checkpoint_store.gc_before s ~position:2 in
  Alcotest.(check int) "nothing reclaimed" 0 reclaimed;
  Alcotest.(check int) "count" 1 (Checkpoint_store.count s)

let suite =
  [
    Alcotest.test_case "append/flush/crash" `Quick test_append_flush_crash;
    Alcotest.test_case "get spans stable+volatile" `Quick
      test_get_spans_stable_and_volatile;
    Alcotest.test_case "get out of range" `Quick test_get_out_of_range;
    Alcotest.test_case "truncate stable" `Quick test_truncate_stable;
    Alcotest.test_case "truncate volatile" `Quick test_truncate_volatile;
    Alcotest.test_case "iter range" `Quick test_iter_range;
    Alcotest.test_case "gc prefix" `Quick test_gc_prefix;
    Alcotest.test_case "log counters" `Quick test_flush_counters;
    Alcotest.test_case "checkpoint latest" `Quick test_checkpoint_latest;
    Alcotest.test_case "checkpoint monotonic positions" `Quick
      test_checkpoint_monotonic_positions;
    Alcotest.test_case "latest satisfying" `Quick test_latest_satisfying;
    Alcotest.test_case "discard after" `Quick test_discard_after;
    Alcotest.test_case "gc before keeps anchor" `Quick test_gc_before;
    Alcotest.test_case "gc with nothing old" `Quick test_gc_before_nothing_old;
  ]
