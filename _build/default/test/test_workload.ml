(* Tests of the workload generators: routing validity, determinism (the
   property replay correctness rests on), and schedule generation. *)

module Traffic = Optimist_workload.Traffic
module Schedule = Optimist_workload.Schedule
module Types = Optimist_core.Types

(* --- applications are deterministic: same state+message, same result --- *)

let prop_app_deterministic =
  QCheck.Test.make ~name:"handler is a pure function" ~count:300
    QCheck.(quad (int_bound 3) (int_bound 5) small_int (int_bound 5))
    (fun (pattern_ix, me, key, hops) ->
      let n = 6 in
      let pattern =
        [| Traffic.Uniform; Traffic.Ring; Traffic.Pipeline; Traffic.Client_server 2 |].(pattern_ix)
      in
      let app = Traffic.app ~n pattern in
      let state = { Traffic.count = key mod 7; acc = key * 3 } in
      let m = Traffic.fresh ~key ~hops in
      let r1 = app.Types.on_message ~me ~src:0 state m in
      let r2 = app.Types.on_message ~me ~src:0 state m in
      r1 = r2)

(* --- routing stays in range and respects the pattern --- *)

let prop_routing_valid =
  QCheck.Test.make ~name:"sends target valid processes" ~count:500
    QCheck.(triple (int_bound 3) (int_bound 5) small_int)
    (fun (pattern_ix, me, key) ->
      let n = 6 in
      let pattern =
        [| Traffic.Uniform; Traffic.Ring; Traffic.Pipeline; Traffic.Client_server 2 |].(pattern_ix)
      in
      let app = Traffic.app ~n pattern in
      let state = { Traffic.count = 0; acc = 0 } in
      let _, sends =
        app.Types.on_message ~me ~src:1 state (Traffic.fresh ~key ~hops:3)
      in
      List.for_all
        (fun (dst, _) ->
          dst >= 0 && dst < n
          &&
          match pattern with
          | Traffic.Ring -> dst = (me + 1) mod n
          | Traffic.Pipeline -> dst = me + 1
          | Traffic.Uniform -> dst <> me
          | Traffic.Client_server k -> if me < k then dst = 1 else dst < k)
        sends)

let test_hops_exhaust () =
  let app = Traffic.app ~n:3 Traffic.Ring in
  let state = { Traffic.count = 0; acc = 0 } in
  let _, sends =
    app.Types.on_message ~me:0 ~src:Types.env_src state (Traffic.fresh ~key:1 ~hops:0)
  in
  Alcotest.(check int) "no forward at zero hops" 0 (List.length sends)

let test_pipeline_terminates () =
  let n = 3 in
  let app = Traffic.app ~n Traffic.Pipeline in
  let state = { Traffic.count = 0; acc = 0 } in
  let _, sends =
    app.Types.on_message ~me:(n - 1) ~src:0 state (Traffic.fresh ~key:1 ~hops:5)
  in
  Alcotest.(check int) "last stage stops" 0 (List.length sends)

let test_digest_order_sensitive () =
  let app = Traffic.app ~n:3 Traffic.Uniform in
  let s0 = { Traffic.count = 0; acc = 0 } in
  let m1 = Traffic.fresh ~key:1 ~hops:0 and m2 = Traffic.fresh ~key:2 ~hops:0 in
  let apply s m = fst (app.Types.on_message ~me:0 ~src:1 s m) in
  let a = apply (apply s0 m1) m2 and b = apply (apply s0 m2) m1 in
  Alcotest.(check bool) "digest distinguishes orders" true
    (Traffic.digest a <> Traffic.digest b)

(* --- schedules --- *)

let test_poisson_deterministic () =
  let gen () =
    Schedule.poisson_injections ~seed:5L ~n:4 ~rate:0.1 ~duration:200.0 ~hops:3
  in
  Alcotest.(check bool) "same seed, same schedule" true (gen () = gen ())

let test_poisson_rate () =
  let inj =
    Schedule.poisson_injections ~seed:5L ~n:4 ~rate:0.1 ~duration:10_000.0
      ~hops:3
  in
  (* Expect ~ n * rate * duration = 4000 arrivals; allow 10%. *)
  let count = List.length inj in
  if count < 3600 || count > 4400 then
    Alcotest.failf "poisson count off: %d" count;
  Alcotest.(check bool) "sorted by time" true
    (let rec sorted = function
       | a :: (b :: _ as rest) -> a.Schedule.at <= b.Schedule.at && sorted rest
       | _ -> true
     in
     sorted inj)

let test_poisson_zero_rate () =
  Alcotest.(check int) "no arrivals" 0
    (List.length
       (Schedule.poisson_injections ~seed:5L ~n:4 ~rate:0.0 ~duration:100.0
          ~hops:3))

let test_random_crashes_in_window () =
  let faults =
    Schedule.random_crashes ~seed:9L ~n:5 ~failures:20 ~window:(50.0, 150.0)
  in
  Alcotest.(check int) "count" 20 (List.length faults);
  List.iter
    (fun f ->
      match f with
      | Schedule.Crash { at; pid } ->
          if at < 50.0 || at > 150.0 then Alcotest.failf "time out of window";
          if pid < 0 || pid >= 5 then Alcotest.failf "pid out of range"
      | _ -> Alcotest.fail "expected crash")
    faults

let test_simultaneous () =
  match Schedule.simultaneous_crashes ~at:42.0 ~pids:[ 1; 3 ] with
  | [ Schedule.Crash { at = 42.0; pid = 1 }; Schedule.Crash { at = 42.0; pid = 3 } ]
    ->
      ()
  | _ -> Alcotest.fail "unexpected shape"

let test_apply_dispatch () =
  let schedule =
    Schedule.make
      ~injections:[ { Schedule.at = 1.0; pid = 2; key = 9; hops = 3 } ]
      ~faults:
        [
          Schedule.Crash { at = 2.0; pid = 1 };
          Schedule.Partition { at = 3.0; groups = [ [ 0 ] ] };
          Schedule.Heal { at = 4.0 };
        ]
  in
  let log = ref [] in
  Schedule.apply schedule
    ~inject:(fun ~at ~pid m ->
      log := Printf.sprintf "inject %.0f %d %d" at pid m.Traffic.key :: !log)
    ~crash:(fun ~at ~pid -> log := Printf.sprintf "crash %.0f %d" at pid :: !log)
    ~partition:(fun ~at ~groups:_ -> log := Printf.sprintf "part %.0f" at :: !log)
    ~heal:(fun ~at -> log := Printf.sprintf "heal %.0f" at :: !log);
  Alcotest.(check (list string)) "all dispatched"
    [ "inject 1 2 9"; "crash 2 1"; "part 3"; "heal 4" ]
    (List.rev !log)

let suite =
  [
    Alcotest.test_case "hops exhaust" `Quick test_hops_exhaust;
    Alcotest.test_case "pipeline terminates" `Quick test_pipeline_terminates;
    Alcotest.test_case "digest is order sensitive" `Quick
      test_digest_order_sensitive;
    Alcotest.test_case "poisson deterministic" `Quick test_poisson_deterministic;
    Alcotest.test_case "poisson rate" `Slow test_poisson_rate;
    Alcotest.test_case "poisson zero rate" `Quick test_poisson_zero_rate;
    Alcotest.test_case "random crashes in window" `Quick
      test_random_crashes_in_window;
    Alcotest.test_case "simultaneous crashes" `Quick test_simultaneous;
    Alcotest.test_case "schedule dispatch" `Quick test_apply_dispatch;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_app_deterministic; prop_routing_valid ]
