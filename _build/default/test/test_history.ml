(* Tests of the history mechanism (paper Section 5, Figure 3): record
   maintenance, the Lemma 3 orphan test and the Lemma 4 obsolete test. *)

module History = Optimist_history.History
module Ftvc = Optimist_clock.Ftvc

let entry ver ts = { Ftvc.ver; ts }

let test_init () =
  (* Figure 3: (mes,0,0) for every process, (mes,0,1) for the owner. *)
  let h = History.create ~n:3 ~me:1 in
  (match History.find h ~pid:0 ~ver:0 with
  | Some { History.kind = History.Message; ts = 0; _ } -> ()
  | _ -> Alcotest.fail "peer init record");
  (match History.find h ~pid:1 ~ver:0 with
  | Some { History.kind = History.Message; ts = 1; _ } -> ()
  | _ -> Alcotest.fail "own init record");
  Alcotest.(check int) "n records" 3 (History.record_count h)

let test_message_records_keep_max () =
  let h = History.create ~n:2 ~me:0 in
  History.note_message_entry h ~pid:1 (entry 0 5);
  History.note_message_entry h ~pid:1 (entry 0 3);
  (match History.find h ~pid:1 ~ver:0 with
  | Some { History.ts = 5; kind = History.Message; _ } -> ()
  | _ -> Alcotest.fail "max kept");
  History.note_message_entry h ~pid:1 (entry 0 9);
  (match History.find h ~pid:1 ~ver:0 with
  | Some { History.ts = 9; _ } -> ()
  | _ -> Alcotest.fail "raised to 9")

let test_one_record_per_version () =
  let h = History.create ~n:2 ~me:0 in
  History.note_message_entry h ~pid:1 (entry 1 2);
  History.note_message_entry h ~pid:1 (entry 1 7);
  History.note_message_entry h ~pid:1 (entry 2 1);
  Alcotest.(check int) "records for P1"
    3 (* version 0 init + versions 1 and 2 *)
    (List.length (History.records h ~pid:1))

let test_token_is_authoritative () =
  (* The prose rule of Section 5: once a token record exists for a version,
     message records never replace it. *)
  let h = History.create ~n:2 ~me:0 in
  History.note_token h ~pid:1 ~ver:0 ~ts:4;
  History.note_message_entry h ~pid:1 (entry 0 3);
  (match History.find h ~pid:1 ~ver:0 with
  | Some { History.kind = History.Token; ts = 4; _ } -> ()
  | _ -> Alcotest.fail "token must survive message updates");
  Alcotest.(check bool) "has_token" true (History.has_token h ~pid:1 ~ver:0)

let test_token_replaces_message () =
  let h = History.create ~n:2 ~me:0 in
  History.note_message_entry h ~pid:1 (entry 0 9);
  History.note_token h ~pid:1 ~ver:0 ~ts:4;
  (match History.find h ~pid:1 ~ver:0 with
  | Some { History.kind = History.Token; ts = 4; _ } -> ()
  | _ -> Alcotest.fail "token replaces message record")

(* --- Lemma 4: obsolete-message test --- *)

let test_obsolete_detection () =
  let h = History.create ~n:3 ~me:0 in
  History.note_token h ~pid:1 ~ver:0 ~ts:3;
  (* Message depending on P1's state (0,4): past the restoration point. *)
  Alcotest.(check bool) "obsolete" true
    (History.message_obsolete h ~clock:[| entry 0 0; entry 0 4; entry 0 0 |]);
  (* (0,3) is the restored state itself: still valid. *)
  Alcotest.(check bool) "boundary survives" false
    (History.message_obsolete h ~clock:[| entry 0 0; entry 0 3; entry 0 0 |]);
  (* A later incarnation is not matched by the version-0 token. *)
  Alcotest.(check bool) "new incarnation ok" false
    (History.message_obsolete h ~clock:[| entry 0 0; entry 1 1; entry 0 0 |])

let test_obsolete_needs_token () =
  let h = History.create ~n:2 ~me:0 in
  History.note_message_entry h ~pid:1 (entry 0 2);
  (* No token: no message can be declared obsolete. *)
  Alcotest.(check bool) "no token, not obsolete" false
    (History.message_obsolete h ~clock:[| entry 0 0; entry 0 99 |])

(* --- Lemma 3: orphan test --- *)

let test_orphan_detection () =
  let h = History.create ~n:2 ~me:0 in
  History.note_message_entry h ~pid:1 (entry 0 5);
  (* Token (0,3): we know P1's (0,5), which is lost. *)
  Alcotest.(check bool) "orphan" true
    (History.orphaned_by_token h ~pid:1 ~ver:0 ~ts:3);
  (* Token (0,5): our knowledge is exactly the restored state. *)
  Alcotest.(check bool) "boundary not orphan" false
    (History.orphaned_by_token h ~pid:1 ~ver:0 ~ts:5);
  Alcotest.(check bool) "survives_token is the negation" true
    (History.survives_token h ~pid:1 ~ver:0 ~ts:5)

let test_orphan_needs_message_record () =
  let h = History.create ~n:2 ~me:0 in
  History.note_token h ~pid:1 ~ver:1 ~ts:9;
  (* A token record for the version does not make us orphan. *)
  Alcotest.(check bool) "token record is not a dependency" false
    (History.orphaned_by_token h ~pid:1 ~ver:1 ~ts:2)

(* --- deliverability (Section 6.1) --- *)

let test_tokens_complete_below () =
  let h = History.create ~n:2 ~me:0 in
  Alcotest.(check bool) "version 0 needs nothing" true
    (History.tokens_complete_below h ~pid:1 ~ver:0);
  Alcotest.(check bool) "version 2 needs tokens 0,1" false
    (History.tokens_complete_below h ~pid:1 ~ver:2);
  History.note_token h ~pid:1 ~ver:0 ~ts:3;
  Alcotest.(check bool) "still missing token 1" false
    (History.tokens_complete_below h ~pid:1 ~ver:2);
  History.note_token h ~pid:1 ~ver:1 ~ts:7;
  Alcotest.(check bool) "complete" true
    (History.tokens_complete_below h ~pid:1 ~ver:2)

let test_copy_isolated () =
  let h = History.create ~n:2 ~me:0 in
  History.note_message_entry h ~pid:1 (entry 0 5);
  let snapshot = History.copy h in
  History.note_message_entry h ~pid:1 (entry 0 9);
  (match History.find snapshot ~pid:1 ~ver:0 with
  | Some { History.ts = 5; _ } -> ()
  | _ -> Alcotest.fail "copy must not alias")

let test_note_clock_all_components () =
  let h = History.create ~n:3 ~me:0 in
  History.note_clock h ~sender_clock:[| entry 0 4; entry 1 2; entry 0 7 |];
  (match History.find h ~pid:1 ~ver:1 with
  | Some { History.ts = 2; _ } -> ()
  | _ -> Alcotest.fail "P1 component noted");
  (match History.find h ~pid:2 ~ver:0 with
  | Some { History.ts = 7; _ } -> ()
  | _ -> Alcotest.fail "P2 component noted")

let test_max_known_version () =
  let h = History.create ~n:2 ~me:0 in
  Alcotest.(check int) "initial" 0 (History.max_known_version h ~pid:1);
  History.note_message_entry h ~pid:1 (entry 3 1);
  Alcotest.(check int) "after message" 3 (History.max_known_version h ~pid:1)

(* --- property: record count is bounded by distinct versions (the
   Section 6.9(3) O(n·f) memory claim) --- *)

let prop_record_count_bounded =
  QCheck.Test.make ~name:"record count bounded by distinct (pid,ver)" ~count:300
    QCheck.(list_of_size Gen.(0 -- 60) (triple (int_bound 2) (int_bound 3) (int_bound 30)))
    (fun ops ->
      let n = 4 in
      let h = History.create ~n ~me:0 in
      let seen = Hashtbl.create 16 in
      for pid = 0 to n - 1 do
        Hashtbl.replace seen (pid, 0) ()
      done;
      List.iter
        (fun (pid, ver, ts) ->
          let pid = pid + 1 in
          Hashtbl.replace seen (pid, ver) ();
          if ts mod 2 = 0 then History.note_message_entry h ~pid (entry ver ts)
          else History.note_token h ~pid ~ver ~ts)
        ops;
      History.record_count h <= Hashtbl.length seen)

(* --- property: message timestamps never decrease a record, and a token
   freezes it --- *)

let prop_token_freezes =
  QCheck.Test.make ~name:"token record survives any later message" ~count:300
    QCheck.(pair (int_bound 50) (list_of_size Gen.(0 -- 30) (int_bound 100)))
    (fun (token_ts, msg_ts) ->
      let h = History.create ~n:2 ~me:0 in
      History.note_token h ~pid:1 ~ver:2 ~ts:token_ts;
      List.iter (fun ts -> History.note_message_entry h ~pid:1 (entry 2 ts)) msg_ts;
      match History.find h ~pid:1 ~ver:2 with
      | Some { History.kind = History.Token; ts; _ } -> ts = token_ts
      | _ -> false)

let suite =
  [
    Alcotest.test_case "figure 3 initialisation" `Quick test_init;
    Alcotest.test_case "message records keep max" `Quick
      test_message_records_keep_max;
    Alcotest.test_case "one record per version" `Quick test_one_record_per_version;
    Alcotest.test_case "token is authoritative" `Quick test_token_is_authoritative;
    Alcotest.test_case "token replaces message" `Quick test_token_replaces_message;
    Alcotest.test_case "lemma 4: obsolete detection" `Quick test_obsolete_detection;
    Alcotest.test_case "obsolete needs a token" `Quick test_obsolete_needs_token;
    Alcotest.test_case "lemma 3: orphan detection" `Quick test_orphan_detection;
    Alcotest.test_case "orphan needs a message record" `Quick
      test_orphan_needs_message_record;
    Alcotest.test_case "deliverability condition" `Quick test_tokens_complete_below;
    Alcotest.test_case "copies are isolated" `Quick test_copy_isolated;
    Alcotest.test_case "note_clock covers all components" `Quick
      test_note_clock_all_components;
    Alcotest.test_case "max known version" `Quick test_max_known_version;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_record_count_bounded; prop_token_freezes ]
