test/test_oracle.ml: Alcotest Array List Optimist_clock Optimist_core Optimist_oracle
