test/test_ftvc.ml: Alcotest Array Format Gen Int64 List Optimist_clock Optimist_util QCheck QCheck_alcotest
