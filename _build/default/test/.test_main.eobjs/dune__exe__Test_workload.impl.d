test/test_workload.ml: Alcotest Array List Optimist_core Optimist_workload Printf QCheck QCheck_alcotest
