test/test_system.ml: Alcotest Array List Optimist_core Optimist_oracle Optimist_sim Optimist_workload String
