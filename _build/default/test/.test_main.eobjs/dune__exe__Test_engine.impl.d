test/test_engine.ml: Alcotest List Optimist_sim
