test/test_vclock.ml: Alcotest Format List Optimist_clock QCheck QCheck_alcotest
