test/test_storage.ml: Alcotest List Optimist_storage Optimist_util
