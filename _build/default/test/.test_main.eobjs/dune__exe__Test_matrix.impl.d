test/test_matrix.ml: Alcotest Array Int64 List Optimist_clock Optimist_util QCheck QCheck_alcotest
