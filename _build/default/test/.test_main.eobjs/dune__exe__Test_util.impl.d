test/test_util.ml: Alcotest Array Gen Int64 List Optimist_util QCheck QCheck_alcotest String
