test/test_history.ml: Alcotest Gen Hashtbl List Optimist_clock Optimist_history QCheck QCheck_alcotest
