test/test_protocol.ml: Alcotest Array Fun Int64 List Optimist_core Optimist_net Optimist_oracle Optimist_sim Optimist_util Optimist_workload String
