test/test_output_commit.ml: Alcotest List Optimist_core Optimist_net
