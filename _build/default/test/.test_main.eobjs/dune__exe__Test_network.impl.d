test/test_network.ml: Alcotest List Optimist_net Optimist_sim Optimist_util
