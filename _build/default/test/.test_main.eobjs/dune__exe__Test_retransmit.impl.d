test/test_retransmit.ml: Alcotest Array List Optimist_core Optimist_net Optimist_oracle String
