test/test_gc.ml: Alcotest Array List Optimist_core Optimist_net Optimist_oracle Optimist_sim Optimist_workload String
