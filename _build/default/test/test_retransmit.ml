(* Tests of the Section 6.5 remark-1 extension: send-history retransmission
   of messages whose delivery a crash wiped out.

   The application accumulates a commutative sum of keys, so replicas can
   be compared regardless of delivery order. The scenario plants a message
   chain P0 -> P1 -> P2 where P1's delivery is still unflushed when P1
   crashes: without retransmission the key is lost at P1 and P2 (P2's
   delivery is an orphan and rolls back); with it, P0 resends and the whole
   chain completes. *)

module Network = Optimist_net.Network
module Types = Optimist_core.Types
module Process = Optimist_core.Process
module System = Optimist_core.System
module Oracle = Optimist_oracle.Oracle

type msg = { key : int; hops : int }

let ring_app ~n : (int, msg) Types.app =
  {
    Types.init = (fun _ -> 0);
    on_message =
      (fun ~me ~src:_ state m ->
        let state' = state + m.key in
        let sends =
          if m.hops > 0 then [ ((me + 1) mod n, { m with hops = m.hops - 1 }) ]
          else []
        in
        (state', sends));
  }

let run ~retransmit =
  let n = 3 in
  let oracle = Oracle.create ~n in
  let config =
    {
      Types.default_config with
      Types.retransmit_lost = retransmit;
      (* Keep the delivery volatile at crash time. *)
      flush_interval = 10_000.0;
      checkpoint_interval = 10_000.0;
      restart_delay = 10.0;
    }
  in
  let net_config =
    { (Network.default_config ~n) with Network.latency = Network.Constant 5.0 }
  in
  let sys =
    System.create ~seed:3L ~net_config ~config ~tracer:(Oracle.tracer oracle) ~n
      ~app:(ring_app ~n) ()
  in
  (* t=10: inject key 100 at P0, chain of 2 hops: P0 (t=10), P1 (t=15),
     P2 (t=20). t=17: P1 crashes with its delivery unflushed. *)
  System.inject_at sys ~at:10.0 ~pid:0 { key = 100; hops = 2 };
  System.fail_at sys ~at:17.0 ~pid:1;
  System.run sys;
  (sys, oracle)

let sums sys =
  Array.to_list (Array.map Process.state (System.processes sys))

let test_without_retransmission () =
  let sys, oracle = run ~retransmit:false in
  (* P0 keeps the key; P1 lost the delivery; P2's delivery was rolled back
     as an orphan and the message is gone forever. *)
  Alcotest.(check (list int)) "key lost downstream" [ 100; 0; 0 ] (sums sys);
  Alcotest.(check string) "still consistent" ""
    (String.concat ";"
       (List.map (fun v -> v.Oracle.check) (Oracle.check oracle)))

let test_with_retransmission () =
  let sys, oracle = run ~retransmit:true in
  Alcotest.(check (list int)) "chain completed everywhere" [ 100; 100; 100 ]
    (sums sys);
  Alcotest.(check bool) "a resend happened" true
    (System.total sys "retransmitted" > 0);
  Alcotest.(check string) "consistent" ""
    (String.concat ";"
       (List.map (fun v -> v.Oracle.check) (Oracle.check oracle)))

(* Duplicate suppression: the resend must not double-apply when the
   original delivery survived (flushed before the crash). *)
let test_no_double_apply () =
  let n = 3 in
  let config =
    {
      Types.default_config with
      Types.retransmit_lost = true;
      flush_interval = 1.0;
      (* flushed promptly: nothing is lost *)
      checkpoint_interval = 10_000.0;
      restart_delay = 10.0;
    }
  in
  let net_config =
    { (Network.default_config ~n) with Network.latency = Network.Constant 5.0 }
  in
  let sys =
    System.create ~seed:3L ~net_config ~config ~n ~app:(ring_app ~n) ()
  in
  System.inject_at sys ~at:10.0 ~pid:0 { key = 7; hops = 2 };
  (* Crash long after the flush: the delivery survives, yet P0 may still
     resend (it cannot know); the uid filter must drop the duplicate. *)
  System.fail_at sys ~at:40.0 ~pid:1;
  System.run sys;
  Alcotest.(check (list int)) "no double count" [ 7; 7; 7 ] (sums sys)

(* Network-level duplication is absorbed by the same uid filter. *)
let test_network_duplicates_filtered () =
  let n = 3 in
  let net_config =
    {
      (Network.default_config ~n) with
      Network.duplicate_probability = 1.0;
      latency = Network.Constant 5.0;
    }
  in
  let sys = System.create ~seed:5L ~net_config ~n ~app:(ring_app ~n) () in
  System.inject_at sys ~at:10.0 ~pid:0 { key = 3; hops = 2 };
  System.run sys;
  Alcotest.(check (list int)) "each applied once" [ 3; 3; 3 ] (sums sys);
  Alcotest.(check bool) "duplicates were dropped" true
    (System.total sys "duplicates_dropped" > 0)

let suite =
  [
    Alcotest.test_case "lost message without retransmission" `Quick
      test_without_retransmission;
    Alcotest.test_case "lost message recovered with retransmission" `Quick
      test_with_retransmission;
    Alcotest.test_case "resend does not double-apply" `Quick test_no_double_apply;
    Alcotest.test_case "network duplicates filtered" `Quick
      test_network_duplicates_filtered;
  ]
