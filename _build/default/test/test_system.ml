(* Tests of the System convenience layer and the timeline renderer. *)

module Engine = Optimist_sim.Engine
module Types = Optimist_core.Types
module Process = Optimist_core.Process
module System = Optimist_core.System
module Oracle = Optimist_oracle.Oracle
module Timeline = Optimist_oracle.Timeline
module Traffic = Optimist_workload.Traffic

let make ?tracer ?(n = 3) () =
  System.create ~seed:33L ?tracer ~n ~app:(Traffic.app ~n Traffic.Ring) ()

let test_accessors () =
  let sys = make () in
  Alcotest.(check int) "n" 3 (System.n sys);
  Alcotest.(check int) "process ids" 1 (Process.id (System.process sys 1));
  Alcotest.(check int) "array length" 3 (Array.length (System.processes sys));
  Alcotest.(check bool) "initially alive" true (System.all_alive sys)

let test_down_during_restart_delay () =
  let sys = make () in
  System.fail_at sys ~at:10.0 ~pid:1;
  System.run ~until:15.0 sys;
  Alcotest.(check bool) "down mid-recovery" false (System.all_alive sys);
  Alcotest.(check bool) "process reports dead" false
    (Process.alive (System.process sys 1));
  System.run sys;
  Alcotest.(check bool) "back up" true (System.all_alive sys)

let test_counter_totals () =
  let sys = make () in
  System.inject_at sys ~at:5.0 ~pid:0 (Traffic.fresh ~key:1 ~hops:4);
  System.run sys;
  (* 4 forwards delivered + the injection counted separately. *)
  Alcotest.(check int) "delivered" 4 (System.total sys "delivered");
  Alcotest.(check int) "injected" 1 (System.total sys "injected");
  Alcotest.(check int) "sent" 4 (System.total sys "sent");
  let dumps = System.counters sys in
  Alcotest.(check int) "one dump per process" 3 (List.length dumps)

let test_virtual_time_advances () =
  let sys = make () in
  System.inject_at sys ~at:50.0 ~pid:0 (Traffic.fresh ~key:1 ~hops:0);
  System.run sys;
  Alcotest.(check bool) "time reached the event" true
    (Engine.now (System.engine sys) >= 50.0)

let test_settle_outputs_noop () =
  let sys = make () in
  System.inject_at sys ~at:5.0 ~pid:0 (Traffic.fresh ~key:1 ~hops:2);
  System.run sys;
  (* Without commit_outputs there is nothing pending and settling is a
     harmless no-op. *)
  System.settle_outputs sys;
  Alcotest.(check int) "no pending outputs" 0 (System.pending_outputs sys)

let test_timeline_renders () =
  let oracle = Oracle.create ~n:3 in
  let sys = make ~tracer:(Oracle.tracer oracle) () in
  System.inject_at sys ~at:5.0 ~pid:0 (Traffic.fresh ~key:1 ~hops:3);
  System.fail_at sys ~at:20.0 ~pid:1;
  System.run sys;
  let s = Timeline.render oracle in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 1 = "#");
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec loop i = i + nl <= sl && (String.sub s i nl = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "shows deliveries" true (contains "recv<-");
  Alcotest.(check bool) "shows the restart" true (contains "RESTART");
  Alcotest.(check bool) "marks lost states or none were lost" true
    (contains "+lost" || System.total sys "log_truncated" = 0)

let test_timeline_elision () =
  let oracle = Oracle.create ~n:2 in
  let sys =
    System.create ~seed:3L ~tracer:(Oracle.tracer oracle) ~n:2
      ~app:(Traffic.app ~n:2 Traffic.Ring) ()
  in
  for k = 1 to 100 do
    System.inject_at sys ~at:(float_of_int k) ~pid:0 (Traffic.fresh ~key:k ~hops:1)
  done;
  System.run sys;
  let s = Timeline.render ~max_rows:10 oracle in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "bounded output" true (List.length lines <= 13);
  Alcotest.(check bool) "elision marker" true
    (List.exists
       (fun l -> String.length l > 5 && String.sub l 0 4 = "(...")
       lines)

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "down during restart delay" `Quick
      test_down_during_restart_delay;
    Alcotest.test_case "counter totals" `Quick test_counter_totals;
    Alcotest.test_case "virtual time advances" `Quick test_virtual_time_advances;
    Alcotest.test_case "settle outputs is safe when disabled" `Quick
      test_settle_outputs_noop;
    Alcotest.test_case "timeline renders" `Quick test_timeline_renders;
    Alcotest.test_case "timeline elision" `Quick test_timeline_elision;
  ]
