(* Integration tests of the full Damani-Garg protocol (paper Figure 4),
   validated against the oracle's ground truth rather than the protocol's
   own bookkeeping. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Types = Optimist_core.Types
module Process = Optimist_core.Process
module System = Optimist_core.System
module Oracle = Optimist_oracle.Oracle
module Traffic = Optimist_workload.Traffic
module Schedule = Optimist_workload.Schedule
module Counters = Optimist_util.Stats.Counters

let pp_violations vs =
  String.concat "\n"
    (List.map (fun v -> v.Oracle.check ^ ": " ^ v.Oracle.detail) vs)

(* Build a system over the given workload schedule, run to quiescence, and
   return (system, oracle). *)
let run_scenario ?(n = 4) ?(seed = 42L) ?(pattern = Traffic.Uniform) ?net_config
    ?config ~schedule () =
  let oracle = Oracle.create ~n in
  let app = Traffic.app ~n pattern in
  let sys =
    System.create ~seed ?net_config ?config ~tracer:(Oracle.tracer oracle) ~n
      ~app ()
  in
  Schedule.apply schedule
    ~inject:(fun ~at ~pid msg -> System.inject_at sys ~at ~pid msg)
    ~crash:(fun ~at ~pid -> System.fail_at sys ~at ~pid)
    ~partition:(fun ~at ~groups -> System.partition_at sys ~at ~groups)
    ~heal:(fun ~at -> System.heal_at sys ~at);
  System.run sys;
  (sys, oracle)

let assert_consistent oracle =
  let vs = Oracle.check oracle in
  Alcotest.(check string) "oracle violations" "" (pp_violations vs)

let assert_theorem1 ?(sample = 2000) ?(seed = 7L) oracle =
  let vs = Oracle.check_theorem1 oracle ~sample ~seed in
  Alcotest.(check string) "theorem 1 violations" "" (pp_violations vs)

let default_schedule ?(seed = 11L) ?(n = 4) ?(rate = 0.05) ?(duration = 500.)
    ?(hops = 6) ~faults () =
  Schedule.make
    ~injections:(Schedule.poisson_injections ~seed ~n ~rate ~duration ~hops)
    ~faults

(* --- failure-free sanity --- *)

let test_failure_free () =
  let schedule = default_schedule ~faults:[] () in
  let sys, oracle = run_scenario ~schedule () in
  Alcotest.(check bool) "all alive" true (System.all_alive sys);
  Alcotest.(check int) "no rollbacks" 0 (System.total sys "rollbacks");
  Alcotest.(check int) "no restarts" 0 (System.total sys "restarts");
  Alcotest.(check bool) "messages flowed" true (System.total sys "delivered" > 0);
  assert_consistent oracle;
  assert_theorem1 oracle

(* --- a single failure recovers and the computation stays consistent --- *)

let test_single_failure () =
  let faults = [ Schedule.Crash { at = 250.0; pid = 1 } ] in
  let schedule = default_schedule ~faults () in
  let sys, oracle = run_scenario ~schedule () in
  Alcotest.(check bool) "all alive" true (System.all_alive sys);
  Alcotest.(check int) "one restart" 1 (System.total sys "restarts");
  Alcotest.(check int) "P1 version bumped" 1
    (Process.version (System.process sys 1));
  assert_consistent oracle;
  assert_theorem1 oracle

(* --- concurrent failures (Section 6.8) --- *)

let test_concurrent_failures () =
  let faults = Schedule.simultaneous_crashes ~at:250.0 ~pids:[ 0; 2 ] in
  let schedule = default_schedule ~faults () in
  let sys, oracle = run_scenario ~schedule () in
  Alcotest.(check bool) "all alive" true (System.all_alive sys);
  Alcotest.(check int) "two restarts" 2 (System.total sys "restarts");
  assert_consistent oracle;
  assert_theorem1 oracle

(* --- repeated failures of the same process: versions grow --- *)

let test_repeated_failures_same_process () =
  let faults =
    [
      Schedule.Crash { at = 150.0; pid = 2 };
      Schedule.Crash { at = 300.0; pid = 2 };
      Schedule.Crash { at = 450.0; pid = 2 };
    ]
  in
  let schedule = default_schedule ~duration:600.0 ~faults () in
  let sys, oracle = run_scenario ~schedule () in
  Alcotest.(check int) "version 3" 3 (Process.version (System.process sys 2));
  assert_consistent oracle;
  assert_theorem1 oracle

(* --- network partition during recovery (Section 6.8) --- *)

let test_partition_tolerance () =
  let faults =
    [
      Schedule.Partition { at = 200.0; groups = [ [ 0; 1 ]; [ 2; 3 ] ] };
      Schedule.Crash { at = 220.0; pid = 0 };
      Schedule.Heal { at = 400.0 };
    ]
  in
  let schedule = default_schedule ~faults () in
  let sys, oracle = run_scenario ~schedule () in
  Alcotest.(check bool) "all alive" true (System.all_alive sys);
  (* The failed process restarted immediately despite the partition:
     asynchronous recovery needs no responses from the other side. *)
  Alcotest.(check int) "restart happened" 1 (System.total sys "restarts");
  assert_consistent oracle;
  assert_theorem1 oracle

(* --- randomized stress: many seeds, random crashes, oracle-checked --- *)

let stress_one ~seed ~n ~failures ~pattern ~ordering =
  let net_config =
    { (Network.default_config ~n) with Network.ordering }
  in
  (* Rotate the optional features through the stress matrix so the
     extensions face the same randomized schedules as the core. *)
  let variant = Int64.to_int seed mod 4 in
  let config =
    {
      Types.default_config with
      Types.retransmit_lost = variant land 1 = 1;
      commit_outputs = variant land 2 = 2;
    }
  in
  let schedule =
    Schedule.make
      ~injections:
        (Schedule.poisson_injections ~seed:(Int64.add seed 1000L) ~n ~rate:0.04
           ~duration:800.0 ~hops:8)
      ~faults:
        (Schedule.random_crashes ~seed:(Int64.add seed 2000L) ~n ~failures
           ~window:(100.0, 700.0))
  in
  let sys, oracle =
    run_scenario ~n ~seed ~pattern ~net_config ~config ~schedule ()
  in
  let vs = Oracle.check oracle in
  if vs <> [] then
    Alcotest.failf "seed %Ld: %s" seed (pp_violations vs);
  let vs = Oracle.check_theorem1 oracle ~sample:500 ~seed in
  if vs <> [] then
    Alcotest.failf "seed %Ld (theorem1): %s" seed (pp_violations vs);
  ignore sys

let test_stress_random () =
  let patterns = [| Traffic.Uniform; Traffic.Ring; Traffic.Client_server 2 |] in
  for i = 0 to 19 do
    let seed = Int64.of_int (1 + (37 * i)) in
    stress_one ~seed ~n:5 ~failures:(1 + (i mod 4))
      ~pattern:patterns.(i mod 3)
      ~ordering:(if i mod 2 = 0 then Network.Reorder else Network.Fifo)
  done

(* A wider campaign: more seeds, larger systems, and a partition epoch in
   the middle of every run. Marked slow; still runs in a few seconds. *)
let test_stress_campaign () =
  for i = 0 to 39 do
    let seed = Int64.of_int (1009 + (61 * i)) in
    let n = 3 + (i mod 6) in
    let patterns =
      [|
        Traffic.Uniform;
        Traffic.Ring;
        Traffic.Client_server (max 1 (n / 2));
        Traffic.Pipeline;
      |]
    in
    let half = n / 2 in
    let groups = [ List.init half Fun.id; List.init (n - half) (fun k -> half + k) ] in
    let faults =
      Schedule.random_crashes ~seed:(Int64.add seed 5L) ~n
        ~failures:(1 + (i mod 5))
        ~window:(100.0, 700.0)
      @ [
          Schedule.Partition { at = 300.0; groups };
          Schedule.Heal { at = 450.0 };
        ]
    in
    let config =
      {
        Types.default_config with
        Types.retransmit_lost = i mod 2 = 0;
        commit_outputs = i mod 3 = 0;
        hold_undeliverable = true;
      }
    in
    let net_config =
      {
        (Network.default_config ~n) with
        Network.ordering = (if i mod 2 = 0 then Network.Reorder else Network.Fifo);
        latency =
          (if i mod 3 = 0 then Network.Exponential 4.0
           else Network.Uniform (1.0, 10.0));
      }
    in
    let schedule =
      Schedule.make
        ~injections:
          (Schedule.poisson_injections ~seed:(Int64.add seed 11L) ~n ~rate:0.05
             ~duration:800.0 ~hops:(3 + (i mod 6)))
        ~faults
    in
    let sys, oracle =
      run_scenario ~n ~seed
        ~pattern:patterns.(i mod 4)
        ~net_config ~config ~schedule ()
    in
    if not (System.all_alive sys) then
      Alcotest.failf "campaign seed %Ld: not all processes recovered" seed;
    let vs = Oracle.check oracle in
    if vs <> [] then Alcotest.failf "campaign seed %Ld: %s" seed (pp_violations vs);
    let vs = Oracle.check_theorem1 oracle ~sample:300 ~seed in
    if vs <> [] then
      Alcotest.failf "campaign seed %Ld (theorem1): %s" seed (pp_violations vs)
  done

(* --- ablation: the deliverability hold (Section 6.1) is load-bearing.
   Without it, an undetected orphan that merges a higher incarnation's
   entry launders the dead incarnation out of its piggybacked clock, and
   downstream orphans become undetectable (the bench's ablation experiment
   shows oracle violations under heavier schedules). On this mild schedule
   the race does not fire and the run stays consistent — the pair of
   observations together demonstrates why the paper holds messages. --- *)

let test_no_hold_still_consistent () =
  let config = { Types.default_config with Types.hold_undeliverable = false } in
  let faults =
    [
      Schedule.Crash { at = 200.0; pid = 1 };
      Schedule.Crash { at = 320.0; pid = 3 };
    ]
  in
  let schedule = default_schedule ~faults () in
  let _sys, oracle = run_scenario ~config ~schedule () in
  assert_consistent oracle

(* --- determinism: identical seeds give identical outcomes --- *)

let test_determinism () =
  let run () =
    let faults = [ Schedule.Crash { at = 250.0; pid = 1 } ] in
    let schedule = default_schedule ~faults () in
    let sys, _ = run_scenario ~schedule () in
    Array.map
      (fun p -> Traffic.digest (Process.state p))
      (System.processes sys)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "digests equal" true (a = b)

let suite =
  [
    Alcotest.test_case "failure-free run is consistent" `Quick test_failure_free;
    Alcotest.test_case "single failure recovers" `Quick test_single_failure;
    Alcotest.test_case "concurrent failures recover" `Quick
      test_concurrent_failures;
    Alcotest.test_case "repeated failures bump versions" `Quick
      test_repeated_failures_same_process;
    Alcotest.test_case "partition tolerance" `Quick test_partition_tolerance;
    Alcotest.test_case "randomized stress (20 seeds)" `Slow test_stress_random;
    Alcotest.test_case "randomized campaign (40 seeds, partitions, features)"
      `Slow test_stress_campaign;
    Alcotest.test_case "ablation: no deliverability hold" `Quick
      test_no_hold_still_consistent;
    Alcotest.test_case "simulation is deterministic" `Quick test_determinism;
  ]
