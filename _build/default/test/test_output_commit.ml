(* Tests of the Section 6.5 output-commit rule: "before committing an
   output to the environment, a process must make sure that it will never
   rollback the current state or lose it in a failure."

   The application emits an output (a send to Types.output_dst) for every
   delivered key; chains forward messages around a ring first when asked. *)

module Network = Optimist_net.Network
module Types = Optimist_core.Types
module Process = Optimist_core.Process
module System = Optimist_core.System

type msg = { key : int; hops : int }

(* Forward [hops] times around the ring, then emit the key as an output. *)
let app ~n : (int, msg) Types.app =
  {
    Types.init = (fun _ -> 0);
    on_message =
      (fun ~me ~src:_ state m ->
        let state' = state + 1 in
        let sends =
          if m.hops > 0 then [ ((me + 1) mod n, { m with hops = m.hops - 1 }) ]
          else [ (Types.output_dst, m) ]
        in
        (state', sends));
  }

let make ?(commit = true) ?(flush_interval = 10_000.0) n =
  let outputs = ref [] in
  let on_output ~pid ~seq m = outputs := (pid, seq, m.key) :: !outputs in
  let config =
    {
      Types.default_config with
      Types.commit_outputs = commit;
      flush_interval;
      checkpoint_interval = 10_000.0;
      restart_delay = 10.0;
    }
  in
  let net_config =
    { (Network.default_config ~n) with Network.latency = Network.Constant 5.0 }
  in
  let sys = System.create ~seed:8L ~net_config ~config ~on_output ~n ~app:(app ~n) () in
  (sys, outputs)

(* --- without the rule, outputs release immediately --- *)

let test_optimistic_immediate () =
  let sys, outputs = make ~commit:false 3 in
  System.inject_at sys ~at:10.0 ~pid:0 { key = 42; hops = 0 };
  System.run sys;
  Alcotest.(check (list (triple int int int))) "released at once"
    [ (0, 1, 42) ] !outputs

(* --- with the rule, an output waits for its state to be logged --- *)

let test_buffered_until_logged () =
  let sys, outputs = make 3 in
  System.inject_at sys ~at:10.0 ~pid:0 { key = 42; hops = 0 };
  System.run sys;
  Alcotest.(check (list (triple int int int))) "buffered" [] !outputs;
  Alcotest.(check int) "pending" 1 (System.pending_outputs sys);
  System.settle_outputs sys;
  Alcotest.(check (list (triple int int int))) "released after flush"
    [ (0, 1, 42) ] !outputs;
  Alcotest.(check int) "drained" 0 (System.pending_outputs sys)

(* --- an output also waits for its *dependencies* to be logged --- *)

let test_waits_for_remote_dependency () =
  let sys, outputs = make 3 in
  (* One hop: P0 delivers (unflushed), forwards; P1 outputs. P1's output
     depends on P0's unlogged state, so flushing P1 alone is not enough. *)
  System.inject_at sys ~at:10.0 ~pid:0 { key = 7; hops = 1 };
  System.run sys;
  let p1 = System.process sys 1 in
  Process.flush_now p1;
  Process.share_frontier p1;
  System.run sys;
  Alcotest.(check (list (triple int int int))) "still waiting on P0" [] !outputs;
  (* Now P0 flushes and gossips: the dependency is safe. *)
  let p0 = System.process sys 0 in
  Process.flush_now p0;
  Process.share_frontier p0;
  System.run sys;
  Alcotest.(check (list (triple int int int))) "released" [ (1, 1, 7) ] !outputs

(* --- the payoff: outputs from states that a crash destroys are never
   released under the rule, but escape without it --- *)

let crash_scenario ~commit =
  let sys, outputs = make ~commit 3 in
  (* P0 delivers and outputs at t=10 with nothing flushed; crashes at
     t=12. The delivery is lost: the output's state never existed as far
     as recovery is concerned. *)
  System.inject_at sys ~at:10.0 ~pid:0 { key = 99; hops = 0 };
  System.fail_at sys ~at:12.0 ~pid:0;
  System.run sys;
  System.settle_outputs sys;
  !outputs

let test_lost_state_output_suppressed () =
  Alcotest.(check (list (triple int int int)))
    "commit rule holds it back" [] (crash_scenario ~commit:true);
  Alcotest.(check (list (triple int int int)))
    "optimistic release leaks it"
    [ (0, 1, 99) ]
    (crash_scenario ~commit:false)

(* --- outputs from orphan states are dropped by the rollback --- *)

let test_orphan_output_dropped () =
  let sys, outputs = make 3 in
  (* P0's delivery (unflushed) forwards to P1, which outputs; P0 then
     crashes, making P1's state an orphan. P1 rolls back; the buffered
     output must die with the orphan. *)
  System.inject_at sys ~at:10.0 ~pid:0 { key = 13; hops = 1 };
  System.fail_at sys ~at:17.0 ~pid:0;
  System.run sys;
  System.settle_outputs sys;
  Alcotest.(check (list (triple int int int))) "no orphan output" [] !outputs;
  Alcotest.(check int) "nothing pending" 0 (System.pending_outputs sys);
  Alcotest.(check bool) "P1 did roll back" true
    (System.total sys "rollbacks" >= 1)

(* --- outputs of surviving states are released exactly once, in order --- *)

let test_ordered_exactly_once () =
  let sys, outputs = make ~flush_interval:20.0 3 in
  for k = 1 to 10 do
    System.inject_at sys ~at:(10.0 *. float_of_int k) ~pid:0 { key = k; hops = 0 }
  done;
  (* A mid-run crash of P1 (uninvolved) and one of P0 after a flush. *)
  System.fail_at sys ~at:55.0 ~pid:1;
  System.run sys;
  System.settle_outputs sys;
  let p0_outputs =
    List.rev !outputs
    |> List.filter (fun (pid, _, _) -> pid = 0)
    |> List.map (fun (_, seq, key) -> (seq, key))
  in
  (* Sequence numbers strictly increase: released in order, no duplicates. *)
  let rec increasing = function
    | (s1, _) :: ((s2, _) :: _ as rest) -> s1 < s2 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "in order" true (increasing p0_outputs);
  Alcotest.(check bool) "most keys released" true (List.length p0_outputs >= 8)

(* --- replay must not re-release committed outputs --- *)

let test_replay_no_double_release () =
  let sys, outputs = make ~flush_interval:5.0 3 in
  System.inject_at sys ~at:10.0 ~pid:0 { key = 1; hops = 0 };
  System.run sys;
  System.settle_outputs sys;
  Alcotest.(check int) "one release" 1 (List.length !outputs);
  (* Crash after the flush: restart replays the delivery and regenerates
     the output, which is already committed. *)
  System.fail_at sys ~at:100.0 ~pid:0;
  System.run sys;
  System.settle_outputs sys;
  Alcotest.(check int) "still one release" 1 (List.length !outputs)

let suite =
  [
    Alcotest.test_case "optimistic release is immediate" `Quick
      test_optimistic_immediate;
    Alcotest.test_case "buffered until locally logged" `Quick
      test_buffered_until_logged;
    Alcotest.test_case "waits for remote dependencies" `Quick
      test_waits_for_remote_dependency;
    Alcotest.test_case "lost-state output suppressed" `Quick
      test_lost_state_output_suppressed;
    Alcotest.test_case "orphan output dropped" `Quick test_orphan_output_dropped;
    Alcotest.test_case "ordered, exactly once" `Quick test_ordered_exactly_once;
    Alcotest.test_case "replay does not re-release" `Quick
      test_replay_no_double_release;
  ]
