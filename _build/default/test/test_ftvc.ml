(* Tests of the Fault-Tolerant Vector Clock (paper Section 4, Figure 2),
   including the clock fragment of Figure 1 and property tests backing
   Lemma 1 and Theorem 1. *)

module Ftvc = Optimist_clock.Ftvc
module Vclock = Optimist_clock.Vclock
module Prng = Optimist_util.Prng

let entry ver ts = { Ftvc.ver; ts }

let check_entries msg clock expected =
  Alcotest.(check (list (pair int int)))
    msg expected
    (Array.to_list (Ftvc.entries clock)
    |> List.map (fun e -> (e.Ftvc.ver, e.Ftvc.ts)))

(* --- Figure 2 transition rules --- *)

let test_init () =
  let c = Ftvc.create ~n:3 ~me:1 in
  check_entries "initial clock" c [ (0, 0); (0, 1); (0, 0) ];
  Alcotest.(check int) "me" 1 (Ftvc.me c)

let test_send_rule () =
  let c = Ftvc.create ~n:3 ~me:0 in
  let c = Ftvc.sent c in
  check_entries "after send" c [ (0, 2); (0, 0); (0, 0) ]

let test_receive_rule () =
  (* Figure 1: P1 receives from P0's first state s00 = [(0,1)(0,0)(0,0)];
     s11 = [(0,1)(0,2)(0,0)]. *)
  let p1 = Ftvc.create ~n:3 ~me:1 in
  let s00 = Ftvc.create ~n:3 ~me:0 in
  let s11 = Ftvc.deliver p1 ~received:s00 in
  check_entries "s11" s11 [ (0, 1); (0, 2); (0, 0) ]

let test_restart_rule () =
  (* Figure 1: P1 fails, restores s11, restarts as r10 = [(0,1)(1,0)(0,0)]. *)
  let s11 =
    Ftvc.deliver (Ftvc.create ~n:3 ~me:1) ~received:(Ftvc.create ~n:3 ~me:0)
  in
  let r10 = Ftvc.restart s11 in
  check_entries "r10" r10 [ (0, 1); (1, 0); (0, 0) ]

let test_rollback_rule () =
  let c = Ftvc.create ~n:3 ~me:2 in
  let c = Ftvc.rolled_back c in
  check_entries "rollback ticks own ts" c [ (0, 0); (0, 0); (0, 2) ]

let test_version_priority_in_merge () =
  (* An entry with a higher version dominates even with a lower ts. *)
  let c = Ftvc.create ~n:2 ~me:0 in
  let received = [| entry 0 0; entry 1 2 |] in
  let c = Ftvc.deliver_entries c ~received in
  check_entries "version wins" c [ (0, 2); (1, 2) ];
  let received' = [| entry 0 0; entry 0 99 |] in
  let c = Ftvc.deliver_entries c ~received:received' in
  (* (1,2) must survive against (0,99). *)
  check_entries "stale version ignored" c [ (0, 3); (1, 2) ]

let test_internal_event () =
  let c = Ftvc.create ~n:2 ~me:0 in
  let c = Ftvc.internal c in
  check_entries "internal tick" c [ (0, 2); (0, 0) ]

let test_with_own () =
  let c = Ftvc.create ~n:3 ~me:1 in
  let c = Ftvc.with_own c (entry 4 7) in
  check_entries "own replaced" c [ (0, 0); (4, 7); (0, 0) ]

(* --- rollback across a restart (the paper's unspecified case) --- *)

let test_rolled_back_from_same_incarnation () =
  let restored = Ftvc.create ~n:2 ~me:0 in
  let orphaned = Ftvc.sent (Ftvc.sent restored) in
  let c = Ftvc.rolled_back_from ~restored ~orphaned in
  (* Paper rule: restored ts + 1. *)
  check_entries "paper-exact" c [ (0, 2); (0, 0) ]

let test_rolled_back_from_crossing () =
  let restored = Ftvc.create ~n:2 ~me:0 in
  (* orphaned is in incarnation 2 at ts 5 *)
  let orphaned = Ftvc.with_own restored (entry 2 5) in
  let c = Ftvc.rolled_back_from ~restored ~orphaned in
  (* Safe rule: keep incarnation 2, skip past every used timestamp. *)
  check_entries "crossing keeps incarnation" c [ (2, 6); (0, 0) ]

(* --- orders --- *)

let test_entry_order () =
  Alcotest.(check bool) "version major" true
    (Ftvc.entry_compare (entry 0 99) (entry 1 0) < 0);
  Alcotest.(check bool) "ts minor" true
    (Ftvc.entry_compare (entry 1 3) (entry 1 4) < 0);
  Alcotest.(check bool) "equal" true (Ftvc.entry_compare (entry 2 2) (entry 2 2) = 0);
  Alcotest.(check bool) "max picks higher version" true
    (Ftvc.entry_max (entry 0 99) (entry 1 0) = entry 1 0)

let test_clock_order_figure1 () =
  (* Figure 1 discussion: r20.c < s22.c even though r20 does not
     happen-before s22 — FTVC comparisons are only meaningful for useful
     states. We reproduce the shape: a rolled-back clock is dominated by
     the orphan it replaced. *)
  let p2 = Ftvc.create ~n:3 ~me:2 in
  let orphan = Ftvc.deliver_entries p2 ~received:[| entry 0 3; entry 0 3; entry 0 0 |] in
  let r20 = Ftvc.rolled_back p2 in
  Alcotest.(check bool) "r20 < orphan clock" true (Ftvc.lt r20 orphan)

(* --- property tests --- *)

let entry_gen = QCheck.Gen.(map2 (fun v t -> entry v t) (0 -- 3) (0 -- 20))

let clock_gen n me =
  QCheck.Gen.(
    array_repeat n entry_gen >|= fun v ->
    Ftvc.with_own (Ftvc.create ~n ~me) v.(me) |> fun base ->
    (* overwrite all components deterministically *)
    Array.fold_left
      (fun (i, c) e ->
        let c =
          if i = me then c
          else Ftvc.deliver_entries c ~received:(Array.mapi (fun j x ->
            if j = i then e else if j = me then { Ftvc.ver = 0; ts = 0 } else x)
            (Array.make n { Ftvc.ver = 0; ts = 0 }))
        in
        (i + 1, c))
      (0, base) v
    |> snd)

let arb_clock n me =
  QCheck.make ~print:(fun c -> Format.asprintf "%a" Ftvc.pp c) (clock_gen n me)

let prop_leq_partial_order =
  QCheck.Test.make ~name:"ftvc leq is a partial order" ~count:500
    QCheck.(triple (arb_clock 3 0) (arb_clock 3 0) (arb_clock 3 0))
    (fun (a, b, c) ->
      Ftvc.leq a a
      && ((not (Ftvc.leq a b && Ftvc.leq b a)) || Ftvc.equal a b)
      && ((not (Ftvc.leq a b && Ftvc.leq b c)) || Ftvc.leq a c))

let prop_deliver_dominates =
  QCheck.Test.make ~name:"deliver dominates both clocks" ~count:500
    QCheck.(pair (arb_clock 3 0) (arb_clock 3 1))
    (fun (a, b) ->
      let m = Ftvc.deliver a ~received:b in
      (* entrywise dominance over non-own components, strict growth of own *)
      let ok = ref (Ftvc.entry_compare (Ftvc.own m) (Ftvc.own a) > 0) in
      for i = 0 to 2 do
        if i <> 0 then
          ok :=
            !ok
            && Ftvc.entry_leq (Ftvc.get a i) (Ftvc.get m i)
            && Ftvc.entry_leq (Ftvc.get b i) (Ftvc.get m i)
      done;
      !ok)

(* Lemma 1(1): the own version number equals the number of failures. *)
let prop_lemma1_own_version =
  QCheck.Test.make ~name:"lemma 1: own version counts failures" ~count:300
    QCheck.(list_of_size Gen.(0 -- 30) (int_bound 2))
    (fun ops ->
      let c = ref (Ftvc.create ~n:2 ~me:0) in
      let failures = ref 0 in
      List.iter
        (fun op ->
          match op with
          | 0 -> c := Ftvc.sent !c
          | 1 -> c := Ftvc.rolled_back !c
          | _ ->
              incr failures;
              c := Ftvc.restart !c)
        ops;
      (Ftvc.own !c).Ftvc.ver = !failures)

(* Failure-free FTVC behaves exactly like a Mattern vector clock: simulate
   a random failure-free computation with both clocks side by side and
   compare every causality verdict. *)
let prop_failure_free_equals_mattern =
  QCheck.Test.make ~name:"failure-free FTVC = Mattern VC" ~count:100
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (seed, _) ->
      let n = 4 in
      let rng = Prng.create (Int64.of_int (seed + 1)) in
      let f = Array.init n (fun me -> ref (Ftvc.create ~n ~me)) in
      let v = Array.init n (fun me -> ref (Vclock.create ~n ~me)) in
      let fsnap = ref [] and vsnap = ref [] in
      for _ = 1 to 40 do
        let src = Prng.int rng n in
        let dst = (src + 1 + Prng.int rng (n - 1)) mod n in
        (* message carries the senders' clocks; sender ticks *)
        let fc = !(f.(src)) and vc = !(v.(src)) in
        f.(src) := Ftvc.sent fc;
        v.(src) := Vclock.tick vc ~me:src;
        f.(dst) := Ftvc.deliver !(f.(dst)) ~received:fc;
        v.(dst) := Vclock.merge !(v.(dst)) ~me:dst vc;
        fsnap := !(f.(dst)) :: !fsnap;
        vsnap := !(v.(dst)) :: !vsnap
      done;
      let fa = Array.of_list !fsnap and va = Array.of_list !vsnap in
      let ok = ref true in
      for i = 0 to Array.length fa - 1 do
        for j = 0 to Array.length fa - 1 do
          if Ftvc.lt fa.(i) fa.(j) <> Vclock.lt va.(i) va.(j) then ok := false
        done
      done;
      !ok)

let test_size_words () =
  Alcotest.(check int) "2 words per process" 10
    (Ftvc.size_words (Ftvc.create ~n:5 ~me:0))

let suite =
  [
    Alcotest.test_case "initialisation" `Quick test_init;
    Alcotest.test_case "send rule" `Quick test_send_rule;
    Alcotest.test_case "receive rule (figure 1: s11)" `Quick test_receive_rule;
    Alcotest.test_case "restart rule (figure 1: r10)" `Quick test_restart_rule;
    Alcotest.test_case "rollback rule" `Quick test_rollback_rule;
    Alcotest.test_case "version priority in merge" `Quick
      test_version_priority_in_merge;
    Alcotest.test_case "internal event" `Quick test_internal_event;
    Alcotest.test_case "with_own" `Quick test_with_own;
    Alcotest.test_case "rolled_back_from: same incarnation" `Quick
      test_rolled_back_from_same_incarnation;
    Alcotest.test_case "rolled_back_from: crossing a restart" `Quick
      test_rolled_back_from_crossing;
    Alcotest.test_case "entry order" `Quick test_entry_order;
    Alcotest.test_case "figure 1: r20 < s22 despite no causality" `Quick
      test_clock_order_figure1;
    Alcotest.test_case "size in words" `Quick test_size_words;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_leq_partial_order;
        prop_deliver_dominates;
        prop_lemma1_own_version;
        prop_failure_free_equals_mattern;
      ]
