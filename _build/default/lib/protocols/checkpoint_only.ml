module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Vclock = Optimist_clock.Vclock
module Checkpoint_store = Optimist_storage.Checkpoint_store
module Counters = Optimist_util.Stats.Counters
open Optimist_core.Types

type announcement = {
  a_origin : int;
  a_ts : int; (* surviving own timestamp: states past it are gone *)
  a_cascade : bool; (* true when caused by a rollback, not a failure *)
}

type 'm wire =
  | W_app of { data : 'm; vc : Vclock.t; epoch : int; sender : int; uid : int }
  | W_ann of announcement

type ('s, 'm) checkpoint = { cp_state : 's; cp_vc : Vclock.t }

type config = { checkpoint_interval : float; restart_delay : float }

let default_config = { checkpoint_interval = 100.0; restart_delay = 20.0 }

type ('s, 'm) t = {
  pid : int;
  n : int;
  engine : Engine.t;
  net : 'm wire Network.t;
  app : ('s, 'm) app;
  config : config;
  next_uid : unit -> int;
  mutable state : 's;
  mutable vc : Vclock.t;
  mutable alive : bool;
  mutable epoch : int; (* bumped on every restart or rollback *)
  mutable peer_epoch : int array; (* newest epoch seen per peer *)
  mutable states_since_restore : int;
  checkpoints : ('s, 'm) checkpoint Checkpoint_store.t;
  (* Minimum surviving timestamp ever announced per origin: with no way to
     replay, dependencies past it are permanently invalid. *)
  floor : int array;
  counters : Counters.t;
}

let make_net engine cfg = Network.create engine cfg

let id t = t.pid
let alive t = t.alive
let state t = t.state
let counters t = t.counters

let send_app t dst data =
  Counters.incr t.counters "sent";
  Counters.incr ~by:(t.n + 1) t.counters "piggyback_words";
  Network.send t.net ~src:t.pid ~dst
    (W_app
       { data; vc = t.vc; epoch = t.epoch; sender = t.pid; uid = t.next_uid () });
  t.vc <- Vclock.tick t.vc ~me:t.pid

let run_app t ~src data =
  let state', sends = t.app.on_message ~me:t.pid ~src t.state data in
  t.state <- state';
  t.states_since_restore <- t.states_since_restore + 1;
  List.iter (fun (dst, payload) -> send_app t dst payload) sends

let take_checkpoint t =
  Counters.incr t.counters "checkpoints";
  Checkpoint_store.record t.checkpoints ~position:(Vclock.get t.vc t.pid)
    { cp_state = t.state; cp_vc = t.vc }

let announce t ~cascade =
  Counters.incr ~by:(t.n - 1) t.counters "control_messages";
  Network.broadcast t.net ~traffic:Network.Control ~src:t.pid
    (W_ann { a_origin = t.pid; a_ts = Vclock.get t.vc t.pid; a_cascade = cascade })

(* Land on the newest checkpoint consistent with every announcement floor.
   There is no log: everything since that checkpoint is forfeited. *)
let restore_to_floor t =
  match
    Checkpoint_store.latest_satisfying t.checkpoints (fun cp _ ->
        let ok = ref true in
        for j = 0 to t.n - 1 do
          if j <> t.pid && Vclock.get cp.cp_vc j > t.floor.(j) then ok := false
        done;
        !ok)
  with
  | None -> assert false
  | Some (cp, position) ->
      Counters.incr ~by:t.states_since_restore t.counters "lost_states";
      t.states_since_restore <- 0;
      t.state <- cp.cp_state;
      t.vc <- cp.cp_vc;
      Checkpoint_store.discard_after t.checkpoints ~position

let orphaned t =
  let rec loop j =
    j < t.n
    && ((j <> t.pid && Vclock.get t.vc j > t.floor.(j)) || loop (j + 1))
  in
  loop 0

let rollback t ~cascade =
  Counters.incr t.counters "rollbacks";
  if cascade then Counters.incr t.counters "cascade_rollbacks";
  restore_to_floor t;
  t.epoch <- t.epoch + 1;
  (* Our own rollback may orphan others: the domino propagates. The
     announcement carries the restored timestamp — everything beyond it is
     forfeit. *)
  announce t ~cascade:true;
  t.vc <- Vclock.tick t.vc ~me:t.pid

let receive_announcement t (a : announcement) =
  Counters.incr t.counters "tokens_received";
  if a.a_ts < t.floor.(a.a_origin) then t.floor.(a.a_origin) <- a.a_ts;
  if t.alive && orphaned t then rollback t ~cascade:a.a_cascade

let do_restart t =
  Counters.incr t.counters "restarts";
  t.epoch <- t.epoch + 1;
  restore_to_floor t;
  t.alive <- true;
  Network.set_up t.net t.pid;
  announce t ~cascade:false;
  t.vc <- Vclock.tick t.vc ~me:t.pid;
  take_checkpoint t

let fail t =
  if t.alive then begin
    t.alive <- false;
    Counters.incr t.counters "failures";
    Network.set_down t.net t.pid;
    ignore
      (Engine.schedule t.engine ~delay:t.config.restart_delay (fun () ->
           do_restart t))
  end

let receive_app t ~src ~vc ~epoch data =
  if epoch < t.peer_epoch.(src) then
    (* Stale traffic from a discarded incarnation of the sender. *)
    Counters.incr t.counters "discarded_obsolete"
  else begin
    t.peer_epoch.(src) <- epoch;
    (* Dependency on permanently lost states: unrecoverable, drop. *)
    let dead = ref false in
    for j = 0 to t.n - 1 do
      if j <> t.pid && Vclock.get vc j > t.floor.(j) then dead := true
    done;
    if !dead then Counters.incr t.counters "discarded_obsolete"
    else begin
      t.vc <- Vclock.merge t.vc ~me:t.pid vc;
      Counters.incr t.counters "delivered";
      run_app t ~src data
    end
  end

let inject t data =
  if t.alive then begin
    Counters.incr t.counters "injected";
    t.vc <- Vclock.tick t.vc ~me:t.pid;
    run_app t ~src:env_src data
  end

let handle_wire t (env : 'm wire Network.envelope) =
  match env.Network.payload with
  | W_app { data; vc; epoch; sender; uid = _ } ->
      if t.alive then receive_app t ~src:sender ~vc ~epoch data
  | W_ann a -> receive_announcement t a

let create ~engine ~net ~app ~id:pid ~n ?(config = default_config) ~next_uid ()
    =
  let t =
    {
      pid;
      n;
      engine;
      net;
      app;
      config;
      next_uid;
      state = app.init pid;
      vc = Vclock.create ~n ~me:pid;
      alive = true;
      epoch = 0;
      peer_epoch = Array.make n 0;
      states_since_restore = 0;
      checkpoints = Checkpoint_store.create ();
      floor = Array.make n max_int;
      counters = Counters.create ();
    }
  in
  Network.set_handler net pid (fun env -> handle_wire t env);
  take_checkpoint t;
  let rec checkpoint_loop () =
    if t.alive then take_checkpoint t;
    ignore
      (Engine.schedule engine ~daemon:true ~delay:config.checkpoint_interval
         checkpoint_loop)
  in
  ignore
    (Engine.schedule engine ~daemon:true ~delay:config.checkpoint_interval
       checkpoint_loop);
  t
