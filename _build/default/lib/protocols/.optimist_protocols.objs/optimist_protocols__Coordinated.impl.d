lib/protocols/coordinated.ml: Array List Optimist_core Optimist_net Optimist_sim Optimist_util
