lib/protocols/sender_based.ml: Array Hashtbl List Optimist_core Optimist_net Optimist_sim Optimist_storage Optimist_util
