lib/protocols/coordinated.mli: Optimist_core Optimist_net Optimist_sim Optimist_util
