lib/protocols/sender_based.mli: Optimist_core Optimist_net Optimist_sim Optimist_util
