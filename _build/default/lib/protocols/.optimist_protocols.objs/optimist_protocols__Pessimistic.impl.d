lib/protocols/pessimistic.ml: List Optimist_core Optimist_net Optimist_sim Optimist_storage Optimist_util
