lib/protocols/strom_yemini.ml: Array List Optimist_clock Optimist_core Optimist_net Optimist_sim Optimist_storage Optimist_util
