(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through a [Prng.t] seeded
    explicitly, so every run is reproducible from its seed. The generator is
    SplitMix64 (Steele, Lea & Flood 2014): tiny state, good statistical
    quality, and cheap [split] for deriving independent streams — one stream
    per simulated process keeps traces stable when unrelated components are
    added or removed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy at the current position. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean; used for Poisson
    message arrivals and latency models. *)

val uniform_float : t -> lo:float -> hi:float -> float

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
