(** Imperative binary min-heap, parameterized by an ordering on keys.

    The simulation engine stores pending events here keyed by
    [(time, sequence-number)] so that ties in virtual time break
    deterministically in insertion order. *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t

val length : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val pop : ('k, 'v) t -> ('k * 'v) option
(** Removes and returns the minimum binding, or [None] when empty. *)

val peek : ('k, 'v) t -> ('k * 'v) option

val clear : ('k, 'v) t -> unit

val to_list : ('k, 'v) t -> ('k * 'v) list
(** All bindings in unspecified order; for inspection in tests. *)
