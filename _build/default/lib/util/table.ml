type align = Left | Right

type row = Cells of string list | Separator

type t = { columns : (string * align) list; mutable rows : row list }

let create ~columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length h) rows)
      headers
  in
  let buf = Buffer.create 256 in
  let pad align width s =
    let fill = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_cells cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        let width = List.nth widths i in
        let align = snd (List.nth t.columns i) in
        Buffer.add_string buf (pad align width cell))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width =
    List.fold_left ( + ) 0 widths + (2 * max 0 (List.length widths - 1))
  in
  emit_cells headers;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      match row with
      | Separator ->
          Buffer.add_string buf (String.make total_width '-');
          Buffer.add_char buf '\n'
      | Cells cells -> emit_cells cells)
    rows;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
