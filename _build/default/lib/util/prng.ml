type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: two xor-shift-multiply rounds over the
   advancing counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  create seed

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 low bits so the result stays non-negative on 63-bit ints. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) land max_int in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits, as in the stdlib's Random.float construction. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let uniform_float t ~lo ~hi = lo +. float t (hi -. lo)

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
