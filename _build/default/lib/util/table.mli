(** Plain-text table rendering for experiment output.

    Produces the aligned rows the bench harness prints when regenerating the
    paper's tables. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val add_separator : t -> unit

val render : t -> string

val pp : Format.formatter -> t -> unit
