type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  mutable data : ('k * 'v) array;
  mutable size : int;
}

let create ~cmp () = { cmp; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let next = max 16 (2 * capacity) in
    (* The dummy element is never read below index [size]. *)
    let dummy = t.data.(0) in
    let data = Array.make next dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (fst t.data.(i)) (fst t.data.(parent)) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = i in
  let smallest =
    if left < t.size && t.cmp (fst t.data.(left)) (fst t.data.(smallest)) < 0
    then left else smallest
  in
  let smallest =
    if right < t.size && t.cmp (fst t.data.(right)) (fst t.data.(smallest)) < 0
    then right else smallest
  in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let push t k v =
  if Array.length t.data = 0 then t.data <- Array.make 16 (k, v);
  grow t;
  t.data.(t.size) <- (k, v);
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some root
  end

let peek t = if t.size = 0 then None else Some t.data.(0)

let clear t = t.size <- 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.size - 1) []
