lib/util/heap.mli:
