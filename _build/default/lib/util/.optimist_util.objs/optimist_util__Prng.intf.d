lib/util/prng.mli:
