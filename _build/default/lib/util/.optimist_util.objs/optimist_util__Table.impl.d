lib/util/table.ml: Buffer Format List String
