lib/util/stats.ml: Array Format Hashtbl List String
