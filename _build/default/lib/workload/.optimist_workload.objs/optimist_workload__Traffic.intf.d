lib/workload/traffic.mli: Optimist_core
