lib/workload/schedule.ml: Int64 List Optimist_util Traffic
