lib/workload/schedule.mli: Traffic
