lib/workload/traffic.ml: Optimist_core
