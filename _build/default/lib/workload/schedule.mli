(** Stimulus and fault schedules for experiments.

    Schedules are generated up front from an explicit seed (independent of
    the engine's PRNG) so that the same workload can be replayed against
    different protocols and configurations. *)

type injection = { at : float; pid : int; key : int; hops : int }

type fault =
  | Crash of { at : float; pid : int }
  | Partition of { at : float; groups : int list list }
  | Heal of { at : float }

type t = { injections : injection list; faults : fault list }

val poisson_injections :
  seed:int64 ->
  n:int ->
  rate:float ->
  duration:float ->
  hops:int ->
  injection list
(** Poisson arrivals at [rate] per process over [0, duration]; each
    injection starts a chain of [hops] forwarded messages. *)

val random_crashes :
  seed:int64 ->
  n:int ->
  failures:int ->
  window:float * float ->
  fault list
(** [failures] crash events at uniform times in the window, on uniformly
    chosen processes (possibly the same process repeatedly — the paper's
    [f] failures per process). *)

val simultaneous_crashes : at:float -> pids:int list -> fault list
(** Concurrent failures, Section 6.8. *)

val make : injections:injection list -> faults:fault list -> t

val apply :
  t ->
  inject:(at:float -> pid:int -> Traffic.msg -> unit) ->
  crash:(at:float -> pid:int -> unit) ->
  partition:(at:float -> groups:int list list -> unit) ->
  heal:(at:float -> unit) ->
  unit
(** Hand every scheduled event to the protocol-specific callbacks. *)
