module Prng = Optimist_util.Prng

type injection = { at : float; pid : int; key : int; hops : int }

type fault =
  | Crash of { at : float; pid : int }
  | Partition of { at : float; groups : int list list }
  | Heal of { at : float }

type t = { injections : injection list; faults : fault list }

let poisson_injections ~seed ~n ~rate ~duration ~hops =
  if rate <= 0.0 then []
  else begin
    let rng = Prng.create seed in
    let mean = 1.0 /. rate in
    let acc = ref [] in
    for pid = 0 to n - 1 do
      let stream = Prng.split rng in
      let rec arrivals t =
        let t = t +. Prng.exponential stream ~mean in
        if t <= duration then begin
          acc := { at = t; pid; key = Int64.to_int (Prng.next_int64 stream) land 0xFFFFFF; hops } :: !acc;
          arrivals t
        end
      in
      arrivals 0.0
    done;
    List.sort (fun a b -> compare a.at b.at) !acc
  end

let random_crashes ~seed ~n ~failures ~window:(lo, hi) =
  let rng = Prng.create seed in
  List.init failures (fun _ ->
      Crash { at = Prng.uniform_float rng ~lo ~hi; pid = Prng.int rng n })
  |> List.sort (fun a b ->
         match (a, b) with Crash x, Crash y -> compare x.at y.at | _ -> 0)

let simultaneous_crashes ~at ~pids =
  List.map (fun pid -> Crash { at; pid }) pids

let make ~injections ~faults = { injections; faults }

let apply t ~inject ~crash ~partition ~heal =
  List.iter
    (fun i -> inject ~at:i.at ~pid:i.pid (Traffic.fresh ~key:i.key ~hops:i.hops))
    t.injections;
  List.iter
    (fun f ->
      match f with
      | Crash { at; pid } -> crash ~at ~pid
      | Partition { at; groups } -> partition ~at ~groups
      | Heal { at } -> heal ~at)
    t.faults
