type msg = { key : int; hops : int }

type state = { count : int; acc : int }

type pattern = Uniform | Ring | Pipeline | Client_server of int

(* A small integer mixer (xorshift-multiply); pure, so routing decisions
   replay identically. *)
let mix a b c =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor (c * 0xC2B2AE3D) in
  let h = h lxor (h lsr 15) in
  let h = h * 0x27D4EB2F in
  (h lxor (h lsr 13)) land max_int

let route ~n ~pattern ~me ~src ~key ~count =
  match pattern with
  | Uniform ->
      let d = mix me key count mod (n - 1) in
      if d >= me then d + 1 else d (* any peer but self *)
  | Ring -> (me + 1) mod n
  | Pipeline -> if me + 1 < n then me + 1 else -1
  | Client_server k ->
      if me < k then if src >= 0 then src else -1 (* server answers caller *)
      else mix me key count mod k (* client picks a server *)

let app ~n pattern =
  if n < 2 then invalid_arg "Traffic.app: need at least two processes";
  (match pattern with
  | Client_server k when k <= 0 || k >= n ->
      invalid_arg "Traffic.app: server count out of range"
  | _ -> ());
  {
    Optimist_core.Types.init = (fun _ -> { count = 0; acc = 0 });
    on_message =
      (fun ~me ~src state m ->
        let state' =
          { count = state.count + 1; acc = mix state.acc m.key state.count }
        in
        let sends =
          if m.hops <= 0 then []
          else
            let dst = route ~n ~pattern ~me ~src ~key:m.key ~count:state.count in
            if dst < 0 then []
            else [ (dst, { key = mix m.key me state.count; hops = m.hops - 1 }) ]
        in
        (state', sends));
  }

let fresh ~key ~hops = { key; hops }

let digest state = state.acc
