(** Synthetic piecewise-deterministic applications.

    The paper's computation model needs nothing from the application except
    determinism: on each delivery the handler's new state and outgoing
    messages must be a function of the current state and the message. The
    [msg] type carries a hop counter and a key; the handler forwards the
    message [hops] more times along a pattern-specific route, mixing the key
    into an accumulator so that divergent replays would be caught by state
    comparison.

    All routing "randomness" is a hash of (process, key, local count) — a
    pure function, so replay regenerates identical sends. *)

type msg = { key : int; hops : int }

type state = {
  count : int;  (** deliveries processed *)
  acc : int;  (** order-sensitive digest of everything processed *)
}

type pattern =
  | Uniform  (** forward to a hash-chosen peer *)
  | Ring  (** forward to (me + 1) mod n *)
  | Pipeline  (** forward to me + 1, stop at the last stage *)
  | Client_server of int
      (** [Client_server k]: processes [0..k-1] are servers; clients route
          requests to a hash-chosen server, servers reply to the caller *)

val app : n:int -> pattern -> (state, msg) Optimist_core.Types.app

val fresh : key:int -> hops:int -> msg
(** A stimulus to inject. *)

val digest : state -> int
(** Order-sensitive digest; equal digests across a replayed prefix certify
    deterministic re-execution. *)
