(** The history mechanism — the paper's Section 5, Figure 3.

    Each process keeps, in volatile memory, one record per known
    [(process, version)] pair. A record is [(kind, version, timestamp)]
    where [kind] says whether the timestamp came from a failure *token*
    (authoritative: the surviving timestamp of that incarnation) or from
    *messages* (the highest timestamp of that incarnation the process has
    causal knowledge of).

    The two detection rules built on it:
    - {b Obsolete message} (Lemma 4): a message whose clock entry for some
      process [j] is [(v, ts)] is obsolete iff the history holds a token
      record [(Token, v, t)] for [j] with [t < ts] — the message depends on
      a state of incarnation [v] past the restoration point.
    - {b Orphan state} (Lemma 3): on receiving token [(v, t)] from [j], the
      local state is orphan iff the history holds a message record
      [(Message, v, t')] for [j] with [t < t'].

    A subtlety the paper states in prose (Section 5) but elides in the
    Figure 3 pseudo-code: once a token record exists for a version it is
    authoritative and is never replaced by a message record — only the
    reverse replacement happens. Message records for the same version keep
    the maximum timestamp seen. We implement the prose semantics.

    History values are mutable (they live in a process); [copy] snapshots
    them into checkpoints. *)

type kind = Token | Message

type record = { kind : kind; ver : int; ts : int }

type t

val create : n:int -> me:int -> t
(** Figure 3 initialisation: [(Message, 0, 0)] for every process,
    [(Message, 0, 1)] for the owner. *)

val copy : t -> t

val n : t -> int

val me : t -> int

val find : t -> pid:int -> ver:int -> record option

val note_message_entry : t -> pid:int -> Optimist_clock.Ftvc.entry -> unit
(** Receive-message rule for one clock entry: record the entry's timestamp
    for [(pid, entry.ver)] unless a token record exists for that version or
    a message record with a timestamp at least as large does. *)

val note_clock : t -> sender_clock:Optimist_clock.Ftvc.entry array -> unit
(** Apply {!note_message_entry} to every component of a received message's
    clock (the [∀j] loop of Figure 3). *)

val note_token : t -> pid:int -> ver:int -> ts:int -> unit
(** Token rule: install the authoritative record for [(pid, ver)],
    replacing any message record. *)

val has_token : t -> pid:int -> ver:int -> bool

val tokens_complete_below : t -> pid:int -> ver:int -> bool
(** [tokens_complete_below t ~pid ~ver] is true when a token record exists
    for every version [l < ver] of [pid] — the deliverability condition of
    Section 6.1. *)

val message_obsolete : t -> clock:Optimist_clock.Ftvc.entry array -> bool
(** Lemma 4 test over a whole message clock. *)

val orphaned_by_token : t -> pid:int -> ver:int -> ts:int -> bool
(** Lemma 3 test: does the local state causally depend on a state of
    [pid]'s incarnation [ver] past timestamp [ts]? *)

val survives_token : t -> pid:int -> ver:int -> ts:int -> bool
(** Negation of {!orphaned_by_token}; the rollback stopping condition
    (Figure 4 condition (I)): either no message record for [(pid, ver)], or
    its timestamp is at most [ts]. *)

val max_known_version : t -> pid:int -> int

val record_count : t -> int
(** Total records held — the O(n·f) memory quantity of Section 6.9(3). *)

val records : t -> pid:int -> record list
(** All records for [pid], sorted by version; for tests and debugging. *)

val pp : Format.formatter -> t -> unit
