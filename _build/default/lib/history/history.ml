module Ftvc = Optimist_clock.Ftvc

type kind = Token | Message

type record = { kind : kind; ver : int; ts : int }

(* One hash table per peer process, keyed by version. The paper stores "a
   record for every known version of all processes"; versions are dense and
   few (O(f)), so a table per peer keeps lookups O(1). *)
type t = { me : int; tables : (int, record) Hashtbl.t array }

let create ~n ~me =
  if n <= 0 || me < 0 || me >= n then invalid_arg "History.create";
  let tables = Array.init n (fun _ -> Hashtbl.create 4) in
  for j = 0 to n - 1 do
    let ts = if j = me then 1 else 0 in
    Hashtbl.replace tables.(j) 0 { kind = Message; ver = 0; ts }
  done;
  { me; tables }

let copy t =
  { t with tables = Array.map Hashtbl.copy t.tables }

let n t = Array.length t.tables

let me t = t.me

let find t ~pid ~ver = Hashtbl.find_opt t.tables.(pid) ver

let note_message_entry t ~pid (e : Ftvc.entry) =
  match find t ~pid ~ver:e.ver with
  | Some { kind = Token; _ } ->
      (* Token records are authoritative; the message either passed the
         obsolete test (its ts is within the surviving prefix) or was
         discarded before reaching here. Either way it adds nothing. *)
      ()
  | Some { kind = Message; ts; _ } when ts >= e.ts -> ()
  | Some { kind = Message; _ } | None ->
      Hashtbl.replace t.tables.(pid) e.ver
        { kind = Message; ver = e.ver; ts = e.ts }

let note_clock t ~sender_clock =
  Array.iteri (fun pid e -> note_message_entry t ~pid e) sender_clock

let note_token t ~pid ~ver ~ts =
  Hashtbl.replace t.tables.(pid) ver { kind = Token; ver; ts }

let has_token t ~pid ~ver =
  match find t ~pid ~ver with Some { kind = Token; _ } -> true | _ -> false

let tokens_complete_below t ~pid ~ver =
  let rec loop l = l >= ver || (has_token t ~pid ~ver:l && loop (l + 1)) in
  loop 0

let message_obsolete t ~clock =
  let n = Array.length clock in
  let rec loop j =
    if j >= n then false
    else
      let (e : Ftvc.entry) = clock.(j) in
      match find t ~pid:j ~ver:e.ver with
      | Some { kind = Token; ts; _ } when ts < e.ts -> true
      | _ -> loop (j + 1)
  in
  loop 0

let orphaned_by_token t ~pid ~ver ~ts =
  match find t ~pid ~ver with
  | Some { kind = Message; ts = ts'; _ } -> ts < ts'
  | _ -> false

let survives_token t ~pid ~ver ~ts = not (orphaned_by_token t ~pid ~ver ~ts)

let max_known_version t ~pid =
  Hashtbl.fold (fun ver _ acc -> max ver acc) t.tables.(pid) 0

let record_count t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.tables

let records t ~pid =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.tables.(pid) []
  |> List.sort (fun a b -> compare a.ver b.ver)

let pp ppf t =
  let pp_record ppf r =
    Format.fprintf ppf "(%s,%d,%d)"
      (match r.kind with Token -> "t" | Message -> "m")
      r.ver r.ts
  in
  Array.iteri
    (fun pid _ ->
      Format.fprintf ppf "@[P%d: %a@]@\n" pid
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           pp_record)
        (records t ~pid))
    t.tables
