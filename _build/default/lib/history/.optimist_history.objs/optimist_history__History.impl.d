lib/history/history.ml: Array Format Hashtbl List Optimist_clock
