lib/history/history.mli: Format Optimist_clock
