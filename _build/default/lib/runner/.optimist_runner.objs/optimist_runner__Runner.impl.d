lib/runner/runner.ml: Array Format Hashtbl Int64 List Optimist_core Optimist_net Optimist_oracle Optimist_protocols Optimist_sim Optimist_util Optimist_workload Option String
