lib/runner/runner.mli: Format Optimist_net Optimist_workload
