lib/storage/message_log.ml: Array List Optimist_util Printf
