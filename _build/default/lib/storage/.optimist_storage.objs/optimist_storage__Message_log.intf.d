lib/storage/message_log.mli: Optimist_util
