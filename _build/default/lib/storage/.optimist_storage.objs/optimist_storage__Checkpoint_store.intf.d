lib/storage/checkpoint_store.mli:
