lib/storage/checkpoint_store.ml: List
