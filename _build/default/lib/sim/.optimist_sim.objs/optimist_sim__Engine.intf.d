lib/sim/engine.mli: Optimist_util
