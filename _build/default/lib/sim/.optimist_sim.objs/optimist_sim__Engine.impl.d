lib/sim/engine.ml: Optimist_util Printf
