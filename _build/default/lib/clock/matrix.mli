(** Matrix clock over FTVC rows — the "two levels of partial order"
    structure of Smith-Johnson-Tygar [25] that the paper's Table 1 compares
    against.

    Process [i]'s matrix holds one FTVC per process: row [i] is [i]'s own
    fault-tolerant vector clock, and row [j] is the latest FTVC of [j] that
    [i] has causal knowledge of. Messages piggyback the whole matrix —
    O(n²) entries, each an (incarnation, timestamp) pair, which is the
    O(n²·f)-timestamp cost the paper criticises (SJT entries carry
    per-incarnation vectors; the incarnation dimension shows up here in the
    versions inside the entries).

    The matrix gives knowledge-of-knowledge: [get m ~about:j] answers "what
    do I know that j knew?", which SJT's recovery uses to decide what
    information is safely disseminated. Rows merge entrywise with the FTVC
    rule (version-major), so every row is itself a valid FTVC. *)

type t

val create : n:int -> me:int -> t
(** Row [me] is the initial FTVC of [me]; every other row is all-bottom
    (knowledge of nothing). *)

val me : t -> int

val size : t -> int

val own : t -> Ftvc.t
(** Row [me] — the process's ordinary FTVC. *)

val get : t -> about:int -> Ftvc.t
(** Row [about]: the latest clock of [about] this process knows. *)

val set_own : t -> Ftvc.t -> t
(** Replace row [me]; used after the FTVC transitions (send/deliver/
    restart/rollback) computed on {!own}. *)

val deliver : t -> received:t -> t
(** Receive rule: every row merges entrywise with the sender's matrix, the
    sender's row also absorbs the sender's own row (the sender knows itself
    best), then row [me] ticks. *)

val entries : t -> Ftvc.entry array array
(** Fresh copy, row-major. *)

val of_entries : me:int -> Ftvc.entry array array -> t

val size_words : t -> int
(** Piggyback cost: 2·n² machine words. *)

val pp : Format.formatter -> t -> unit
