type t = int array

let create ~n ~me =
  if n <= 0 || me < 0 || me >= n then invalid_arg "Vclock.create";
  let c = Array.make n 0 in
  c.(me) <- 1;
  c

let size = Array.length

let get t i = t.(i)

let tick t ~me =
  let c = Array.copy t in
  c.(me) <- c.(me) + 1;
  c

let merge t ~me received =
  if Array.length t <> Array.length received then
    invalid_arg "Vclock.merge: size mismatch";
  let c = Array.mapi (fun i x -> max x received.(i)) t in
  c.(me) <- c.(me) + 1;
  c

let leq a b =
  let n = Array.length a in
  let rec loop i = i >= n || (a.(i) <= b.(i) && loop (i + 1)) in
  Array.length b = n && loop 0

let equal a b = a = b

let lt a b = leq a b && not (equal a b)

let concurrent a b = (not (leq a b)) && not (leq b a)

let compare = Stdlib.compare

let to_list = Array.to_list

let of_list = Array.of_list

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    (to_list t)
