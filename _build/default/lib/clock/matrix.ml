type t = { me : int; rows : Ftvc.t array }

(* Row j starts as j's initial clock: "I know that j started". *)
let create ~n ~me = { me; rows = Array.init n (fun i -> Ftvc.create ~n ~me:i) }

let me t = t.me

let size t = Array.length t.rows

let own t = t.rows.(t.me)

let get t ~about = t.rows.(about)

let set_own t clock =
  let rows = Array.copy t.rows in
  rows.(t.me) <- clock;
  { t with rows }

let deliver t ~received =
  if Array.length received.rows <> Array.length t.rows then
    invalid_arg "Matrix.deliver: size mismatch";
  let rows =
    Array.mapi
      (fun j row ->
        let row = Ftvc.join row received.rows.(j) in
        (* The sender knows itself at least as well as its row about
           itself claims. *)
        if j = received.me then Ftvc.join row (own received) else row)
      t.rows
  in
  (* The own row performs the ordinary FTVC receive transition. *)
  rows.(t.me) <- Ftvc.deliver rows.(t.me) ~received:(own received);
  { t with rows }

let entries t = Array.map Ftvc.entries t.rows

let of_entries ~me rows =
  { me; rows = Array.mapi (fun i row -> Ftvc.of_entries ~me:i row) rows }

let size_words t =
  let n = Array.length t.rows in
  2 * n * n

let pp ppf t =
  Array.iteri
    (fun i row -> Format.fprintf ppf "@[row %d: %a@]@\n" i Ftvc.pp row)
    t.rows
