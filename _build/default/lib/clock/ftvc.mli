(** Fault-Tolerant Vector Clock — the paper's Section 4, Figure 2.

    Each component is a [(version, timestamp)] pair. The version counts the
    owning process's incarnations (failures followed by restarts); the
    timestamp is a Mattern-style logical clock within the incarnation.
    Entries are ordered version-first:
    [e1 < e2  ≡  v1 < v2  ∨  (v1 = v2 ∧ ts1 < ts2)].

    The operations follow Figure 2 exactly:
    - initialisation: every entry [(0,0)], own timestamp set to 1;
    - [sent]: own timestamp advanced after a send;
    - [deliver]: componentwise entry-max with the received clock, then own
      timestamp advanced;
    - [restart]: own version advanced, own timestamp reset to 0 (needs no
      pre-failure timestamp — only the version survives, via the checkpoint
      taken right after recovery);
    - [rolled_back]: own timestamp advanced, version unchanged.

    Values are immutable: every state of the simulated computation keeps its
    exact clock, which the oracle and the paper's lemma-level property tests
    rely on.

    Theorem 1 of the paper: for states that are neither lost nor orphan,
    [s → u  ⇔  lt s.clock u.clock]. *)

type entry = { ver : int; ts : int }

type t

(** {2 Construction and the Figure 2 transitions} *)

val create : n:int -> me:int -> t

val sent : t -> t
(** Clock of the next state after sending a message (own ts + 1). The clock
    piggybacked on the message is the *pre*-send clock, per Figure 2. *)

val deliver : t -> received:t -> t
(** Receive rule: entrywise max, own timestamp advanced. Raises
    [Invalid_argument] on size mismatch. *)

val deliver_entries : t -> received:entry array -> t
(** Same, for a raw entry vector (as carried by a message). *)

val join : t -> t -> t
(** Entrywise max {e without} advancing anything: the pure lattice join.
    Used by observers that combine knowledge they did not causally
    participate in (the matrix clock's non-own rows, the predicate-
    detection monitor). Both clocks must share the owner. *)

val of_entries : me:int -> entry array -> t
(** Wrap a raw entry vector as a clock owned by [me]. *)

val restart : t -> t
(** After a failure: own version + 1, own timestamp 0. *)

val rolled_back : t -> t
(** After a rollback: own timestamp + 1, version unchanged. *)

val rolled_back_from : restored:t -> orphaned:t -> t
(** Clock of the first state after a rollback that restored [restored]
    while the process was at [orphaned].

    When both clocks are in the same incarnation this is
    [rolled_back restored] — the paper's Figure 2 rule, which Figure 5's
    worked example exhibits (r00 = restored timestamp + 1).

    When the rollback crossed the process's own restart point (the restored
    state belongs to an older incarnation — possible when a later failure
    elsewhere orphans states that were replayed during this process's own
    earlier recovery), reverting the version would poison the obsolete test:
    the process already announced that the old incarnation died at some
    timestamp t, so new states of that incarnation growing past t would be
    discarded by every peer holding the token. The paper's pseudo-code does
    not treat this case; we resolve it by keeping the own component's
    *current* incarnation and advancing its timestamp past every value the
    orphaned branch used: [{ver = orphaned.ver; ts = orphaned.ts + 1}].
    All other components revert to the restored state's knowledge. *)

val internal : t -> t
(** Own timestamp advanced; models a logged local (non-deterministic)
    event treated as a message receive, per Section 3. *)

val with_own : t -> entry -> t
(** Replace the own component. Used when replaying a logged rollback
    marker: the marker records the exact own entry the rollback produced,
    and replay must reproduce it bit-for-bit (see
    {!Optimist_core.Process}). *)

(** {2 Accessors} *)

val size : t -> int

val me : t -> int

val get : t -> int -> entry

val own : t -> entry
(** The process's own component — what a failure token carries. *)

val entries : t -> entry array
(** Fresh copy of the underlying vector. *)

(** {2 Orders} *)

val entry_compare : entry -> entry -> int
(** Version-major, timestamp-minor total order on entries. *)

val entry_leq : entry -> entry -> bool

val entry_max : entry -> entry -> entry

val leq : t -> t -> bool
(** Pointwise entry order. *)

val lt : t -> t -> bool
(** The paper's [c1 < c2]: pointwise [<=] and strictly less somewhere. *)

val concurrent : t -> t -> bool

val equal : t -> t -> bool

(** {2 Measurement} *)

val size_words : t -> int
(** Piggyback cost in machine words: 2·n (a version and a timestamp per
    process) — the quantity Table 1 reports as O(n) and Section 6.9
    analyses. *)

val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> t -> unit
