(** Mattern/Fidge vector clocks (failure-free).

    The classic construction the paper extends: one integer timestamp per
    process. Used by the failure-free predicate-detection example and by
    baseline protocols that assume vector clocks without versions
    (Peterson-Kearns, Sistla-Welch). Values are immutable; operations return
    fresh vectors. *)

type t

val create : n:int -> me:int -> t
(** Initial clock of process [me] in a system of [n] processes: all zero
    except own component, which starts at 1 (first state). *)

val size : t -> int

val get : t -> int -> int

val tick : t -> me:int -> t
(** Advance own component by one. *)

val merge : t -> me:int -> t -> t
(** [merge c ~me received] is the receive rule: componentwise max, then own
    component advanced. *)

val leq : t -> t -> bool
(** Pointwise [<=]. *)

val lt : t -> t -> bool
(** Strictly less: [leq] and different — Mattern's causality order. *)

val concurrent : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order extending nothing in particular; for use as a map key. *)

val to_list : t -> int list

val of_list : int list -> t

val pp : Format.formatter -> t -> unit
