type entry = { ver : int; ts : int }

type t = { me : int; v : entry array }

let zero_entry = { ver = 0; ts = 0 }

let create ~n ~me =
  if n <= 0 || me < 0 || me >= n then invalid_arg "Ftvc.create";
  let v = Array.make n zero_entry in
  v.(me) <- { ver = 0; ts = 1 };
  { me; v }

let size t = Array.length t.v

let me t = t.me

let get t i = t.v.(i)

let own t = t.v.(t.me)

let entries t = Array.copy t.v

let entry_compare a b =
  let c = compare a.ver b.ver in
  if c <> 0 then c else compare a.ts b.ts

let entry_leq a b = entry_compare a b <= 0

let entry_max a b = if entry_compare a b >= 0 then a else b

let bump_own t =
  let v = Array.copy t.v in
  let e = v.(t.me) in
  v.(t.me) <- { e with ts = e.ts + 1 };
  { t with v }

let sent = bump_own

let internal = bump_own

let rolled_back = bump_own

let rolled_back_from ~restored ~orphaned =
  if restored.me <> orphaned.me then
    invalid_arg "Ftvc.rolled_back_from: different owners";
  let r = restored.v.(restored.me) and o = orphaned.v.(orphaned.me) in
  if r.ver = o.ver then bump_own restored
  else begin
    let v = Array.copy restored.v in
    v.(restored.me) <- { ver = o.ver; ts = o.ts + 1 };
    { restored with v }
  end

let with_own t entry =
  let v = Array.copy t.v in
  v.(t.me) <- entry;
  { t with v }

let deliver_entries t ~received =
  if Array.length received <> Array.length t.v then
    invalid_arg "Ftvc.deliver: size mismatch";
  let v = Array.mapi (fun i e -> entry_max e received.(i)) t.v in
  let e = v.(t.me) in
  v.(t.me) <- { e with ts = e.ts + 1 };
  { t with v }

let deliver t ~received = deliver_entries t ~received:received.v

let join a b =
  if a.me <> b.me then invalid_arg "Ftvc.join: different owners";
  if Array.length a.v <> Array.length b.v then
    invalid_arg "Ftvc.join: size mismatch";
  { a with v = Array.mapi (fun i e -> entry_max e b.v.(i)) a.v }

let of_entries ~me v =
  if me < 0 || me >= Array.length v then invalid_arg "Ftvc.of_entries";
  { me; v = Array.copy v }

let restart t =
  let v = Array.copy t.v in
  let e = v.(t.me) in
  v.(t.me) <- { ver = e.ver + 1; ts = 0 };
  { t with v }

let leq a b =
  let n = Array.length a.v in
  let rec loop i = i >= n || (entry_leq a.v.(i) b.v.(i) && loop (i + 1)) in
  Array.length b.v = n && loop 0

let equal a b = a.v = b.v

let lt a b = leq a b && not (equal a b)

let concurrent a b = (not (leq a b)) && not (leq b a)

let size_words t = 2 * Array.length t.v

let pp_entry ppf e = Format.fprintf ppf "(%d,%d)" e.ver e.ts

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       pp_entry)
    (Array.to_list t.v)
