lib/clock/matrix.ml: Array Format Ftvc
