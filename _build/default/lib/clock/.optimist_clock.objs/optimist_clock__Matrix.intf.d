lib/clock/matrix.mli: Format Ftvc
