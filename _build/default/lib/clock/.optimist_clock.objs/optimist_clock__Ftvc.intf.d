lib/clock/ftvc.mli: Format
