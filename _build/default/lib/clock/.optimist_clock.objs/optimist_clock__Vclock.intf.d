lib/clock/vclock.mli: Format
