lib/clock/vclock.ml: Array Format Stdlib
