lib/clock/ftvc.ml: Array Format
