(** Simulated message-passing network.

    Models the transport the paper assumes: point-to-point application
    messages with no ordering guarantees by default (the protocol must not
    need FIFO), plus a *control plane* for recovery tokens which the paper
    assumes are delivered reliably — control traffic is never dropped and is
    queued across partitions until they heal.

    Two traffic classes:
    - [Data]: subject to the configured ordering, latency, loss and
      partitions. Used for application messages.
    - [Control]: reliable; delayed by partitions but never lost. Used for
      tokens and protocol-internal coordination (e.g. retransmission
      requests).

    All delays draw from the engine's PRNG, so runs remain deterministic. *)

type 'a t

type traffic = Data | Control

type ordering =
  | Fifo  (** per-channel FIFO, as Strom-Yemini and Peterson-Kearns require *)
  | Reorder  (** independent per-message latency; arbitrary interleaving *)

type latency =
  | Constant of float
  | Uniform of float * float
  | Exponential of float  (** mean *)

type config = {
  n : int;  (** number of endpoints, ids [0, n) *)
  ordering : ordering;
  latency : latency;
  control_latency : latency option;
      (** latency for [Control] traffic; defaults to [latency]. Letting the
          control plane be slower/faster than the data plane reproduces
          token/message races like the one in the paper's Figure 5 *)
  drop_probability : float;  (** applied to [Data] only *)
  duplicate_probability : float;  (** applied to [Data] only *)
}

val default_config : n:int -> config
(** Reordering network, uniform latency in [1, 10], no loss, no
    duplication. *)

type 'a envelope = {
  src : int;
  dst : int;
  sent_at : Optimist_sim.Engine.time;
  traffic : traffic;
  payload : 'a;
}

val create : Optimist_sim.Engine.t -> config -> 'a t

val set_handler : 'a t -> int -> ('a envelope -> unit) -> unit
(** Install the delivery callback for endpoint [id]. Must be set before the
    first delivery to that endpoint. *)

val send : 'a t -> ?traffic:traffic -> src:int -> dst:int -> 'a -> unit
(** Enqueue one message (default [Data]). [src = dst] loopback is allowed
    and goes through the same latency model. *)

val broadcast : 'a t -> ?traffic:traffic -> src:int -> 'a -> unit
(** Send to every endpoint except [src]. *)

(** {2 Partitions} *)

val partition : 'a t -> int list list -> unit
(** [partition t groups] blocks communication between endpoints in
    different groups. Endpoints absent from every group form an implicit
    final group. In-flight messages already scheduled still arrive (they
    were on the wire). *)

val heal : 'a t -> unit
(** Remove the partition and release queued [Control] (and partition-held
    [Data]) traffic with fresh latencies. *)

val reachable : 'a t -> int -> int -> bool

(** {2 Failure gating}

    A crashed process must not receive anything. The protocol layer marks
    endpoints down; messages addressed to a down endpoint are *held* and
    re-offered when the endpoint comes back up — modelling messages that sit
    in the OS receive buffer across a crash being lost, while tokens and
    later traffic reach the restarted incarnation. Whether held [Data]
    messages survive the crash is the caller's choice via [drop_held]. *)

val set_down : 'a t -> int -> unit

val set_up : 'a t -> ?drop_held_data:bool -> int -> unit
(** Bring an endpoint back. Held [Control] messages are always delivered;
    held [Data] messages are dropped when [drop_held_data] (default
    [false]), otherwise delivered with fresh latency. *)

val is_down : 'a t -> int -> bool

(** {2 Introspection} *)

val config : 'a t -> config

val stats : 'a t -> Optimist_util.Stats.Counters.t
(** Counters: [sent.data], [sent.control], [delivered.data],
    [delivered.control], [dropped.data], [duplicated.data],
    [held.partition], [held.down]. *)
