lib/net/network.ml: Array Float List Optimist_sim Optimist_util Printf
