lib/net/network.mli: Optimist_sim Optimist_util
