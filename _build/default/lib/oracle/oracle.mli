(** Omniscient observer used to verify the protocol against the paper's
    definitions, independently of the protocol's own data structures.

    The oracle listens on the {!Optimist_core.Types.tracer} interface and
    rebuilds the *ground-truth* computation: every state ever executed (as a
    node of a happened-before DAG with local-successor and message edges),
    which states a failure made {e lost}, and which states a rollback
    discarded. From the DAG it derives the paper's Section 5 definitions
    directly:

    - [lost(s)]: marked when a restart rewinds past [s];
    - [orphan(s)]: [s] is reachable from a lost state;
    - [obsolete(m)]: the send state of [m] is lost or orphan.

    {!check} then decides whether a finished run satisfies Theorem 2 and
    the Section 6.8 properties, without trusting the FTVCs or histories the
    protocol computed. The FTVCs recorded in the nodes are checked
    separately against Theorem 1 by {!check_theorem1}. *)

module Ftvc = Optimist_clock.Ftvc

type t

type status = Live | Lost | Discarded

val create : n:int -> t
(** One root node per process is created, carrying the initial clock. *)

val tracer : t -> Optimist_core.Types.tracer
(** The callback bundle to pass to [Process.create] / [System.create]. *)

(** {2 Ground truth} *)

val node_count : t -> int

val status_counts : t -> int * int * int
(** (live, lost, discarded). *)

val failures : t -> int
(** Number of [failed] events observed. *)

val rollbacks_of : t -> int -> int
(** Rollbacks performed by process [pid]. *)

val orphan_live_nodes : t -> int list
(** Live states reachable from a lost state — must be empty at quiescence
    (Theorem 2). *)

val unjustified_discards : t -> int list
(** Discarded states {e not} reachable from any lost state — each one is a
    needless rollback, contradicting "recover maximum recoverable state".
    Must be empty. *)

(** {2 Checks} *)

type violation = {
  check : string;
  detail : string;
}

val check : t -> violation list
(** Run all end-of-run consistency checks; empty means the run satisfies
    the paper's correctness properties:
    - [no-live-orphan]: no live state depends on a lost state;
    - [no-needless-rollback]: every discarded state was an orphan;
    - [live-delivery-live-sender]: no live state delivered a message whose
      send state did not survive;
    - [bounded-rollbacks]: each process rolled back at most once per
      failure. *)

val check_theorem1 : t -> sample:int -> seed:int64 -> violation list
(** Verify Theorem 1 on the surviving computation: for [sample] random
    pairs of live states (plus every pair when the DAG is small),
    [s → u ⇔ s.clock < u.clock]. Lost and orphan states are excluded, as
    in the theorem's statement. *)

val pp_stats : Format.formatter -> t -> unit

(** {2 Node iteration}

    Read-only view of the reconstructed computation, for rendering
    (see {!Timeline}) and custom analyses. *)

type node_view = {
  v_id : int;
  v_pid : int;
  v_clock : Ftvc.t;
  v_kind : Optimist_core.Types.state_kind option;  (** [None] for roots *)
  v_status : status;
  v_msg_parent : int option;  (** send state, for delivery nodes *)
}

val iter_nodes : t -> (node_view -> unit) -> unit
(** In creation (id) order — a linearisation consistent with causality. *)
