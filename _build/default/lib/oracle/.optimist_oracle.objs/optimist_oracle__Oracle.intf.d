lib/oracle/oracle.mli: Format Optimist_clock Optimist_core
