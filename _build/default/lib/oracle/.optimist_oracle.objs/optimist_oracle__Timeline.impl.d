lib/oracle/timeline.ml: Array Buffer Format List Optimist_clock Optimist_core Oracle Printf String
