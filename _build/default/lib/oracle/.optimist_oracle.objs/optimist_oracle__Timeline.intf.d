lib/oracle/timeline.mli: Format Oracle
