lib/oracle/oracle.ml: Array Format Hashtbl List Optimist_clock Optimist_core Optimist_util Printf
