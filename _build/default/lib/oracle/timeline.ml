module Ftvc = Optimist_clock.Ftvc
module Types = Optimist_core.Types

let clock_string clock =
  let b = Buffer.create 32 in
  Array.iter
    (fun (e : Ftvc.entry) ->
      Buffer.add_string b (Printf.sprintf "(%d,%d)" e.Ftvc.ver e.Ftvc.ts))
    (Ftvc.entries clock);
  Buffer.contents b

let label (v : Oracle.node_view) =
  let kind =
    match v.Oracle.v_kind with
    | None -> "."
    | Some (Types.K_deliver uid) -> Printf.sprintf "recv<-m%d" uid
    | Some Types.K_inject -> "stim"
    | Some Types.K_send -> "send"
    | Some Types.K_restart -> "RESTART"
    | Some Types.K_rollback -> "ROLLBACK"
  in
  let fate =
    match v.Oracle.v_status with
    | Oracle.Live -> ""
    | Oracle.Lost -> " +lost"
    | Oracle.Discarded -> " +dead"
  in
  Printf.sprintf "%s %s%s" kind (clock_string v.Oracle.v_clock) fate

let render ?(max_rows = 60) t =
  let rows = ref [] in
  let count = ref 0 in
  let n = ref 0 in
  Oracle.iter_nodes t (fun v ->
      n := max !n (v.Oracle.v_pid + 1);
      incr count;
      rows := (v.Oracle.v_id, v.Oracle.v_pid, label v) :: !rows);
  let rows = List.rev !rows in
  let elided = max 0 (!count - max_rows) in
  let rows = if elided > 0 then List.filteri (fun i _ -> i >= elided) rows else rows in
  let n = !n in
  (* Column width: widest label per process, bounded. *)
  let widths = Array.make n 8 in
  List.iter
    (fun (_, pid, l) -> widths.(pid) <- max widths.(pid) (min 44 (String.length l)))
    rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%-5s" "#");
  for pid = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%-*s " widths.(pid) (Printf.sprintf "P%d" pid))
  done;
  Buffer.add_char buf '\n';
  if elided > 0 then
    Buffer.add_string buf (Printf.sprintf "(... %d earlier states elided ...)\n" elided);
  List.iter
    (fun (id, pid, l) ->
      Buffer.add_string buf (Printf.sprintf "%-5d" id);
      for j = 0 to n - 1 do
        let cell = if j = pid then l else "" in
        Buffer.add_string buf (Printf.sprintf "%-*s " widths.(j) cell)
      done;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
