(** ASCII space-time rendering of a computation recorded by the oracle —
    the textual analogue of the paper's Figures 1 and 5.

    One column per process; rows follow state-creation order (a
    linearisation consistent with causality). Each state shows its kind,
    its FTVC, and its fate:

    {v
    #    P0                      P1
    0    . (0,1)(0,0)            . (0,0)(0,1)
    3    send (0,2)(0,0)
    4                            recv<-#1 (0,2)(0,3) +dead
    7                            RESTART (0,2)(1,0)
    v}

    [+lost] marks states destroyed by a failure, [+dead] states discarded
    by a rollback. *)

val render : ?max_rows:int -> Oracle.t -> string
(** At most [max_rows] (default 60) most-recent rows; older rows are
    elided with a count. *)

val pp : Format.formatter -> Oracle.t -> unit
