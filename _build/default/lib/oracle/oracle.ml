module Ftvc = Optimist_clock.Ftvc
module Types = Optimist_core.Types
module Prng = Optimist_util.Prng

type status = Live | Lost | Discarded

type node = {
  id : int;
  pid : int;
  clock : Ftvc.t;
  kind : Types.state_kind option; (* None for the root states *)
  parent : int option;
  msg_parent : int option; (* send state, for delivery nodes *)
  mutable children : int list; (* forward edges: local successors + deliveries *)
  mutable status : status;
}

type t = {
  n : int;
  mutable nodes : node array;
  mutable len : int;
  current : int array; (* current live state of each process *)
  send_state : (int, int) Hashtbl.t; (* message uid -> send node *)
  rollback_count : int array;
  mutable failure_count : int;
  mutable delivered_count : int;
  mutable obsolete_discards : int;
  mutable held_count : int;
}

let node t id = t.nodes.(id)

let push t n =
  if t.len = Array.length t.nodes then begin
    let next = max 64 (2 * t.len) in
    let data = Array.make next n in
    Array.blit t.nodes 0 data 0 t.len;
    t.nodes <- data
  end;
  t.nodes.(t.len) <- n;
  t.len <- t.len + 1

let add_node t ~pid ~clock ~kind ~parent ~msg_parent =
  let id = t.len in
  let n =
    { id; pid; clock; kind; parent; msg_parent; children = []; status = Live }
  in
  push t n;
  (match parent with
  | Some p -> (node t p).children <- id :: (node t p).children
  | None -> ());
  (match msg_parent with
  | Some p -> (node t p).children <- id :: (node t p).children
  | None -> ());
  id

let create ~n =
  let t =
    {
      n;
      nodes = [||];
      len = 0;
      current = Array.make n 0;
      send_state = Hashtbl.create 256;
      rollback_count = Array.make n 0;
      failure_count = 0;
      delivered_count = 0;
      obsolete_discards = 0;
      held_count = 0;
    }
  in
  for pid = 0 to n - 1 do
    let clock = Ftvc.create ~n ~me:pid in
    t.current.(pid) <- add_node t ~pid ~clock ~kind:None ~parent:None ~msg_parent:None
  done;
  t

let on_state_created t ~pid ~clock ~kind =
  let msg_parent =
    match (kind : Types.state_kind) with
    | Types.K_deliver uid -> (
        match Hashtbl.find_opt t.send_state uid with
        | Some s -> Some s
        | None -> failwith "Oracle: delivery of an unknown message")
    | _ -> None
  in
  let parent = Some t.current.(pid) in
  t.current.(pid) <- add_node t ~pid ~clock ~kind:(Some kind) ~parent ~msg_parent

let on_message_sent t ~src ~uid = Hashtbl.replace t.send_state uid t.current.(src)

(* Rewind process [pid] to the state whose clock equals [clock], marking
   everything walked over as lost (after a failure) or discarded (after a
   rollback). Live-path clocks are unique, so the match is unambiguous. *)
let on_restored t ~pid ~clock ~failure =
  if not failure then t.rollback_count.(pid) <- t.rollback_count.(pid) + 1;
  let mark = if failure then Lost else Discarded in
  let rec walk id =
    let n = node t id in
    if Ftvc.equal n.clock clock then id
    else begin
      n.status <- mark;
      match n.parent with
      | Some p -> walk p
      | None -> failwith "Oracle: restored state not found on the live path"
    end
  in
  t.current.(pid) <- walk t.current.(pid)

let tracer t : Types.tracer =
  {
    Types.state_created = (fun ~pid ~clock ~kind -> on_state_created t ~pid ~clock ~kind);
    message_sent = (fun ~src ~uid -> on_message_sent t ~src ~uid);
    failed = (fun ~pid:_ -> t.failure_count <- t.failure_count + 1);
    restored = (fun ~pid ~clock ~failure -> on_restored t ~pid ~clock ~failure);
    delivered = (fun ~pid:_ ~uid:_ -> t.delivered_count <- t.delivered_count + 1);
    discarded_obsolete =
      (fun ~pid:_ ~uid:_ -> t.obsolete_discards <- t.obsolete_discards + 1);
    held = (fun ~pid:_ ~uid:_ -> t.held_count <- t.held_count + 1);
  }

let node_count t = t.len

let status_counts t =
  let live = ref 0 and lost = ref 0 and discarded = ref 0 in
  for i = 0 to t.len - 1 do
    match (node t i).status with
    | Live -> incr live
    | Lost -> incr lost
    | Discarded -> incr discarded
  done;
  (!live, !lost, !discarded)

let failures t = t.failure_count

let rollbacks_of t pid = t.rollback_count.(pid)

(* Forward reachability from every lost state: the set of orphans (plus the
   lost states themselves, which we filter per use). *)
let reachable_from_lost t =
  let reached = Array.make t.len false in
  let rec visit id =
    if not reached.(id) then begin
      reached.(id) <- true;
      List.iter visit (node t id).children
    end
  in
  for i = 0 to t.len - 1 do
    if (node t i).status = Lost then List.iter visit (node t i).children
  done;
  reached

let orphan_live_nodes t =
  let reached = reachable_from_lost t in
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if reached.(i) && (node t i).status = Live then acc := i :: !acc
  done;
  !acc

let unjustified_discards t =
  let reached = reachable_from_lost t in
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if (not reached.(i)) && (node t i).status = Discarded then acc := i :: !acc
  done;
  !acc

type violation = { check : string; detail : string }

let pp_node ppf n =
  Format.fprintf ppf "state #%d of P%d clock %a" n.id n.pid Ftvc.pp n.clock

let check t =
  let violations = ref [] in
  let add check detail = violations := { check; detail } :: !violations in
  List.iter
    (fun id ->
      add "no-live-orphan"
        (Format.asprintf "live state depends on a lost state: %a" pp_node
           (node t id)))
    (orphan_live_nodes t);
  List.iter
    (fun id ->
      add "no-needless-rollback"
        (Format.asprintf "discarded state was not an orphan: %a" pp_node
           (node t id)))
    (unjustified_discards t);
  for i = 0 to t.len - 1 do
    let n = node t i in
    if n.status = Live then
      match n.msg_parent with
      | Some s when (node t s).status <> Live ->
          add "live-delivery-live-sender"
            (Format.asprintf "%a delivered a message sent by dead %a" pp_node
               n pp_node (node t s))
      | _ -> ()
  done;
  Array.iteri
    (fun pid count ->
      if count > t.failure_count then
        add "bounded-rollbacks"
          (Printf.sprintf "P%d rolled back %d times for %d failures" pid count
             t.failure_count))
    t.rollback_count;
  List.rev !violations

(* s happens-before u: backward search from u through local and message
   parents. Edges always point from a lower id to a higher one, so the
   search is bounded. *)
let happens_before t s u =
  s <> u
  &&
  let seen = Hashtbl.create 64 in
  let rec visit id =
    id = s
    || (id > s && not (Hashtbl.mem seen id))
       &&
       (Hashtbl.add seen id ();
        let n = node t id in
        let from_parent = match n.parent with Some p -> visit p | None -> false in
        from_parent
        || match n.msg_parent with Some p -> visit p | None -> false)
  in
  visit u

let check_theorem1 t ~sample ~seed =
  let live =
    Array.of_list
      (List.filter_map
         (fun i -> if (node t i).status = Live then Some i else None)
         (List.init t.len (fun i -> i)))
  in
  let reached = reachable_from_lost t in
  let useful = Array.to_list live |> List.filter (fun i -> not reached.(i)) in
  let useful = Array.of_list useful in
  let violations = ref [] in
  let verify i j =
    if i <> j then begin
      let a = node t i and b = node t j in
      let hb = happens_before t i j in
      let clt = Ftvc.lt a.clock b.clock in
      if hb <> clt then
        violations :=
          {
            check = "theorem1";
            detail =
              Format.asprintf "%a %s %a but clock comparison says %b" pp_node a
                (if hb then "happens-before" else "does-not-happen-before")
                pp_node b clt;
          }
          :: !violations
    end
  in
  let m = Array.length useful in
  if m * m <= 4 * sample then
    Array.iter (fun i -> Array.iter (fun j -> verify i j) useful) useful
  else begin
    let rng = Prng.create seed in
    for _ = 1 to sample do
      let i = useful.(Prng.int rng m) and j = useful.(Prng.int rng m) in
      verify i j
    done
  end;
  List.rev !violations

let pp_stats ppf t =
  let live, lost, discarded = status_counts t in
  Format.fprintf ppf
    "states=%d live=%d lost=%d discarded=%d failures=%d delivered=%d \
     obsolete_discarded=%d held=%d"
    t.len live lost discarded t.failure_count t.delivered_count
    t.obsolete_discards t.held_count

type node_view = {
  v_id : int;
  v_pid : int;
  v_clock : Ftvc.t;
  v_kind : Types.state_kind option;
  v_status : status;
  v_msg_parent : int option;
}

let iter_nodes t f =
  for i = 0 to t.len - 1 do
    let n = node t i in
    f
      {
        v_id = n.id;
        v_pid = n.pid;
        v_clock = n.clock;
        v_kind = n.kind;
        v_status = n.status;
        v_msg_parent = n.msg_parent;
      }
  done
