lib/core/system.mli: Optimist_net Optimist_sim Process Types
