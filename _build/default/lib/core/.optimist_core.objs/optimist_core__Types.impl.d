lib/core/types.ml: Optimist_clock
