lib/core/process.mli: Optimist_clock Optimist_history Optimist_net Optimist_sim Optimist_util Types
