lib/core/system.ml: Array Optimist_net Optimist_sim Optimist_util Process Types
