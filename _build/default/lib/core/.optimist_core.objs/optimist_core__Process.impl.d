lib/core/process.ml: Array Hashtbl List Optimist_clock Optimist_history Optimist_net Optimist_sim Optimist_storage Optimist_util Types
