(* Tests of the Table 1 baseline protocols, driven through the runner so
   every protocol sees the same workload and fault schedule. *)

module Runner = Optimist_runner.Runner
module Schedule = Optimist_workload.Schedule
module Network = Optimist_net.Network

let base =
  {
    Runner.default_params with
    Runner.n = 4;
    seed = 17L;
    rate = 0.05;
    duration = 400.0;
    hops = 5;
  }

let with_failure at pid p =
  { p with Runner.faults = [ Schedule.Crash { at; pid } ] }

let run p = Runner.run p

(* --- failure-free: every protocol moves traffic and nobody recovers --- *)

let test_failure_free_all () =
  List.iter
    (fun protocol ->
      let r = run { base with Runner.protocol } in
      let name = Runner.protocol_name protocol in
      if Runner.counter r "delivered" = 0 then
        Alcotest.failf "%s delivered nothing" name;
      if Runner.counter r "restarts" <> 0 then
        Alcotest.failf "%s restarted without failures" name;
      if Runner.counter r "rollbacks" <> 0 then
        Alcotest.failf "%s rolled back without failures" name)
    Runner.all_protocols

(* --- pessimistic: recovery is local; peers never roll back; every
   delivery paid a synchronous write --- *)

let test_pessimistic () =
  let r = run (with_failure 250.0 1 { base with Runner.protocol = Runner.Pessimistic }) in
  Alcotest.(check int) "one restart" 1 (Runner.counter r "restarts");
  Alcotest.(check int) "no rollbacks anywhere" 0 (Runner.counter r "rollbacks");
  Alcotest.(check bool) "blocking cost accrued" true
    (Runner.counter r "blocked_time_x1000" > 0);
  Alcotest.(check bool) "replayed the log" true (Runner.counter r "replayed" > 0)

(* --- sender-based: recovery needs peer cooperation (retransmissions) --- *)

let test_sender_based () =
  let r = run (with_failure 250.0 1 { base with Runner.protocol = Runner.Sender_based }) in
  Alcotest.(check int) "one restart" 1 (Runner.counter r "restarts");
  Alcotest.(check int) "no peer rollbacks" 0 (Runner.counter r "rollbacks");
  Alcotest.(check bool) "peers retransmitted" true
    (Runner.counter r "retransmitted" > 0);
  Alcotest.(check bool) "acks flowed" true
    (Runner.counter r "control_messages" > 0)

let test_sender_based_failure_free_acks () =
  let r = run { base with Runner.protocol = Runner.Sender_based } in
  (* Every delivery generates an ack + confirm pair. *)
  Alcotest.(check bool) "control overhead present without failures" true
    (Runner.counter r "control_messages" >= Runner.counter r "delivered")

(* --- strom-yemini: recovers, but pays conservative rollbacks that
   Damani-Garg avoids on the same schedule --- *)

let test_strom_yemini_recovers () =
  let faults =
    [
      Schedule.Crash { at = 150.0; pid = 1 };
      Schedule.Crash { at = 250.0; pid = 2 };
    ]
  in
  let p = { base with Runner.duration = 500.0; faults } in
  let sy = run { p with Runner.protocol = Runner.Strom_yemini } in
  let dg = run { p with Runner.protocol = Runner.Damani_garg } in
  Alcotest.(check int) "sy restarts" 2 (Runner.counter sy "restarts");
  Alcotest.(check bool) "sy at least as many rollbacks as dg" true
    (Runner.counter sy "rollbacks" >= Runner.counter dg "rollbacks")

(* --- strom-yemini's information loss, deterministically: a message from
   a new incarnation reaches a peer before the announcement that ended the
   old one (a "blind jump"); the late announcement then forces a
   conservative rollback that Damani-Garg's history mechanism would have
   avoided --- *)

let test_strom_yemini_blind_jump () =
  let module Engine = Optimist_sim.Engine in
  let module SY = Optimist_protocols.Strom_yemini in
  let module Traffic = Optimist_workload.Traffic in
  let n = 3 in
  let engine = Engine.create ~seed:4L () in
  let net =
    SY.make_net engine
      {
        (Network.default_config ~n) with
        Network.latency = Network.Constant 2.0;
        (* announcements crawl: the blind jump happens first *)
        control_latency = Some (Network.Constant 40.0);
      }
  in
  let uid = ref 0 in
  let next_uid () = incr uid; !uid in
  let app = Traffic.app ~n Traffic.Ring in
  let procs =
    Array.init n (fun id -> SY.create ~engine ~net ~app ~id ~n ~next_uid ())
  in
  (* P0 processes something volatile and crashes; after restarting it sends
     to P1 (ring hop) from incarnation 1. *)
  ignore
    (Engine.schedule_at engine 5.0 (fun () ->
         SY.inject procs.(0) (Traffic.fresh ~key:1 ~hops:0)));
  ignore (Engine.schedule_at engine 10.0 (fun () -> SY.fail procs.(0)));
  (* restart at 30; the announcement arrives everywhere at ~70. *)
  ignore
    (Engine.schedule_at engine 31.0 (fun () ->
         SY.inject procs.(0) (Traffic.fresh ~key:2 ~hops:1)));
  Engine.run engine;
  let c1 = SY.counters procs.(1) in
  let get name =
    match List.assoc_opt name c1 with Some v -> v | None -> 0
  in
  Alcotest.(check bool) "blind jump recorded" true (get "blind_jumps" >= 1);
  Alcotest.(check bool) "conservative rollback forced" true
    (get "conservative_rollbacks" >= 1)

(* --- peterson-kearns: synchronous recovery blocks the restarting
   process until all peers acknowledge --- *)

let test_peterson_kearns () =
  let r =
    run (with_failure 200.0 1 { base with Runner.protocol = Runner.Peterson_kearns })
  in
  Alcotest.(check int) "one restart" 1 (Runner.counter r "restarts");
  Alcotest.(check bool) "recovery blocked on acks" true
    (Runner.counter r "blocked_time_x1000" > 0);
  Alcotest.(check bool) "token round ran" true
    (Runner.counter r "tokens_received" >= 3)

(* --- checkpoint-only: rollbacks are not bounded by failures (domino);
   every recovery loses work permanently --- *)

let test_checkpoint_only_domino () =
  let faults =
    [
      Schedule.Crash { at = 200.0; pid = 0 };
      Schedule.Crash { at = 320.0; pid = 2 };
    ]
  in
  let p =
    {
      base with
      Runner.protocol = Runner.Checkpoint_only;
      duration = 500.0;
      rate = 0.08;
      faults;
    }
  in
  let r = run p in
  Alcotest.(check int) "restarts" 2 (Runner.counter r "restarts");
  Alcotest.(check bool) "peer rollbacks happened" true
    (Runner.counter r "rollbacks" > 0);
  Alcotest.(check bool) "work was permanently lost" true
    (Runner.counter r "lost_states" > 0)

(* --- coordinated checkpointing: every checkpoint is a blocking round,
   and a single failure rolls the whole system back to the line --- *)

let test_coordinated () =
  let p =
    with_failure 250.0 1 { base with Runner.protocol = Runner.Coordinated }
  in
  let r = run p in
  Alcotest.(check int) "one restart" 1 (Runner.counter r "restarts");
  (* All peers roll back to the committed line. *)
  Alcotest.(check int) "all peers rolled back" (base.Runner.n - 1)
    (Runner.counter r "rollbacks");
  Alcotest.(check bool) "work was forfeited" true
    (Runner.counter r "lost_states" > 0);
  (* Even without failures the rounds block the application. *)
  let r0 = run { base with Runner.protocol = Runner.Coordinated } in
  Alcotest.(check bool) "synchronization blocks failure-free" true
    (Runner.counter r0 "blocked_time_x1000" > 0);
  Alcotest.(check bool) "3(n-1) control msgs per round" true
    (Runner.counter r0 "control_messages"
    >= 3 * (base.Runner.n - 1) * (Runner.counter r0 "checkpoints" / base.Runner.n))

(* --- the comparison the paper's abstract makes: on the same schedule,
   Damani-Garg rolls back each process at most once per failure --- *)

let test_dg_minimal_rollback_bound () =
  let faults =
    [
      Schedule.Crash { at = 150.0; pid = 0 };
      Schedule.Crash { at = 250.0; pid = 1 };
      Schedule.Crash { at = 350.0; pid = 2 };
    ]
  in
  let p =
    { base with Runner.duration = 600.0; faults; Runner.protocol = Runner.Damani_garg }
  in
  let r = run p in
  (* 3 failures, n=4: each of the other processes may roll back at most
     once per failure. *)
  Alcotest.(check bool) "rollbacks bounded by failures*(n-1)" true
    (Runner.counter r "rollbacks" <= 3 * 3)

(* --- determinism of the runner itself --- *)

let test_runner_deterministic () =
  List.iter
    (fun protocol ->
      let p = with_failure 200.0 1 { base with Runner.protocol } in
      let a = run p and b = run p in
      if a.Runner.r_digests <> b.Runner.r_digests then
        Alcotest.failf "%s is not deterministic" (Runner.protocol_name protocol);
      if a.Runner.r_events <> b.Runner.r_events then
        Alcotest.failf "%s event counts differ" (Runner.protocol_name protocol))
    Runner.all_protocols

let suite =
  [
    Alcotest.test_case "failure-free: all protocols" `Quick test_failure_free_all;
    Alcotest.test_case "pessimistic logging" `Quick test_pessimistic;
    Alcotest.test_case "sender-based logging" `Quick test_sender_based;
    Alcotest.test_case "sender-based ack overhead" `Quick
      test_sender_based_failure_free_acks;
    Alcotest.test_case "strom-yemini recovers, rolls back more" `Quick
      test_strom_yemini_recovers;
    Alcotest.test_case "strom-yemini blind jump costs a conservative rollback"
      `Quick test_strom_yemini_blind_jump;
    Alcotest.test_case "peterson-kearns blocks on acks" `Quick test_peterson_kearns;
    Alcotest.test_case "checkpoint-only domino" `Quick test_checkpoint_only_domino;
    Alcotest.test_case "coordinated checkpointing costs" `Quick test_coordinated;
    Alcotest.test_case "damani-garg minimal rollback bound" `Quick
      test_dg_minimal_rollback_bound;
    Alcotest.test_case "runner determinism (all protocols)" `Quick
      test_runner_deterministic;
  ]
