(* Model-checker tests: the DPOR/naive equivalence property on tiny
   configurations, one catch test per shipped mutant (including the
   replay -> offline-lint round trip), and counterexample JSON
   round-tripping. *)

module Model = Optimist_mc.Model
module Explorer = Optimist_mc.Explorer
module Strategy = Optimist_mc.Strategy
module Dpor = Optimist_mc.Dpor
module Cx = Optimist_mc.Counterexample
module Check = Optimist_check.Check
module Runner = Optimist_runner.Runner

let explore ?(mode = Explorer.Dpor) ?(depth = 6) ?(fingerprint = false)
    ?(stop_on_violation = false) ?(log = true) cfg =
  Explorer.explore
    ~build:(fun () -> Model.build cfg)
    ~crashes:cfg.Model.crashes
    {
      Explorer.default_opts with
      Explorer.depth;
      mode;
      fingerprint;
      stop_on_violation;
      log_schedules = log;
    }

(* DPOR must visit a subset of the naive schedules yet report the
   identical violation set — checked both on a correct model and on a
   violating mutant, with fingerprinting off so neither side prunes by
   state. *)
let dpor_vs_naive cfg ~depth () =
  let naive = explore ~mode:Explorer.Naive ~depth cfg in
  let dpor = explore ~mode:Explorer.Dpor ~depth cfg in
  Alcotest.(check bool) "naive exhausted" true naive.Explorer.o_exhausted;
  Alcotest.(check bool) "dpor exhausted" true dpor.Explorer.o_exhausted;
  Alcotest.(check bool)
    "dpor explores no more schedules than naive" true
    (dpor.Explorer.o_schedules <= naive.Explorer.o_schedules);
  let key ds = Dpor.seq_to_string ds in
  let module S = Set.Make (String) in
  let naive_set = S.of_list (List.map key naive.Explorer.o_schedule_log) in
  List.iter
    (fun ds ->
      Alcotest.(check bool)
        (Printf.sprintf "dpor schedule [%s] also enumerated by naive" (key ds))
        true (S.mem (key ds) naive_set))
    dpor.Explorer.o_schedule_log;
  Alcotest.(check (list string))
    "identical violation sets" naive.Explorer.o_all_violations
    dpor.Explorer.o_all_violations

let test_equiv_clean () =
  dpor_vs_naive
    { Model.default_cfg with Model.n = 2; msgs = 2; hops = 1; crashes = 1 }
    ~depth:5 ()

let test_equiv_mutant () =
  dpor_vs_naive
    {
      Model.default_cfg with
      Model.n = 2;
      msgs = 1;
      hops = 1;
      crashes = 1;
      mutation = "eager-rollback";
    }
    ~depth:6 ()

(* The acceptance configuration: unmutated Damani-Garg explored
   exhaustively, and the reduction actually reduces. *)
let test_reduction_and_clean_dg () =
  let cfg = Model.default_cfg in
  let naive =
    explore ~mode:Explorer.Naive ~depth:8 ~fingerprint:true ~log:false cfg
  in
  let dpor =
    explore ~mode:Explorer.Dpor ~depth:8 ~fingerprint:true ~log:false cfg
  in
  Alcotest.(check bool) "exhaustive" true
    (naive.Explorer.o_exhausted && dpor.Explorer.o_exhausted);
  Alcotest.(check (list string)) "no violations (naive)" []
    naive.Explorer.o_all_violations;
  Alcotest.(check (list string)) "no violations (dpor)" []
    dpor.Explorer.o_all_violations;
  Alcotest.(check bool)
    (Printf.sprintf "dpor (%d) strictly fewer schedules than naive (%d)"
       dpor.Explorer.o_schedules naive.Explorer.o_schedules)
    true
    (dpor.Explorer.o_schedules < naive.Explorer.o_schedules)

(* Each shipped mutant must be caught, its counterexample must replay,
   and the replayed JSONL trace must be rejected by the offline linter
   on exactly the mutant's rule. *)
let test_mutant (m : Model.mutant) () =
  let cfg =
    {
      Model.default_cfg with
      Model.protocol = m.Model.mu_protocol;
      mutation = m.Model.mu_name;
    }
  in
  let outcome =
    explore ~mode:Explorer.Dpor ~depth:8 ~fingerprint:true
      ~stop_on_violation:true ~log:false cfg
  in
  match outcome.Explorer.o_violation with
  | None -> Alcotest.failf "mutant %s: no counterexample found" m.Model.mu_name
  | Some (decisions, violations) ->
      Alcotest.(check bool)
        (Printf.sprintf "violations mention %s" m.Model.mu_rule)
        true
        (List.exists
           (fun v ->
             String.length v >= String.length m.Model.mu_rule
             && String.sub v 0 (String.length m.Model.mu_rule)
                = m.Model.mu_rule)
           violations);
      let cx =
        { Cx.cx_cfg = cfg; cx_decisions = decisions;
          cx_violations = violations }
      in
      let file = Filename.temp_file "mc_cx" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          let oc = open_out file in
          let replayed =
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> Cx.replay ~write:(output_string oc) cx)
          in
          Alcotest.(check bool) "replay reproduces a violation" true
            (replayed <> []);
          match Check.Lint.run file with
          | Error msg -> Alcotest.failf "lint failed to run: %s" msg
          | Ok report ->
              Alcotest.(check bool)
                (Printf.sprintf "offline linter flags %s" m.Model.mu_rule)
                true
                (List.exists
                   (fun (v : Check.violation) ->
                     v.Check.rule.Check.id = m.Model.mu_rule)
                   report.Check.Lint.violations))

(* Counterexamples survive the JSON round trip byte-exactly. *)
let test_cx_roundtrip () =
  let cx =
    {
      Cx.cx_cfg =
        { Model.default_cfg with Model.mutation = "eager-rollback" };
      cx_decisions =
        [
          Dpor.Fire { kind = "deliver"; pid = 1; src = 0; info = "data";
                      nth = 1 };
          Dpor.Crash 2;
          Dpor.Fire { kind = "timer"; pid = 0; src = -1; info = "flush";
                      nth = 0 };
        ];
      cx_violations = [ "OPT011 rollback-bound: rollback without a detected \
                         orphan" ];
    }
  in
  match Cx.of_string (Cx.to_string cx) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok cx' ->
      Alcotest.(check bool) "round trip is identity" true (cx = cx');
      Alcotest.(check string) "second render is stable" (Cx.to_string cx)
        (Cx.to_string cx')

(* Replaying a decision prefix must be deterministic: the same prefix
   reaches the same branch points and the same verdict. *)
let test_replay_deterministic () =
  let cfg = { Model.default_cfg with Model.mutation = "eager-rollback" } in
  let outcome =
    explore ~mode:Explorer.Dpor ~depth:8 ~fingerprint:true
      ~stop_on_violation:true ~log:false cfg
  in
  match outcome.Explorer.o_violation with
  | None -> Alcotest.fail "expected a counterexample"
  | Some (decisions, violations) ->
      let run () =
        Strategy.execute
          ~build:(fun () -> Model.build cfg)
          ~crashes:cfg.Model.crashes ~prefix:decisions
          ~depth:(List.length decisions) ()
      in
      let a = run () and b = run () in
      Alcotest.(check (list string))
        "same violations as the explorer" violations
        a.Strategy.x_violations;
      Alcotest.(check bool) "two replays agree" true
        (Strategy.decisions_of a = Strategy.decisions_of b
        && a.Strategy.x_violations = b.Strategy.x_violations)

let suite =
  [
    Alcotest.test_case "dpor-subset-equal-violations (clean)" `Quick
      test_equiv_clean;
    Alcotest.test_case "dpor-subset-equal-violations (mutant)" `Quick
      test_equiv_mutant;
    Alcotest.test_case "unmutated DG exhaustive, dpor reduces" `Quick
      test_reduction_and_clean_dg;
    Alcotest.test_case "counterexample json round-trip" `Quick
      test_cx_roundtrip;
    Alcotest.test_case "replay deterministic" `Quick
      test_replay_deterministic;
  ]
  @ List.map
      (fun (m : Model.mutant) ->
        Alcotest.test_case ("catch mutant " ^ m.Model.mu_name) `Quick
          (test_mutant m))
      Model.mutants
