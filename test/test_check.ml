(* Tests of the optimist.check sanitizer/linter: the rule table, the
   FTVC comparison laws the checker relies on (property-tested via
   Prng), mutated-trace fixtures that must each trip exactly their own
   rule, direct monitor feeds for rules the fixtures don't cover, the
   streaming JSONL reader, and the acceptance sweep: every protocol
   under failures must sanitize clean. *)

module Check = Optimist_check.Check
module Trace = Optimist_obs.Trace
module Metrics = Optimist_obs.Metrics
module Ftvc = Optimist_clock.Ftvc
module Vclock = Optimist_clock.Vclock
module Prng = Optimist_util.Prng
module Runner = Optimist_runner.Runner
module Schedule = Optimist_workload.Schedule

let ev ?(at = 1.0) ?(pid = 0) ?(ver = 0) ?(clock = [||]) kind =
  { Trace.at; pid; ver; clock; kind }

let ids vs = List.map (fun (v : Check.violation) -> v.Check.rule.Check.id) vs

(* --- rule table --- *)

let test_rule_table () =
  Alcotest.(check int) "rule count" 14 (List.length Check.rules);
  List.iteri
    (fun i (r : Check.rule) ->
      Alcotest.(check string) "ids sequential"
        (Printf.sprintf "OPT%03d" (i + 1))
        r.Check.id)
    Check.rules;
  (match Check.find_rule "opt005" with
  | Some r -> Alcotest.(check string) "id lookup case-insensitive" "OPT005" r.Check.id
  | None -> Alcotest.fail "id lookup failed");
  (match Check.find_rule "clock-monotonic" with
  | Some r -> Alcotest.(check string) "slug lookup" "OPT005" r.Check.id
  | None -> Alcotest.fail "slug lookup failed");
  Alcotest.(check bool) "unknown rejected" true (Check.find_rule "OPT099" = None);
  Alcotest.(check bool) "offline excludes oracle-agreement" false
    (List.mem "OPT014" Check.offline_ids);
  Alcotest.(check bool) "all ids include oracle-agreement" true
    (List.mem "OPT014" Check.all_ids)

(* --- FTVC comparison laws (property tests) --- *)

(* Small ranges so the leq premises of antisymmetry/transitivity are
   hit often across the 2000 draws. *)
let random_clock rng w =
  Array.init w (fun _ -> { Ftvc.ver = Prng.int rng 3; ts = Prng.int rng 4 })

let test_clock_laws () =
  let rng = Prng.create 42L in
  for _ = 1 to 2000 do
    let w = Prng.int_in rng 1 4 in
    let a = random_clock rng w in
    let b = random_clock rng w in
    let c = random_clock rng w in
    if not (Check.clock_leq a a) then Alcotest.fail "reflexivity";
    if Check.clock_leq a b && Check.clock_leq b a && not (Check.clock_equal a b)
    then Alcotest.fail "antisymmetry";
    if Check.clock_leq a b && Check.clock_leq b c && not (Check.clock_leq a c)
    then Alcotest.fail "transitivity"
  done;
  Alcotest.(check bool) "width mismatch incomparable" false
    (Check.clock_leq [||] (random_clock rng 2))

let test_clock_vclock_agreement () =
  let rng = Prng.create 7L in
  for _ = 1 to 2000 do
    let w = Prng.int_in rng 1 4 in
    let ts_a = Array.init w (fun _ -> Prng.int rng 5) in
    let ts_b = Array.init w (fun _ -> Prng.int rng 5) in
    let fc ts = Array.map (fun t -> { Ftvc.ver = 0; ts = t }) ts in
    let vc ts = Vclock.of_list (Array.to_list ts) in
    Alcotest.(check bool) "agrees with Vclock when all versions equal"
      (Vclock.leq (vc ts_a) (vc ts_b))
      (Check.clock_leq (fc ts_a) (fc ts_b))
  done

(* --- fixtures --- *)

(* Resolve fixtures next to the test binary so both `dune runtest`
   (cwd = build sandbox) and `dune exec` (cwd = repo root) find them. *)
let fixture file =
  Filename.concat (Filename.dirname Sys.executable_name)
    (Filename.concat "fixtures" file)

let lint ?only ?ignore file =
  match Check.Lint.run ?only ?ignore (fixture file) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "lint %s: %s" file msg

let test_clean_fixture () =
  let r = lint "clean.jsonl" in
  Alcotest.(check int) "events" 15 r.Check.Lint.events;
  Alcotest.(check int) "no parse errors" 0 r.Check.Lint.parse_errors;
  Alcotest.(check (list string)) "clean" [] (ids r.Check.Lint.violations)

(* Each mutated fixture must trip exactly its own rule and nothing
   else — the linter's rules are independent enough to name the single
   seeded defect. *)
let test_mutated_fixtures () =
  List.iter
    (fun (file, rule, count) ->
      let r = lint file in
      Alcotest.(check (list string))
        (file ^ " trips exactly " ^ rule)
        (List.init count (fun _ -> rule))
        (ids r.Check.Lint.violations))
    [
      ("forged_orphan_delivery.jsonl", "OPT004", 1);
      ("stale_version_deliver.jsonl", "OPT008", 1);
      ("double_rollback.jsonl", "OPT011", 1);
      ("ftvc_regression.jsonl", "OPT005", 1);
      ("bad_schema.jsonl", "OPT001", 2);
    ]

let test_violation_line_numbers () =
  let r = lint "ftvc_regression.jsonl" in
  match r.Check.Lint.violations with
  | [ v ] -> Alcotest.(check (option int)) "1-based line" (Some 2) v.Check.line
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_lint_filters () =
  let r = lint ~ignore:[ "OPT004" ] "forged_orphan_delivery.jsonl" in
  Alcotest.(check (list string)) "--ignore silences" [] (ids r.Check.Lint.violations);
  let r = lint ~only:[ "clock-monotonic" ] "ftvc_regression.jsonl" in
  Alcotest.(check (list string)) "--rule by slug" [ "OPT005" ]
    (ids r.Check.Lint.violations);
  (match Check.Lint.run ~only:[ "OPT099" ] (fixture "clean.jsonl") with
  | Ok _ -> Alcotest.fail "unknown rule accepted"
  | Error _ -> ());
  (match Check.Lint.run ~only:[ "OPT014" ] (fixture "clean.jsonl") with
  | Ok _ -> Alcotest.fail "online-only rule accepted offline"
  | Error _ -> ());
  match Check.Lint.run (fixture "no_such_file.jsonl") with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

(* The reader tolerates every schema the writer ever produced (v2 before
   telemetry, v3 with it) and skips span/snapshot records entirely; only
   a version from the future trips the schema rule. *)
let test_schema_tolerance () =
  let header v =
    Printf.sprintf
      {|{"at":0.0,"pid":-1,"ver":0,"kind":"custom","name":"schema","detail":"version=%d"}|}
      v
  in
  let span =
    {|{"at":1.0,"pid":0,"ver":0,"kind":"span","name":"handle","dur":0.001}|}
  in
  let snap =
    {|{"at":2.0,"pid":0,"ver":0,"kind":"snapshot","protocol":"dg","values":{"gen":0.0,"delivered":3.0}}|}
  in
  let run lines =
    let path = Filename.temp_file "check_schema" ".jsonl" in
    let oc = open_out path in
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      lines;
    close_out oc;
    let r =
      match Check.Lint.run path with
      | Ok r -> r
      | Error m -> Alcotest.failf "lint: %s" m
    in
    Sys.remove path;
    (ids r.Check.Lint.violations, Check.Lint.schema_mismatch r)
  in
  Alcotest.(check (pair (list string) (option int)))
    "v2 header accepted" ([], None)
    (run [ header 2 ]);
  Alcotest.(check (pair (list string) (option int)))
    "v3 telemetry records skipped" ([], None)
    (run [ header 3; span; snap ]);
  Alcotest.(check (pair (list string) (option int)))
    "future version flagged (strict escalates)" ([], Some 4)
    (run [ header 4; span ])

(* --- monitor rules the fixtures don't reach --- *)

let test_monitor_restart_pairing () =
  let m = Check.Monitor.create () in
  Check.Monitor.feed m (ev ~pid:2 ~ver:1 (Trace.Restart { new_ver = 1 }));
  Alcotest.(check (list string)) "restart without failure" [ "OPT007" ]
    (ids (Check.Monitor.finish m))

let test_monitor_unknown_send () =
  let m = Check.Monitor.create () in
  Check.Monitor.feed m (ev ~pid:0 (Trace.Deliver { uid = 9; src = 1 }));
  Alcotest.(check (list string)) "delivery never sent" [ "OPT002" ]
    (ids (Check.Monitor.finish m))

let test_monitor_output_commit_safety () =
  let m = Check.Monitor.create () in
  let clock = [| { Ftvc.ver = 0; ts = 1 }; { Ftvc.ver = 0; ts = 9 } |] in
  Check.Monitor.feed m (ev ~pid:0 ~clock (Trace.Output_commit { seq = 1 }));
  (* The orphaning token only shows up later in the trace: the commit
     rule must have anticipated it, so the check is global. *)
  Check.Monitor.feed m
    (ev ~at:2.0 ~pid:0 (Trace.Token_recv { origin = 1; ver = 0; ts = 4 }));
  Alcotest.(check (list string)) "orphaned commit" [ "OPT012" ]
    (ids (Check.Monitor.finish m));
  Alcotest.(check (list string)) "finish idempotent" [ "OPT012" ]
    (ids (Check.Monitor.finish m))

let test_monitor_incarnation_decrease () =
  let m = Check.Monitor.create () in
  Check.Monitor.feed m (ev ~pid:1 ~ver:2 (Trace.Send { uid = 1; dst = 0 }));
  Check.Monitor.feed m (ev ~at:2.0 ~pid:1 ~ver:1 (Trace.Checkpoint { position = 0 }));
  Alcotest.(check (list string)) "version went backwards" [ "OPT006" ]
    (ids (Check.Monitor.finish m))

let test_monitor_disabled_rules () =
  let m = Check.Monitor.create ~rules:[ "OPT005" ] () in
  Check.Monitor.feed m (ev ~pid:2 ~ver:1 (Trace.Restart { new_ver = 1 }));
  Alcotest.(check (list string)) "disabled rule is silent" []
    (ids (Check.Monitor.finish m));
  Alcotest.check_raises "unknown rule rejected"
    (Invalid_argument "Check.Monitor.create: unknown rule \"OPT099\"")
    (fun () -> ignore (Check.Monitor.create ~rules:[ "OPT099" ] ()))

let test_monitor_cross_check () =
  let m = Check.Monitor.create () in
  Check.Monitor.feed m (ev ~pid:0 Trace.Failure);
  Alcotest.(check int) "failures counted" 1 (Check.Monitor.failures m);
  Alcotest.(check int) "events counted" 1 (Check.Monitor.events_seen m);
  Alcotest.(check int) "no rollbacks" 0 (Check.Monitor.rollbacks_of m 1);
  Check.Monitor.cross_check m ~n:2 ~failures:2 ~rollbacks_of:(fun p ->
      if p = 1 then 1 else 0);
  Alcotest.(check (list string)) "oracle disagreement flagged"
    [ "OPT014"; "OPT014" ]
    (ids (Check.Monitor.finish m))

(* --- streaming reader --- *)

let test_iter_file_line_numbers () =
  let path = Filename.temp_file "check_reader" ".jsonl" in
  let oc = open_out path in
  output_string oc
    "\n{\"at\":1,\"pid\":0,\"ver\":0,\"kind\":\"failure\"}\n\nnot json\n";
  close_out oc;
  let seen = ref [] in
  Trace.iter_file path ~f:(fun ~line res ->
      seen := (line, Result.is_ok res) :: !seen);
  Sys.remove path;
  Alcotest.(check (list (pair int bool)))
    "1-based line numbers, blank lines skipped"
    [ (2, true); (4, false) ]
    (List.rev !seen)

(* --- acceptance: every protocol sanitizes clean under failures --- *)

let checked_params protocol seed =
  let faults =
    Schedule.random_crashes
      ~seed:(Int64.add seed 100L)
      ~n:4 ~failures:2 ~window:(30.0, 270.0)
  in
  {
    Runner.default_params with
    Runner.protocol;
    seed;
    duration = 300.0;
    faults;
    check = Runner.Check;
  }

let test_all_protocols_clean () =
  List.iter
    (fun protocol ->
      List.iter
        (fun seed ->
          let r = Runner.run (checked_params protocol seed) in
          Alcotest.(check (list string))
            (Printf.sprintf "%s seed=%Ld sanitizes clean"
               (Runner.protocol_name protocol) seed)
            [] (ids r.Runner.r_check);
          Alcotest.(check int) "check.violations metric is zero" 0
            (Metrics.total r.Runner.r_registry "check.violations"))
        [ 1L; 2L; 3L ])
    Runner.all_protocols

let test_oracle_cross_check_clean () =
  let p =
    { (checked_params Runner.Damani_garg 5L) with Runner.with_oracle = true }
  in
  let r = Runner.run p in
  Alcotest.(check (list string)) "sanitizer incl. oracle-agreement clean" []
    (ids r.Runner.r_check);
  Alcotest.(check (list string)) "oracle audit clean" [] r.Runner.r_violations

let suite =
  [
    Alcotest.test_case "rule table" `Quick test_rule_table;
    Alcotest.test_case "clock comparison laws" `Quick test_clock_laws;
    Alcotest.test_case "clock agrees with Vclock" `Quick
      test_clock_vclock_agreement;
    Alcotest.test_case "clean fixture lints clean" `Quick test_clean_fixture;
    Alcotest.test_case "mutated fixtures trip their rule" `Quick
      test_mutated_fixtures;
    Alcotest.test_case "violations carry line numbers" `Quick
      test_violation_line_numbers;
    Alcotest.test_case "rule filters" `Quick test_lint_filters;
    Alcotest.test_case "schema tolerance" `Quick test_schema_tolerance;
    Alcotest.test_case "monitor: restart pairing" `Quick
      test_monitor_restart_pairing;
    Alcotest.test_case "monitor: unknown send" `Quick test_monitor_unknown_send;
    Alcotest.test_case "monitor: output-commit safety" `Quick
      test_monitor_output_commit_safety;
    Alcotest.test_case "monitor: incarnation decrease" `Quick
      test_monitor_incarnation_decrease;
    Alcotest.test_case "monitor: rule selection" `Quick
      test_monitor_disabled_rules;
    Alcotest.test_case "monitor: oracle cross-check" `Quick
      test_monitor_cross_check;
    Alcotest.test_case "streaming reader line numbers" `Quick
      test_iter_file_line_numbers;
    Alcotest.test_case "all protocols sanitize clean" `Quick
      test_all_protocols_clean;
    Alcotest.test_case "oracle cross-check on a live run" `Quick
      test_oracle_cross_check_clean;
  ]
