(* Tests of the live runtime: the wall-clock loop, the datagram
   transport, the on-disk store, trace merging, and one end-to-end
   supervised run with a real SIGKILL. *)

module Loop = Optimist_live.Loop
module Livenet = Optimist_live.Livenet
module Store = Optimist_live.Store
module Merge = Optimist_live.Merge
module Supervisor = Optimist_live.Supervisor
module Worker = Optimist_live.Worker
module Transport = Optimist_core.Transport
module Trace = Optimist_obs.Trace
module Json = Optimist_obs.Json
module Check = Optimist_check.Check

let tmp_counter = ref 0

(* Keep paths short: AF_UNIX socket paths are limited to ~107 bytes. *)
let temp_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "optlive-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

(* --- loop --- *)

let test_loop_timers_in_order () =
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let fired = ref [] in
  Loop.schedule loop ~delay:0.03 (fun () -> fired := 3 :: !fired);
  Loop.schedule loop ~delay:0.01 (fun () -> fired := 1 :: !fired);
  Loop.schedule loop ~delay:0.02 (fun () -> fired := 2 :: !fired);
  Loop.run loop ~until:0.1;
  Alcotest.(check (list int)) "fired by due time" [ 1; 2; 3 ]
    (List.rev !fired)

let test_loop_now_monotone () =
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let prev = ref (Loop.now loop) in
  for _ = 1 to 100 do
    let t = Loop.now loop in
    if t < !prev then Alcotest.fail "now went backwards";
    prev := t
  done

(* --- store --- *)

let test_store_roundtrip () =
  let dir = Filename.concat (temp_dir ()) "st" in
  let st = Store.open_ dir in
  List.iter (Store.append_log st) [ "a"; "b"; "c"; "d" ];
  Store.append_checkpoint st ~position:0 100;
  Store.append_checkpoint st ~position:3 200;
  Store.write_tokens st [ 7; 8 ];
  Store.write_gen st 2;
  Store.close st;
  let st = Store.open_ dir in
  Alcotest.(check (array string)) "log" [| "a"; "b"; "c"; "d" |]
    (Store.load_log st);
  Alcotest.(check (list (pair int int)))
    "checkpoints newest first"
    [ (200, 3); (100, 0) ]
    (Store.load_checkpoints st);
  Alcotest.(check (list int)) "tokens" [ 7; 8 ] (Store.load_tokens st);
  Alcotest.(check int) "gen" 2 (Store.load_gen st);
  Store.truncate_log st ~stable:2;
  Store.discard_checkpoints_after st ~position:1;
  Alcotest.(check (array string)) "truncated" [| "a"; "b" |] (Store.load_log st);
  Alcotest.(check (list (pair int int)))
    "discarded" [ (100, 0) ]
    (Store.load_checkpoints st);
  Store.close st

let test_store_torn_tail () =
  (* A SIGKILL mid-append leaves a torn trailing record; loading must
     return the complete prefix and appends must keep working. *)
  let dir = Filename.concat (temp_dir ()) "st" in
  let st = Store.open_ dir in
  Store.append_log st "one";
  Store.append_log st "two";
  Store.close st;
  let log = Filename.concat dir "log.bin" in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 log in
  let bytes = Marshal.to_bytes "torn" [] in
  output_bytes oc (Bytes.sub bytes 0 (Bytes.length bytes - 3));
  close_out oc;
  let st = Store.open_ dir in
  Alcotest.(check (array string)) "torn tail dropped" [| "one"; "two" |]
    (Store.load_log st);
  Store.close st

(* --- livenet --- *)

let test_livenet_data_and_control () =
  let dir = temp_dir () in
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let a = Livenet.create ~loop ~dir ~me:0 ~n:2 ~seed:11L () in
  let b = Livenet.create ~loop ~dir ~me:1 ~n:2 ~seed:12L () in
  let got = ref [] in
  (Livenet.transport b).Transport.set_handler 1 (fun m -> got := m :: !got);
  (Livenet.transport a).Transport.set_handler 0 (fun _ -> ());
  let ta = Livenet.transport a in
  ta.Transport.send ~lane:Transport.Data ~src:0 ~dst:1 "data";
  ta.Transport.send ~lane:Transport.Control ~src:0 ~dst:1 "ctl";
  Loop.run loop ~until:0.3;
  Alcotest.(check (list string)) "both lanes delivered" [ "ctl"; "data" ]
    (List.sort compare !got);
  Alcotest.(check int) "control acked" 0 (Livenet.unacked_count a);
  Livenet.close a;
  Livenet.close b

let test_livenet_control_retransmits_to_late_peer () =
  (* A control frame sent before the destination even exists must reach
     it once it binds — the live analogue of tokens queued across
     downtime — and be delivered exactly once despite retransmission. *)
  let dir = temp_dir () in
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let a = Livenet.create ~retransmit_every:0.02 ~loop ~dir ~me:0 ~n:2 ~seed:3L () in
  (Livenet.transport a).Transport.set_handler 0 (fun _ -> ());
  (Livenet.transport a).Transport.send ~lane:Transport.Control ~src:0 ~dst:1
    "tok";
  Loop.run loop ~until:0.05;
  Alcotest.(check int) "still unacked" 1 (Livenet.unacked_count a);
  let b = Livenet.create ~loop ~dir ~me:1 ~n:2 ~seed:4L () in
  let got = ref [] in
  (Livenet.transport b).Transport.set_handler 1 (fun m -> got := m :: !got);
  Loop.run loop ~until:0.4;
  Alcotest.(check (list string)) "delivered exactly once" [ "tok" ] !got;
  Alcotest.(check int) "acked after retry" 0 (Livenet.unacked_count a);
  Livenet.close a;
  Livenet.close b

let test_livenet_data_to_dead_peer_is_dropped () =
  let dir = temp_dir () in
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let a = Livenet.create ~loop ~dir ~me:0 ~n:2 ~seed:5L () in
  (Livenet.transport a).Transport.set_handler 0 (fun _ -> ());
  (Livenet.transport a).Transport.send ~lane:Transport.Data ~src:0 ~dst:1
    "vanishes";
  Loop.run loop ~until:0.1;
  let errors = List.assoc "send_errors" (Livenet.stats a) in
  Alcotest.(check int) "counted as a wire drop" 1 errors;
  Livenet.close a

let test_livenet_one_way_partition_heals () =
  (* A sustained one-way partition (only the sender's gate is configured,
     so the reverse path stays open): control frames pile up unacked
     while the window is shut, then heal through retransmission — and the
     receiver's dedup must keep delivery exactly-once despite every
     retransmit that piled up arriving at once. *)
  let dir = temp_dir () in
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let faults =
    {
      Livenet.no_faults with
      Livenet.partitions =
        [ { Livenet.pt_start = 0.0; pt_stop = 0.25; pt_island = [ 0 ] } ];
    }
  in
  let a =
    Livenet.create ~retransmit_every:0.02 ~faults ~loop ~dir ~me:0 ~n:2
      ~seed:21L ()
  in
  let b = Livenet.create ~loop ~dir ~me:1 ~n:2 ~seed:22L () in
  let got = ref [] in
  (Livenet.transport b).Transport.set_handler 1 (fun m -> got := m :: !got);
  (Livenet.transport a).Transport.set_handler 0 (fun _ -> ());
  (Livenet.transport a).Transport.send ~lane:Transport.Control ~src:0 ~dst:1
    "t1";
  (Livenet.transport a).Transport.send ~lane:Transport.Control ~src:0 ~dst:1
    "t2";
  Loop.run loop ~until:0.15;
  Alcotest.(check int) "unacked grows while partitioned" 2
    (Livenet.unacked_count a);
  Alcotest.(check (list string)) "nothing crossed the partition" [] !got;
  Alcotest.(check bool) "sends were gated, not lost silently" true
    (List.assoc "partition_blocked" (Livenet.stats a) > 0);
  Loop.run loop ~until:0.6;
  Alcotest.(check (list string)) "delivered exactly once after heal"
    [ "t1"; "t2" ] (List.sort compare !got);
  Alcotest.(check int) "drained to zero after heal" 0
    (Livenet.unacked_count a);
  Livenet.close a;
  Livenet.close b

(* --- merge --- *)

let test_merge_orders_and_deduplicates_headers () =
  let dir = temp_dir () in
  let write name events =
    let oc = open_out (Filename.concat dir name) in
    let tr = Trace.create () in
    Trace.attach tr
      (Trace.jsonl_sink (fun line ->
           output_string oc line;
           flush oc));
    List.iter (Trace.emit tr) events;
    Trace.close tr;
    close_out oc
  in
  let ev at pid kind = { Trace.at; pid; ver = 0; clock = [||]; kind } in
  (* The Deliver at t=0.5 is written before the Send with the same stamp
     and lives in the other process's file; the merge must put the Send
     first. *)
  write "trace.0.g0.jsonl"
    [
      ev 0.5 0 (Trace.Send { uid = 9; dst = 1 });
      ev 0.9 0 (Trace.Checkpoint { position = 0 });
    ];
  write "trace.1.g0.jsonl"
    [
      ev 0.5 1 (Trace.Deliver { uid = 9; src = 0 });
      ev 0.1 1 (Trace.Log_flush { stable = 0 });
    ];
  let out = Filename.concat dir "merged.jsonl" in
  let events, dropped = Merge.run ~dir ~out in
  Alcotest.(check int) "all events merged" 4 events;
  Alcotest.(check int) "nothing dropped" 0 dropped;
  let kinds =
    Trace.fold_file out ~init:[] ~f:(fun acc ~line:_ -> function
      | Ok e -> Trace.kind_name e.Trace.kind :: acc
      | Error msg -> Alcotest.fail msg)
    |> List.rev
  in
  Alcotest.(check (list string))
    "one header, sends before same-stamp delivers"
    [ "custom"; "log_flush"; "send"; "deliver"; "checkpoint" ]
    kinds

let write_trace dir name events =
  let oc = open_out (Filename.concat dir name) in
  let tr = Trace.create () in
  Trace.attach tr
    (Trace.jsonl_sink (fun line ->
         output_string oc line;
         flush oc));
  List.iter (Trace.emit tr) events;
  Trace.close tr;
  close_out oc

let merged_kinds dir =
  let out = Filename.concat dir "merged.jsonl" in
  let _ = Merge.run ~dir ~out in
  Trace.fold_file out ~init:[] ~f:(fun acc ~line:_ -> function
    | Ok e -> e :: acc
    | Error msg -> Alcotest.fail msg)
  |> List.rev

let test_merge_identical_timestamps_stable () =
  (* Records carrying the very same wall-clock stamp must still come out
     in a stable order: same cause rank ties break by pid, and within one
     process by emission order. *)
  let dir = temp_dir () in
  let ev at pid kind = { Trace.at; pid; ver = 0; clock = [||]; kind } in
  write_trace dir "trace.1.g0.jsonl" [ ev 0.5 1 (Trace.Checkpoint { position = 7 }) ];
  write_trace dir "trace.0.g0.jsonl"
    [
      ev 0.5 0 (Trace.Log_flush { stable = 1 });
      ev 0.5 0 (Trace.Log_flush { stable = 2 });
    ];
  let payload e =
    match e.Trace.kind with
    | Trace.Log_flush { stable } -> (e.Trace.pid, stable)
    | Trace.Checkpoint { position } -> (e.Trace.pid, position)
    | _ -> (-1, -1)
  in
  let events =
    List.filter (fun e -> Trace.schema_of_event e = None) (merged_kinds dir)
  in
  Alcotest.(check (list (pair int int)))
    "pid then emission order under an exact tie"
    [ (0, 1); (0, 2); (1, 7) ]
    (List.map payload events)

let test_merge_orders_generations_numerically () =
  (* trace.0.g10 must be read after trace.0.g2 — a lexicographic file
     sort would interleave incarnations and scramble same-stamp ties. *)
  let dir = temp_dir () in
  let ev at pid kind = { Trace.at; pid; ver = 0; clock = [||]; kind } in
  write_trace dir "trace.0.g10.jsonl" [ ev 1.0 0 (Trace.Log_flush { stable = 10 }) ];
  write_trace dir "trace.0.g2.jsonl" [ ev 1.0 0 (Trace.Log_flush { stable = 2 }) ];
  let stables =
    List.filter_map
      (fun e ->
        match e.Trace.kind with
        | Trace.Log_flush { stable } -> Some stable
        | _ -> None)
      (merged_kinds dir)
  in
  Alcotest.(check (list int)) "older incarnation first" [ 2; 10 ] stables

(* --- end to end: real processes, real SIGKILL --- *)

let lint_clean path =
  match Check.Lint.run ~only:[] ~ignore:[] path with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check int) "lint errors" 0 (Check.Lint.errors report);
      Alcotest.(check int) "lint warnings" 0 (Check.Lint.warnings report);
      Alcotest.(check int) "parse errors" 0 report.Check.Lint.parse_errors

let test_supervised_run_with_crash () =
  let dir = temp_dir () in
  let cfg =
    {
      Supervisor.default_cfg with
      Supervisor.dir;
      n = 3;
      seed = 42L;
      duration = 1.6;
      settle = 1.2;
      rate = 6.0;
      hops = 3;
      faults = [ (0.7, 1) ];
    }
  in
  let r = Supervisor.run cfg in
  Alcotest.(check int) "one crash injected" 1 r.Supervisor.crashes;
  Alcotest.(check int) "every final incarnation exits clean" 3
    r.Supervisor.clean_exits;
  Alcotest.(check bool) "events recorded" true (r.Supervisor.events > 50);
  (* The killed worker's successor must actually have recovered: its
     trace contains a restart of incarnation >= 1. *)
  let restarted = ref false in
  Trace.iter_file r.Supervisor.merged ~f:(fun ~line:_ -> function
    | Ok { Trace.pid = 1; kind = Trace.Restart { new_ver }; _ }
      when new_ver >= 1 ->
        restarted := true
    | _ -> ());
  Alcotest.(check bool) "worker 1 restarted" true !restarted;
  (* Telemetry over the same recovery: the successor incarnation wraps
     its catch-up in a "recovery" span and emits one snapshot with the
     recovery.* profile. Replay happens below the tracer (replayed
     deliveries are not re-traced), so the replay count is checked
     against the worker's own stats file, not against Deliver events. *)
  let rec_span = ref None and rec_snap = ref None in
  Trace.iter_file r.Supervisor.merged ~f:(fun ~line:_ -> function
    | Ok { Trace.pid = 1; kind = Trace.Span { name = "recovery"; dur }; _ } ->
        rec_span := Some dur
    | Ok { Trace.pid = 1; kind = Trace.Snapshot { values; _ }; _ }
      when List.mem_assoc "recovery.latency" values ->
        rec_snap := Some values
    | _ -> ());
  (match !rec_span with
  | Some dur ->
      Alcotest.(check bool) "recovery span latency positive" true (dur > 0.0)
  | None -> Alcotest.fail "no recovery span for the killed worker");
  (match !rec_snap with
  | None -> Alcotest.fail "no recovery snapshot for the killed worker"
  | Some values ->
      let v name =
        match List.assoc_opt name values with
        | Some x -> x
        | None -> Alcotest.failf "recovery snapshot lacks %s" name
      in
      Alcotest.(check bool) "snapshot latency positive" true
        (v "recovery.latency" > 0.0);
      Alcotest.(check (float 1e-9)) "snapshot names the generation" 1.0
        (v "gen");
      let replayed = int_of_float (v "recovery.messages_replayed") in
      let ic = open_in (Filename.concat dir "worker.1.g1.json") in
      let stats = input_line ic in
      close_in ic;
      let stats_replayed =
        match Json.of_string stats with
        | Error m -> Alcotest.failf "worker stats unparsable: %s" m
        | Ok j -> (
            match
              Option.bind (Json.mem "counters" j) (fun c ->
                  Option.bind (Json.mem "replayed" c) Json.to_int)
            with
            | Some n -> n
            | None -> Alcotest.fail "worker stats lack counters.replayed")
      in
      Alcotest.(check int) "replay count agrees with the stats file"
        stats_replayed replayed);
  Alcotest.(check bool) "chrome timeline written" true
    (Sys.file_exists r.Supervisor.chrome);
  lint_clean r.Supervisor.merged

(* Every baseline ported to the live runtime must survive a real SIGKILL
   mid-run: the successor incarnation recovers from its store, every
   final incarnation exits clean, and the merged trace passes the full
   offline rule battery in strict mode (errors and warnings both zero). *)
let baseline_survives_crash protocol () =
  let dir = temp_dir () in
  let cfg =
    {
      Supervisor.default_cfg with
      Supervisor.dir;
      n = 3;
      protocol;
      seed = 42L;
      duration = 1.6;
      settle = 1.2;
      rate = 6.0;
      hops = 3;
      faults = [ (0.7, 1) ];
    }
  in
  let r = Supervisor.run cfg in
  Alcotest.(check int) "one crash injected" 1 r.Supervisor.crashes;
  Alcotest.(check int) "every final incarnation exits clean" 3
    r.Supervisor.clean_exits;
  let restarted = ref false in
  Trace.iter_file r.Supervisor.merged ~f:(fun ~line:_ -> function
    | Ok { Trace.pid = 1; kind = Trace.Restart { new_ver }; _ }
      when new_ver >= 1 ->
        restarted := true
    | _ -> ());
  Alcotest.(check bool) "worker 1 restarted" true !restarted;
  lint_clean r.Supervisor.merged

let test_supervisor_validates () =
  let check_invalid name cfg =
    match Supervisor.validate cfg with
    | () -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  check_invalid "n=1" { Supervisor.default_cfg with Supervisor.n = 1 };
  check_invalid "bad fault pid"
    { Supervisor.default_cfg with Supervisor.faults = [ (1.0, 9) ] };
  check_invalid "fault after window"
    { Supervisor.default_cfg with Supervisor.faults = [ (99.0, 0) ] };
  check_invalid "zero rate" { Supervisor.default_cfg with Supervisor.rate = 0.0 };
  check_invalid "dir overflows sun_path"
    {
      Supervisor.default_cfg with
      Supervisor.dir = Filename.concat (String.make 120 'x') "run";
    };
  (let contains hay needle =
     let nh = String.length hay and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
     go 0
   in
   match Livenet.check_dir ~dir:(String.make 120 'x') ~n:4 with
   | Ok () -> Alcotest.fail "long dir accepted"
   | Error msg ->
       Alcotest.(check bool) "error names the limit" true
         (contains msg "sun_path"));
  Supervisor.validate Supervisor.default_cfg

let suite =
  [
    Alcotest.test_case "loop: timers fire in order" `Quick
      test_loop_timers_in_order;
    Alcotest.test_case "loop: clock is monotone" `Quick test_loop_now_monotone;
    Alcotest.test_case "store: round-trip" `Quick test_store_roundtrip;
    Alcotest.test_case "store: torn tail tolerated" `Quick test_store_torn_tail;
    Alcotest.test_case "livenet: data and control delivery" `Quick
      test_livenet_data_and_control;
    Alcotest.test_case "livenet: control reaches a late peer" `Quick
      test_livenet_control_retransmits_to_late_peer;
    Alcotest.test_case "livenet: data to dead peer drops" `Quick
      test_livenet_data_to_dead_peer_is_dropped;
    Alcotest.test_case "livenet: one-way partition heals exactly-once" `Quick
      test_livenet_one_way_partition_heals;
    Alcotest.test_case "merge: global order and single header" `Quick
      test_merge_orders_and_deduplicates_headers;
    Alcotest.test_case "merge: identical timestamps keep a stable order" `Quick
      test_merge_identical_timestamps_stable;
    Alcotest.test_case "merge: generations ordered numerically" `Quick
      test_merge_orders_generations_numerically;
    Alcotest.test_case "supervised run with SIGKILL recovery" `Slow
      test_supervised_run_with_crash;
    Alcotest.test_case "sender-based survives SIGKILL, lints strict" `Slow
      (baseline_survives_crash Worker.Sender);
    Alcotest.test_case "strom-yemini survives SIGKILL, lints strict" `Slow
      (baseline_survives_crash Worker.Sy);
    Alcotest.test_case "checkpoint-only survives SIGKILL, lints strict" `Slow
      (baseline_survives_crash Worker.Cpo);
    Alcotest.test_case "coordinated survives SIGKILL, lints strict" `Slow
      (baseline_survives_crash Worker.Koo);
    Alcotest.test_case "supervisor validates parameters" `Quick
      test_supervisor_validates;
  ]
