let () =
  Alcotest.run "optimist"
    [
      ("util", Test_util.suite);
      ("engine", Test_engine.suite);
      ("network", Test_network.suite);
      ("storage", Test_storage.suite);
      ("vclock", Test_vclock.suite);
      ("ftvc", Test_ftvc.suite);
      ("matrix", Test_matrix.suite);
      ("history", Test_history.suite);
      ("protocol", Test_protocol.suite);
      ("baselines", Test_baselines.suite);
      ("retransmit", Test_retransmit.suite);
      ("output-commit", Test_output_commit.suite);
      ("gc", Test_gc.suite);
      ("oracle", Test_oracle.suite);
      ("process", Test_process.suite);
      ("workload", Test_workload.suite);
      ("system", Test_system.suite);
      ("obs", Test_obs.suite);
      ("check", Test_check.suite);
      ("mc", Test_mc.suite);
      ("docs", Test_docs.suite);
      ("live", Test_live.suite);
      ("soak", Test_soak.suite);
      ("cluster", Test_cluster.suite);
    ]
