(* Tests of the simulated network: ordering modes, loss, traffic classes,
   partitions, and crash gating. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network

let make ?(n = 3) ?(seed = 5L) ?(f = fun c -> c) () =
  let engine = Engine.create ~seed () in
  let cfg = f (Network.default_config ~n) in
  let net = Network.create engine cfg in
  (engine, net)

let collect net id =
  let inbox = ref [] in
  Network.set_handler net id (fun env -> inbox := env.Network.payload :: !inbox);
  fun () -> List.rev !inbox

let test_basic_delivery () =
  let engine, net = make () in
  let recv = collect net 1 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 2 (fun _ -> ());
  Network.send net ~src:0 ~dst:1 "hello";
  Engine.run engine;
  Alcotest.(check (list string)) "delivered" [ "hello" ] (recv ())

let test_fifo_order () =
  let engine, net =
    make ~f:(fun c -> { c with Network.ordering = Network.Fifo }) ()
  in
  let recv = collect net 1 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 2 (fun _ -> ());
  for i = 1 to 50 do
    Network.send net ~src:0 ~dst:1 i
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo preserved" (List.init 50 (fun i -> i + 1))
    (recv ())

let test_reorder_actually_reorders () =
  (* With independent uniform latencies, fifty back-to-back sends on a
     reordering network virtually never arrive in order. *)
  let engine, net =
    make ~f:(fun c -> { c with Network.ordering = Network.Reorder }) ()
  in
  let recv = collect net 1 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 2 (fun _ -> ());
  for i = 1 to 50 do
    Network.send net ~src:0 ~dst:1 i
  done;
  Engine.run engine;
  let got = recv () in
  Alcotest.(check int) "all arrived" 50 (List.length got);
  Alcotest.(check bool) "not in order" true
    (got <> List.init 50 (fun i -> i + 1))

let test_drop_probability_one () =
  let engine, net =
    make ~f:(fun c -> { c with Network.drop_probability = 1.0 }) ()
  in
  let recv = collect net 1 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 2 (fun _ -> ());
  Network.send net ~src:0 ~dst:1 "gone";
  Network.send net ~src:0 ~dst:1 "also gone";
  (* Control traffic is exempt from loss. *)
  Network.send net ~traffic:Network.Control ~src:0 ~dst:1 "survives";
  Engine.run engine;
  Alcotest.(check (list string)) "only control survives" [ "survives" ] (recv ());
  let stats = Network.stats net in
  Alcotest.(check int) "drops counted" 2
    (Optimist_util.Stats.Counters.get stats "dropped.data")

let test_duplication () =
  let engine, net =
    make ~f:(fun c -> { c with Network.duplicate_probability = 1.0 }) ()
  in
  let recv = collect net 1 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 2 (fun _ -> ());
  Network.send net ~src:0 ~dst:1 "twice";
  Engine.run engine;
  Alcotest.(check (list string)) "duplicated" [ "twice"; "twice" ] (recv ())

let test_duplication_fractional () =
  (* A fractional duplicate probability duplicates some but not all
     messages, and the duplicated.data counter accounts exactly for the
     extra deliveries. *)
  let engine, net =
    make ~f:(fun c -> { c with Network.duplicate_probability = 0.5 }) ()
  in
  let recv = collect net 1 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 2 (fun _ -> ());
  let sent = 200 in
  for i = 1 to sent do
    Network.send net ~src:0 ~dst:1 i
  done;
  Engine.run engine;
  let got = recv () in
  let delivered = List.length got in
  Alcotest.(check bool) "some duplicated" true (delivered > sent);
  Alcotest.(check bool) "not all duplicated" true (delivered < 2 * sent);
  let dups =
    Optimist_util.Stats.Counters.get (Network.stats net) "duplicated.data"
  in
  Alcotest.(check int) "duplicates counted" (delivered - sent) dups;
  (* Every original arrives at least once: duplication never loses. *)
  List.iter
    (fun i ->
      if not (List.mem i got) then
        Alcotest.failf "message %d lost by duplication" i)
    (List.init sent (fun i -> i + 1))

let test_control_exempt_from_duplication () =
  let engine, net =
    make ~f:(fun c -> { c with Network.duplicate_probability = 1.0 }) ()
  in
  let recv = collect net 1 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 2 (fun _ -> ());
  Network.send net ~traffic:Network.Control ~src:0 ~dst:1 "tok";
  Engine.run engine;
  Alcotest.(check (list string)) "control never duplicated" [ "tok" ] (recv ())

let test_broadcast () =
  let engine, net = make ~n:4 () in
  let r1 = collect net 1 and r2 = collect net 2 and r3 = collect net 3 in
  Network.set_handler net 0 (fun _ -> Alcotest.fail "src must not self-receive");
  Network.broadcast net ~src:0 "b";
  Engine.run engine;
  Alcotest.(check (list string)) "p1" [ "b" ] (r1 ());
  Alcotest.(check (list string)) "p2" [ "b" ] (r2 ());
  Alcotest.(check (list string)) "p3" [ "b" ] (r3 ())

let test_partition_and_heal () =
  let engine, net = make ~n:4 () in
  let r2 = collect net 2 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 1 (fun _ -> ());
  Network.set_handler net 3 (fun _ -> ());
  Network.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Alcotest.(check bool) "0-1 reachable" true (Network.reachable net 0 1);
  Alcotest.(check bool) "0-2 blocked" false (Network.reachable net 0 2);
  Network.send net ~src:0 ~dst:2 "data-across";
  Network.send net ~traffic:Network.Control ~src:0 ~dst:2 "token-across";
  Network.send net ~src:3 ~dst:2 "same-side";
  Engine.run engine;
  Alcotest.(check (list string)) "only same side" [ "same-side" ] (r2 ());
  Network.heal net;
  Engine.run engine;
  Alcotest.(check (list string))
    "held traffic released after heal"
    [ "data-across"; "same-side"; "token-across" ]
    (List.sort compare (r2 ()))

let test_control_reliable_across_heal () =
  (* The paper's control plane is reliable: even on a network configured
     to lose and duplicate every Data message, tokens queued across a
     partition arrive after heal — each exactly once, in send order. *)
  let engine, net =
    make ~n:4
      ~f:(fun c ->
        {
          c with
          Network.drop_probability = 1.0;
          duplicate_probability = 1.0;
        })
      ()
  in
  let r2 = collect net 2 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 1 (fun _ -> ());
  Network.set_handler net 3 (fun _ -> ());
  Network.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  for i = 1 to 5 do
    Network.send net ~traffic:Network.Control ~src:0 ~dst:2
      (Printf.sprintf "tok%d" i)
  done;
  Network.send net ~src:0 ~dst:2 "data-lost";
  Engine.run engine;
  Alcotest.(check (list string)) "nothing crosses the partition" [] (r2 ());
  let held =
    Optimist_util.Stats.Counters.get (Network.stats net) "held.partition"
  in
  Alcotest.(check bool) "crossing traffic held" true (held >= 5);
  Network.heal net;
  Engine.run engine;
  let control_only =
    List.filter (fun s -> String.length s >= 3 && String.sub s 0 3 = "tok")
      (r2 ())
  in
  Alcotest.(check (list string))
    "each token exactly once after heal"
    [ "tok1"; "tok2"; "tok3"; "tok4"; "tok5" ]
    (List.sort compare control_only)

let test_implicit_partition_group () =
  let _, net = make ~n:4 () in
  Network.partition net [ [ 0 ] ];
  (* 1,2,3 form the implicit complement group. *)
  Alcotest.(check bool) "1-2 reachable" true (Network.reachable net 1 2);
  Alcotest.(check bool) "0-1 blocked" false (Network.reachable net 0 1)

let test_down_endpoint_holds_control () =
  let engine, net = make () in
  let r1 = collect net 1 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 2 (fun _ -> ());
  Network.set_down net 1;
  Network.send net ~traffic:Network.Control ~src:0 ~dst:1 "token";
  Network.send net ~src:0 ~dst:1 "data";
  Engine.run engine;
  Alcotest.(check (list string)) "nothing while down" [] (r1 ());
  Network.set_up net ~drop_held_data:true 1;
  Engine.run engine;
  Alcotest.(check (list string)) "control survives, data dropped" [ "token" ]
    (r1 ())

let test_down_endpoint_keep_data () =
  let engine, net = make () in
  let r1 = collect net 1 in
  Network.set_handler net 0 (fun _ -> ());
  Network.set_handler net 2 (fun _ -> ());
  Network.set_down net 1;
  Network.send net ~src:0 ~dst:1 "data";
  Engine.run engine;
  Network.set_up net 1;
  Engine.run engine;
  Alcotest.(check (list string)) "data kept by default" [ "data" ] (r1 ())

let test_loopback () =
  let engine, net = make () in
  let r0 = collect net 0 in
  Network.send net ~src:0 ~dst:0 "self";
  Engine.run engine;
  Alcotest.(check (list string)) "loopback works" [ "self" ] (r0 ())

let test_constant_latency () =
  let engine, net =
    make ~f:(fun c -> { c with Network.latency = Network.Constant 7.0 }) ()
  in
  let at = ref 0.0 in
  Network.set_handler net 1 (fun _ -> at := Engine.now engine);
  Network.send net ~src:0 ~dst:1 "x";
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "arrives at 7" 7.0 !at

let test_control_latency_distinct () =
  let engine, net =
    make
      ~f:(fun c ->
        {
          c with
          Network.latency = Network.Constant 2.0;
          control_latency = Some (Network.Constant 9.0);
        })
      ()
  in
  let arrivals = ref [] in
  Network.set_handler net 1 (fun env ->
      arrivals := (env.Network.payload, Engine.now engine) :: !arrivals);
  Network.send net ~src:0 ~dst:1 "data";
  Network.send net ~traffic:Network.Control ~src:0 ~dst:1 "token";
  Engine.run engine;
  Alcotest.(check (list (pair string (float 1e-9))))
    "data fast, control slow"
    [ ("data", 2.0); ("token", 9.0) ]
    (List.rev !arrivals)

let test_stats_counts () =
  let engine, net = make () in
  Network.set_handler net 1 (fun _ -> ());
  for _ = 1 to 5 do
    Network.send net ~src:0 ~dst:1 "m"
  done;
  Network.send net ~traffic:Network.Control ~src:0 ~dst:1 "c";
  Engine.run engine;
  let stats = Network.stats net in
  let get = Optimist_util.Stats.Counters.get stats in
  Alcotest.(check int) "sent.data" 5 (get "sent.data");
  Alcotest.(check int) "sent.control" 1 (get "sent.control");
  Alcotest.(check int) "delivered.data" 5 (get "delivered.data");
  Alcotest.(check int) "delivered.control" 1 (get "delivered.control")

let suite =
  [
    Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
    Alcotest.test_case "fifo ordering" `Quick test_fifo_order;
    Alcotest.test_case "reordering network reorders" `Quick
      test_reorder_actually_reorders;
    Alcotest.test_case "data loss, control exempt" `Quick
      test_drop_probability_one;
    Alcotest.test_case "duplication" `Quick test_duplication;
    Alcotest.test_case "fractional duplication" `Quick
      test_duplication_fractional;
    Alcotest.test_case "control exempt from duplication" `Quick
      test_control_exempt_from_duplication;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
    Alcotest.test_case "control reliable across heal" `Quick
      test_control_reliable_across_heal;
    Alcotest.test_case "implicit partition group" `Quick
      test_implicit_partition_group;
    Alcotest.test_case "down endpoint: control held" `Quick
      test_down_endpoint_holds_control;
    Alcotest.test_case "down endpoint: data kept by default" `Quick
      test_down_endpoint_keep_data;
    Alcotest.test_case "loopback" `Quick test_loopback;
    Alcotest.test_case "constant latency" `Quick test_constant_latency;
    Alcotest.test_case "distinct control-plane latency" `Quick
      test_control_latency_distinct;
    Alcotest.test_case "traffic statistics" `Quick test_stats_counts;
  ]
