(* Tests of the soak harness: scenario generation is a pure function of
   (seed, index, protocol), shrink candidates are strict simplifications,
   campaign records are deterministic over their outcomes, and the
   Validate parsers behind the CLI's numeric flags reject bad input with
   the documented one-line errors. *)

module Scenario = Optimist_soak.Scenario
module Soak = Optimist_soak.Soak
module Worker = Optimist_live.Worker
module Json = Optimist_obs.Json
module Validate = Optimist_util.Validate

let scenario_string s = Json.to_string (Scenario.to_json s)

let all_names = List.map Worker.protocol_name Worker.all_protocols

(* --- determinism: same seed => byte-identical scenarios --- *)

let test_generate_deterministic () =
  List.iteri
    (fun i protocol ->
      let seed = Int64.of_int (41 + i) in
      let a = Scenario.generate ~seed ~index:i ~protocol in
      let b = Scenario.generate ~seed ~index:i ~protocol in
      Alcotest.(check string)
        (Printf.sprintf "generate %s is reproducible" protocol)
        (scenario_string a) (scenario_string b))
    all_names

let test_plan_deterministic () =
  let render plan = String.concat "\n" (List.map scenario_string plan) in
  let mk () =
    Scenario.plan ~seed:42L ~count:12 ~protocols:Worker.all_protocols
  in
  Alcotest.(check string) "plan is byte-identical" (render (mk ()))
    (render (mk ()));
  (* The plan cycles the protocol list, so a 12-scenario plan over six
     protocols exercises each exactly twice. *)
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (s : Scenario.t) ->
      Hashtbl.replace counts s.sc_protocol
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts s.sc_protocol)))
    (mk ());
  List.iter
    (fun name ->
      Alcotest.(check int)
        (Printf.sprintf "%s appears twice" name)
        2
        (Option.value ~default:0 (Hashtbl.find_opt counts name)))
    all_names

let test_scenarios_stay_in_bounds () =
  List.iter
    (fun (s : Scenario.t) ->
      Alcotest.(check bool) "n in range" true (s.sc_n >= 3 && s.sc_n <= 5);
      Alcotest.(check bool) "at least one kill" true (s.sc_kills <> []);
      List.iter
        (fun (k : Scenario.kill) ->
          Alcotest.(check bool) "kill pid valid" true
            (k.kl_pid >= 0 && k.kl_pid < s.sc_n);
          Alcotest.(check bool) "kill inside the run window" true
            (k.kl_at > 0.0 && k.kl_at < s.sc_duration))
        s.sc_kills;
      Alcotest.(check bool) "drop is a small probability" true
        (s.sc_drop >= 0.0 && s.sc_drop < 0.1);
      Alcotest.(check bool) "dup is a small probability" true
        (s.sc_dup >= 0.0 && s.sc_dup < 0.1);
      if s.sc_protocol <> "dg" then
        Alcotest.(check (float 0.0)) "dups only for the uid-filtering protocol"
          0.0 s.sc_dup)
    (Scenario.plan ~seed:7L ~count:60 ~protocols:Worker.all_protocols)

(* --- JSON round-trip and replay tokens --- *)

let test_json_roundtrip () =
  List.iter
    (fun s ->
      match Scenario.of_json (Scenario.to_json s) with
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg
      | Ok s' ->
          Alcotest.(check string) "round-trip preserves the scenario"
            (scenario_string s) (scenario_string s'))
    (Scenario.plan ~seed:99L ~count:18 ~protocols:Worker.all_protocols)

let test_replay_token_regenerates () =
  List.iter
    (fun (s : Scenario.t) ->
      match Scenario.of_token (Scenario.replay_token s) with
      | Error msg -> Alcotest.failf "token rejected: %s" msg
      | Ok s' ->
          Alcotest.(check string) "token regenerates the scenario"
            (scenario_string s) (scenario_string s'))
    (Scenario.plan ~seed:5L ~count:6 ~protocols:Worker.all_protocols)

let test_replay_token_from_file () =
  (* A shrunk scenario is unreachable from any SEED:INDEX:PROTOCOL token;
     it replays from its JSON artifact instead. *)
  let s = Scenario.generate ~seed:5L ~index:0 ~protocol:"dg" in
  let shrunk = { s with Scenario.sc_drop = 0.0; sc_dup = 0.0 } in
  let path = Filename.temp_file "soak-minimal" ".json" in
  let oc = open_out path in
  output_string oc (scenario_string shrunk);
  output_char oc '\n';
  close_out oc;
  (match Scenario.of_token path with
  | Error msg -> Alcotest.failf "file token rejected: %s" msg
  | Ok s' ->
      Alcotest.(check string) "file replays the shrunk scenario"
        (scenario_string shrunk) (scenario_string s'));
  Sys.remove path

let test_replay_token_rejects_garbage () =
  List.iter
    (fun tok ->
      match Scenario.of_token tok with
      | Ok _ -> Alcotest.failf "accepted %S" tok
      | Error _ -> ())
    [ "nonsense"; "1:2"; "1:-2:dg"; "x:0:dg"; "1:0:not-a-protocol" ]

(* --- shrinking: every candidate is strictly simpler --- *)

let test_shrink_candidates_strictly_simpler () =
  let rec check_down s depth =
    if depth > 16 then Alcotest.fail "shrink descent did not terminate";
    List.iter
      (fun c ->
        if compare (Scenario.measure c) (Scenario.measure s) >= 0 then
          Alcotest.failf "candidate not simpler: %s -> %s" (scenario_string s)
            (scenario_string c);
        Alcotest.(check bool) "candidates keep at least one kill" true
          (c.Scenario.sc_kills <> []);
        check_down c (depth + 1))
      (Scenario.shrink_candidates s)
  in
  List.iter
    (fun s -> check_down s 0)
    (Scenario.plan ~seed:1L ~count:24 ~protocols:Worker.all_protocols)

(* --- campaign records: pure over their outcomes --- *)

let synthetic_outcomes () =
  let s0 = Scenario.generate ~seed:3L ~index:0 ~protocol:"dg" in
  let s1 = Scenario.generate ~seed:3L ~index:1 ~protocol:"pessimist" in
  let s2 = Scenario.generate ~seed:3L ~index:2 ~protocol:"sender-based" in
  [
    {
      Soak.oc_scenario = s0;
      oc_result =
        Ok
          {
            Soak.rr_crashes = 2;
            rr_events = 400;
            rr_violations = [];
            rr_oracle = None;
            rr_merged = "s0/merged.jsonl";
          };
      oc_minimal = None;
    };
    {
      Soak.oc_scenario = s1;
      oc_result =
        Ok
          {
            Soak.rr_crashes = 1;
            rr_events = 300;
            rr_violations = [ ("OPT002", 3); ("OPT007", 1) ];
            rr_oracle = Some "1 crash(es) delivered but only 0 failure record(s)";
            rr_merged = "s1/merged.jsonl";
          };
      oc_minimal = Some { s1 with Scenario.sc_drop = 0.0 };
    };
    {
      Soak.oc_scenario = s2;
      oc_result = Error "unknown protocol";
      oc_minimal = None;
    };
  ]

let test_campaign_records_deterministic () =
  let render outcomes =
    String.concat "\n"
      (List.map (fun o -> Json.to_string (Soak.outcome_json o)) outcomes
      @ [ Json.to_string (Soak.summary_json (Soak.summarize outcomes)) ])
  in
  Alcotest.(check string) "campaign records are byte-identical"
    (render (synthetic_outcomes ()))
    (render (synthetic_outcomes ()))

let test_summarize_aggregates () =
  let sm = Soak.summarize (synthetic_outcomes ()) in
  Alcotest.(check int) "failed" 1 sm.Soak.sm_failed;
  Alcotest.(check int) "errors" 1 sm.Soak.sm_errors;
  Alcotest.(check int) "crashes" 3 sm.Soak.sm_crashes;
  Alcotest.(check int) "events" 700 sm.Soak.sm_events;
  Alcotest.(check (list (pair string int)))
    "violations aggregated in rule order"
    [ ("OPT002", 3); ("OPT007", 1) ]
    sm.Soak.sm_rule_counts;
  let statuses =
    List.map
      (fun o ->
        match Json.mem "status" (Soak.outcome_json o) with
        | Some (Json.String s) -> s
        | _ -> "?")
      sm.Soak.sm_outcomes
  in
  Alcotest.(check (list string)) "statuses" [ "ok"; "violation"; "error" ]
    statuses

(* --- one tiny live campaign, end to end --- *)

let test_small_live_campaign () =
  let out =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "optsoak-%d" (Unix.getpid ()))
  in
  let s = Scenario.generate ~seed:7L ~index:0 ~protocol:"dg" in
  (* Keep the run short and fault-free on the wire: one SIGKILL only. *)
  let s =
    {
      s with
      Scenario.sc_n = 3;
      sc_duration = 1.2;
      sc_drop = 0.0;
      sc_dup = 0.0;
      sc_partitions = [];
      sc_kills = [ { Scenario.kl_at = 0.6; kl_pid = 1 } ];
    }
  in
  let sm = Soak.run_campaign ~out ~plan:[ s ] () in
  Alcotest.(check int) "no violations" 0 sm.Soak.sm_failed;
  Alcotest.(check int) "no errors" 0 sm.Soak.sm_errors;
  Alcotest.(check int) "one crash delivered" 1 sm.Soak.sm_crashes;
  let lines = ref [] in
  let ic = open_in (Soak.campaign_file out) in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let records =
    List.rev_map
      (fun l ->
        match Json.of_string l with
        | Ok j -> j
        | Error m -> Alcotest.failf "campaign line unparsable: %s" m)
      !lines
  in
  (* One scenario record, the aggregate, and the latency profile. *)
  Alcotest.(check int) "campaign.jsonl lines" 3 (List.length records);
  let kinds =
    List.map
      (fun j ->
        match Json.mem "record" j with
        | Some (Json.String r) -> r
        | _ -> "scenario")
      records
  in
  Alcotest.(check (list string)) "record kinds"
    [ "scenario"; "campaign"; "profile" ]
    kinds

(* --- Validate: the parsers behind the CLI's numeric flags --- *)

let check_parse name expect got =
  Alcotest.(check (result (pair (float 1e-9) int) string)) name expect got

let test_validate_tables () =
  let ints =
    [
      ("--failures -1", Validate.int_at_least 0, "-1",
       Error "must be at least 0 (got -1)");
      ("--scenarios 0", Validate.int_at_least 1, "0",
       Error "must be at least 1 (got 0)");
      ("-n 1", Validate.int_at_least 2, "1",
       Error "must be at least 2 (got 1)");
      ("--hops junk", Validate.int_at_least 1, "junk",
       Error "expected an integer, got \"junk\"");
      ("--failures 2", Validate.int_at_least 0, "2", Ok 2);
    ]
  in
  List.iter
    (fun (name, parse, input, expect) ->
      Alcotest.(check (result int string)) name expect (parse input))
    ints;
  let floats =
    [
      ("--rate 0", Validate.positive_float, "0",
       Error "must be positive (got 0)");
      ("--rate -3", Validate.positive_float, "-3",
       Error "must be positive (got -3)");
      ("--rate inf", Validate.positive_float, "inf",
       Error "must be finite (got inf)");
      ("--settle -0.5", Validate.non_negative_float, "-0.5",
       Error "must be non-negative (got -0.5)");
      ("--settle x", Validate.non_negative_float, "x",
       Error "expected a number, got \"x\"");
      ("--drop 1.5", Validate.probability, "1.5",
       Error "must be a probability in [0, 1] (got 1.5)");
      ("--dup -0.1", Validate.probability, "-0.1",
       Error "must be a probability in [0, 1] (got -0.1)");
      ("--rate 6.5", Validate.positive_float, "6.5", Ok 6.5);
      ("--drop 0.02", Validate.probability, "0.02", Ok 0.02);
    ]
  in
  List.iter
    (fun (name, parse, input, expect) ->
      Alcotest.(check (result (float 1e-9) string)) name expect (parse input))
    floats;
  check_parse "--fault 0.7:1" (Ok (0.7, 1)) (Validate.fault "0.7:1");
  check_parse "--fault 1.0:-2"
    (Error "fault pid must be non-negative (got -2)")
    (Validate.fault "1.0:-2");
  check_parse "--fault 0:1"
    (Error "fault time must be positive (got 0)")
    (Validate.fault "0:1");
  check_parse "--fault nope"
    (Error "expected SECONDS:PID, got \"nope\"")
    (Validate.fault "nope")

let suite =
  [
    Alcotest.test_case "scenario: generate is deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "scenario: plan is deterministic and cycles protocols"
      `Quick test_plan_deterministic;
    Alcotest.test_case "scenario: generated parameters stay in bounds" `Quick
      test_scenarios_stay_in_bounds;
    Alcotest.test_case "scenario: JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "scenario: replay token regenerates" `Quick
      test_replay_token_regenerates;
    Alcotest.test_case "scenario: replay from a scenario file" `Quick
      test_replay_token_from_file;
    Alcotest.test_case "scenario: malformed replay tokens rejected" `Quick
      test_replay_token_rejects_garbage;
    Alcotest.test_case "shrink: candidates strictly simpler, descent bounded"
      `Quick test_shrink_candidates_strictly_simpler;
    Alcotest.test_case "campaign: records deterministic over outcomes" `Quick
      test_campaign_records_deterministic;
    Alcotest.test_case "campaign: summary aggregates outcomes" `Quick
      test_summarize_aggregates;
    Alcotest.test_case "campaign: one live scenario end to end" `Slow
      test_small_live_campaign;
    Alcotest.test_case "validate: numeric flag parsers" `Quick
      test_validate_tables;
  ]
