(* Unit and property tests for optimist_util: PRNG, heap, stats, tables. *)

module Prng = Optimist_util.Prng
module Heap = Optimist_util.Heap
module Stats = Optimist_util.Stats
module Table = Optimist_util.Table

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 99L and b = Prng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_int_bounds () =
  let rng = Prng.create 7L in
  for _ = 1 to 10_000 do
    let x = Prng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of range: %d" x
  done

let test_prng_int_in () =
  let rng = Prng.create 7L in
  for _ = 1 to 1000 do
    let x = Prng.int_in rng (-5) 5 in
    if x < -5 || x > 5 then Alcotest.failf "out of range: %d" x
  done

let test_prng_float_bounds () =
  let rng = Prng.create 3L in
  for _ = 1 to 10_000 do
    let x = Prng.float rng 2.5 in
    if x < 0.0 || x >= 2.5 then Alcotest.failf "out of range: %f" x
  done

let test_prng_split_independent () =
  let rng = Prng.create 1L in
  let a = Prng.split rng in
  let b = Prng.split rng in
  (* Different streams should diverge immediately. *)
  Alcotest.(check bool) "streams differ" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_bernoulli_extremes () =
  let rng = Prng.create 5L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Prng.bernoulli rng 1.0)
  done

let test_prng_exponential_mean () =
  let rng = Prng.create 11L in
  let s = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    s := !s +. Prng.exponential rng ~mean:4.0
  done;
  let mean = !s /. float_of_int n in
  if mean < 3.8 || mean > 4.2 then Alcotest.failf "mean off: %f" mean

let test_prng_shuffle_permutation () =
  let rng = Prng.create 13L in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true
    (sorted = Array.init 50 (fun i -> i))

let prop_pick_member =
  QCheck.Test.make ~name:"pick returns a member" ~count:200
    QCheck.(pair small_int (list_of_size Gen.(1 -- 20) int))
    (fun (seed, xs) ->
      (* The shrinker may shrink below the generator's minimum size. *)
      QCheck.assume (xs <> []);
      let a = Array.of_list xs in
      let rng = Prng.create (Int64.of_int seed) in
      let picked = Prng.pick rng a in
      Array.exists (fun y -> y = picked) a)

(* --- Heap --- *)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare () in
      List.iter (fun x -> Heap.push h x ()) xs;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (k, ()) -> drain (k :: acc)
      in
      drain [] = List.sort compare xs)

let test_heap_peek () =
  let h = Heap.create ~cmp:compare () in
  Alcotest.(check bool) "empty" true (Heap.peek h = None);
  Heap.push h 3 "c";
  Heap.push h 1 "a";
  Heap.push h 2 "b";
  Alcotest.(check int) "length" 3 (Heap.length h);
  (match Heap.peek h with
  | Some (1, "a") -> ()
  | _ -> Alcotest.fail "peek should be minimum");
  Alcotest.(check int) "peek does not pop" 3 (Heap.length h)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare () in
  for i = 1 to 10 do
    Heap.push h i ()
  done;
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)

let test_heap_stability_independence () =
  (* Equal keys may pop in any order, but all must come out. *)
  let h = Heap.create ~cmp:(fun (a : int) b -> compare a b) () in
  List.iter (fun v -> Heap.push h 1 v) [ "x"; "y"; "z" ];
  let vs = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
        vs := v :: !vs;
        drain ()
  in
  drain ();
  Alcotest.(check (list string))
    "all values" [ "x"; "y"; "z" ]
    (List.sort compare !vs)

(* --- Stats --- *)

let test_summary_known () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats.Summary.variance s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stats.Summary.mean s);
  Alcotest.(check (float 0.0)) "variance of empty" 0.0 (Stats.Summary.variance s);
  Alcotest.(check (float 0.0)) "min of empty" 0.0 (Stats.Summary.min s);
  Alcotest.(check (float 0.0)) "max of empty" 0.0 (Stats.Summary.max s);
  Alcotest.(check string) "pp of empty" "n=0"
    (Format.asprintf "%a" Stats.Summary.pp s)

let prop_summary_mean_bounds =
  QCheck.Test.make ~name:"mean within min..max" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let m = Stats.Summary.mean s in
      m >= Stats.Summary.min s -. 1e-9 && m <= Stats.Summary.max s +. 1e-9)

let test_counters () =
  let c = Stats.Counters.create () in
  Stats.Counters.incr c "a";
  Stats.Counters.incr ~by:5 c "a";
  Stats.Counters.incr c "b";
  Alcotest.(check int) "a" 6 (Stats.Counters.get c "a");
  Alcotest.(check int) "b" 1 (Stats.Counters.get c "b");
  Alcotest.(check int) "missing" 0 (Stats.Counters.get c "zzz");
  Alcotest.(check (list (pair string int)))
    "sorted dump"
    [ ("a", 6); ("b", 1) ]
    (Stats.Counters.to_list c)

let test_histogram_percentile () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 10.0; 100.0 |] () in
  for _ = 1 to 90 do
    Stats.Histogram.add h 0.5
  done;
  for _ = 1 to 10 do
    Stats.Histogram.add h 50.0
  done;
  Alcotest.(check (float 1e-9)) "p50" 1.0 (Stats.Histogram.percentile h 0.5);
  Alcotest.(check (float 1e-9)) "p99" 100.0 (Stats.Histogram.percentile h 0.99)

let test_histogram_quantile () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 2.0; 4.0 |] () in
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Stats.Histogram.quantile h 0.5));
  for _ = 1 to 50 do
    Stats.Histogram.add h 0.5
  done;
  for _ = 1 to 50 do
    Stats.Histogram.add h 3.0
  done;
  (* The first bucket interpolates from an implicit lower edge of 0. *)
  Alcotest.(check (float 1e-9)) "p25 interpolates in (0,1]" 0.5
    (Stats.Histogram.quantile h 0.25);
  Alcotest.(check (float 1e-9)) "p75 interpolates in (2,4]" 3.0
    (Stats.Histogram.quantile h 0.75);
  Alcotest.(check (float 1e-9)) "p100 is the bucket's upper edge" 4.0
    (Stats.Histogram.quantile h 1.0);
  Alcotest.(check (float 1e-9)) "q above 1 clamps" 4.0
    (Stats.Histogram.quantile h 2.0);
  let o = Stats.Histogram.create ~buckets:[| 1.0; 2.0; 4.0 |] () in
  Stats.Histogram.add o 100.0;
  Alcotest.(check (float 1e-9)) "overflow clamps to last finite bound" 4.0
    (Stats.Histogram.quantile o 0.5)

let test_histogram_merge () =
  let mk vs =
    let h = Stats.Histogram.create ~buckets:[| 1.0; 10.0 |] () in
    List.iter (Stats.Histogram.add h) vs;
    h
  in
  let a = mk [ 0.5; 0.5; 5.0 ] and b = mk [ 5.0; 50.0 ] in
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "merged count" 5 (Stats.Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged sum" 61.0 (Stats.Histogram.sum m);
  Alcotest.(check (list int))
    "per-bucket counts add" [ 2; 2; 1 ]
    (Array.to_list (Stats.Histogram.counts m));
  Alcotest.(check int) "inputs untouched" 3 (Stats.Histogram.count a);
  let other = Stats.Histogram.create ~buckets:[| 1.0; 2.0 |] () in
  Alcotest.check_raises "mismatched bounds rejected"
    (Invalid_argument "Histogram.merge: incompatible bucket bounds")
    (fun () -> ignore (Stats.Histogram.merge a other))

let test_histogram_bucket_edges () =
  (* The default bounds are exact at integer decades, so an observation
     of exactly 10.0 (or 1000.0) lands deterministically in the bucket
     it bounds instead of spilling over through float drift. *)
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h 10.0;
  Stats.Histogram.add h 1000.0;
  let bounds = Stats.Histogram.bounds h in
  let counts = Stats.Histogram.counts h in
  let idx x =
    let r = ref (-1) in
    Array.iteri (fun i b -> if b = x then r := i) bounds;
    if !r < 0 then Alcotest.failf "no exact bound %g in the default table" x;
    !r
  in
  Alcotest.(check int) "10 lands at the 10-bound bucket" 1 (counts.(idx 10.0));
  Alcotest.(check int) "1000 lands at the 1000-bound bucket" 1
    (counts.(idx 1000.0));
  Alcotest.(check (float 1e-9)) "percentile reports the edge" 10.0
    (Stats.Histogram.percentile h 0.5)

(* --- Table --- *)

let test_table_render () =
  let t =
    Table.create ~columns:[ ("name", Table.Left); ("count", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "100" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* Right-aligned numbers line up at the right edge. *)
  let lines = String.split_on_char '\n' s in
  let data = List.filteri (fun i _ -> i >= 2) lines in
  List.iter
    (fun l ->
      if String.length l > 0 then
        Alcotest.(check bool) "right aligned" true (l.[String.length l - 1] <> ' '))
    data

let test_table_bad_row () =
  let t = Table.create ~columns:[ ("x", Table.Left) ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "a"; "b" ])

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_pick_member; prop_heap_sorts; prop_summary_mean_bounds ]

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng int_in bounds" `Quick test_prng_int_in;
    Alcotest.test_case "prng float bounds" `Quick test_prng_float_bounds;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "prng bernoulli extremes" `Quick test_prng_bernoulli_extremes;
    Alcotest.test_case "prng exponential mean" `Slow test_prng_exponential_mean;
    Alcotest.test_case "prng shuffle permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    Alcotest.test_case "heap clear" `Quick test_heap_clear;
    Alcotest.test_case "heap equal keys" `Quick test_heap_stability_independence;
    Alcotest.test_case "summary known values" `Quick test_summary_known;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "histogram percentile" `Quick test_histogram_percentile;
    Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram bucket edges" `Quick
      test_histogram_bucket_edges;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table bad row" `Quick test_table_bad_row;
  ]
  @ qsuite
