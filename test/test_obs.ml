(* Tests of the optimist.obs subsystem: trace ring buffering, JSONL
   round-trips, sink lifecycle, chrome-export shape, metrics label
   aggregation, and golden-trace determinism of a full faulty run. *)

module Trace = Optimist_obs.Trace
module Metrics = Optimist_obs.Metrics
module Report = Optimist_obs.Report
module Ftvc = Optimist_clock.Ftvc
module Runner = Optimist_runner.Runner
module Schedule = Optimist_workload.Schedule

let ev ?(at = 1.5) ?(pid = 0) ?(ver = 0) ?(clock = [||]) kind =
  { Trace.at; pid; ver; clock; kind }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  loop 0

(* --- ring buffer --- *)

let test_ring_order () =
  let ring = Trace.Ring.create ~capacity:4 () in
  let tr = Trace.create () in
  Alcotest.(check bool) "disabled before attach" false (Trace.enabled tr);
  Trace.attach tr (Trace.Ring.sink ring);
  Alcotest.(check bool) "enabled after attach" true (Trace.enabled tr);
  for i = 1 to 6 do
    Trace.emit tr (ev ~at:(float_of_int i) (Trace.Checkpoint { position = i }))
  done;
  Alcotest.(check int) "bounded by capacity" 4 (Trace.Ring.length ring);
  let ats =
    List.map (fun e -> int_of_float e.Trace.at) (Trace.Ring.to_list ring)
  in
  Alcotest.(check (list int)) "oldest evicted, order kept" [ 3; 4; 5; 6 ] ats;
  Trace.Ring.clear ring;
  Alcotest.(check int) "clear empties" 0 (Trace.Ring.length ring)

let test_null_recorder () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Trace.emit Trace.null (ev Trace.Failure);
  let raised =
    try
      Trace.attach Trace.null (Trace.sink (fun _ -> ()));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "attach to null rejected" true raised

(* --- JSONL encoding --- *)

let all_kinds =
  [
    Trace.Send { uid = 7; dst = 2 };
    Trace.Deliver { uid = 7; src = 1 };
    Trace.Drop_obsolete { uid = -1; src = 3 };
    Trace.Checkpoint { position = 12 };
    Trace.Log_flush { stable = 9 };
    Trace.Failure;
    Trace.Restart { new_ver = 2 };
    Trace.Token_sent { origin = 1; ver = 2; ts = 33 };
    Trace.Token_recv { origin = 1; ver = 2; ts = 33 };
    Trace.Rollback { discarded = 4 };
    Trace.Orphan_detected { origin = 0; ver = 1; ts = 5 };
    Trace.Output_commit { seq = 3 };
    Trace.Custom { name = "net.drop"; detail = "uid=12" };
    Trace.Custom { name = "held"; detail = "" };
    Trace.Span { name = "recovery"; dur = 0.25 };
    Trace.Snapshot
      { protocol = "dg"; values = [ ("gen", 1.0); ("recovery.latency", 0.003) ] };
  ]

let test_jsonl_roundtrip () =
  List.iteri
    (fun i k ->
      let clock =
        if i mod 2 = 0 then [||]
        else [| { Ftvc.ver = 1; ts = 42 }; { Ftvc.ver = 0; ts = 7 } |]
      in
      let e =
        ev ~at:(0.5 +. (7.25 *. float_of_int i)) ~pid:i ~ver:(i mod 3) ~clock k
      in
      match Trace.of_line (Trace.to_line e) with
      | Error msg -> Alcotest.failf "round-trip %s: %s" (Trace.kind_name k) msg
      | Ok e' ->
          Alcotest.(check bool)
            ("round-trip " ^ Trace.kind_name k)
            true (e = e'))
    all_kinds

let test_jsonl_rejects_garbage () =
  let bad l =
    match Trace.of_line l with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "not json" true (bad "not json");
  Alcotest.(check bool) "missing fields" true (bad {|{"at":1.0}|});
  Alcotest.(check bool) "unknown kind" true
    (bad {|{"at":1.0,"pid":0,"ver":0,"kind":"warp"}|})

let test_jsonl_sink () =
  let buf = Buffer.create 256 in
  let tr = Trace.create () in
  Trace.attach tr (Trace.jsonl_sink (Buffer.add_string buf));
  Trace.emit tr (ev Trace.Failure);
  Trace.emit tr (ev ~at:2.0 (Trace.Restart { new_ver = 1 }));
  Trace.close tr;
  Alcotest.(check bool) "close disables" false (Trace.enabled tr);
  let lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check int) "header plus one line per event" 3 (List.length lines);
  (match Trace.of_line (List.hd lines) with
  | Ok hd ->
      Alcotest.(check (option int))
        "first line is the schema header"
        (Some Trace.schema_version)
        (Trace.schema_of_event hd)
  | Error m -> Alcotest.failf "header line unparsable: %s" m);
  List.iter
    (fun l ->
      match Trace.of_line l with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "sink line unparsable: %s" m)
    lines

let test_chrome_shape () =
  let buf = Buffer.create 256 in
  let tr = Trace.create () in
  Trace.attach tr (Trace.chrome_sink (Buffer.add_string buf));
  Trace.emit tr (ev ~pid:0 (Trace.Send { uid = 1; dst = 1 }));
  Trace.emit tr (ev ~at:2.0 ~pid:1 (Trace.Deliver { uid = 1; src = 0 }));
  Trace.emit tr (ev ~at:3.0 ~pid:1 Trace.Failure);
  Trace.emit tr (ev ~at:4.0 ~pid:1 (Trace.Restart { new_ver = 1 }));
  Trace.close tr;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "object header" true
    (String.length s > 16 && String.sub s 0 16 = {|{"traceEvents":[|});
  Alcotest.(check bool) "closed array" true
    (String.length s > 3 && String.sub s (String.length s - 3) 3 = "]}\n");
  Alcotest.(check bool) "process metadata" true (contains s "process_name");
  Alcotest.(check bool) "flow start" true (contains s {|"ph":"s"|});
  Alcotest.(check bool) "flow finish" true (contains s {|"ph":"f"|});
  Alcotest.(check bool) "down slice opens" true (contains s {|"ph":"B"|});
  Alcotest.(check bool) "down slice closes" true (contains s {|"ph":"E"|})

let test_chrome_telemetry_shape () =
  let buf = Buffer.create 256 in
  let tr = Trace.create () in
  Trace.attach tr (Trace.chrome_sink (Buffer.add_string buf));
  Trace.emit tr (ev ~at:1.0 (Trace.Span { name = "recovery"; dur = 0.25 }));
  Trace.emit tr
    (ev ~at:2.0
       (Trace.Snapshot { protocol = "dg"; values = [ ("delivered", 4.0) ] }));
  Trace.close tr;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "span is a complete slice" true
    (contains s {|"ph":"X"|});
  Alcotest.(check bool) "span carries its duration" true
    (contains s {|"dur":250.0|});
  Alcotest.(check bool) "snapshot is a counter record" true
    (contains s {|"ph":"C"|});
  Alcotest.(check bool) "counters share one track" true
    (contains s {|"name":"metrics"|})

(* --- metrics --- *)

let test_metrics_labels () =
  let reg = Metrics.registry () in
  let a0 = Metrics.Scope.create ~registry:reg ~protocol:"alpha" ~process:0 () in
  let a1 = Metrics.Scope.create ~registry:reg ~protocol:"alpha" ~process:1 () in
  let b0 = Metrics.Scope.create ~registry:reg ~protocol:"beta" ~process:0 () in
  Metrics.Scope.incr a0 "delivered";
  Metrics.Scope.incr ~by:4 a1 "delivered";
  Metrics.Scope.incr b0 "delivered";
  Metrics.Scope.incr b0 "rollbacks";
  Alcotest.(check int) "scope get" 4 (Metrics.Scope.get a1 "delivered");
  Alcotest.(check int) "absent name is zero" 0 (Metrics.Scope.get a0 "nope");
  Alcotest.(check int) "total over all scopes" 6 (Metrics.total reg "delivered");
  Alcotest.(check int) "total filtered by protocol" 5
    (Metrics.total ~protocol:"alpha" reg "delivered");
  Alcotest.(check (list (pair string int)))
    "totals of one protocol"
    [ ("delivered", 1); ("rollbacks", 1) ]
    (Metrics.totals ~protocol:"beta" reg);
  Alcotest.(check int) "three scopes registered" 3
    (List.length (Metrics.scopes reg));
  let l = Metrics.Scope.labels a1 in
  Alcotest.(check string) "protocol label" "alpha" l.Metrics.protocol;
  Alcotest.(check int) "process label" 1 l.Metrics.process

let test_metrics_instruments () =
  let reg = Metrics.registry () in
  let a = Metrics.Scope.create ~registry:reg ~protocol:"p" ~process:0 () in
  let b = Metrics.Scope.create ~registry:reg ~protocol:"p" ~process:1 () in
  Metrics.Scope.observe a "lat" 1.0;
  Metrics.Scope.observe a "lat" 3.0;
  Metrics.Scope.observe b "lat" 8.0;
  let agg = Metrics.aggregate reg "lat" in
  Alcotest.(check int) "agg count" 3 agg.Metrics.count;
  Alcotest.(check (float 1e-9)) "agg total" 12.0 agg.Metrics.total;
  Alcotest.(check (float 1e-9)) "agg mean" 4.0 agg.Metrics.mean;
  Alcotest.(check (float 1e-9)) "agg min" 1.0 agg.Metrics.min;
  Alcotest.(check (float 1e-9)) "agg max" 8.0 agg.Metrics.max;
  let none = Metrics.aggregate reg "absent" in
  Alcotest.(check int) "absent summary empty" 0 none.Metrics.count;
  Metrics.Scope.set_gauge a "held" 2.5;
  Alcotest.(check (float 1e-9)) "gauge read" 2.5 (Metrics.Scope.gauge a "held");
  Alcotest.(check (float 1e-9)) "gauge default" 0.0
    (Metrics.Scope.gauge b "held");
  Metrics.Scope.observe_hist a "depth" 5.0;
  Alcotest.(check bool) "histogram created" true
    (Metrics.Scope.histogram a "depth" <> None);
  Alcotest.(check bool) "histogram absent" true
    (Metrics.Scope.histogram b "depth" = None)

let test_scope_snapshot () =
  let s = Metrics.Scope.create ~protocol:"dg" ~process:0 () in
  Metrics.Scope.incr ~by:2 s "sent";
  Metrics.Scope.set_gauge s "held" 1.5;
  Metrics.Scope.observe s "lat" 2.0;
  Metrics.Scope.observe s "lat" 4.0;
  let snap = Metrics.Scope.snapshot s in
  let get k =
    match List.assoc_opt k snap with
    | Some v -> v
    | None -> Alcotest.failf "snapshot lacks %s" k
  in
  Alcotest.(check (float 1e-9)) "counter" 2.0 (get "sent");
  Alcotest.(check (float 1e-9)) "gauge" 1.5 (get "held");
  Alcotest.(check (float 1e-9)) "summary count" 2.0 (get "lat.count");
  Alcotest.(check (float 1e-9)) "summary mean" 3.0 (get "lat.mean");
  Alcotest.(check (float 1e-9)) "summary max" 4.0 (get "lat.max");
  let names = List.map fst snap in
  Alcotest.(check (list string)) "name-sorted" (List.sort compare names) names

(* One scope exercising each instrument family: the exposition text is
   fully deterministic (families sorted by name, scopes in registration
   order), so the whole page is a golden string. *)
let test_metrics_prom () =
  let reg = Metrics.registry () in
  let a = Metrics.Scope.create ~registry:reg ~protocol:"dg" ~process:0 () in
  let b = Metrics.Scope.create ~registry:reg ~protocol:"dg" ~process:1 () in
  Metrics.Scope.incr ~by:3 a "delivered";
  Metrics.Scope.incr b "delivered";
  Metrics.Scope.set_gauge a "held" 2.5;
  Metrics.Scope.observe a "lat" 1.0;
  Metrics.Scope.observe a "lat" 3.0;
  Metrics.Scope.observe_hist ~buckets:[| 1.0; 2.0 |] a "depth" 1.5;
  Metrics.Scope.observe_hist ~buckets:[| 1.0; 2.0 |] a "depth" 5.0;
  let expected =
    String.concat "\n"
      [
        "# TYPE optimist_delivered counter";
        {|optimist_delivered{protocol="dg",process="0"} 3|};
        {|optimist_delivered{protocol="dg",process="1"} 1|};
        "# TYPE optimist_depth histogram";
        {|optimist_depth_bucket{protocol="dg",process="0",le="1"} 0|};
        {|optimist_depth_bucket{protocol="dg",process="0",le="2"} 1|};
        {|optimist_depth_bucket{protocol="dg",process="0",le="+Inf"} 2|};
        {|optimist_depth_sum{protocol="dg",process="0"} 6.5|};
        {|optimist_depth_count{protocol="dg",process="0"} 2|};
        "# TYPE optimist_held gauge";
        {|optimist_held{protocol="dg",process="0"} 2.5|};
        "# TYPE optimist_lat summary";
        {|optimist_lat_count{protocol="dg",process="0"} 2|};
        {|optimist_lat_sum{protocol="dg",process="0"} 4|};
        "";
      ]
  in
  Alcotest.(check string) "prometheus exposition" expected
    (Metrics.to_prom reg)

(* --- recovery profiler --- *)

(* Resolve fixtures next to the test binary so both `dune runtest`
   (cwd = build sandbox) and `dune exec` (cwd = repo root) find them. *)
let fixture file =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat "fixtures" file)

let test_report_golden () =
  let r =
    match
      Report.of_files
        [ fixture "telemetry.jsonl"; fixture "telemetry_baseline.jsonl" ]
    with
    | Ok r -> r
    | Error m -> Alcotest.failf "report: %s" m
  in
  Alcotest.(check int) "events" 14 r.Report.events;
  Alcotest.(check int) "no parse errors" 0 r.Report.parse_errors;
  Alcotest.(check (list string)) "no schema warnings" []
    r.Report.schema_warnings;
  Alcotest.(check int) "recoveries" 2 (Report.total_recoveries r);
  (* Faulted file: 24 deliveries over 2 s; baseline: 60 over 2 s. The
     nearest-rank quantiles over two recoveries are the two latencies. *)
  let expected_csv =
    "protocol,recoveries,latency_p50_ms,latency_p95_ms,latency_max_ms,\
     rollback_depth_hist,messages_replayed,bytes_reread,throughput_per_s,\
     baseline_per_s,overhead\n\
     dg,2,2.0,4.0,4.0,1:1 2:1,9,400,12.000,30.000,0.6000\n"
  in
  Alcotest.(check string) "csv golden" expected_csv (Report.to_csv r);
  (match List.find_opt (fun s -> s.Report.name = "handle") r.Report.spans with
  | Some s ->
      Alcotest.(check int) "handle span count" 2 s.Report.count;
      Alcotest.(check (float 1e-9)) "handle span total" 0.004 s.Report.total;
      Alcotest.(check (float 1e-9)) "handle span max" 0.003 s.Report.max_dur
  | None -> Alcotest.fail "handle span missing from the report");
  let text = Report.to_text r in
  Alcotest.(check bool) "text table has the protocol row" true
    (contains text "dg");
  Alcotest.(check bool) "text table has the span section" true
    (contains text "spans:")

let test_report_errors () =
  (match Report.of_files [] with
  | Ok _ -> Alcotest.fail "empty file list accepted"
  | Error _ -> ());
  match Report.of_files [ fixture "no_such_file.jsonl" ] with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

(* --- golden-trace determinism --- *)

(* The recsim acceptance scenario: damani-garg, 4 processes, 2 crashes in
   the middle 80% of the default run (same derived fault seed the CLI
   uses). The engine is deterministic, so the JSONL stream must be
   byte-identical across runs. *)
let faulty_trace () =
  let buf = Buffer.create 4096 in
  let tr = Trace.create () in
  Trace.attach tr (Trace.jsonl_sink (Buffer.add_string buf));
  let faults =
    Schedule.random_crashes ~seed:101L ~n:4 ~failures:2 ~window:(50.0, 450.0)
  in
  let params = { Runner.default_params with Runner.faults; trace = tr } in
  let report = Runner.run params in
  Trace.close tr;
  (report, Buffer.contents buf)

let test_golden_determinism () =
  let r1, t1 = faulty_trace () in
  let _r2, t2 = faulty_trace () in
  Alcotest.(check bool) "trace non-empty" true (String.length t1 > 0);
  Alcotest.(check bool) "byte-identical across runs" true (String.equal t1 t2);
  let events =
    List.filter_map
      (fun l ->
        if l = "" then None
        else
          match Trace.of_line l with
          | Ok e -> Some e
          | Error m -> Alcotest.failf "bad line in run trace: %s" m)
      (String.split_on_char '\n' t1)
  in
  let count name =
    List.length
      (List.filter (fun e -> Trace.kind_name e.Trace.kind = name) events)
  in
  Alcotest.(check int) "failures traced" 2 (count "failure");
  Alcotest.(check int) "restarts traced" 2 (count "restart");
  Alcotest.(check bool) "rollbacks traced" true (count "rollback" > 0);
  Alcotest.(check bool) "obsolete discards traced" true
    (count "drop_obsolete" > 0);
  List.iter
    (fun e ->
      if Trace.kind_name e.Trace.kind = "rollback" then
        Alcotest.(check int) "rollback carries full FTVC" 4
          (Array.length e.Trace.clock))
    events;
  Alcotest.(check int) "report agrees on failures" 2
    (Runner.counter r1 "failures")

let suite =
  [
    Alcotest.test_case "ring ordering and eviction" `Quick test_ring_order;
    Alcotest.test_case "null recorder" `Quick test_null_recorder;
    Alcotest.test_case "jsonl round-trip all kinds" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl rejects garbage" `Quick test_jsonl_rejects_garbage;
    Alcotest.test_case "jsonl sink lines" `Quick test_jsonl_sink;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_shape;
    Alcotest.test_case "chrome telemetry shape" `Quick
      test_chrome_telemetry_shape;
    Alcotest.test_case "metrics label aggregation" `Quick test_metrics_labels;
    Alcotest.test_case "metrics instruments" `Quick test_metrics_instruments;
    Alcotest.test_case "scope snapshot" `Quick test_scope_snapshot;
    Alcotest.test_case "prometheus exposition golden" `Quick test_metrics_prom;
    Alcotest.test_case "recovery report golden" `Quick test_report_golden;
    Alcotest.test_case "recovery report errors" `Quick test_report_errors;
    Alcotest.test_case "golden trace determinism" `Quick
      test_golden_determinism;
  ]
