(* Golden-sync checks between the documentation and the code: the OPT
   rule table in DESIGN.md section 9 must match Check.rules exactly
   (id, slug, severity, online-only flag, paper reference), so the docs
   cannot silently drift from the sanitizer. *)

module Check = Optimist_check.Check

(* The test binary runs in _build/default/test; DESIGN.md is declared as
   a dune dep one level up. *)
let design_md = Filename.concat ".." "DESIGN.md"

let read_lines file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

type row = {
  row_id : string;
  row_slug : string;
  row_severity : Check.severity;
  row_online : bool;
  row_reference : string;
}

let parse_row line =
  match String.split_on_char '|' line with
  | "" :: id :: slug :: severity :: reference :: _doc ->
      let severity = String.trim severity in
      let row_severity, row_online =
        match severity with
        | "error" -> (Check.Error, false)
        | "warning" -> (Check.Warning, false)
        | "error (online only)" -> (Check.Error, true)
        | "warning (online only)" -> (Check.Warning, true)
        | s -> Alcotest.failf "DESIGN.md rule table: bad severity %S" s
      in
      {
        row_id = String.trim id;
        row_slug = String.trim slug;
        row_severity;
        row_online;
        row_reference = String.trim reference;
      }
  | _ -> Alcotest.failf "DESIGN.md rule table: unparsable row %S" line

let rule_rows () =
  read_lines design_md
  |> List.filter (fun l ->
         String.length l >= 6 && String.sub l 0 6 = "| OPT0")
  |> List.map parse_row

let test_rule_table_in_sync () =
  let rows = rule_rows () in
  Alcotest.(check int)
    "DESIGN.md lists every rule" (List.length Check.rules) (List.length rows);
  List.iter2
    (fun row (rule : Check.rule) ->
      Alcotest.(check string) "id" rule.Check.id row.row_id;
      Alcotest.(check string) (rule.Check.id ^ " slug") rule.Check.slug
        row.row_slug;
      Alcotest.(check bool)
        (rule.Check.id ^ " severity")
        true
        (row.row_severity = rule.Check.severity);
      Alcotest.(check bool)
        (rule.Check.id ^ " online-only flag")
        rule.Check.online_only row.row_online;
      Alcotest.(check string)
        (rule.Check.id ^ " reference")
        rule.Check.reference row.row_reference)
    rows Check.rules

let suite =
  [
    Alcotest.test_case "DESIGN.md section 9 rule table matches Check.rules"
      `Quick test_rule_table_in_sync;
  ]
