(* Tests of the cluster subsystem: the TCP mesh link (framing, both
   lanes, reconnection, backoff to a late peer), the coordinator's pid
   partitioning, the agent protocol plumbing, and one end-to-end
   two-agent localhost cluster run with a real SIGKILL. *)

module Loop = Optimist_live.Loop
module Tcplink = Optimist_cluster.Tcplink
module Coordinator = Optimist_cluster.Coordinator
module Worker = Optimist_live.Worker
module Transport = Optimist_core.Transport
module Trace = Optimist_obs.Trace
module Check = Optimist_check.Check
module Validate = Optimist_util.Validate

let tmp_counter = ref 0

let temp_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "optclu-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

(* Distinct port ranges per test so parallel alcotest runs and TIME_WAIT
   leftovers cannot collide. Derived from the test process's pid to
   survive repeated invocations on one machine. *)
let port_base =
  let counter = ref 0 in
  fun () ->
    incr counter;
    20000 + ((Unix.getpid () * 13 + !counter * 101) mod 20000)

let endpoints base n = Array.init n (fun i -> ("127.0.0.1", base + i))

let make_pair ?faults_a ?(retransmit_every = 0.05) loop base =
  let eps = endpoints base 2 in
  let a =
    Tcplink.create ?faults:faults_a ~retransmit_every ~loop ~endpoints:eps
      ~me:0 ~n:2 ~seed:31L ()
  in
  let b =
    Tcplink.create ~retransmit_every ~loop ~endpoints:eps ~me:1 ~n:2
      ~seed:32L ()
  in
  (a, b)

let test_tcp_data_and_control () =
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let a, b = make_pair loop (port_base ()) in
  Alcotest.(check bool) "mesh connects" true
    (Tcplink.wait_connected a ~timeout:5.0
    && Tcplink.wait_connected b ~timeout:5.0);
  let got = ref [] in
  (Tcplink.transport b).Transport.set_handler 1 (fun m -> got := m :: !got);
  (Tcplink.transport a).Transport.set_handler 0 (fun _ -> ());
  (Tcplink.transport a).Transport.send ~lane:Transport.Data ~src:0 ~dst:1
    "data";
  (Tcplink.transport a).Transport.send ~lane:Transport.Control ~src:0 ~dst:1
    "ctl";
  Loop.run loop ~until:0.4;
  Alcotest.(check (list string)) "both lanes delivered" [ "ctl"; "data" ]
    (List.sort compare !got);
  Alcotest.(check int) "control acked" 0 (Tcplink.unacked_count a);
  Tcplink.close a;
  Tcplink.close b

let test_tcp_control_reaches_late_peer () =
  (* Control sent before the peer has even bound its port: the sender
     backs off, reconnects once the listener appears, and the retransmit
     timer delivers the frame exactly once. *)
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let base = port_base () in
  let eps = endpoints base 2 in
  let a =
    Tcplink.create ~retransmit_every:0.05 ~loop ~endpoints:eps ~me:0 ~n:2
      ~seed:33L ()
  in
  (Tcplink.transport a).Transport.set_handler 0 (fun _ -> ());
  (Tcplink.transport a).Transport.send ~lane:Transport.Control ~src:0 ~dst:1
    "tok";
  Loop.run loop ~until:0.15;
  Alcotest.(check int) "still unacked" 1 (Tcplink.unacked_count a);
  let b =
    Tcplink.create ~retransmit_every:0.05 ~loop ~endpoints:eps ~me:1 ~n:2
      ~seed:34L ()
  in
  let got = ref [] in
  (Tcplink.transport b).Transport.set_handler 1 (fun m -> got := m :: !got);
  Alcotest.(check bool) "late peer reachable" true
    (Tcplink.wait_connected a ~timeout:5.0);
  Loop.run loop ~until:1.0;
  Alcotest.(check (list string)) "delivered exactly once" [ "tok" ] !got;
  Alcotest.(check int) "acked after retry" 0 (Tcplink.unacked_count a);
  Tcplink.close a;
  Tcplink.close b

let test_tcp_reconnects_after_peer_restart () =
  (* Tear the receiving end down mid-conversation and bring a new
     incarnation up on the same port: the sender's failure detector must
     rebuild the connection (visible as reconnects > 0) and control
     traffic queued across the outage must arrive exactly once. *)
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let base = port_base () in
  let eps = endpoints base 2 in
  let a =
    Tcplink.create ~retransmit_every:0.05 ~loop ~endpoints:eps ~me:0 ~n:2
      ~seed:35L ()
  in
  let b =
    Tcplink.create ~retransmit_every:0.05 ~loop ~endpoints:eps ~me:1 ~n:2
      ~seed:36L ()
  in
  (Tcplink.transport a).Transport.set_handler 0 (fun _ -> ());
  let got = ref [] in
  (Tcplink.transport b).Transport.set_handler 1 (fun m -> got := m :: !got);
  Alcotest.(check bool) "initial mesh up" true
    (Tcplink.wait_connected a ~timeout:5.0);
  (Tcplink.transport a).Transport.send ~lane:Transport.Control ~src:0 ~dst:1
    "before";
  Loop.run loop ~until:0.3;
  Alcotest.(check (list string)) "first frame arrives" [ "before" ] !got;
  Tcplink.close b;
  (* Queued while the peer is dead: a real outage, not a quiet queue. *)
  (Tcplink.transport a).Transport.send ~lane:Transport.Control ~src:0 ~dst:1
    "during";
  Loop.run loop ~until:0.6;
  let b' =
    Tcplink.create ~retransmit_every:0.05 ~seq_base:1_000_000 ~loop
      ~endpoints:eps ~me:1 ~n:2 ~seed:37L ()
  in
  let got' = ref [] in
  (Tcplink.transport b').Transport.set_handler 1 (fun m -> got' := m :: !got');
  Alcotest.(check bool) "mesh heals" true
    (Tcplink.wait_connected a ~timeout:5.0);
  Loop.run loop ~until:1.5;
  Alcotest.(check (list string)) "outage-spanning control arrives once"
    [ "during" ] !got';
  Alcotest.(check int) "nothing left unacked" 0 (Tcplink.unacked_count a);
  Alcotest.(check bool) "reconnect counted" true
    (List.assoc "reconnects" (Tcplink.stats a) > 0);
  Tcplink.close a;
  Tcplink.close b'

let test_tcp_large_frame () =
  (* A payload far bigger than any single read(2) must reassemble
     through the length-prefixed framing. *)
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let a, b = make_pair loop (port_base ()) in
  Alcotest.(check bool) "mesh connects" true
    (Tcplink.wait_connected a ~timeout:5.0);
  let payload = String.init 300_000 (fun i -> Char.chr (i mod 251)) in
  let got = ref None in
  (Tcplink.transport b).Transport.set_handler 1 (fun m -> got := Some m);
  (Tcplink.transport a).Transport.set_handler 0 (fun _ -> ());
  (Tcplink.transport a).Transport.send ~lane:Transport.Control ~src:0 ~dst:1
    payload;
  Loop.run loop ~until:0.6;
  (match !got with
  | Some m -> Alcotest.(check bool) "payload intact" true (String.equal m payload)
  | None -> Alcotest.fail "large frame not delivered");
  Tcplink.close a;
  Tcplink.close b

let test_tcp_snapshot_has_link_metrics () =
  let loop = Loop.create ~base:(Unix.gettimeofday ()) () in
  let a, b = make_pair loop (port_base ()) in
  Alcotest.(check bool) "mesh connects" true
    (Tcplink.wait_connected a ~timeout:5.0);
  (Tcplink.transport a).Transport.set_handler 0 (fun _ -> ());
  (Tcplink.transport b).Transport.set_handler 1 (fun _ -> ());
  (Tcplink.transport a).Transport.send ~lane:Transport.Data ~src:0 ~dst:1 "x";
  Loop.run loop ~until:0.8;
  let snap = Tcplink.snapshot a in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true (List.mem_assoc key snap))
    [ "link.frames_sent"; "link.bytes_sent"; "link.connects";
      "link.hb_rtt_ms.count"; "link.hb_rtt_ms.p95" ];
  Alcotest.(check bool) "heartbeats measured" true
    (List.assoc "link.hb_rtt_ms.count" snap > 0.0);
  Tcplink.close a;
  Tcplink.close b

(* --- coordinator plumbing --- *)

let test_blocks_partition_pids () =
  Alcotest.(check (list (list int)))
    "5 over 2" [ [ 0; 1; 2 ]; [ 3; 4 ] ]
    (Coordinator.blocks ~n:5 ~k:2);
  Alcotest.(check (list (list int)))
    "4 over 4" [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    (Coordinator.blocks ~n:4 ~k:4);
  Alcotest.(check (list (list int)))
    "7 over 3" [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ]
    (Coordinator.blocks ~n:7 ~k:3)

let test_host_port_parses () =
  List.iter
    (fun (input, expect) ->
      match (Validate.host_port input, expect) with
      | Ok got, Some want ->
          Alcotest.(check (pair string int)) input want got
      | Error _, None -> ()
      | Ok _, None -> Alcotest.failf "%S accepted" input
      | Error msg, Some _ -> Alcotest.failf "%S rejected: %s" input msg)
    [
      ("localhost:7800", Some ("localhost", 7800));
      ("10.0.0.2:1", Some ("10.0.0.2", 1));
      ("host:65535", Some ("host", 65535));
      ("host:0", None);
      ("host:65536", None);
      ("host:", None);
      (":7800", None);
      ("7800", None);
      ("host:seven", None);
    ]

(* --- end to end: two forked agents, real SIGKILL, strict lint --- *)

let lint_clean path =
  match Check.Lint.run ~only:[] ~ignore:[] path with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
      Alcotest.(check int) "lint errors" 0 (Check.Lint.errors report);
      Alcotest.(check int) "lint warnings" 0 (Check.Lint.warnings report);
      Alcotest.(check int) "parse errors" 0 report.Check.Lint.parse_errors

let test_cluster_run_with_crash () =
  let out = Filename.concat (temp_dir ()) "cl" in
  let base = port_base () in
  let cfg =
    {
      Coordinator.default_cfg with
      Coordinator.cc_out = out;
      cc_n = 4;
      cc_seed = 42L;
      cc_duration = 1.6;
      cc_settle = 1.4;
      cc_rate = 6.0;
      cc_hops = 3;
      cc_kills = [ (0.7, 1) ];
      cc_worker_base = base + 8;
    }
  in
  match Coordinator.run_forked ~port_base:base ~agents:2 cfg with
  | Error msg -> Alcotest.failf "cluster run failed: %s" msg
  | Ok r ->
      Alcotest.(check int) "one crash injected" 1 r.Coordinator.cs_crashes;
      Alcotest.(check int) "every final incarnation exits clean" 4
        r.Coordinator.cs_clean_exits;
      Alcotest.(check bool) "events recorded" true
        (r.Coordinator.cs_events > 50);
      let restarted = ref false and tcp_snapshot = ref false in
      Trace.iter_file r.Coordinator.cs_merged ~f:(fun ~line:_ -> function
        | Ok { Trace.pid = 1; kind = Trace.Restart { new_ver }; _ }
          when new_ver >= 1 ->
            restarted := true
        | Ok { Trace.kind = Trace.Snapshot { values; _ }; _ }
          when List.mem_assoc "link.frames_sent" values ->
            tcp_snapshot := true
        | _ -> ());
      Alcotest.(check bool) "killed worker restarted over TCP" true !restarted;
      Alcotest.(check bool) "link metrics snapshotted" true !tcp_snapshot;
      Alcotest.(check bool) "chrome timeline written" true
        (Sys.file_exists r.Coordinator.cs_chrome);
      lint_clean r.Coordinator.cs_merged

let suite =
  [
    Alcotest.test_case "tcp link: data and control delivery" `Quick
      test_tcp_data_and_control;
    Alcotest.test_case "tcp link: control reaches a late peer" `Quick
      test_tcp_control_reaches_late_peer;
    Alcotest.test_case "tcp link: reconnects after peer restart" `Quick
      test_tcp_reconnects_after_peer_restart;
    Alcotest.test_case "tcp link: large frame reassembly" `Quick
      test_tcp_large_frame;
    Alcotest.test_case "tcp link: snapshot carries link metrics" `Quick
      test_tcp_snapshot_has_link_metrics;
    Alcotest.test_case "coordinator: pid blocks are contiguous" `Quick
      test_blocks_partition_pids;
    Alcotest.test_case "validate: host:port endpoints" `Quick
      test_host_port_parses;
    Alcotest.test_case "two-agent cluster run with SIGKILL recovery" `Slow
      test_cluster_run_with_crash;
  ]
