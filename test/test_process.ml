(* Process-level unit tests of the Figure 4 receive/restart/rollback
   machinery, driven with scripted timing on constant-latency networks so
   each rule is exercised in isolation. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Ftvc = Optimist_clock.Ftvc
module Types = Optimist_core.Types
module Process = Optimist_core.Process
module System = Optimist_core.System
module Oracle = Optimist_oracle.Oracle

let cget dump name =
  match List.assoc_opt name dump with Some v -> v | None -> 0

type msg = { tag : string; route : (int * string) list }

(* Scripted app: a message carries the remaining route; each delivery pops
   the next (destination, tag) hop. *)
let app : (string list, msg) Types.app =
  {
    Types.init = (fun _ -> []);
    on_message =
      (fun ~me:_ ~src:_ state m ->
        let state' = m.tag :: state in
        let sends =
          match m.route with
          | [] -> []
          | (dst, tag) :: rest -> [ (dst, { tag; route = rest }) ]
        in
        (state', sends));
  }

let make ?(n = 3) ?(latency = 5.0) ?(control_latency = latency)
    ?(flush_interval = 10_000.0) ?(restart_delay = 10.0) ?tracer () =
  let config =
    {
      Types.default_config with
      Types.flush_interval;
      checkpoint_interval = 10_000.0;
      restart_delay;
    }
  in
  let net_config =
    {
      (Network.default_config ~n) with
      Network.latency = Network.Constant latency;
      control_latency = Some (Network.Constant control_latency);
    }
  in
  System.create ~seed:6L ~net_config ~config ?tracer ~n ~app ()

let received sys pid = List.rev (Process.state (System.process sys pid))

(* --- deliverability: a message naming an unknown incarnation waits --- *)

let test_hold_for_missing_token () =
  (* Control plane slower than data: P1 restarts and its new-incarnation
     message beats the version-0 token to P2. *)
  let sys = make ~latency:2.0 ~control_latency:20.0 () in
  System.inject_at sys ~at:5.0 ~pid:1 { tag = "pre"; route = [] };
  System.fail_at sys ~at:10.0 ~pid:1;
  (* After restart (t=20), P1 sends to P2 from incarnation 1. *)
  System.inject_at sys ~at:21.0 ~pid:1 { tag = "go"; route = [ (2, "from-v1") ] };
  System.run ~until:29.0 sys;
  (* t=29: the message (sent ~21, latency 2) has arrived; the token
     (sent 20, latency 20) has not. *)
  Alcotest.(check int) "message held" 1 (Process.held_count (System.process sys 2));
  Alcotest.(check (list string)) "not delivered yet" [] (received sys 2);
  System.run sys;
  Alcotest.(check int) "released" 0 (Process.held_count (System.process sys 2));
  Alcotest.(check (list string)) "delivered after token" [ "from-v1" ]
    (received sys 2)

(* --- token before message: no hold needed --- *)

let test_no_hold_when_token_known () =
  let sys = make ~latency:20.0 ~control_latency:2.0 () in
  System.inject_at sys ~at:5.0 ~pid:1 { tag = "pre"; route = [] };
  System.fail_at sys ~at:10.0 ~pid:1;
  System.inject_at sys ~at:21.0 ~pid:1 { tag = "go"; route = [ (2, "from-v1") ] };
  System.run sys;
  Alcotest.(check int) "never held" 0
    (cget (Process.counters (System.process sys 2)) "held");
  Alcotest.(check (list string)) "delivered" [ "from-v1" ] (received sys 2)

(* --- version accessor and token content --- *)

let test_version_and_token () =
  let sys = make () in
  System.fail_at sys ~at:10.0 ~pid:0;
  System.fail_at sys ~at:40.0 ~pid:0;
  System.run sys;
  Alcotest.(check int) "two incarnations" 2 (Process.version (System.process sys 0));
  (* Peers saw both tokens. *)
  Alcotest.(check int) "tokens at P1" 2
    (cget (Process.counters (System.process sys 1)) "tokens_received")

(* --- a rollback that crosses the process's own restart point --- *)

let test_rollback_crossing_restart () =
  (* P0 delivers from P1 (building a dependency on P1's volatile state),
     then P0 crashes and restarts: the dependency survives in P0's stable
     log, so the new incarnation still carries it. Only then does P1
     crash, losing the state P0 depends on: P0's rollback must cross its
     own restart point and keep its incarnation number. *)
  let oracle = Oracle.create ~n:3 in
  let sys = make ~flush_interval:10_000.0 ~tracer:(Oracle.tracer oracle) () in
  (* P1 -> P0 dependency; P1's delivery of "seed" stays volatile. *)
  System.inject_at sys ~at:5.0 ~pid:1 { tag = "seed"; route = [ (0, "dep") ] };
  (* P0 flushes (making "dep" stable), then crashes and restarts. *)
  ignore
    (Engine.schedule_at (System.engine sys) 15.0 (fun () ->
         Process.flush_now (System.process sys 0)));
  System.fail_at sys ~at:20.0 ~pid:0;
  (* After P0's restart (t=30), P1 crashes losing "seed". *)
  System.fail_at sys ~at:40.0 ~pid:1;
  System.run sys;
  let p0 = System.process sys 0 in
  (* P0 rolled back past its own restart: the dependency is gone, but the
     incarnation number did not regress. *)
  Alcotest.(check (list string)) "dependency rolled away" [] (received sys 0);
  Alcotest.(check int) "incarnation kept" 1 (Process.version p0);
  Alcotest.(check int) "one rollback" 1
    (cget (Process.counters p0) "rollbacks");
  Alcotest.(check string) "oracle clean" ""
    (String.concat ";"
       (List.map (fun v -> v.Oracle.check) (Oracle.check oracle)))

(* --- checkpoint_now shortens replay --- *)

let test_checkpoint_now () =
  let sys = make () in
  System.inject_at sys ~at:5.0 ~pid:0 { tag = "a"; route = [] };
  System.inject_at sys ~at:6.0 ~pid:0 { tag = "b"; route = [] };
  ignore
    (Engine.schedule_at (System.engine sys) 8.0 (fun () ->
         Process.checkpoint_now (System.process sys 0)));
  System.inject_at sys ~at:10.0 ~pid:0 { tag = "c"; route = [] };
  ignore
    (Engine.schedule_at (System.engine sys) 12.0 (fun () ->
         Process.flush_now (System.process sys 0)));
  System.fail_at sys ~at:15.0 ~pid:0;
  System.run sys;
  let p0 = System.process sys 0 in
  Alcotest.(check (list string)) "state restored" [ "a"; "b"; "c" ] (received sys 0);
  (* Only "c" (after the forced checkpoint) was replayed. *)
  Alcotest.(check int) "replay shortened" 1
    (cget (Process.counters p0) "replayed")

(* --- ablation: without synchronous token logging, a crash can forget a
   token it acted on, and the replayed computation re-accepts dependencies
   on dead states --- *)

let test_unlogged_tokens_forget () =
  let run ~log_tokens =
    let config =
      {
        Types.default_config with
        Types.log_tokens;
        flush_interval = 10_000.0;
        checkpoint_interval = 10_000.0;
        restart_delay = 10.0;
      }
    in
    let net_config =
      {
        (Network.default_config ~n:3) with
        Network.latency = Network.Constant 5.0;
        control_latency = Some (Network.Constant 5.0);
      }
    in
    let sys = System.create ~seed:6L ~net_config ~config ~n:3 ~app () in
    (* P1's state is lost; P0 hears the token; then P0 itself crashes
       right after and must still know the token when it comes back. *)
    System.inject_at sys ~at:5.0 ~pid:1 { tag = "seed"; route = [ (0, "dep") ] };
    ignore
      (Engine.schedule_at (System.engine sys) 12.0 (fun () ->
           Process.flush_now (System.process sys 0)));
    System.fail_at sys ~at:20.0 ~pid:1;
    (* P0 processes the token at ~35 and rolls back; crash it at 36. *)
    System.fail_at sys ~at:36.0 ~pid:0;
    System.run sys;
    Process.history (System.process sys 0)
  in
  let with_log = run ~log_tokens:true in
  let without_log = run ~log_tokens:false in
  Alcotest.(check bool) "token survives the crash" true
    (Optimist_history.History.has_token with_log ~pid:1 ~ver:0);
  Alcotest.(check bool) "ablation forgets the token" false
    (Optimist_history.History.has_token without_log ~pid:1 ~ver:0)

(* --- injections while down are dropped, not queued --- *)

let test_inject_while_down () =
  let sys = make () in
  System.fail_at sys ~at:10.0 ~pid:0;
  System.inject_at sys ~at:12.0 ~pid:0 { tag = "ghost"; route = [] };
  System.run sys;
  Alcotest.(check (list string)) "stimulus lost" [] (received sys 0)

let suite =
  [
    Alcotest.test_case "hold for missing token" `Quick test_hold_for_missing_token;
    Alcotest.test_case "no hold when token known" `Quick
      test_no_hold_when_token_known;
    Alcotest.test_case "versions and tokens" `Quick test_version_and_token;
    Alcotest.test_case "rollback crossing own restart" `Quick
      test_rollback_crossing_restart;
    Alcotest.test_case "forced checkpoint shortens replay" `Quick
      test_checkpoint_now;
    Alcotest.test_case "ablation: unlogged tokens forgotten" `Quick
      test_unlogged_tokens_forget;
    Alcotest.test_case "injections while down dropped" `Quick
      test_inject_while_down;
  ]
