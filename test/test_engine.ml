(* Tests of the discrete-event engine: ordering, determinism, cancellation,
   daemon semantics. *)

module Engine = Optimist_sim.Engine

let test_time_order () =
  let e = Engine.create () in
  let fired = ref [] in
  let note tag () = fired := tag :: !fired in
  ignore (Engine.schedule e ~delay:3.0 (note "c"));
  ignore (Engine.schedule e ~delay:1.0 (note "a"));
  ignore (Engine.schedule e ~delay:2.0 (note "b"));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !fired);
  Alcotest.(check (float 1e-9)) "final time" 3.0 (Engine.now e)

let test_tie_break_fifo () =
  let e = Engine.create () in
  let fired = ref [] in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:5.0 (fun () -> fired := i :: !fired))
  done;
  Engine.run e;
  Alcotest.(check (list int))
    "ties fire in scheduling order"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !fired)

let test_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         fired := "outer" :: !fired;
         ignore
           (Engine.schedule e ~delay:0.5 (fun () -> fired := "inner" :: !fired))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !fired);
  Alcotest.(check (float 1e-9)) "time" 1.5 (Engine.now e)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref 0 in
  let c = Engine.schedule e ~delay:1.0 (fun () -> incr fired) in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> incr fired));
  Engine.cancel e c;
  Engine.run e;
  Alcotest.(check int) "only uncancelled fires" 1 !fired

let test_zero_delay () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~delay:0.0 (fun () -> fired := true));
  Engine.run e;
  Alcotest.(check bool) "zero delay fires" true !fired

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Engine.schedule e ~delay:(-1.0) (fun () -> ())))

let test_past_schedule_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> ()));
  Engine.run e;
  let raised =
    try
      ignore (Engine.schedule_at e 1.0 (fun () -> ()));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "past rejected" true raised

let test_daemon_does_not_block_exit () =
  let e = Engine.create () in
  let daemon_fires = ref 0 in
  let rec tick () =
    incr daemon_fires;
    ignore (Engine.schedule e ~daemon:true ~delay:1.0 tick)
  in
  ignore (Engine.schedule e ~daemon:true ~delay:1.0 tick);
  ignore (Engine.schedule e ~delay:5.5 (fun () -> ()));
  Engine.run e;
  (* Daemons at t=1..5 fire while real work remains; the self-rescheduling
     loop must not keep the engine alive past t=5.5. *)
  Alcotest.(check int) "daemon fired while work pending" 5 !daemon_fires;
  Alcotest.(check (float 1e-9)) "stopped at last real event" 5.5 (Engine.now e)

let test_until_horizon () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule e ~delay:10.0 (fun () -> fired := 10 :: !fired));
  Engine.run ~until:5.0 e;
  Alcotest.(check (list int)) "horizon respected" [ 1 ] (List.rev !fired);
  Engine.run e;
  Alcotest.(check (list int)) "resumes" [ 1; 10 ] (List.rev !fired)

let test_step () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> incr fired));
  Alcotest.(check bool) "step 1" true (Engine.step e);
  Alcotest.(check int) "one fired" 1 !fired;
  Alcotest.(check bool) "step 2" true (Engine.step e);
  Alcotest.(check bool) "exhausted" false (Engine.step e)

let test_events_fired_counter () =
  let e = Engine.create () in
  for _ = 1 to 7 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> ()))
  done;
  Engine.run e;
  Alcotest.(check int) "count" 7 (Engine.events_fired e)

(* Regression: [pending] counts cancelled tombstones (they stay in the
   heap until popped); [live_pending] must not. *)
let test_live_pending_excludes_tombstones () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  let c = Engine.schedule e ~delay:2.0 (fun () -> ()) in
  ignore (Engine.schedule e ~daemon:true ~delay:3.0 (fun () -> ()));
  Engine.cancel e c;
  Alcotest.(check int) "pending counts the tombstone" 3 (Engine.pending e);
  Alcotest.(check int) "live_pending does not" 2 (Engine.live_pending e);
  Alcotest.(check int) "live_work excludes the daemon too" 1
    (Engine.live_work e);
  Engine.run e;
  (* run stops at quiescence (live_work = 0): the live event fired and
     was deducted; only the never-fired daemon remains queued. *)
  Alcotest.(check int) "only the daemon remains" 1 (Engine.live_pending e);
  Alcotest.(check int) "no live work" 0 (Engine.live_work e)

(* The scheduler seam: a strategy over the enabled set replaces the FIFO
   tie-break, and the enabled set exposes labels without advancing
   time. *)
let test_strategy_overrides_tie_break () =
  let e = Engine.create () in
  let fired = ref [] in
  for i = 1 to 4 do
    let label =
      { Engine.l_kind = "n"; l_pid = i; l_src = -1; l_info = "" }
    in
    ignore
      (Engine.schedule e ~label ~delay:1.0 (fun () -> fired := i :: !fired))
  done;
  let cands = Engine.enabled e in
  Alcotest.(check int) "enabled sees all four" 4 (Array.length cands);
  Alcotest.(check int) "labels survive" 3 cands.(2).Engine.c_label.Engine.l_pid;
  (* Fire highest-seq first: exactly the reverse of the FIFO order. *)
  Engine.set_strategy e (Some (fun cands -> Array.length cands - 1));
  Engine.run e;
  Alcotest.(check (list int)) "reverse order" [ 4; 3; 2; 1 ] (List.rev !fired);
  Engine.set_strategy e None;
  ignore (Engine.schedule e ~delay:1.0 (fun () -> fired := 9 :: !fired));
  Engine.run e;
  Alcotest.(check (list int))
    "default restored" [ 4; 3; 2; 1; 9 ]
    (List.rev !fired)

let suite =
  [
    Alcotest.test_case "events fire in time order" `Quick test_time_order;
    Alcotest.test_case "ties break in schedule order" `Quick test_tie_break_fifo;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "zero delay" `Quick test_zero_delay;
    Alcotest.test_case "negative delay rejected" `Quick
      test_negative_delay_rejected;
    Alcotest.test_case "scheduling in the past rejected" `Quick
      test_past_schedule_rejected;
    Alcotest.test_case "daemons do not block exit" `Quick
      test_daemon_does_not_block_exit;
    Alcotest.test_case "until horizon" `Quick test_until_horizon;
    Alcotest.test_case "manual stepping" `Quick test_step;
    Alcotest.test_case "events fired counter" `Quick test_events_fired_counter;
    Alcotest.test_case "live_pending excludes tombstones" `Quick
      test_live_pending_excludes_tombstones;
    Alcotest.test_case "strategy overrides tie break" `Quick
      test_strategy_overrides_tie_break;
  ]
