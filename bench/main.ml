(* Benchmark harness: regenerates every table/figure-level claim of the
   paper's evaluation (see DESIGN.md's per-experiment index) plus Bechamel
   micro-benchmarks of the core data structures.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table1    # one experiment
       (table1 | overhead | domino | recovery | concurrent | motivation |
        ablation | extensions | micro | live | live_overhead | cluster)

   Experiment ids refer to DESIGN.md: T1 = paper Table 1, O1-O3 = Section
   6.9 overhead analysis, P1-P3 = the Section 1/6.8 properties. *)

module Table = Optimist_util.Table
module Runner = Optimist_runner.Runner
module Schedule = Optimist_workload.Schedule
module Traffic = Optimist_workload.Traffic
module Network = Optimist_net.Network
module Ftvc = Optimist_clock.Ftvc
module History = Optimist_history.History
module Vclock = Optimist_clock.Vclock
module Live = Optimist_live.Supervisor
module Live_worker = Optimist_live.Worker
module Live_merge = Optimist_live.Merge
module Json = Optimist_obs.Json
module Obs_trace = Optimist_obs.Trace
module Cluster = Optimist_cluster.Coordinator

let section title = Format.printf "@.=== %s ===@.@." title

let fmt_float f = Printf.sprintf "%.2f" f

(* ------------------------------------------------------------------ *)
(* T1: paper Table 1, measured                                          *)
(* ------------------------------------------------------------------ *)

(* Static facts about each implementation, stated by its module docs. *)
let ordering_assumption = function
  | Runner.Strom_yemini | Runner.Peterson_kearns -> "FIFO"
  | Runner.Damani_garg | Runner.Damani_garg_no_hold | Runner.Pessimistic
  | Runner.Sender_based | Runner.Checkpoint_only | Runner.Coordinated ->
      "None"

(* Does the restarting process resume without waiting for any peer?
   Structural property of each protocol (see the module documentation);
   the P2 experiment measures the corresponding stall. *)
let asynchronous_recovery = function
  | Runner.Damani_garg | Runner.Damani_garg_no_hold | Runner.Strom_yemini
  | Runner.Pessimistic | Runner.Checkpoint_only ->
      "Yes"
  | Runner.Sender_based | Runner.Peterson_kearns | Runner.Coordinated -> "No"

(* How many failures the design claims to handle (the paper's Table 1
   "number of concurrent failures allowed" column). *)
let designed_concurrent = function
  | Runner.Peterson_kearns -> "1"
  | Runner.Sender_based -> "n (single at a time)"
  | Runner.Damani_garg | Runner.Damani_garg_no_hold | Runner.Strom_yemini
  | Runner.Pessimistic | Runner.Checkpoint_only | Runner.Coordinated ->
      "n"

let table1 () =
  section "T1: Table 1 — comparison with related work (measured)";
  let n = 6 in
  let faults =
    Schedule.random_crashes ~seed:5L ~n ~failures:3 ~window:(100.0, 600.0)
  in
  let base =
    {
      Runner.default_params with
      Runner.n;
      seed = 11L;
      rate = 0.05;
      duration = 800.0;
      hops = 6;
      faults;
    }
  in
  let concurrent_faults =
    Schedule.simultaneous_crashes ~at:300.0 ~pids:[ 0; 2; 4 ]
  in
  let t =
    Table.create
      ~columns:
        [
          ("protocol", Table.Left);
          ("ordering", Table.Left);
          ("async recovery", Table.Left);
          ("rollbacks/failure", Table.Right);
          ("piggyback words/msg", Table.Right);
          ("concurrent (design)", Table.Left);
          ("3-crash run", Table.Left);
        ]
  in
  let protocols =
    [
      Runner.Damani_garg;
      Runner.Strom_yemini;
      Runner.Peterson_kearns;
      Runner.Sender_based;
      Runner.Pessimistic;
      Runner.Checkpoint_only;
      Runner.Coordinated;
    ]
  in
  List.iter
    (fun protocol ->
      let ordering =
        if ordering_assumption protocol = "FIFO" then Network.Fifo
        else Network.Reorder
      in
      let with_oracle = protocol = Runner.Damani_garg in
      let p = { base with Runner.protocol; ordering; with_oracle } in
      let r = Runner.run p in
      let r0 = Runner.run { p with Runner.faults = [] } in
      let failures = max 1 (Runner.counter r "failures") in
      let rollbacks_per_failure =
        float_of_int (Runner.counter r "rollbacks") /. float_of_int failures
      in
      let piggyback =
        float_of_int (Runner.counter r0 "piggyback_words")
        /. float_of_int (max 1 (Runner.counter r0 "sent"))
      in
      ignore r0;
      (* Concurrent failures: all three crash simultaneously; the run must
         quiesce with every process restarted (and clean for D-G). *)
      let rc = Runner.run { p with Runner.faults = concurrent_faults } in
      let concurrent_ok =
        Runner.counter rc "restarts" = 3
        && rc.Runner.r_violations = []
        && Runner.counter rc "unsupported_overlap" = 0
      in
      Table.add_row t
        [
          r.Runner.r_protocol;
          ordering_assumption protocol;
          asynchronous_recovery protocol;
          fmt_float rollbacks_per_failure;
          fmt_float piggyback;
          designed_concurrent protocol;
          (if concurrent_ok then "recovered" else "degraded");
        ])
    protocols;
  (* Smith-Johnson-Tygar: same recovery behaviour class as D-G (completely
     asynchronous, minimal rollback) but a matrix clock on every message.
     The piggyback column is the measured size of the Matrix structure
     (lib/clock/matrix.ml) at this n; SJT's per-incarnation vectors add the
     f factor on top (paper: O(n^2 f) vs O(n)). *)
  let matrix_words =
    Optimist_clock.Matrix.size_words (Optimist_clock.Matrix.create ~n ~me:0)
  in
  Table.add_row t
    [
      "smith-johnson-tygar*";
      "None";
      "Yes";
      "<= n-1";
      fmt_float (float_of_int matrix_words);
      "n";
      "modelled";
    ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "rollbacks/failure sums over all peers: the Damani-Garg bound is n-1 \
     total@.";
  Format.printf "(each peer at most once per failure, paper Theorem 3).@.";
  Format.printf
    "* modelled row: SJT's recovery class matches Damani-Garg; its clock \
     is the matrix@.  structure of lib/clock/matrix.ml — %d words at n=%d \
     vs D-G's %d, before SJT's@.  per-incarnation factor f (paper Table 1: \
     O(n^2 f) vs O(n)).@."
    matrix_words n (2 * n)

(* ------------------------------------------------------------------ *)
(* O1-O3: Section 6.9 overhead analysis                                 *)
(* ------------------------------------------------------------------ *)

let overhead () =
  section "O1-O3: Section 6.9 overheads (Damani-Garg)";
  let t =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("failures", Table.Right);
          ("piggyback words/msg", Table.Right);
          ("control msgs (tokens)", Table.Right);
          ("history records", Table.Right);
          ("bound n^2*(f+1)", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun failures ->
          let faults =
            Schedule.random_crashes ~seed:31L ~n ~failures
              ~window:(100.0, 600.0)
          in
          let p =
            {
              Runner.default_params with
              Runner.n;
              seed = 13L;
              rate = 0.03;
              duration = 800.0;
              hops = 5;
              faults;
            }
          in
          let r = Runner.run p in
          let piggyback =
            float_of_int (Runner.counter r "piggyback_words")
            /. float_of_int (max 1 (Runner.counter r "sent"))
          in
          let tokens =
            match List.assoc_opt "sent.control" r.Runner.r_net with
            | Some v -> v
            | None -> 0
          in
          Table.add_row t
            [
              string_of_int n;
              string_of_int (Runner.counter r "failures");
              fmt_float piggyback;
              string_of_int tokens;
              string_of_int (Runner.counter r "history_records");
              string_of_int (n * n * (failures + 1));
            ])
        [ 0; 2; 4 ])
    [ 2; 4; 8; 16; 32 ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shapes: piggyback = 2n words/msg independent of f (O1);@.";
  Format.printf
    "control msgs = failures*(n-1) tokens plus resends, sent only on \
     failure (O2);@.";
  Format.printf
    "history records <= one per (process, known incarnation) pair at each \
     process,@.";
  Format.printf "i.e. O(n f) per process and O(n^2 f) system-wide (O3).@."

(* ------------------------------------------------------------------ *)
(* P1: minimal rollback vs the domino effect                            *)
(* ------------------------------------------------------------------ *)

let domino () =
  section "P1: rollbacks per failure — minimal rollback vs domino";
  let n = 6 in
  let t =
    Table.create
      ~columns:
        [
          ("failures", Table.Right);
          ("protocol", Table.Left);
          ("rollbacks", Table.Right);
          ("rollbacks/failure", Table.Right);
          ("states lost forever", Table.Right);
        ]
  in
  List.iter
    (fun failures ->
      let faults =
        Schedule.random_crashes ~seed:101L ~n ~failures ~window:(100.0, 700.0)
      in
      List.iter
        (fun protocol ->
          let ordering =
            if ordering_assumption protocol = "FIFO" then Network.Fifo
            else Network.Reorder
          in
          let p =
            {
              Runner.default_params with
              Runner.n;
              seed = 3L;
              rate = 0.08;
              duration = 900.0;
              hops = 8;
              faults;
              protocol;
              ordering;
            }
          in
          let r = Runner.run p in
          let fl = max 1 (Runner.counter r "failures") in
          Table.add_row t
            [
              string_of_int failures;
              r.Runner.r_protocol;
              string_of_int (Runner.counter r "rollbacks");
              fmt_float
                (float_of_int (Runner.counter r "rollbacks") /. float_of_int fl);
              string_of_int (Runner.counter r "lost_states");
            ])
        [ Runner.Damani_garg; Runner.Strom_yemini; Runner.Checkpoint_only ];
      Table.add_separator t)
    [ 1; 2; 4; 6 ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shape: Damani-Garg rolls each process back at most once per \
     failure@.";
  Format.printf
    "(<= n-1 total, Theorem 3); checkpoint-only cascades (domino) and \
     loses work.@."

(* ------------------------------------------------------------------ *)
(* P2: asynchronous recovery — blocking attributable to a failure       *)
(* ------------------------------------------------------------------ *)

let recovery () =
  section "P2: recovery disruption (one failure at t=300)";
  let n = 6 in
  let faults = [ Schedule.Crash { at = 300.0; pid = 1 } ] in
  let t =
    Table.create
      ~columns:
        [
          ("protocol", Table.Left);
          ("recovery blocking (time)", Table.Right);
          ("control msgs", Table.Right);
          ("retransmissions", Table.Right);
          ("replayed entries", Table.Right);
          ("rollbacks", Table.Right);
        ]
  in
  List.iter
    (fun protocol ->
      let ordering =
        if ordering_assumption protocol = "FIFO" then Network.Fifo
        else Network.Reorder
      in
      let p =
        {
          Runner.default_params with
          Runner.n;
          seed = 19L;
          rate = 0.05;
          duration = 700.0;
          hops = 6;
          faults;
          protocol;
          ordering;
        }
      in
      let r = Runner.run p in
      let r0 = Runner.run { p with Runner.faults = [] } in
      let blocking =
        float_of_int
          (Runner.counter r "blocked_time_x1000"
          - Runner.counter r0 "blocked_time_x1000")
        /. 1000.0
      in
      Table.add_row t
        [
          r.Runner.r_protocol;
          fmt_float (Float.max 0.0 blocking);
          string_of_int (Runner.counter r "control_messages");
          string_of_int (Runner.counter r "retransmitted");
          string_of_int (Runner.counter r "replayed");
          string_of_int (Runner.counter r "rollbacks");
        ])
    [
      Runner.Damani_garg;
      Runner.Strom_yemini;
      Runner.Peterson_kearns;
      Runner.Sender_based;
      Runner.Pessimistic;
    ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shape: the optimistic asynchronous protocols (D-G, S-Y) block \
     nobody;@.";
  Format.printf
    "Peterson-Kearns stalls for its ack round; sender-based stalls for \
     retransmissions.@."

(* ------------------------------------------------------------------ *)
(* P3: concurrent failures and partitions, oracle-audited               *)
(* ------------------------------------------------------------------ *)

let concurrent () =
  section "P3: concurrent failures + partition, Damani-Garg, oracle-audited";
  let n = 6 in
  let t =
    Table.create
      ~columns:
        [
          ("scenario", Table.Left);
          ("restarts", Table.Right);
          ("rollbacks", Table.Right);
          ("obsolete discarded", Table.Right);
          ("held msgs", Table.Right);
          ("oracle", Table.Left);
        ]
  in
  let scenarios =
    [
      ( "2 simultaneous crashes",
        Schedule.simultaneous_crashes ~at:300.0 ~pids:[ 0; 3 ] );
      ( "3 simultaneous crashes",
        Schedule.simultaneous_crashes ~at:300.0 ~pids:[ 0; 2; 4 ] );
      ( "crash during recovery",
        [
          Schedule.Crash { at = 300.0; pid = 1 };
          Schedule.Crash { at = 305.0; pid = 2 };
        ] );
      ( "same process twice",
        [
          Schedule.Crash { at = 250.0; pid = 1 };
          Schedule.Crash { at = 400.0; pid = 1 };
        ] );
      ( "partitioned recovery",
        [
          Schedule.Partition
            { at = 280.0; groups = [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] };
          Schedule.Crash { at = 300.0; pid = 1 };
          Schedule.Heal { at = 500.0 };
        ] );
    ]
  in
  List.iter
    (fun (label, faults) ->
      let p =
        {
          Runner.default_params with
          Runner.n;
          seed = 23L;
          rate = 0.05;
          duration = 800.0;
          hops = 6;
          faults;
          with_oracle = true;
        }
      in
      let r = Runner.run p in
      Table.add_row t
        [
          label;
          string_of_int (Runner.counter r "restarts");
          string_of_int (Runner.counter r "rollbacks");
          string_of_int (Runner.counter r "discarded_obsolete");
          string_of_int (Runner.counter r "held");
          (if r.Runner.r_violations = [] then "consistent" else "VIOLATED");
        ])
    scenarios;
  Format.printf "%s@." (Table.render t)

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                  *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: deliverability hold (Section 6.1) on/off";
  let n = 6 in
  let faults =
    Schedule.random_crashes ~seed:7L ~n ~failures:4 ~window:(100.0, 600.0)
  in
  let t =
    Table.create
      ~columns:
        [
          ("variant", Table.Left);
          ("held msgs", Table.Right);
          ("obsolete discarded", Table.Right);
          ("rollbacks", Table.Right);
          ("oracle", Table.Left);
        ]
  in
  List.iter
    (fun protocol ->
      let p =
        {
          Runner.default_params with
          Runner.n;
          seed = 29L;
          rate = 0.08;
          duration = 800.0;
          hops = 8;
          faults;
          protocol;
          with_oracle = true;
        }
      in
      let r = Runner.run p in
      Table.add_row t
        [
          r.Runner.r_protocol;
          string_of_int (Runner.counter r "held");
          string_of_int (Runner.counter r "discarded_obsolete");
          string_of_int (Runner.counter r "rollbacks");
          (if r.Runner.r_violations = [] then "consistent" else "VIOLATED");
        ])
    [ Runner.Damani_garg; Runner.Damani_garg_no_hold ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shape: without the hold, an undetected orphan that merges a \
     newer@.";
  Format.printf
    "incarnation's entry launders the dead incarnation out of its \
     piggybacked clock;@.";
  Format.printf
    "downstream orphans then become undetectable — the oracle reports \
     violations.@.";
  Format.printf
    "The Section 6.1 hold is load-bearing for Theorem 2, not just an \
     optimisation.@.";

  section
    "Ablation: checkpoint interval sweep (failure-free overhead vs lost work)";
  let t =
    Table.create
      ~columns:
        [
          ("checkpoint interval", Table.Right);
          ("checkpoints", Table.Right);
          ("replayed on recovery", Table.Right);
          ("log truncated", Table.Right);
        ]
  in
  List.iter
    (fun interval ->
      let faults = [ Schedule.Crash { at = 411.0; pid = 1 } ] in
      let config =
        {
          Optimist_core.Types.default_config with
          Optimist_core.Types.checkpoint_interval = interval;
        }
      in
      let app = Traffic.app ~n:4 Traffic.Uniform in
      let sys = Optimist_core.System.create ~seed:37L ~config ~n:4 ~app () in
      let schedule =
        Schedule.make
          ~injections:
            (Schedule.poisson_injections ~seed:41L ~n:4 ~rate:0.08
               ~duration:700.0 ~hops:6)
          ~faults
      in
      Schedule.apply schedule
        ~inject:(fun ~at ~pid msg ->
          Optimist_core.System.inject_at sys ~at ~pid msg)
        ~crash:(fun ~at ~pid -> Optimist_core.System.fail_at sys ~at ~pid)
        ~partition:(fun ~at:_ ~groups:_ -> ())
        ~heal:(fun ~at:_ -> ());
      Optimist_core.System.run sys;
      Table.add_row t
        [
          fmt_float interval;
          string_of_int (Optimist_core.System.total sys "checkpoints");
          string_of_int (Optimist_core.System.total sys "replayed");
          string_of_int (Optimist_core.System.total sys "log_truncated");
        ])
    [ 25.0; 100.0; 400.0; 1600.0 ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shape: longer intervals = fewer checkpoints but more replay \
     at recovery.@."

(* ------------------------------------------------------------------ *)
(* M1: the paper's motivating claim (Section 1) — pessimism's per-      *)
(* message cost vs optimism's per-failure cost, and where they cross    *)
(* ------------------------------------------------------------------ *)

let motivation () =
  section
    "M1: Section 1 motivation — pessimistic vs optimistic total overhead";
  let n = 6 in
  let t =
    Table.create
      ~columns:
        [
          ("failures", Table.Right);
          ("pessimistic: blocked", Table.Right);
          ("pessimistic: replayed", Table.Right);
          ("pessimistic total cost", Table.Right);
          ("damani-garg: redone work", Table.Right);
          ("damani-garg total cost", Table.Right);
          ("winner", Table.Left);
        ]
  in
  (* Cost model: every synchronous stable write stalls the application for
     its latency (accumulated in blocked_time); every replayed or
     discarded delivery is application work done twice, charged at the
     same 0.5-unit rate. *)
  let work_unit = 0.5 in
  List.iter
    (fun failures ->
      let faults =
        if failures = 0 then []
        else
          Schedule.random_crashes ~seed:71L ~n ~failures
            ~window:(50.0, 950.0)
      in
      let base =
        {
          Runner.default_params with
          Runner.n;
          seed = 67L;
          rate = 0.08;
          duration = 1000.0;
          hops = 6;
          faults;
        }
      in
      let pess = Runner.run { base with Runner.protocol = Runner.Pessimistic } in
      let dg = Runner.run { base with Runner.protocol = Runner.Damani_garg } in
      let pess_blocked =
        float_of_int (Runner.counter pess "blocked_time_x1000") /. 1000.0
      in
      let pess_replayed = float_of_int (Runner.counter pess "replayed") in
      let pess_cost = pess_blocked +. (work_unit *. pess_replayed) in
      let dg_redone =
        float_of_int (Runner.counter dg "replayed" + Runner.counter dg "log_truncated")
      in
      let dg_cost = work_unit *. dg_redone in
      Table.add_row t
        [
          string_of_int failures;
          fmt_float pess_blocked;
          fmt_float pess_replayed;
          fmt_float pess_cost;
          fmt_float dg_redone;
          fmt_float dg_cost;
          (if dg_cost < pess_cost then "optimistic" else "pessimistic");
        ])
    [ 0; 1; 2; 4; 8; 16; 32; 64 ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shape: pessimism pays a constant per-delivery tax regardless \
     of failures;@.";
  Format.printf
    "optimism pays per failure. With rare failures and high message \
     activity the@.";
  Format.printf
    "optimistic protocol wins by an order of magnitude — the paper's \
     Section 1 premise —@.";
  Format.printf "and only extreme failure rates reverse the verdict.@.";

  section
    "M2: Section 1 motivation — coordinated checkpointing's synchronization \
     cost vs n";
  let t =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("blocked time (failure-free)", Table.Right);
          ("control msgs", Table.Right);
          ("d-g blocked time", Table.Right);
          ("d-g control msgs", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let p =
        {
          Runner.default_params with
          Runner.n;
          seed = 73L;
          rate = 0.03;
          duration = 800.0;
          hops = 5;
        }
      in
      let coord = Runner.run { p with Runner.protocol = Runner.Coordinated } in
      let dg = Runner.run { p with Runner.protocol = Runner.Damani_garg } in
      Table.add_row t
        [
          string_of_int n;
          fmt_float
            (float_of_int (Runner.counter coord "blocked_time_x1000") /. 1000.0);
          string_of_int (Runner.counter coord "control_messages");
          fmt_float
            (float_of_int (Runner.counter dg "blocked_time_x1000") /. 1000.0);
          string_of_int (Runner.counter dg "control_messages");
        ])
    [ 2; 4; 8; 16; 32 ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shape: the blocking rounds and their 3(n-1) control messages \
     grow with n@.";
  Format.printf
    "(\"for large systems, the cost of this synchronization is \
     prohibitive\"), while@.";
  Format.printf
    "Damani-Garg checkpoints independently: zero blocking, zero control \
     traffic.@."

(* ------------------------------------------------------------------ *)
(* Extensions: output commit (Section 6.5 / [10]) and GC (remark 2)     *)
(* ------------------------------------------------------------------ *)

let extensions () =
  section
    "Extensions: output commit — flush interval vs output latency ([10])";
  let n = 4 in
  let t =
    Table.create
      ~columns:
        [
          ("flush interval", Table.Right);
          ("outputs produced", Table.Right);
          ("committed at quiescence", Table.Right);
          ("still pending", Table.Right);
          ("mean commit lag", Table.Right);
          ("gossip msgs", Table.Right);
        ]
  in
  (* Traffic whose chains end in an output: reuse the ring app from the
     output-commit tests. *)
  let app : (int, int * int) Optimist_core.Types.app =
    {
      Optimist_core.Types.init = (fun _ -> 0);
      on_message =
        (fun ~me ~src:_ state (key, hops) ->
          let sends =
            if hops > 0 then [ ((me + 1) mod n, (key, hops - 1)) ]
            else [ (Optimist_core.Types.output_dst, (key, 0)) ]
          in
          (state + 1, sends));
    }
  in
  List.iter
    (fun flush_interval ->
      let produced = ref [] and committed = ref [] in
      let config =
        {
          Optimist_core.Types.default_config with
          Optimist_core.Types.commit_outputs = true;
          flush_interval;
          checkpoint_interval = 300.0;
        }
      in
      let sys = ref None in
      let on_output ~pid:_ ~seq:_ (key, _) =
        match !sys with
        | Some s ->
            committed := (key, Optimist_sim.Engine.now (Optimist_core.System.engine s)) :: !committed
        | None -> ()
      in
      let s =
        Optimist_core.System.create ~seed:55L ~config ~on_output ~n ~app ()
      in
      sys := Some s;
      let count = ref 0 in
      List.iter
        (fun i ->
          incr count;
          let key = !count in
          produced := (key, i.Schedule.at) :: !produced;
          Optimist_core.System.inject_at s ~at:i.Schedule.at ~pid:i.Schedule.pid
            (key, 2))
        (Schedule.poisson_injections ~seed:66L ~n ~rate:0.05 ~duration:600.0
           ~hops:0);
      Optimist_core.System.fail_at s ~at:300.0 ~pid:1;
      Optimist_core.System.run s;
      let committed_n = List.length !committed in
      let lags =
        List.filter_map
          (fun (key, tc) ->
            Option.map (fun (_, tp) -> tc -. tp) (List.find_opt (fun (k, _) -> k = key) !produced))
          !committed
      in
      let mean_lag =
        if lags = [] then 0.0
        else List.fold_left ( +. ) 0.0 lags /. float_of_int (List.length lags)
      in
      Table.add_row t
        [
          fmt_float flush_interval;
          string_of_int !count;
          string_of_int committed_n;
          string_of_int (Optimist_core.System.pending_outputs s);
          fmt_float mean_lag;
          string_of_int (Optimist_core.System.total s "frontier_gossip");
        ])
    [ 10.0; 25.0; 100.0; 400.0 ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shape: committing an output waits for every dependency to \
     reach stable@.";
  Format.printf
    "storage, so the commit lag tracks the flush interval — the fast-output \
     trade-off@.";
  Format.printf "the paper cites as [10].@.";

  section "Extensions: garbage collection (Section 6.5 remark 2)";
  let t =
    Table.create
      ~columns:
        [
          ("run length", Table.Right);
          ("checkpoints before", Table.Right);
          ("log entries before", Table.Right);
          ("checkpoints reclaimed", Table.Right);
          ("log entries reclaimed", Table.Right);
        ]
  in
  List.iter
    (fun duration ->
      let config =
        {
          Optimist_core.Types.default_config with
          Optimist_core.Types.commit_outputs = true;
          flush_interval = 20.0;
          checkpoint_interval = 60.0;
        }
      in
      let app = Traffic.app ~n:4 Traffic.Uniform in
      let sys = Optimist_core.System.create ~seed:59L ~config ~n:4 ~app () in
      List.iter
        (fun i ->
          Optimist_core.System.inject_at sys ~at:i.Schedule.at ~pid:i.Schedule.pid
            (Traffic.fresh ~key:i.Schedule.key ~hops:i.Schedule.hops))
        (Schedule.poisson_injections ~seed:60L ~n:4 ~rate:0.06 ~duration ~hops:5);
      Optimist_core.System.run sys;
      Optimist_core.System.settle_outputs sys;
      let cps_before =
        Array.fold_left
          (fun acc p -> acc + Optimist_core.Process.checkpoint_count p)
          0
          (Optimist_core.System.processes sys)
      in
      let log_before =
        Array.fold_left
          (fun acc p -> acc + Optimist_core.Process.log_length p)
          0
          (Optimist_core.System.processes sys)
      in
      let cps, entries = Optimist_core.System.collect_garbage sys in
      Table.add_row t
        [
          fmt_float duration;
          string_of_int cps_before;
          string_of_int log_before;
          string_of_int cps;
          string_of_int entries;
        ])
    [ 300.0; 600.0; 1200.0; 2400.0 ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shape: retained state is bounded by the stable barrier — \
     reclamation@.";
  Format.printf "grows with the run while the residue stays flat.@."

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks of the core data structures (Bechamel)";
  let open Bechamel in
  let clock_bench n =
    let a = Ftvc.create ~n ~me:0 and b = Ftvc.create ~n ~me:(n - 1) in
    let b = Ftvc.sent (Ftvc.sent b) in
    Test.make
      ~name:(Printf.sprintf "ftvc/deliver n=%d" n)
      (Staged.stage (fun () -> ignore (Ftvc.deliver a ~received:b)))
  in
  let history_bench n =
    let h = History.create ~n ~me:0 in
    let clock = Array.init n (fun i -> { Ftvc.ver = i mod 3; ts = i * 5 }) in
    Test.make
      ~name:(Printf.sprintf "history/note_clock n=%d" n)
      (Staged.stage (fun () -> History.note_clock h ~sender_clock:clock))
  in
  let obsolete_bench n =
    let h = History.create ~n ~me:0 in
    for j = 1 to n - 1 do
      History.note_token h ~pid:j ~ver:0 ~ts:100
    done;
    let clock = Array.make n { Ftvc.ver = 0; ts = 50 } in
    Test.make
      ~name:(Printf.sprintf "history/obsolete-test n=%d" n)
      (Staged.stage (fun () -> ignore (History.message_obsolete h ~clock)))
  in
  let vclock_bench n =
    let a = Vclock.create ~n ~me:0 and b = Vclock.create ~n ~me:(n - 1) in
    Test.make
      ~name:(Printf.sprintf "vclock/merge n=%d" n)
      (Staged.stage (fun () -> ignore (Vclock.merge a ~me:0 b)))
  in
  let matrix_bench n =
    let module Matrix = Optimist_clock.Matrix in
    let a = Matrix.create ~n ~me:0 and b = Matrix.create ~n ~me:(n - 1) in
    let b = Matrix.set_own b (Ftvc.sent (Matrix.own b)) in
    Test.make
      ~name:(Printf.sprintf "matrix/deliver n=%d (SJT cost)" n)
      (Staged.stage (fun () -> ignore (Matrix.deliver a ~received:b)))
  in
  let end_to_end =
    Test.make ~name:"system/full run n=4 d=100"
      (Staged.stage (fun () ->
           let p =
             {
               Runner.default_params with
               Runner.n = 4;
               seed = 3L;
               rate = 0.1;
               duration = 100.0;
               hops = 4;
             }
           in
           ignore (Runner.run p)))
  in
  let tests =
    Test.make_grouped ~name:"optimist"
      [
        clock_bench 4;
        clock_bench 16;
        clock_bench 64;
        history_bench 4;
        history_bench 64;
        obsolete_bench 4;
        obsolete_bench 64;
        vclock_bench 16;
        matrix_bench 4;
        matrix_bench 16;
        matrix_bench 64;
        end_to_end;
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ t ] -> Format.printf "%-40s %14.1f ns/run@." name t
      | _ -> Format.printf "%-40s (no estimate)@." name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* L1: live runtime — the same protocol over real processes            *)
(* ------------------------------------------------------------------ *)

(* Not a micro-benchmark: one supervised wall-clock run per protocol,
   with real SIGKILLs, reporting end-to-end throughput figures the
   simulator cannot produce (it has no wall clock to speak of). *)
let live () =
  section "L1: live runtime — real processes, sockets, SIGKILL";
  let t =
    Table.create
      ~columns:
        [
          ("protocol", Table.Left);
          ("wall (s)", Table.Right);
          ("events", Table.Right);
          ("events/s", Table.Right);
          ("crashes", Table.Right);
          ("clean exits", Table.Right);
          ("torn lines", Table.Right);
        ]
  in
  List.iter
    (fun protocol ->
      let name = Live_worker.protocol_name protocol in
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "optbench-%s-%d" name (Unix.getpid ()))
      in
      let cfg =
        {
          Live.default_cfg with
          Live.dir;
          n = 4;
          protocol;
          duration = 2.0;
          settle = 1.5;
          rate = 8.0;
          faults = [ (0.8, 1); (1.4, 2) ];
        }
      in
      let t0 = Unix.gettimeofday () in
      let r = Live.run cfg in
      let wall = Unix.gettimeofday () -. t0 in
      Table.add_row t
        [
          name;
          fmt_float wall;
          string_of_int r.Live.events;
          fmt_float (float_of_int r.Live.events /. wall);
          string_of_int r.Live.crashes;
          string_of_int r.Live.clean_exits;
          string_of_int r.Live.dropped;
        ])
    [ Live_worker.Dg; Live_worker.Pessimist ];
  Format.printf "%s@." (Table.render t)

(* ------------------------------------------------------------------ *)
(* L2: what the telemetry layer itself costs                           *)
(* ------------------------------------------------------------------ *)

(* The same fault-free live run three times: tracing disabled, tracing
   into an in-memory ring (span/snapshot work done, nothing persisted),
   and the default full JSONL persistence. Throughput comes from the
   workers' own stats files, so the comparison measures the protocol
   path, not the merge. *)
let live_overhead () =
  section "L2: live telemetry overhead (fault-free, Damani-Garg)";
  let t =
    Table.create
      ~columns:
        [
          ("telemetry", Table.Left);
          ("wall (s)", Table.Right);
          ("delivered", Table.Right);
          ("delivered/s", Table.Right);
          ("trace bytes", Table.Right);
          ("vs off", Table.Right);
        ]
  in
  let baseline = ref None in
  List.iter
    (fun mode ->
      let name = Live_worker.telemetry_name mode in
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "optbench-tel-%s-%d" name (Unix.getpid ()))
      in
      let cfg =
        {
          Live.default_cfg with
          Live.dir;
          n = 4;
          duration = 2.0;
          settle = 1.0;
          rate = 20.0;
          telemetry = mode;
        }
      in
      let t0 = Unix.gettimeofday () in
      let _r = Live.run cfg in
      let wall = Unix.gettimeofday () -. t0 in
      let delivered =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 7
               && String.sub f 0 7 = "worker."
               && Filename.check_suffix f ".json")
        |> List.fold_left
             (fun acc f ->
               let ic = open_in (Filename.concat dir f) in
               let line = input_line ic in
               close_in ic;
               match Json.of_string line with
               | Error _ -> acc
               | Ok j -> (
                   match
                     Option.bind (Json.mem "counters" j) (fun c ->
                         Option.bind (Json.mem "delivered" c) Json.to_int)
                   with
                   | Some d -> acc + d
                   | None -> acc))
             0
      in
      let tput = float_of_int delivered /. wall in
      let trace_bytes =
        List.fold_left
          (fun acc f -> acc + (Unix.stat f).Unix.st_size)
          0
          (Live_merge.trace_files dir)
      in
      let vs_off =
        match !baseline with
        | None ->
            baseline := Some tput;
            "100%"
        | Some b -> Printf.sprintf "%.0f%%" (100.0 *. tput /. b)
      in
      Table.add_row t
        [
          name;
          fmt_float wall;
          string_of_int delivered;
          fmt_float tput;
          string_of_int trace_bytes;
          vs_off;
        ])
    [ Live_worker.Off; Live_worker.Ring; Live_worker.Full ];
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shape: spans and snapshots are cheap next to real sockets and \
     fsyncs —@.";
  Format.printf
    "the three modes should deliver within a few percent of each other.@."

(* ------------------------------------------------------------------ *)
(* L3: transport fabrics — UDS mesh vs TCP loopback                    *)
(* ------------------------------------------------------------------ *)

(* The same supervised Damani-Garg run (one SIGKILL) over both fabrics:
   the classic single-host Unix-domain datagram mesh, and the cluster's
   TCP stream mesh split across two localhost agents. Delivery latency
   comes from Send→Deliver timestamp deltas in the merged trace (same
   uid), recovery latency from the successor incarnations' "recovery"
   spans, and the wire counters from the workers' own stats files. *)
let cluster () =
  section "L3: transport fabrics — UDS mesh vs TCP loopback (Damani-Garg)";
  let percentile samples p =
    match List.sort compare samples with
    | [] -> 0.0
    | sorted ->
        let a = Array.of_list sorted in
        a.(min (Array.length a - 1)
            (int_of_float (p *. float_of_int (Array.length a))))
  in
  let mean = function
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let trace_latencies merged =
    let sends = Hashtbl.create 1024 in
    let lats = ref [] and recov = ref [] in
    Obs_trace.iter_file merged ~f:(fun ~line:_ -> function
      | Ok e -> (
          match e.Obs_trace.kind with
          | Obs_trace.Send { uid; _ } ->
              if not (Hashtbl.mem sends uid) then
                Hashtbl.replace sends uid e.Obs_trace.at
          | Obs_trace.Deliver { uid; _ } -> (
              match Hashtbl.find_opt sends uid with
              | Some t0 -> lats := (e.Obs_trace.at -. t0) :: !lats
              | None -> ())
          | Obs_trace.Span { name = "recovery"; dur } -> recov := dur :: !recov
          | _ -> ())
      | Error _ -> ());
    (!lats, !recov)
  in
  let net_count dir key =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 7
           && String.sub f 0 7 = "worker."
           && Filename.check_suffix f ".json")
    |> List.fold_left
         (fun acc f ->
           let ic = open_in (Filename.concat dir f) in
           let line = input_line ic in
           close_in ic;
           match Json.of_string line with
           | Error _ -> acc
           | Ok j -> (
               match
                 Option.bind (Json.mem "net" j) (fun net ->
                     Option.bind (Json.mem key net) Json.to_int)
               with
               | Some v -> acc + v
               | None -> acc))
         0
  in
  let t =
    Table.create
      ~columns:
        [
          ("fabric", Table.Left);
          ("wall (s)", Table.Right);
          ("events", Table.Right);
          ("deliver p50 (ms)", Table.Right);
          ("deliver p95 (ms)", Table.Right);
          ("recovery mean (ms)", Table.Right);
          ("retransmits", Table.Right);
          ("reconnects", Table.Right);
        ]
  in
  let record fabric ~wall ~events ~dir ~merged =
    let lats, recov = trace_latencies merged in
    Table.add_row t
      [
        fabric;
        fmt_float wall;
        string_of_int events;
        fmt_float (1000.0 *. percentile lats 0.5);
        fmt_float (1000.0 *. percentile lats 0.95);
        fmt_float (1000.0 *. mean recov);
        string_of_int (net_count dir "retransmits");
        string_of_int (net_count dir "reconnects");
      ]
  in
  let n = 4 and duration = 2.0 and settle = 1.5 and rate = 8.0 in
  let kills = [ (0.8, 1) ] in
  (let dir =
     Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "optbench-uds-%d" (Unix.getpid ()))
   in
   let cfg =
     {
       Live.default_cfg with
       Live.dir;
       n;
       duration;
       settle;
       rate;
       faults = kills;
     }
   in
   let t0 = Unix.gettimeofday () in
   let r = Live.run cfg in
   let wall = Unix.gettimeofday () -. t0 in
   record "uds" ~wall ~events:r.Live.events ~dir ~merged:r.Live.merged);
  (let out =
     Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "optbench-tcp-%d" (Unix.getpid ()))
   in
   let port_base = 23000 + (Unix.getpid () mod 2000) in
   let cfg =
     {
       Cluster.default_cfg with
       Cluster.cc_out = out;
       cc_n = n;
       cc_duration = duration;
       cc_settle = settle;
       cc_rate = rate;
       cc_kills = kills;
       cc_worker_base = port_base + 100;
     }
   in
   let t0 = Unix.gettimeofday () in
   match Cluster.run_forked ~port_base ~agents:2 cfg with
   | Error msg -> Format.printf "tcp-loopback run failed: %s@." msg
   | Ok r ->
       let wall = Unix.gettimeofday () -. t0 in
       record "tcp-loopback (2 agents)" ~wall ~events:r.Cluster.cs_events
         ~dir:out ~merged:r.Cluster.cs_merged);
  Format.printf "%s@." (Table.render t);
  Format.printf
    "expected shape: TCP loopback adds modest per-hop latency (framing + \
     stream buffering) and@.";
  Format.printf
    "shows nonzero reconnects after the SIGKILL; both fabrics recover and \
     deliver comparably.@."

(* ------------------------------------------------------------------ *)

let () =
  let experiments =
    [
      ("table1", table1);
      ("overhead", overhead);
      ("domino", domino);
      ("recovery", recovery);
      ("concurrent", concurrent);
      ("motivation", motivation);
      ("ablation", ablation);
      ("extensions", extensions);
      ("micro", micro);
      ("live", live);
      ("live_overhead", live_overhead);
      ("cluster", cluster);
    ]
  in
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Format.printf "unknown experiment %S; known: %s@." name
                (String.concat ", " (List.map fst experiments));
              exit 2)
        names
