module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Metrics = Optimist_obs.Metrics
open Types

type ('s, 'm) t = {
  engine : Engine.t;
  net : 'm wire Network.t;
  procs : ('s, 'm) Process.t array;
}

let create ?(seed = 1L) ?net_config ?config ?tracer ?trace ?registry
    ?on_output ~n ~app () =
  let engine = Engine.create ~seed () in
  (match trace with Some tr -> Engine.set_tracer engine tr | None -> ());
  let net_config =
    match net_config with Some c -> c | None -> Network.default_config ~n
  in
  if net_config.Network.n <> n then
    invalid_arg "System.create: net_config.n disagrees with n";
  let net = Network.create engine net_config in
  let uid = ref 0 in
  let next_uid () =
    incr uid;
    !uid
  in
  let procs =
    Array.init n (fun id ->
        let metrics =
          Option.map
            (fun registry ->
              Metrics.Scope.create ~registry ~protocol:"damani-garg"
                ~process:id ())
            registry
        in
        Process.create ~engine ~net ~app ~id ~n ?config ?tracer ?metrics
          ?on_output ~next_uid ())
  in
  { engine; net; procs }

let engine t = t.engine

let network t = t.net

let n t = Array.length t.procs

let process t i = t.procs.(i)

let processes t = t.procs

let label kind pid =
  { Engine.l_kind = kind; l_pid = pid; l_src = -1; l_info = "" }

let inject_at t ~at ~pid data =
  ignore
    (Engine.schedule_at t.engine ~label:(label "inject" pid) at (fun () ->
         Process.inject t.procs.(pid) data))

let fail_at t ~at ~pid =
  ignore
    (Engine.schedule_at t.engine ~label:(label "crash" pid) at (fun () ->
         Process.fail t.procs.(pid)))

let partition_at t ~at ~groups =
  ignore
    (Engine.schedule_at t.engine ~label:(label "net" (-1)) at (fun () ->
         Network.partition t.net groups))

let heal_at t ~at =
  ignore
    (Engine.schedule_at t.engine ~label:(label "net" (-1)) at (fun () ->
         Network.heal t.net))

let run ?until t = Engine.run ?until t.engine

let total t name =
  Array.fold_left
    (fun acc p -> acc + Metrics.Scope.get (Process.metrics p) name)
    0 t.procs

let counters t =
  Array.to_list (Array.mapi (fun i p -> (i, Process.counters p)) t.procs)

let all_alive t = Array.for_all Process.alive t.procs

let pending_outputs t =
  Array.fold_left (fun acc p -> acc + Process.pending_output_count p) 0 t.procs

let collect_garbage t =
  Array.fold_left
    (fun (cps, entries) p ->
      let c, e = Process.collect_garbage p in
      (cps + c, entries + e))
    (0, 0) t.procs

let settle_outputs ?(rounds = 3) t =
  for _ = 1 to rounds do
    Array.iter
      (fun p ->
        if Process.alive p then begin
          Process.flush_now p;
          Process.share_frontier p
        end)
      t.procs;
    run t
  done
