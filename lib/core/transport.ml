module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Trace = Optimist_obs.Trace

type lane = Data | Control

type 'a t = {
  send : lane:lane -> src:int -> dst:int -> 'a -> unit;
  broadcast : lane:lane -> src:int -> 'a -> unit;
  set_handler : int -> ('a -> unit) -> unit;
  set_down : int -> unit;
  set_up : drop_held_data:bool -> int -> unit;
}

type runtime = {
  now : unit -> float;
  schedule :
    ?label:Engine.label -> daemon:bool -> delay:float -> (unit -> unit) -> unit;
  tracer : unit -> Trace.t;
}

let net_lane = function Data -> Network.Data | Control -> Network.Control

let of_network net =
  {
    send =
      (fun ~lane ~src ~dst payload ->
        Network.send net ~traffic:(net_lane lane) ~src ~dst payload);
    broadcast =
      (fun ~lane ~src payload ->
        Network.broadcast net ~traffic:(net_lane lane) ~src payload);
    set_handler =
      (fun id f -> Network.set_handler net id (fun env -> f env.Network.payload));
    set_down = (fun id -> Network.set_down net id);
    set_up =
      (fun ~drop_held_data id -> Network.set_up net ~drop_held_data id);
  }

let of_engine engine =
  {
    now = (fun () -> Engine.now engine);
    schedule =
      (fun ?label ~daemon ~delay action ->
        ignore (Engine.schedule engine ~daemon ?label ~delay action));
    tracer = (fun () -> Engine.tracer engine);
  }
