(** The transport and runtime seams between the protocol logic and its
    substrate.

    The Damani-Garg process in {!Process} (and the baselines that ride
    along to the live runtime) never talk to the discrete-event engine or
    the simulated network directly; they go through these two small
    records. The simulation instantiates them from
    {!Optimist_sim.Engine}/{!Optimist_net.Network} via the adapters below,
    and the live runtime ([optimist.live]) instantiates them from a
    wall-clock event loop and real sockets — the protocol code is shared
    verbatim between the two modes. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Trace = Optimist_obs.Trace

(** The two traffic classes of the paper's network model: [Data] carries
    application messages (droppable, reorderable), [Control] carries
    tokens and recovery traffic (reliable). *)
type lane = Data | Control

(** First-class transport: what a protocol process needs from the fabric.
    [set_down]/[set_up] gate delivery to a crashed endpoint (a no-op for
    transports where crashes are real OS-process deaths). *)
type 'a t = {
  send : lane:lane -> src:int -> dst:int -> 'a -> unit;
  broadcast : lane:lane -> src:int -> 'a -> unit;
  set_handler : int -> ('a -> unit) -> unit;
  set_down : int -> unit;
  set_up : drop_held_data:bool -> int -> unit;
}

(** Scheduling and observability substrate: the current time (virtual or
    wall-clock seconds), a one-shot timer, and the structured-trace
    recorder. [daemon] timers must not keep an otherwise-quiescent
    substrate alive (the simulation engine stops when only daemon events
    remain; a live loop stops at its deadline regardless). [label]
    identifies the timer to a scheduling strategy (model checking);
    substrates without strategies ignore it. *)
type runtime = {
  now : unit -> float;
  schedule :
    ?label:Engine.label -> daemon:bool -> delay:float -> (unit -> unit) -> unit;
  tracer : unit -> Trace.t;
}

val of_network : 'a Network.t -> 'a t
(** View a simulated network as a transport. Handlers receive the bare
    payload (the envelope metadata is dropped — no protocol reads it). *)

val of_engine : Engine.t -> runtime
(** View the simulation engine as a runtime: virtual time, engine timers,
    and the engine's trace recorder (read dynamically, so a recorder
    installed after process creation is still picked up). *)
