(** A simulated cluster: engine + network + one {!Process} per endpoint.

    Convenience layer used by the examples, tests and benches: builds the
    pieces, exposes failure/partition/stimulus scheduling in virtual time,
    and aggregates counters at the end of a run. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network

type ('s, 'm) t

val create :
  ?seed:int64 ->
  ?net_config:Network.config ->
  ?config:Types.config ->
  ?tracer:Types.tracer ->
  ?trace:Optimist_obs.Trace.t ->
  ?registry:Optimist_obs.Metrics.registry ->
  ?on_output:(pid:int -> seq:int -> 'm -> unit) ->
  n:int ->
  app:('s, 'm) Types.app ->
  unit ->
  ('s, 'm) t
(** [net_config] defaults to {!Network.default_config} for [n] endpoints
    (reordering network — the protocol needs no ordering). [on_output]
    receives released application outputs; see {!Process.create}.

    [trace] installs a structured-trace recorder on the engine before any
    component is built, so network and process instrumentation pick it up.
    [registry] makes every process register its metrics scope (labelled
    [("damani-garg", pid)]) there for cross-process aggregation. *)

val engine : ('s, 'm) t -> Engine.t

val network : ('s, 'm) t -> 'm Types.wire Network.t

val n : ('s, 'm) t -> int

val process : ('s, 'm) t -> int -> ('s, 'm) Process.t

val processes : ('s, 'm) t -> ('s, 'm) Process.t array

(** {2 Scheduling in virtual time} *)

val inject_at : ('s, 'm) t -> at:Engine.time -> pid:int -> 'm -> unit
(** Environment stimulus for [pid] at virtual time [at]. *)

val fail_at : ('s, 'm) t -> at:Engine.time -> pid:int -> unit

val partition_at :
  ('s, 'm) t -> at:Engine.time -> groups:int list list -> unit

val heal_at : ('s, 'm) t -> at:Engine.time -> unit

val run : ?until:Engine.time -> ('s, 'm) t -> unit
(** Drain the event queue (bounded by [until] if given). With a finite
    workload the system reaches quiescence: no events left. *)

(** {2 Aggregation} *)

val total : ('s, 'm) t -> string -> int
(** Sum of a named counter over all processes. *)

val counters : ('s, 'm) t -> (int * (string * int) list) list
(** Per-process counter dumps, for reports. *)

val all_alive : ('s, 'm) t -> bool

val pending_outputs : ('s, 'm) t -> int
(** Outputs still buffered by the commit rule, across all processes. *)

val collect_garbage : ('s, 'm) t -> int * int
(** Run {!Process.collect_garbage} on every process; sums the reclaimed
    (checkpoints, log entries). *)

val settle_outputs : ?rounds:int -> ('s, 'm) t -> unit
(** Flush every process and gossip logged frontiers for [rounds] rounds
    (default 3), running the engine to quiescence in between — drains
    committable outputs once the application has gone quiet. *)
