(** One process running the Damani-Garg recovery protocol (paper Figure 4).

    The process wraps a piecewise-deterministic application with:
    - an FTVC maintained per Figure 2;
    - a history table maintained per Figure 3;
    - receiver-side message logging with asynchronous flush, periodic
      checkpointing, and synchronous token logging;
    - the receive path: obsolete-message discard (Lemma 4), deliverability
      postponement (Section 6.1), then delivery;
    - restart after a failure (Section 6.2) and rollback on an orphaning
      token (Sections 6.3–6.4).

    All scheduling and transport go through the {!Transport} seam: the
    simulation instantiates it from the discrete-event engine and the
    simulated network ({!create}), the live runtime from a wall-clock loop
    and real sockets ({!create_rt}); the protocol logic is identical in
    both modes. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Ftvc = Optimist_clock.Ftvc
module History = Optimist_history.History
module Metrics = Optimist_obs.Metrics

type ('s, 'm) t

type ('s, 'm) checkpoint
(** Opaque checkpoint payload: application state, FTVC, history copy and
    output-commit bookkeeping. Exposed (abstractly) so an external stable
    store can persist and reload it. *)

type ('s, 'm) stable_hooks = {
  log_appended : 'm Types.log_entry list -> unit;
      (** entries newly moved to stable storage, oldest first *)
  log_truncated : stable:int -> unit;
      (** rollback/restart cut the stable log back to [stable] entries *)
  checkpoint_recorded : position:int -> ('s, 'm) checkpoint -> unit;
  checkpoints_discarded_after : position:int -> unit;
  tokens_logged : Types.token list -> unit;
      (** the full token list, re-logged synchronously (Section 6.3) *)
}
(** Mirrors every transition of the stable (crash-surviving) state onto an
    external medium. Hooks fire after the in-memory transition and before
    the corresponding trace event. The simulation leaves them at
    {!null_hooks}; the live runtime writes through to disk so a SIGKILL-ed
    worker can be rebuilt from an {!image}. *)

val null_hooks : ('s, 'm) stable_hooks

type ('s, 'm) image = {
  im_log : 'm Types.log_entry array;  (** stable prefix, position order *)
  im_checkpoints : (('s, 'm) checkpoint * int) list;  (** newest first *)
  im_tokens : Types.token list;
}
(** Everything that survives a crash, as reloaded from stable storage. *)

val create :
  engine:Engine.t ->
  net:'m Types.wire Network.t ->
  app:('s, 'm) Types.app ->
  id:int ->
  n:int ->
  ?config:Types.config ->
  ?tracer:Types.tracer ->
  ?metrics:Metrics.Scope.t ->
  ?on_output:(pid:int -> seq:int -> 'm -> unit) ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t
(** Creates the process, installs its network handler, records the initial
    checkpoint, and starts the periodic flush/checkpoint timers.

    [metrics] is the scope protocol counters and distributions land in;
    defaults to a fresh unregistered scope labelled
    [("damani-garg", id)]. Structured trace events go to the recorder
    installed on [engine] (see [Engine.set_tracer]); with no recorder the
    instrumentation costs one boolean check per site.

    [on_output] receives application outputs (handler sends addressed to
    {!Types.output_dst}). With [config.commit_outputs] they are delivered
    only once the producing state can never be lost or rolled back
    (Section 6.5); otherwise immediately (optimistically). *)

val create_rt :
  rt:Transport.runtime ->
  net:'m Types.wire Transport.t ->
  app:('s, 'm) Types.app ->
  id:int ->
  n:int ->
  ?config:Types.config ->
  ?tracer:Types.tracer ->
  ?metrics:Metrics.Scope.t ->
  ?stable:('s, 'm) stable_hooks ->
  ?restore:('s, 'm) image ->
  ?on_output:(pid:int -> seq:int -> 'm -> unit) ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t
(** Substrate-agnostic constructor behind {!create}. [stable] mirrors
    stable-state transitions to an external store ({!null_hooks} by
    default). [restore] rebuilds the process from a previously persisted
    {!image} instead of a blank slate — the in-memory state stays at the
    initial state until {!recover} restores and replays; no initial
    checkpoint is taken. *)

val recover : ('s, 'm) t -> unit
(** Live-mode crash recovery for a process built with [?restore]: emits the
    failure trace preamble (the pre-crash incarnation comes from the latest
    persisted checkpoint) and runs the paper's Restart — restore the
    maximum consistent checkpoint, replay the stable log, broadcast the
    token, increment the incarnation, checkpoint. Raises [Invalid_argument]
    if the checkpoint store is empty. *)

val id : ('s, 'm) t -> int

val alive : ('s, 'm) t -> bool

val state : ('s, 'm) t -> 's
(** Current application state. *)

val clock : ('s, 'm) t -> Ftvc.t

val history : ('s, 'm) t -> History.t

val version : ('s, 'm) t -> int
(** Current incarnation number. *)

val inject : ('s, 'm) t -> 'm -> unit
(** Deliver an environment stimulus: logged and replayed like a message
    receive, with a bottom clock. Ignored while the process is down. *)

val fail : ('s, 'm) t -> unit
(** Crash now: volatile state (unflushed log suffix, held messages, clock,
    history) is lost; the restart event runs [restart_delay] later. Ignored
    if already down. *)

val checkpoint_now : ('s, 'm) t -> unit
(** Force a checkpoint (flushes first, like the periodic one). *)

val flush_now : ('s, 'm) t -> unit

val held_count : ('s, 'm) t -> int
(** Postponed messages currently waiting for tokens. *)

val pending_output_count : ('s, 'm) t -> int
(** Outputs buffered awaiting the commit rule. *)

val committed_output_count : ('s, 'm) t -> int
(** Outputs released to the environment so far. *)

val share_frontier : ('s, 'm) t -> unit
(** Broadcast this process's logged-frontier view on the control plane;
    used to drain pending outputs once application traffic has quiesced.
    No-op unless [commit_outputs] is enabled. *)

val collect_garbage : ('s, 'm) t -> int * int
(** Reclaim checkpoints and log entries below the newest {e stable}
    checkpoint — one whose dependencies all lie within the logged
    frontiers, which no future rollback can undercut (Section 6.5 remark
    2). Returns (checkpoints, log entries) reclaimed; (0, 0) unless
    [commit_outputs] enables frontier tracking. *)

val checkpoint_count : ('s, 'm) t -> int

val log_length : ('s, 'm) t -> int
(** Stable + volatile entries currently retained (above the GC floor the
    numbering is unaffected). *)

val metrics : ('s, 'm) t -> Metrics.Scope.t
(** The process's metrics scope: counters ([delivered], [injected],
    [sent], [discarded_obsolete], [held], [released], [rollbacks],
    [restarts], [tokens_received], [replayed], [piggyback_words],
    [log_truncated], [checkpoints], ...), the [held_messages] gauge and
    the [rollback_depth] histogram. *)

val counters : ('s, 'm) t -> (string * int) list
(** [Metrics.Scope.counters (metrics t)] — sorted name/count pairs. *)

val history_record_count : ('s, 'm) t -> int
(** Current O(n·f) history footprint (Section 6.9(3)). *)
