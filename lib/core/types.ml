(** Shared types of the recovery protocol: the application interface, the
    wire format, process configuration, and the trace interface the oracle
    listens on. *)

module Ftvc = Optimist_clock.Ftvc

(** {2 Application interface}

    The paper's computation model (Section 3): processes are piecewise
    deterministic — everything a process does between two message deliveries
    is a deterministic function of the delivered message and the state at
    delivery. That determinism is what makes replay-based recovery work, and
    the process engine exploits it literally: during replay the handler runs
    again and its outputs are suppressed.

    [src] is the sender's process id, or [env_src] (-1) for an environment
    stimulus injected by the workload (the paper's "non-deterministic action
    modeled by treating it as a message receive"). *)

type ('s, 'm) app = {
  init : int -> 's;  (** initial state of process [i] *)
  on_message : me:int -> src:int -> 's -> 'm -> 's * (int * 'm) list;
      (** deterministic handler: returns the next state and messages to
          send as [(destination, payload)] pairs *)
}

let env_src = -1

(** {2 Wire format} *)

(** An application message as it travels: payload plus the sender's FTVC at
    send time. [uid] is a simulation-global identifier used by the oracle
    and the metrics; the protocol itself never reads it.

    [frontier] is the sender's view of every process's *logged frontier*
    (the own clock entry at its last stable flush), piggybacked only when
    output commit is enabled; empty otherwise. A state all of whose
    dependencies lie within the logged frontiers can never be lost or
    orphaned, so outputs it produced are safe to release (Section 6.5:
    "before committing an output to the environment, a process must make
    sure that it will never rollback the current state or lose it in a
    failure"). Logged frontiers are crash-proof: a restart replays the whole
    stable log, so the restoration point is always at or beyond any frontier
    ever advertised. *)
type 'm app_msg = {
  data : 'm;
  clock : Ftvc.entry array;
  frontier : Ftvc.entry array;
  sender : int;
  uid : int;
}

(** A failure announcement (Section 6.2): the failed incarnation's number
    and the timestamp of the restored state — everything of version [ver]
    past [ts] is lost. *)
type token = { origin : int; ver : int; ts : int }

(** With the Section 6.5 remark-1 extension enabled, the token also carries
    the full FTVC of the restored state so that peers can retransmit the
    messages the failed process lost (sends not in the restored state's
    causal past). *)
type 'm wire =
  | Wire_app of 'm app_msg
  | Wire_token of { token : token; restored : Ftvc.entry array option }
  | Wire_frontier of { origin : int; frontier : Ftvc.entry array }
      (** explicit frontier gossip, used to drain pending outputs when
          application traffic alone would not spread logging progress *)

(** {2 Log entries}

    What the receiver logs per delivery — exactly the message content, which
    with piecewise determinism suffices to replay the delivery. Environment
    injections are logged with [sender = env_src] and a bottom clock.

    [L_rollback] is a stable marker this implementation adds beyond the
    paper's pseudo-code: a rollback advances the own FTVC timestamp (Figure
    2, "On Rollback"), but that bump is not a message delivery, so a later
    crash whose replay crosses the rollback point would silently reconstruct
    clocks one tick behind the ones the process actually used — breaking
    orphan detection at every peer holding the real timestamps. The marker
    records the own entry the rollback produced; replay reinstates it
    exactly. It is flushed synchronously when written (rollbacks are as rare
    as failures, like the paper's synchronously-logged tokens). *)

type 'm log_entry =
  | L_msg of 'm app_msg
  | L_rollback of Ftvc.entry  (** own component right after the bump *)

(** {2 Configuration} *)

(** Deliberately broken protocol variants, used by the model checker's
    self-test ([recsim mc --mutate]): each one disables exactly one
    mechanism a sanitizer rule or the oracle guards, so an exploration
    of the mutant must produce a counterexample. Never enable these
    outside a checking context. *)
type mutation =
  | M_none
  | M_drop_piggyback
      (** do not piggyback the FTVC on the 0 → 1 edge (breaks the
          Section 5 history mechanism; OPT004 catches the mismatch) *)
  | M_skip_dedup
      (** deliver duplicates instead of suppressing them by uid
          (breaks the Section 3 channel contract; OPT003) *)
  | M_eager_rollback
      (** roll back on every received token, orphaned or not (breaks
          Lemma 3 exactness / at-most-one-rollback; OPT011) *)

type config = {
  checkpoint_interval : float;
      (** virtual time between periodic checkpoints *)
  flush_interval : float;
      (** virtual time between asynchronous log flushes *)
  restart_delay : float;
      (** downtime between a crash and the restart event *)
  hold_undeliverable : bool;
      (** Section 6.1 deliverability: postpone messages whose clock
          references a version for which some token is still missing.
          Disabling this is an ablation; correctness (Theorem 2) survives
          but more orphans are created and rolled back. *)
  log_tokens : bool;
      (** Section 6.3 synchronous token logging. Disabling this is an
          ablation that loses token knowledge on a crash — the oracle can
          then observe undetected orphans. *)
  drop_in_flight_on_crash : bool;
      (** if true, messages that arrive while a process is down are
          dropped rather than queued for the new incarnation (a harsher
          network model). *)
  retransmit_lost : bool;
      (** Section 6.5 remark 1: keep a volatile send-history; when a token
          arrives carrying the restored clock, resend every message whose
          send state is concurrent with (not causally included in) the
          restored state. Receivers suppress the resulting duplicates by
          message uid. Without this, deliveries wiped by a crash are lost
          forever, exactly as the paper notes. *)
  commit_outputs : bool;
      (** Section 6.5: track logged frontiers (piggybacked on messages and
          gossiped on flush) and buffer application outputs until the
          producing state provably can never be lost or rolled back. *)
  mutation : mutation;
      (** which deliberate bug (if any) to enable; [M_none] normally *)
}

let default_config =
  {
    checkpoint_interval = 200.0;
    flush_interval = 25.0;
    restart_delay = 20.0;
    hold_undeliverable = true;
    log_tokens = true;
    drop_in_flight_on_crash = false;
    retransmit_lost = false;
    commit_outputs = false;
    mutation = M_none;
  }

let output_dst = -1
(** Send destination that designates the external environment: a handler
    send [(output_dst, payload)] is an output, subject to the commit rule
    when [commit_outputs] is set (released immediately otherwise). *)

(** {2 Tracing}

    Every observable protocol action, for the oracle and for debugging.
    [state_created] fires for each new state in the live computation (never
    during replay — replayed states already exist). The restore callbacks
    carry the clock of the restored state so the listener can locate it. *)

type state_kind =
  | K_deliver of int  (** delivery of message [uid] *)
  | K_inject  (** environment stimulus *)
  | K_send  (** state entered after sending a message *)
  | K_restart  (** first state of a new incarnation *)
  | K_rollback  (** first state after a rollback *)

type tracer = {
  state_created : pid:int -> clock:Ftvc.t -> kind:state_kind -> unit;
  message_sent : src:int -> uid:int -> unit;
      (** the current state of [src] is the message's send state *)
  failed : pid:int -> unit;
  restored : pid:int -> clock:Ftvc.t -> failure:bool -> unit;
      (** recovery rewound [pid] to the state with [clock]; [failure]
          distinguishes a restart (lost states) from a rollback (discarded
          orphan states) *)
  delivered : pid:int -> uid:int -> unit;
  discarded_obsolete : pid:int -> uid:int -> unit;
  held : pid:int -> uid:int -> unit;
}

let null_tracer =
  {
    state_created = (fun ~pid:_ ~clock:_ ~kind:_ -> ());
    message_sent = (fun ~src:_ ~uid:_ -> ());
    failed = (fun ~pid:_ -> ());
    restored = (fun ~pid:_ ~clock:_ ~failure:_ -> ());
    delivered = (fun ~pid:_ ~uid:_ -> ());
    discarded_obsolete = (fun ~pid:_ ~uid:_ -> ());
    held = (fun ~pid:_ ~uid:_ -> ());
  }
