type 'cp t = { mutable items : ('cp * int) list (* newest first *) }

let create () = { items = [] }

let of_items items =
  (match items with
  | (_, newest) :: rest ->
      let rec check last = function
        | [] -> ()
        | (_, p) :: tl ->
            if p > last then
              invalid_arg "Checkpoint_store.of_items: not newest-first"
            else check p tl
      in
      check newest rest
  | [] -> ());
  { items }

let record t ~position payload =
  (match t.items with
  | (_, last) :: _ when position < last ->
      invalid_arg "Checkpoint_store.record: positions must be non-decreasing"
  | _ -> ());
  t.items <- (payload, position) :: t.items

let latest t = match t.items with [] -> None | x :: _ -> Some x

let latest_satisfying t pred =
  let rec loop = function
    | [] -> None
    | ((payload, position) as x) :: rest ->
        if pred payload position then Some x else loop rest
  in
  loop t.items

let discard_after t ~position =
  t.items <- List.filter (fun (_, p) -> p <= position) t.items

let gc_before t ~position =
  (* Keep everything newer than [position], plus the newest checkpoint at or
     below it. *)
  let rec split kept = function
    | [] -> (kept, [])
    | ((_, p) as x) :: rest ->
        if p > position then split (x :: kept) rest else (kept, x :: rest)
  in
  let newer, older = split [] t.items in
  match older with
  | [] -> 0
  | anchor :: reclaimed ->
      t.items <- List.rev_append newer [ anchor ];
      List.length reclaimed

let count t = List.length t.items

let positions t = List.rev_map snd t.items
