(** Stable checkpoint storage.

    Each checkpoint snapshots an opaque payload (application state plus
    whatever recovery metadata the protocol needs) tagged with the delivery
    sequence number it corresponds to: a checkpoint at position [k] is the
    state reached after delivering the first [k] logged messages, so
    restoring it and replaying entries [k, …) of the {!Message_log}
    reconstructs later states.

    Checkpoints are stable by definition — the paper requires all unlogged
    messages to be flushed when a checkpoint is taken — so they survive
    [crash] untouched. *)

type 'cp t

val create : unit -> 'cp t

val of_items : ('cp * int) list -> 'cp t
(** A store rebuilt from stable storage after a real crash: [(payload,
    position)] pairs, newest first (positions non-increasing, checked). *)

val record : 'cp t -> position:int -> 'cp -> unit
(** Append a checkpoint for delivery position [position]. Positions must be
    non-decreasing. *)

val latest : 'cp t -> ('cp * int) option
(** Most recent checkpoint and its position. *)

val latest_satisfying : 'cp t -> ('cp -> int -> bool) -> ('cp * int) option
(** [latest_satisfying t pred] returns the most recent checkpoint for which
    [pred payload position] holds — the paper's "restore the maximum
    checkpoint such that …" (Figure 4, Rollback, condition (I)). *)

val discard_after : 'cp t -> position:int -> unit
(** Drop checkpoints strictly beyond [position]; used by rollback to discard
    checkpoints of rolled-back states. *)

val gc_before : 'cp t -> position:int -> int
(** Reclaim all checkpoints older than the newest one at or below
    [position] — the newest such checkpoint is kept because it is needed for
    any future rollback to [position] or later. Returns the number
    reclaimed. *)

val count : 'cp t -> int

val positions : 'cp t -> int list
(** Positions of stored checkpoints, oldest first; for tests. *)
