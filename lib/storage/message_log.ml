module Counters = Optimist_util.Stats.Counters

type 'entry t = {
  mutable stable : 'entry array;
  (* Number of live entries in [stable]; the array over-allocates. *)
  mutable stable_len : int;
  mutable volatile : 'entry list; (* newest first *)
  mutable volatile_len : int;
  mutable floor : int; (* first readable index, raised by GC *)
  counters : Counters.t;
}

let create () =
  {
    stable = [||];
    stable_len = 0;
    volatile = [];
    volatile_len = 0;
    floor = 0;
    counters = Counters.create ();
  }

let of_stable entries =
  {
    stable = Array.copy entries;
    stable_len = Array.length entries;
    volatile = [];
    volatile_len = 0;
    floor = 0;
    counters = Counters.create ();
  }

let append t entry =
  Counters.incr t.counters "appends";
  t.volatile <- entry :: t.volatile;
  t.volatile_len <- t.volatile_len + 1

let ensure_capacity t extra =
  let needed = t.stable_len + extra in
  if Array.length t.stable < needed then begin
    let capacity = max 16 (max needed (2 * Array.length t.stable)) in
    (* Entries below stable_len are the only ones ever read. *)
    let seed = if t.stable_len > 0 then t.stable.(0) else List.hd t.volatile in
    let data = Array.make capacity seed in
    Array.blit t.stable 0 data 0 t.stable_len;
    t.stable <- data
  end

let flush t =
  Counters.incr t.counters "flushes";
  if t.volatile_len > 0 then begin
    Counters.incr ~by:t.volatile_len t.counters "flushed_entries";
    ensure_capacity t t.volatile_len;
    let entries = List.rev t.volatile in
    List.iter
      (fun e ->
        t.stable.(t.stable_len) <- e;
        t.stable_len <- t.stable_len + 1)
      entries;
    t.volatile <- [];
    t.volatile_len <- 0
  end

let crash t =
  Counters.incr t.counters "crashes";
  Counters.incr ~by:t.volatile_len t.counters "lost_entries";
  t.volatile <- [];
  t.volatile_len <- 0

let stable_length t = t.stable_len

let total_length t = t.stable_len + t.volatile_len

let get t i =
  if i < t.floor || i >= total_length t then
    invalid_arg (Printf.sprintf "Message_log.get: index %d out of range" i);
  if i < t.stable_len then t.stable.(i)
  else
    (* Volatile list is newest-first. *)
    List.nth t.volatile (total_length t - 1 - i)

let iter_range t ~from ~until f =
  for i = from to until - 1 do
    f (get t i)
  done

let truncate t k =
  if k < t.floor then invalid_arg "Message_log.truncate: below GC floor";
  if k < t.stable_len then begin
    t.stable_len <- k;
    t.volatile <- [];
    t.volatile_len <- 0
  end
  else begin
    let keep_volatile = k - t.stable_len in
    if keep_volatile < t.volatile_len then begin
      (* Keep the oldest [keep_volatile] volatile entries. *)
      let entries = List.rev t.volatile in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      t.volatile <- List.rev (take keep_volatile entries);
      t.volatile_len <- keep_volatile
    end
  end

let gc_prefix t k =
  if k > t.floor then t.floor <- min k t.stable_len

let gc_floor t = t.floor

let counters t = t.counters
