(** Receiver-side message log with the paper's volatile/stable split.

    The paper's failure model (Section 3): a process appends every delivered
    message to a volatile buffer and flushes it to stable storage
    asynchronously. On a crash the volatile suffix is wiped — those
    deliveries are unrecoverable and produce *lost states*. On a rollback
    (no crash) the process first flushes, so nothing is lost.

    Entries are indexed by their delivery sequence number, starting at 0. *)

type 'entry t

val create : unit -> 'entry t

val of_stable : 'entry array -> 'entry t
(** A log rebuilt from stable storage after a real crash: [entries] (in
    position order) form the stable prefix, the volatile buffer starts
    empty. The array is copied. *)

val append : 'entry t -> 'entry -> unit
(** Record one delivered message in the volatile buffer. *)

val flush : 'entry t -> unit
(** Move the whole volatile buffer to stable storage (the paper's
    asynchronous log write, or the forced write before a checkpoint or a
    rollback). *)

val crash : 'entry t -> unit
(** Simulate the failure: the volatile buffer disappears. *)

val stable_length : 'entry t -> int
(** Number of entries that survive a crash. *)

val total_length : 'entry t -> int
(** Stable + volatile entries: the process's current delivery count. *)

val get : 'entry t -> int -> 'entry
(** [get t i] returns the i-th delivered message; raises [Invalid_argument]
    when out of range (including entries discarded by [truncate] or
    [gc_prefix]). *)

val iter_range : 'entry t -> from:int -> until:int -> ('entry -> unit) -> unit
(** Apply to entries [from, until). *)

val truncate : 'entry t -> int -> unit
(** [truncate t k] keeps only the first [k] entries. Used by rollback to
    discard the log suffix past the restored state (paper Figure 4,
    Rollback). Requires the suffix not to be below the GC floor. *)

val gc_prefix : 'entry t -> int -> unit
(** [gc_prefix t k] reclaims entries below index [k] (paper Section 6.5
    remark 2). Reading them afterwards is an error; [stable_length] and
    numbering are unaffected. *)

val gc_floor : 'entry t -> int
(** First index still readable. *)

val counters : 'entry t -> Optimist_util.Stats.Counters.t
(** [appends], [flushes], [flushed_entries], [crashes],
    [lost_entries]. *)
