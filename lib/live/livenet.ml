module Transport = Optimist_core.Transport
module Prng = Optimist_util.Prng

(* One Unix-domain *datagram* socket per worker. Datagrams keep message
   boundaries (no stream framing) and need no connection management, so a
   SIGKILL-ed peer costs its correspondents nothing but an ECONNREFUSED on
   the next send — which is exactly the fire-and-forget Data-lane model.
   The Control lane layers acknowledgements and periodic retransmission on
   top: a control frame is retried until the destination (or its next
   incarnation) acks it, giving the "reliable, queued across downtime"
   semantics of the simulated network's control plane. *)

type 'a frame =
  | Data_msg of { src : int; payload : 'a }
  | Ctl_msg of { src : int; seq : int; payload : 'a }
  | Ctl_ack of { seq : int }

type partition = { pt_start : float; pt_stop : float; pt_island : int list }

type faults = {
  drop_rate : float;
  dup_rate : float;
  partitions : partition list;
}

let no_faults = { drop_rate = 0.0; dup_rate = 0.0; partitions = [] }

type 'a t = {
  loop : Loop.t;
  dir : string;
  me : int;
  n : int;
  fd : Unix.file_descr;
  rng : Prng.t;
  jitter_lo : float;
  jitter_span : float;
  retransmit_every : float;
  faults : faults;
  mutable handler : 'a -> unit;
  mutable ctl_seq : int;
  unacked : (int, int * Bytes.t) Hashtbl.t; (* seq -> (dst, encoded frame) *)
  seen_ctl : (int * int, unit) Hashtbl.t; (* (src, seq) already delivered *)
  mutable sent_data : int;
  mutable sent_ctl : int;
  mutable retransmits : int;
  mutable received : int;
  mutable send_errors : int;
  mutable faults_dropped : int;
  mutable faults_duplicated : int;
  mutable partition_blocked : int;
  mutable closed : bool;
  buf : Bytes.t;
}

let sock_path dir i = Filename.concat dir (Printf.sprintf "w%d.sock" i)

(* The portable floor of [sizeof sun_path] (104 on the BSDs, 108 on
   Linux), checked against the longest peer path so a long --dir fails
   with one line instead of an opaque [Unix.bind] exception. *)
let sun_path_max = 104

let check_dir ~dir ~n =
  let path = sock_path dir (max 0 (n - 1)) in
  let len = String.length path in
  if len >= sun_path_max then
    Error
      (Printf.sprintf
         "socket path %s is %d bytes, over the AF_UNIX sun_path limit (%d) \
          — use a shorter --dir"
         path len sun_path_max)
  else Ok ()

let addr t dst = Unix.ADDR_UNIX (sock_path t.dir dst)

(* An active partition blocks frames crossing the island boundary in
   either direction. The gate sits below both lanes: Data frames (and
   acks) vanish like real in-flight losses, while Control frames come
   back through the retransmit timer once the window closes — a burst
   partition heals without protocol-visible state. *)
let partitioned t ~dst =
  t.faults.partitions <> []
  && begin
       let now = Loop.now t.loop in
       List.exists
         (fun p ->
           now >= p.pt_start && now < p.pt_stop
           && List.mem t.me p.pt_island <> List.mem dst p.pt_island)
         t.faults.partitions
     end

(* Sends to a dead or not-yet-started peer fail; for Data that is the
   message's fate (a real in-flight drop), for Control the retransmit
   timer retries. *)
let raw_send t ~dst bytes =
  if partitioned t ~dst then t.partition_blocked <- t.partition_blocked + 1
  else
    try
    ignore (Unix.sendto t.fd bytes 0 (Bytes.length bytes) [] (addr t dst))
  with
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EWOULDBLOCK
        | Unix.ENOBUFS ),
        _,
        _ ) ->
      t.send_errors <- t.send_errors + 1

let send_frame t ~dst frame =
  raw_send t ~dst (Marshal.to_bytes frame [])

let send t ~lane ~dst payload =
  if not t.closed then
    match lane with
    | Transport.Data ->
        t.sent_data <- t.sent_data + 1;
        if t.faults.drop_rate > 0.0 && Prng.bernoulli t.rng t.faults.drop_rate
        then t.faults_dropped <- t.faults_dropped + 1
        else begin
          let bytes = Marshal.to_bytes (Data_msg { src = t.me; payload }) [] in
          (* Sender-side jitter delays the actual write by a random amount,
             so two back-to-back sends can hit the wire (and the receiver)
             out of order — the "reordered sockets" condition. *)
          let post () =
            let delay = t.jitter_lo +. Prng.float t.rng t.jitter_span in
            Loop.schedule t.loop ~delay (fun () ->
                if not t.closed then raw_send t ~dst bytes)
          in
          post ();
          if t.faults.dup_rate > 0.0 && Prng.bernoulli t.rng t.faults.dup_rate
          then begin
            t.faults_duplicated <- t.faults_duplicated + 1;
            post ()
          end
        end
    | Transport.Control ->
        t.sent_ctl <- t.sent_ctl + 1;
        t.ctl_seq <- t.ctl_seq + 1;
        let seq = t.ctl_seq in
        let bytes =
          Marshal.to_bytes (Ctl_msg { src = t.me; seq; payload }) []
        in
        Hashtbl.replace t.unacked seq (dst, bytes);
        raw_send t ~dst bytes

let dispatch t frame =
  t.received <- t.received + 1;
  match frame with
  | Data_msg { src = _; payload } -> t.handler payload
  | Ctl_msg { src; seq; payload } ->
      (* Ack first (acks are cheap and idempotent); deliver only the first
         copy — retransmits of frames we already processed are dropped
         here rather than burdening the protocol. *)
      send_frame t ~dst:src (Ctl_ack { seq });
      if not (Hashtbl.mem t.seen_ctl (src, seq)) then begin
        Hashtbl.replace t.seen_ctl (src, seq) ();
        t.handler payload
      end
  | Ctl_ack { seq } -> Hashtbl.remove t.unacked seq

(* Drain every datagram currently queued; the socket is non-blocking. *)
let rec pump t =
  match Unix.recvfrom t.fd t.buf 0 (Bytes.length t.buf) [] with
  | len, _ ->
      if len > 0 then begin
        (match (Marshal.from_bytes (Bytes.sub t.buf 0 len) 0 : 'a frame) with
        | frame -> dispatch t frame
        | exception _ -> ());
        if not t.closed then pump t
      end
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()

let retransmit_pending t =
  if Hashtbl.length t.unacked > 0 then
    Hashtbl.iter
      (fun _ (dst, bytes) ->
        t.retransmits <- t.retransmits + 1;
        raw_send t ~dst bytes)
      t.unacked

let create ?(jitter = (0.001, 0.02)) ?(retransmit_every = 0.1) ?(seq_base = 0)
    ?(faults = no_faults) ~loop ~dir ~me ~n ~seed () =
  (match check_dir ~dir ~n with Ok () -> () | Error e -> invalid_arg e);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_DGRAM 0 in
  let path = sock_path dir me in
  (try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.set_nonblock fd;
  let jitter_lo, jitter_hi = jitter in
  let t =
    {
      loop;
      dir;
      me;
      n;
      fd;
      rng = Prng.create seed;
      jitter_lo;
      jitter_span = Float.max (jitter_hi -. jitter_lo) 1e-9;
      retransmit_every;
      faults;
      handler = (fun _ -> ());
      ctl_seq = seq_base;
      unacked = Hashtbl.create 64;
      seen_ctl = Hashtbl.create 256;
      sent_data = 0;
      sent_ctl = 0;
      retransmits = 0;
      received = 0;
      send_errors = 0;
      faults_dropped = 0;
      faults_duplicated = 0;
      partition_blocked = 0;
      closed = false;
      buf = Bytes.create 262144;
    }
  in
  Loop.on_readable loop fd (fun () -> pump t);
  let rec retry_loop () =
    if not t.closed then begin
      retransmit_pending t;
      Loop.schedule loop ~delay:t.retransmit_every retry_loop
    end
  in
  Loop.schedule loop ~delay:retransmit_every retry_loop;
  t

(* Every worker binds its socket at startup; until a peer's path exists,
   sends to it vanish into ENOENT. The barrier makes gen-0 startup clean;
   restarted workers find all paths already present. *)
let wait_for_peers t ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let all_present () =
    let ok = ref true in
    for i = 0 to t.n - 1 do
      if not (Sys.file_exists (sock_path t.dir i)) then ok := false
    done;
    !ok
  in
  let rec wait () =
    if all_present () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.005;
      wait ()
    end
  in
  wait ()

let transport t =
  {
    Transport.send = (fun ~lane ~src:_ ~dst payload -> send t ~lane ~dst payload);
    broadcast =
      (fun ~lane ~src:_ payload ->
        for dst = 0 to t.n - 1 do
          if dst <> t.me then send t ~lane ~dst payload
        done);
    set_handler =
      (fun id f -> if id = t.me then t.handler <- f);
    (* Crashes are real process deaths here; the fabric has no gate. *)
    set_down = (fun _ -> ());
    set_up = (fun ~drop_held_data:_ _ -> ());
  }

let unacked_count t = Hashtbl.length t.unacked

let stats t =
  [
    ("sent_data", t.sent_data);
    ("sent_control", t.sent_ctl);
    ("retransmits", t.retransmits);
    ("received", t.received);
    ("send_errors", t.send_errors);
    ("faults_dropped", t.faults_dropped);
    ("faults_duplicated", t.faults_duplicated);
    ("partition_blocked", t.partition_blocked);
  ]

let close t =
  if not t.closed then begin
    t.closed <- true;
    Loop.remove_fd t.loop t.fd;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end

let link t =
  {
    Link.transport = transport t;
    ready = (fun ~timeout -> wait_for_peers t ~timeout);
    unacked = (fun () -> unacked_count t);
    stats = (fun () -> stats t);
    snapshot = (fun () -> Link.snapshot_of_stats (stats t));
    close = (fun () -> close t);
    kind = "uds";
  }

(* Per-incarnation seed and control-sequence base are derived here so a
   factory-built mesh behaves bit-for-bit like the historical direct
   [create] calls in the worker. *)
let factory ?retransmit_every ?(faults = no_faults) ~dir ~n ~seed () =
  {
    Link.f_kind = "uds";
    make =
      (fun ~loop ~me ~gen ~jitter ->
        let seed = Int64.add seed (Int64.of_int (1 + me + (gen * n))) in
        link
          (create ~jitter ?retransmit_every
             ~seq_base:(gen * 1_000_000)
             ~faults ~loop ~dir ~me ~n ~seed ()));
  }
