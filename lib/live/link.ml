module Transport = Optimist_core.Transport

(* The live network behind one first-class value: what a worker needs
   from its fabric — a protocol-facing Transport, a startup barrier, and
   the wire-level accounting the stats file and telemetry snapshots
   consume. Livenet (Unix-domain datagrams) and the cluster's TCP mesh
   are the two implementations; a worker never knows which one it got. *)

type 'a t = {
  transport : 'a Transport.t;
  ready : timeout:float -> bool;
  unacked : unit -> int;
  stats : unit -> (string * int) list;
  snapshot : unit -> (string * float) list;
  close : unit -> unit;
  kind : string;
}

(* The factory's [make] is universally quantified over the payload type:
   each protocol branch of the worker instantiates the same fabric at
   its own wire type, exactly as [Livenet.create] is called today. *)
type factory = {
  f_kind : string;
  make :
    'a.
    loop:Loop.t -> me:int -> gen:int -> jitter:float * float -> 'a t;
}

let snapshot_of_stats stats =
  List.map (fun (k, v) -> ("link." ^ k, float_of_int v)) stats
