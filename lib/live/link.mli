(** The live network as a first-class value.

    A link is everything one worker needs from its message fabric: a
    protocol-facing {!Optimist_core.Transport.t}, a gen-0 startup
    barrier, and wire-level accounting. {!Livenet} (single-host
    Unix-domain datagrams) and the cluster's TCP mesh are the two
    implementations; workers select one through a {!factory} and are
    otherwise oblivious to the transport underneath. *)

module Transport = Optimist_core.Transport

type 'a t = {
  transport : 'a Transport.t;  (** the two-lane protocol fabric *)
  ready : timeout:float -> bool;
      (** block (pumping the loop or sleeping) until every peer is
          reachable; [false] on timeout. The gen-0 startup barrier. *)
  unacked : unit -> int;  (** control frames not yet acknowledged *)
  stats : unit -> (string * int) list;
      (** wire counters for the worker stats file ([sent_data],
          [retransmits], [reconnects], ...) *)
  snapshot : unit -> (string * float) list;
      (** the same state as [link.]-prefixed floats — possibly with
          quantiles of wire-level distributions (heartbeat RTT) — for
          the schema-v3 [Snapshot] telemetry records *)
  close : unit -> unit;
  kind : string;  (** ["uds"] or ["tcp"] *)
}

type factory = {
  f_kind : string;
  make :
    'a.
    loop:Loop.t -> me:int -> gen:int -> jitter:float * float -> 'a t;
      (** build this incarnation's link. [jitter] is passed at make time
          (not baked into the factory) because the worker overrides it
          per protocol (Strom-Yemini runs jitter-free). Implementations
          derive the per-incarnation PRNG seed and control-sequence base
          from [me] and [gen] exactly like {!Livenet.create}. *)
}

val snapshot_of_stats : (string * int) list -> (string * float) list
(** Integer wire counters as ["link."]-prefixed floats — the default
    {!t.snapshot} for implementations without float-valued metrics. *)
