module Trace = Optimist_obs.Trace

(* Merge the per-incarnation trace files of a live run into one globally
   ordered JSONL stream the offline linter can consume.

   Within one process, trace lines were flushed in emission order; across
   processes only the shared wall-clock base orders them. Sorting by
   timestamp alone is not enough: a Send and the Deliver it causes can
   carry timestamps closer together than the clocks' resolution, and the
   linter's OPT002 needs the Send first. So ties break causes-first
   (Send/Token_sent before anything else), then by pid, then by a global
   read-order sequence number — files are read pid-then-generation
   (numerically, so g10 follows g2), making the sequence an explicit
   within-process emission order that identical wall-clock stamps cannot
   scramble. *)

let is_trace_file name =
  String.length name > 6
  && String.sub name 0 6 = "trace."
  && Filename.check_suffix name ".jsonl"

(* trace.<pid>.g<gen>.jsonl, ordered numerically: a lexicographic sort
   would read trace.0.g10 before trace.0.g2 and interleave incarnations
   out of order. Unparseable names sort last, by name. *)
let file_key name =
  match String.split_on_char '.' name with
  | [ "trace"; pid; gen; "jsonl" ]
    when String.length gen > 1 && gen.[0] = 'g' -> (
      match
        ( int_of_string_opt pid,
          int_of_string_opt (String.sub gen 1 (String.length gen - 1)) )
      with
      | Some p, Some g -> (p, g, name)
      | _ -> (max_int, max_int, name))
  | _ -> (max_int, max_int, name)

let trace_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter is_trace_file
  |> List.sort (fun a b -> compare (file_key a) (file_key b))
  |> List.map (Filename.concat dir)

let cause_rank (e : Trace.event) =
  match e.kind with Trace.Send _ | Trace.Token_sent _ -> 0 | _ -> 1

let order (a, sa) (b, sb) =
  let c = Float.compare a.Trace.at b.Trace.at in
  if c <> 0 then c
  else
    let c = Int.compare (cause_rank a) (cause_rank b) in
    if c <> 0 then c
    else
      let c = Int.compare a.Trace.pid b.Trace.pid in
      if c <> 0 then c else Int.compare sa sb

let run ~dir ~out =
  let dropped = ref 0 in
  let seq = ref 0 in
  let collect acc path =
    Trace.fold_file path ~init:acc ~f:(fun acc ~line:_ ev ->
        match ev with
        | Ok e ->
            (* Per-file schema headers are dropped; the merged stream
               gets exactly one, written below. *)
            if Trace.schema_of_event e = None then begin
              incr seq;
              (e, !seq) :: acc
            end
            else acc
        | Error _ ->
            (* A SIGKILL can tear the dying incarnation's last line. *)
            incr dropped;
            acc)
  in
  let events =
    List.fold_left collect [] (trace_files dir)
    |> List.rev |> List.stable_sort order |> List.map fst
  in
  let oc = open_out_bin out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Trace.to_line Trace.schema_header);
      output_char oc '\n';
      List.iter
        (fun e ->
          output_string oc (Trace.to_line e);
          output_char oc '\n')
        events);
  (List.length events, !dropped)

(* Telemetry-aware export: replay an already-merged JSONL stream through
   the Chrome sink, so every worker's spans, snapshots and protocol
   events land on one timeline (the sink groups by pid into per-process
   tracks). Returns the number of events converted. *)
let chrome ~src ~out =
  let oc = open_out_bin out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let tr = Trace.create () in
      Trace.attach tr (Trace.chrome_sink (output_string oc));
      let count =
        Trace.fold_file src ~init:0 ~f:(fun acc ~line:_ -> function
          | Ok e when Trace.schema_of_event e = None ->
              Trace.emit tr e;
              acc + 1
          | _ -> acc)
      in
      Trace.close tr;
      count)
