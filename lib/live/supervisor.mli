(** Orchestrates one live run: fork the workers, SIGKILL per the fault
    schedule, respawn from stable storage, reap, merge the traces.

    The supervisor is the only process with a global view. Failures are
    real: a scheduled fault delivers SIGKILL to the worker's OS process,
    losing whatever the protocol had not pushed to its {!Store}; after
    [restart_delay] the supervisor forks the next incarnation of the
    same worker ([gen + 1]), which reloads the store and runs the
    protocol's recovery. When the run deadline passes, surviving workers
    exit on their own, traces are merged ({!Merge}) and a [run.json]
    summary is written to the run directory. *)

module Traffic = Optimist_workload.Traffic

type cfg = {
  dir : string;  (** run directory (created; previous artifacts cleared) *)
  n : int;
  protocol : Worker.protocol;
  seed : int64;
  duration : float;  (** injection window, seconds *)
  settle : float;  (** drain time after the window, seconds *)
  rate : float;
  hops : int;
  pattern : Traffic.pattern;
  faults : (float * int) list;  (** (seconds into the run, pid) SIGKILLs *)
  net_faults : Livenet.faults;
      (** seeded Data-lane drops/dups and burst partitions, passed to
          every worker's transport *)
  restart_delay : float;  (** crash-to-respawn delay, seconds *)
  jitter : float * float;
  telemetry : Worker.telemetry;  (** passed to every worker *)
  link : Link.factory option;
      (** [None] = the classic UDS mesh under [dir]; [Some f] = an
          alternative fabric (the cluster's TCP link) given to every
          worker *)
}

val default_cfg : cfg
(** 4 workers, Damani-Garg, 3 s of traffic at 8 msg/s/process + 2 s
    settle, no faults, full telemetry. *)

type result = {
  merged : string;  (** path of the merged JSONL trace *)
  chrome : string;  (** path of the merged Chrome trace *)
  events : int;
  dropped : int;  (** torn/unparsable trace lines skipped by the merge *)
  crashes : int;  (** SIGKILLs actually delivered *)
  clean_exits : int;  (** final incarnations that exited 0 *)
}

val merged_file : string -> string
val chrome_file : string -> string
val run_file : string -> string

val validate : cfg -> unit
(** Raises [Invalid_argument] with a one-line message on nonsense
    parameters (n < 2, non-positive durations/rates, fault pid or time
    out of range, drop/dup rates outside [0, 1), malformed partitions,
    a [dir] whose socket paths would overflow [sun_path]). *)

val clean_dir : cfg -> unit
(** Create [dir] if needed and clear the previous run's artifacts
    (sockets, traces, stores, reports) so a reused directory cannot mix
    two runs' traces. *)

type sv_result = {
  sv_crashes : int;
  sv_clean_exits : int;
  sv_gens : (int * int) list;  (** (pid, final generation) *)
}

val supervise : cfg -> base:float -> workers:int list -> sv_result
(** The fork/SIGKILL/respawn/reap loop over an explicit pid subset —
    the piece a cluster agent reuses for its local block. [base] is the
    run's shared time origin and may lie in the future (coordinated
    multi-host start); the fault schedule is filtered to [workers].
    Does not validate, clean the directory, or merge traces. *)

val run : cfg -> result
(** Blocks for [duration + settle] seconds plus shutdown grace. *)
