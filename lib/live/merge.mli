(** Merge per-incarnation trace files into one lintable JSONL stream.

    Collects every [trace.<pid>.g<gen>.jsonl] in the run directory,
    drops the per-file schema headers and any torn trailing lines
    (SIGKILL mid-write), and stably sorts by timestamp with ties broken
    causes-first ([Send]/[Token_sent] before other kinds, then pid, then
    global read order) so the offline linter sees sends before their
    deliveries and identical wall-clock stamps cannot scramble a
    process's own emission order. The output starts with a fresh schema
    header. *)

val run : dir:string -> out:string -> int * int
(** [(events, dropped)] — merged event count and unparsable lines
    skipped. *)

val trace_files : string -> string list
(** The per-incarnation trace files of a run directory, sorted
    numerically by (pid, generation) — not lexicographically, which
    would read [g10] before [g2]. *)

val chrome : src:string -> out:string -> int
(** Convert a merged JSONL stream into one Chrome [trace_event] timeline
    (spans as complete slices, snapshots as counter tracks, everything
    else as instant events/flow arrows). Returns the number of events
    converted. *)
