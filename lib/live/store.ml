(* On-disk stable storage for one live worker: the crash-surviving
   counterpart of the in-memory {!Optimist_storage} structures. Values are
   marshalled (all protocol data is closure-free); every append is flushed
   to the OS immediately, so a SIGKILL — which loses user-space buffers but
   not kernel page cache — cannot lose anything the protocol already
   considers stable. Whole-file rewrites (truncate, token relog, meta) go
   through a temp file + rename, so a kill mid-rewrite leaves the old
   version intact.

   A torn trailing record (killed mid-append) is discarded on load: the
   hooks fire log-before-checkpoint, so dropping a torn log tail can only
   lose entries no surviving checkpoint depends on. *)

type t = {
  dir : string;
  mutable log_oc : out_channel;
  mutable cp_oc : out_channel;
  (* I/O accounting, fed to the recovery telemetry: how many bytes the
     store moved on behalf of this worker, and how many of those were
     re-reads of previously persisted state. *)
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable read_ops : int;
  mutable write_ops : int;
}

let log_file t = Filename.concat t.dir "log.bin"
let cp_file t = Filename.concat t.dir "cps.bin"
let tokens_file t = Filename.concat t.dir "tokens.bin"
let meta_file t = Filename.concat t.dir "meta.bin"

let append_flags = [ Open_append; Open_creat; Open_binary ]

let open_ dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let t =
    {
      dir;
      log_oc = stdout (* replaced below *);
      cp_oc = stdout;
      bytes_read = 0;
      bytes_written = 0;
      read_ops = 0;
      write_ops = 0;
    }
  in
  t.log_oc <- open_out_gen append_flags 0o644 (log_file t);
  t.cp_oc <- open_out_gen append_flags 0o644 (cp_file t);
  t

(* Read every complete marshalled value; stop silently at a torn tail. *)
let read_values path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             acc := Marshal.from_channel ic :: !acc
           done
         with End_of_file | Failure _ -> ());
        List.rev !acc)
  end

(* Counted variant: consumed bytes = where the last complete value
   ended, which [read_values]'s channel position reflects even when it
   stops at a torn tail. *)
let read_values_c t path =
  let vs = read_values path in
  t.read_ops <- t.read_ops + 1;
  (if Sys.file_exists path then
     let consumed =
       (* The torn tail (if any) was not decoded; approximate consumed
          bytes by the file size, which is exact in the common case. *)
       try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0
     in
     t.bytes_read <- t.bytes_read + consumed);
  vs

let rewrite t path values =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  List.iter (fun v -> Marshal.to_channel oc v []) values;
  t.write_ops <- t.write_ops + 1;
  t.bytes_written <- t.bytes_written + pos_out oc;
  close_out oc;
  Sys.rename tmp path

let append t oc v =
  let before = pos_out oc in
  Marshal.to_channel oc v [];
  t.write_ops <- t.write_ops + 1;
  t.bytes_written <- t.bytes_written + (pos_out oc - before);
  flush oc

(* --- message log --- *)

let append_log t entry = append t t.log_oc entry

let load_log t = Array.of_list (read_values_c t (log_file t))

let truncate_log t ~stable =
  close_out_noerr t.log_oc;
  let entries = read_values_c t (log_file t) in
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  rewrite t (log_file t) (take stable entries);
  t.log_oc <- open_out_gen append_flags 0o644 (log_file t)

(* --- checkpoints (stored as (position, payload) records) --- *)

let append_checkpoint t ~position cp = append t t.cp_oc (position, cp)

let load_checkpoints t =
  (* File order is oldest first; callers want newest first. *)
  List.rev_map
    (fun (position, cp) -> (cp, position))
    (read_values_c t (cp_file t))

let discard_checkpoints_after t ~position =
  close_out_noerr t.cp_oc;
  let items = read_values_c t (cp_file t) in
  rewrite t (cp_file t) (List.filter (fun (p, _) -> p <= position) items);
  t.cp_oc <- open_out_gen append_flags 0o644 (cp_file t)

(* --- tokens (full list relogged on every change, Section 6.3) --- *)

let write_tokens t tokens = rewrite t (tokens_file t) [ tokens ]

let load_tokens t =
  match read_values_c t (tokens_file t) with [] -> [] | l :: _ -> l

(* --- meta (worker generation counter) --- *)

let write_gen t gen = rewrite t (meta_file t) [ gen ]

let load_gen t =
  match read_values_c t (meta_file t) with [] -> 0 | g :: _ -> g

(* --- I/O accounting --- *)

let stats t =
  [
    ("bytes_read", t.bytes_read);
    ("bytes_written", t.bytes_written);
    ("read_ops", t.read_ops);
    ("write_ops", t.write_ops);
  ]

let bytes_read t = t.bytes_read

let close t =
  close_out_noerr t.log_oc;
  close_out_noerr t.cp_oc
