(* On-disk stable storage for one live worker: the crash-surviving
   counterpart of the in-memory {!Optimist_storage} structures. Values are
   marshalled (all protocol data is closure-free); every append is flushed
   to the OS immediately, so a SIGKILL — which loses user-space buffers but
   not kernel page cache — cannot lose anything the protocol already
   considers stable. Whole-file rewrites (truncate, token relog, meta) go
   through a temp file + rename, so a kill mid-rewrite leaves the old
   version intact.

   A torn trailing record (killed mid-append) is discarded on load: the
   hooks fire log-before-checkpoint, so dropping a torn log tail can only
   lose entries no surviving checkpoint depends on. *)

type t = {
  dir : string;
  mutable log_oc : out_channel;
  mutable cp_oc : out_channel;
}

let log_file t = Filename.concat t.dir "log.bin"
let cp_file t = Filename.concat t.dir "cps.bin"
let tokens_file t = Filename.concat t.dir "tokens.bin"
let meta_file t = Filename.concat t.dir "meta.bin"

let append_flags = [ Open_append; Open_creat; Open_binary ]

let open_ dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let t =
    { dir; log_oc = stdout (* replaced below *); cp_oc = stdout }
  in
  t.log_oc <- open_out_gen append_flags 0o644 (log_file t);
  t.cp_oc <- open_out_gen append_flags 0o644 (cp_file t);
  t

(* Read every complete marshalled value; stop silently at a torn tail. *)
let read_values path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             acc := Marshal.from_channel ic :: !acc
           done
         with End_of_file | Failure _ -> ());
        List.rev !acc)
  end

let rewrite path values =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  List.iter (fun v -> Marshal.to_channel oc v []) values;
  close_out oc;
  Sys.rename tmp path

(* --- message log --- *)

let append_log t entry =
  Marshal.to_channel t.log_oc entry [];
  flush t.log_oc

let load_log t = Array.of_list (read_values (log_file t))

let truncate_log t ~stable =
  close_out_noerr t.log_oc;
  let entries = read_values (log_file t) in
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  rewrite (log_file t) (take stable entries);
  t.log_oc <- open_out_gen append_flags 0o644 (log_file t)

(* --- checkpoints (stored as (position, payload) records) --- *)

let append_checkpoint t ~position cp =
  Marshal.to_channel t.cp_oc (position, cp) [];
  flush t.cp_oc

let load_checkpoints t =
  (* File order is oldest first; callers want newest first. *)
  List.rev_map (fun (position, cp) -> (cp, position)) (read_values (cp_file t))

let discard_checkpoints_after t ~position =
  close_out_noerr t.cp_oc;
  let items = read_values (cp_file t) in
  rewrite (cp_file t) (List.filter (fun (p, _) -> p <= position) items);
  t.cp_oc <- open_out_gen append_flags 0o644 (cp_file t)

(* --- tokens (full list relogged on every change, Section 6.3) --- *)

let write_tokens t tokens = rewrite (tokens_file t) [ tokens ]

let load_tokens t =
  match read_values (tokens_file t) with [] -> [] | l :: _ -> l

(* --- meta (worker generation counter) --- *)

let write_gen t gen = rewrite (meta_file t) [ gen ]

let load_gen t = match read_values (meta_file t) with [] -> 0 | g :: _ -> g

let close t =
  close_out_noerr t.log_oc;
  close_out_noerr t.cp_oc
