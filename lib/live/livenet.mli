(** Real-socket transport: a mesh of Unix-domain datagram sockets.

    Worker [i] binds [DIR/wi.sock]; sends go straight to the peer's
    address, so there is no connection state to tear down when a peer is
    SIGKILL-ed. The two lanes of {!Optimist_core.Transport.lane} map to:

    - {b Data} — fire-and-forget. The actual [sendto] is delayed by a
      seeded random jitter, so back-to-back sends genuinely reorder on
      the wire; sends to a dead or unborn peer are dropped (a real
      in-flight loss).
    - {b Control} — reliable. Frames carry a sequence number, are
      retained until acknowledged, and are retransmitted periodically;
      receivers ack and de-duplicate. A control frame sent to a crashed
      peer is therefore delivered to its next incarnation — the live
      equivalent of the simulated network's queued control plane.

    The transport's [set_down]/[set_up] are no-ops: crashes are real
    process deaths here. *)

module Transport = Optimist_core.Transport

type 'a t

type partition = { pt_start : float; pt_stop : float; pt_island : int list }
(** A burst partition: during [pt_start, pt_stop) (loop time), frames
    crossing the island boundary — in either direction — are blocked at
    the socket gate. Control frames heal through retransmission once the
    window closes; Data frames are real losses. *)

type faults = {
  drop_rate : float;  (** Bernoulli loss per Data send *)
  dup_rate : float;  (** Bernoulli duplicate per Data send *)
  partitions : partition list;
}
(** Seeded network-fault plan, decided deterministically from the
    transport's PRNG at send time. *)

val no_faults : faults

val create :
  ?jitter:float * float ->
  ?retransmit_every:float ->
  ?seq_base:int ->
  ?faults:faults ->
  loop:Loop.t ->
  dir:string ->
  me:int ->
  n:int ->
  seed:int64 ->
  unit ->
  'a t
(** Binds [DIR/w<me>.sock] (unlinking any stale file), registers the
    receive pump on [loop], and starts the retransmit timer. [jitter]
    is the (min, max) Data-lane send delay in seconds (default 1–20 ms).
    [seq_base] must be distinct per incarnation (e.g. [gen * 1_000_000])
    so a restarted worker's control frames are not mistaken for
    retransmits of its predecessor's. [faults] (default {!no_faults})
    injects seeded drops, duplicates and burst partitions. *)

val sock_path : string -> int -> string
(** [sock_path dir i] is worker [i]'s socket path. *)

val sun_path_max : int
(** Portable floor of [sizeof sun_path] (104 bytes). *)

val check_dir : dir:string -> n:int -> (unit, string) result
(** One-line error if any of the [n] socket paths under [dir] would
    overflow [sun_path]. {!create} enforces this with [Invalid_argument];
    callers with a CLI surface should check first and report cleanly. *)

val wait_for_peers : 'a t -> timeout:float -> bool
(** Block (sleeping in small steps) until every peer socket file exists;
    [false] on timeout. Gen-0 startup barrier. *)

val transport : 'a t -> 'a Transport.t

val unacked_count : 'a t -> int
(** Control frames not yet acknowledged. *)

val stats : 'a t -> (string * int) list
(** [sent_data], [sent_control], [retransmits], [received],
    [send_errors], [faults_dropped], [faults_duplicated],
    [partition_blocked]. *)

val close : 'a t -> unit
(** Deregister from the loop and close the socket (the path is left for
    a successor incarnation to rebind). *)

val link : 'a t -> 'a Link.t
(** The mesh behind the transport-agnostic {!Link} interface. *)

val factory :
  ?retransmit_every:float ->
  ?faults:faults ->
  dir:string ->
  n:int ->
  seed:int64 ->
  unit ->
  Link.factory
(** A {!Link.factory} for the UDS mesh. [seed] is the run seed; each
    [make ~me ~gen] derives the per-incarnation PRNG seed
    ([seed + 1 + me + gen*n]) and control-sequence base
    ([gen * 1_000_000]) exactly as the live worker historically did. *)
