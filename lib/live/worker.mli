(** One live worker process: the protocol stack a forked child runs.

    A worker assembles the shared protocol code from [lib/core] (or a
    baseline from [lib/protocols]) on top of the live substrate:
    {!Loop} as the {!Optimist_core.Transport.runtime}, {!Livenet} as
    the transport, {!Store} behind the stable hooks, and a
    per-incarnation JSONL trace file. Incarnation [gen = 0] starts
    fresh; [gen > 0] (a supervisor respawn after a SIGKILL) reloads the
    persisted image and runs the protocol's [recover] — the paper's
    Restart over real stable storage. *)

module Traffic = Optimist_workload.Traffic

type protocol =
  | Dg  (** Damani-Garg, the paper's protocol *)
  | Pessimist  (** pessimistic (synchronous) logging *)
  | Sender  (** sender-based logging, Johnson-Zwaenepoel *)
  | Sy  (** Strom-Yemini optimistic recovery *)
  | Cpo  (** uncoordinated checkpointing, no log (domino) *)
  | Koo  (** coordinated checkpointing, Koo-Toueg *)

val protocol_name : protocol -> string

val protocol_of_string : string -> protocol option
(** Accepts the canonical names plus aliases ([damani-garg], [sender],
    [sb], [sy], [cpo], [koo], [koo-toueg], [pessimistic]). *)

val all_protocols : protocol list
(** Every protocol the live runtime can host, [Dg] first. *)

val live_check_rules : protocol -> string list
(** The sanitizer rules this protocol's merged live trace is expected to
    satisfy: the full battery for [Dg], the baseline's declared
    [check_rules] subset otherwise. *)

type telemetry =
  | Off  (** null recorder: instrumentation short-circuits *)
  | Ring  (** events into a bounded in-memory ring, nothing on disk *)
  | Full  (** per-incarnation JSONL trace file (the default) *)

val telemetry_name : telemetry -> string
val telemetry_of_string : string -> telemetry option

type cfg = {
  dir : string;  (** run directory: sockets, stores, traces *)
  me : int;
  n : int;
  protocol : protocol;
  gen : int;  (** incarnation: 0 on first spawn, +1 per restart *)
  seed : int64;
  base : float;  (** shared [Unix.gettimeofday] origin of the run *)
  duration : float;  (** injection window, seconds *)
  settle : float;  (** extra drain time after the window *)
  rate : float;  (** injections per process per second *)
  hops : int;
  pattern : Traffic.pattern;
  jitter : float * float;  (** Data-lane send-delay range, seconds *)
  faults : Livenet.faults;  (** seeded network-fault plan *)
  telemetry : telemetry;
  link : Link.factory option;
      (** [None] = the classic single-host UDS mesh built from [dir],
          [faults] and [seed]; [Some f] = an alternative fabric (the
          cluster's TCP link) *)
}

val trace_file : dir:string -> me:int -> gen:int -> string
(** The JSONL trace this incarnation writes. *)

val stats_file : dir:string -> me:int -> gen:int -> string
(** The JSON summary (counters, digest, net stats) written on clean
    exit; absent for incarnations that died to a SIGKILL. *)

val store_dir : dir:string -> me:int -> string
(** The worker's stable-storage directory (shared by incarnations). *)

val main : cfg -> unit
(** Run the worker to its deadline and write the stats file. Blocks;
    meant to be the body of a forked child. Exits 1 if the peer sockets
    do not appear. *)
