module Trace = Optimist_obs.Trace
module Transport = Optimist_core.Transport

type timer = { t_at : float; t_seq : int; t_run : unit -> unit }

type t = {
  base : float;
  mutable last : float;
  mutable timers : timer list; (* sorted by (t_at, t_seq) *)
  mutable seq : int;
  mutable fds : (Unix.file_descr * (unit -> unit)) list;
  mutable wfds : (Unix.file_descr * (unit -> unit)) list;
  mutable stopped : bool;
  tracer : Trace.t;
}

let create ?(tracer = Trace.null) ~base () =
  {
    base;
    last = 0.0;
    timers = [];
    seq = 0;
    fds = [];
    wfds = [];
    stopped = false;
    tracer;
  }

(* Wall clock relative to [base], clamped non-decreasing so per-process
   trace timestamps are monotone even if the system clock steps back. *)
let now t =
  let x = Unix.gettimeofday () -. t.base in
  if x > t.last then t.last <- x;
  t.last

let schedule t ~delay action =
  let at = now t +. Float.max delay 0.0 in
  t.seq <- t.seq + 1;
  let tm = { t_at = at; t_seq = t.seq; t_run = action } in
  let rec ins = function
    | [] -> [ tm ]
    | x :: _ as l when (tm.t_at, tm.t_seq) < (x.t_at, x.t_seq) -> tm :: l
    | x :: rest -> x :: ins rest
  in
  t.timers <- ins t.timers

let on_readable t fd cb = t.fds <- (fd, cb) :: t.fds

let on_writable t fd cb = t.wfds <- (fd, cb) :: t.wfds

let remove_writable t fd = t.wfds <- List.filter (fun (f, _) -> f <> fd) t.wfds

let remove_fd t fd =
  t.fds <- List.filter (fun (f, _) -> f <> fd) t.fds;
  remove_writable t fd

let stop t = t.stopped <- true

let tracer t = t.tracer

(* The [daemon] distinction is meaningless here: a live loop runs to its
   deadline regardless of pending timers, so daemon timers cannot keep it
   alive and non-daemon timers cannot extend it. *)
let runtime t =
  {
    Transport.now = (fun () -> now t);
    schedule =
      (fun ?label:_ ~daemon:_ ~delay action -> schedule t ~delay action);
    tracer = (fun () -> t.tracer);
  }

let fire_due t =
  let rec fire () =
    match t.timers with
    | tm :: rest when tm.t_at <= now t ->
        t.timers <- rest;
        tm.t_run ();
        fire ()
    | _ -> ()
  in
  fire ()

let select_once t ~timeout =
  match
    Unix.select (List.map fst t.fds) (List.map fst t.wfds) [] timeout
  with
  | ready, writable, _ ->
      List.iter
        (fun fd ->
          match List.assoc_opt fd t.fds with Some cb -> cb () | None -> ())
        ready;
      List.iter
        (fun fd ->
          match List.assoc_opt fd t.wfds with Some cb -> cb () | None -> ())
        writable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run_once t ~max_wait =
  fire_due t;
  if not t.stopped then begin
    let next_timer =
      match t.timers with [] -> infinity | tm :: _ -> tm.t_at
    in
    let timeout =
      Float.max 0.0 (Float.min max_wait (next_timer -. now t))
    in
    select_once t ~timeout
  end

let run t ~until =
  while (not t.stopped) && now t < until do
    fire_due t;
    if (not t.stopped) && now t < until then begin
      let next_timer =
        match t.timers with [] -> infinity | tm :: _ -> tm.t_at
      in
      let timeout =
        Float.max 0.0
          (Float.min (until -. now t)
             (Float.min 0.05 (next_timer -. now t)))
      in
      select_once t ~timeout
    end
  done
