(** Wall-clock event loop for live workers.

    The live counterpart of {!Optimist_sim.Engine}: one-shot timers, a
    [select]-based readiness pump for the worker's socket, and the trace
    recorder — packaged as a {!Optimist_core.Transport.runtime} so the
    protocol code in [lib/core] runs on it unchanged. Time is wall-clock
    seconds relative to a shared [base] (the supervisor's start instant),
    clamped non-decreasing per process so trace timestamps stay monotone. *)

module Trace = Optimist_obs.Trace
module Transport = Optimist_core.Transport

type t

val create : ?tracer:Trace.t -> base:float -> unit -> t
(** [base] is an absolute [Unix.gettimeofday] instant mapped to [t = 0];
    every worker of a run shares it, so per-process timestamps merge into
    one global timeline. *)

val now : t -> float
(** Seconds since [base], non-decreasing. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** One-shot timer; negative delays clamp to "next iteration". *)

val on_readable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Register a callback run whenever [fd] selects readable. *)

val on_writable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Register a callback run whenever [fd] selects writable — used by the
    TCP link for non-blocking connect completion and buffered flushes.
    Writability fires continuously on an idle connected socket, so
    callbacks must deregister themselves ({!remove_writable}) once their
    work is done. *)

val remove_writable : t -> Unix.file_descr -> unit

val remove_fd : t -> Unix.file_descr -> unit
(** Drop [fd] from both the readable and writable sets. *)

val run : t -> until:float -> unit
(** Fire due timers and pump readiness until [now t >= until] or {!stop}.
    Timers still pending at the deadline are dropped. *)

val run_once : t -> max_wait:float -> unit
(** One loop iteration: fire due timers, then select for at most
    [max_wait] seconds. For pumping the loop from a caller with its own
    termination condition (the TCP link's connection barrier) — unlike
    {!run} it never blocks past [max_wait] even when the loop clock is
    idling before the run's base instant. *)

val stop : t -> unit

val tracer : t -> Trace.t

val runtime : t -> Transport.runtime
(** The loop as a protocol substrate ([daemon] is ignored: a live loop
    runs to its deadline regardless of pending timers). *)
