module Types = Optimist_core.Types
module Process = Optimist_core.Process
module Transport = Optimist_core.Transport
module Pessimistic = Optimist_protocols.Pessimistic
module Sender_based = Optimist_protocols.Sender_based
module Strom_yemini = Optimist_protocols.Strom_yemini
module Checkpoint_only = Optimist_protocols.Checkpoint_only
module Coordinated = Optimist_protocols.Coordinated
module Check = Optimist_check.Check
module Traffic = Optimist_workload.Traffic
module Schedule = Optimist_workload.Schedule
module Trace = Optimist_obs.Trace
module Span = Optimist_obs.Span
module Metrics = Optimist_obs.Metrics
module Json = Optimist_obs.Json

type protocol = Dg | Pessimist | Sender | Sy | Cpo | Koo

let protocol_name = function
  | Dg -> "dg"
  | Pessimist -> "pessimist"
  | Sender -> "sender-based"
  | Sy -> "strom-yemini"
  | Cpo -> "checkpoint-only"
  | Koo -> "coordinated"

let protocol_of_string = function
  | "dg" | "damani-garg" -> Some Dg
  | "pessimist" | "pessimistic" -> Some Pessimist
  | "sender-based" | "sender" | "sb" -> Some Sender
  | "strom-yemini" | "sy" -> Some Sy
  | "checkpoint-only" | "cpo" -> Some Cpo
  | "coordinated" | "koo-toueg" | "koo" -> Some Koo
  | _ -> None

let all_protocols = [ Dg; Pessimist; Sender; Sy; Cpo; Koo ]

(* The sanitizer rules a protocol's live traces are expected to satisfy:
   the full offline battery for the core protocol, each baseline's
   declared subset otherwise. (Online-only rules need the ground-truth
   oracle and cannot run over a merged trace.) *)
let live_check_rules = function
  | Dg -> Check.offline_ids
  | Pessimist -> Pessimistic.check_rules
  | Sender -> Sender_based.check_rules
  | Sy -> Strom_yemini.check_rules
  | Cpo -> Checkpoint_only.check_rules
  | Koo -> Coordinated.check_rules

type telemetry = Off | Ring | Full

let telemetry_name = function Off -> "off" | Ring -> "ring" | Full -> "full"

let telemetry_of_string = function
  | "off" -> Some Off
  | "ring" -> Some Ring
  | "full" -> Some Full
  | _ -> None

type cfg = {
  dir : string;
  me : int;
  n : int;
  protocol : protocol;
  gen : int;  (** incarnation: 0 on first spawn, +1 per restart *)
  seed : int64;
  base : float;  (** shared [Unix.gettimeofday] origin of the run *)
  duration : float;  (** injection window, seconds *)
  settle : float;  (** extra drain time after the window *)
  rate : float;
  hops : int;
  pattern : Traffic.pattern;
  jitter : float * float;
  faults : Livenet.faults;
  telemetry : telemetry;
  link : Link.factory option;
      (** [None] = the classic single-host UDS mesh built from [dir],
          [faults] and [seed]; [Some f] = an alternative fabric (the
          cluster's TCP link). *)
}

type outcome = {
  counters : (string * int) list;
  digest : int;
  epoch : int;
}

let trace_file ~dir ~me ~gen =
  Filename.concat dir (Printf.sprintf "trace.%d.g%d.jsonl" me gen)

let stats_file ~dir ~me ~gen =
  Filename.concat dir (Printf.sprintf "worker.%d.g%d.json" me gen)

let store_dir ~dir ~me = Filename.concat dir (Printf.sprintf "store.w%d" me)

(* Every incarnation writes its own trace file: a SIGKILL can tear the
   last line of the dying incarnation's file, and per-file isolation
   keeps that torn tail from corrupting the successor's stream. The
   merge step (Merge) skips unparsable lines and re-sorts globally.

   Telemetry modes: [Full] writes the JSONL file; [Ring] keeps events in
   a bounded in-memory ring (instrumentation runs, nothing hits disk —
   the overhead-bench middle ground); [Off] uses the null recorder, so
   the [Trace.enabled] guards short-circuit everywhere. *)
let open_trace cfg =
  match cfg.telemetry with
  | Off -> (Trace.null, None)
  | Ring ->
      let tracer = Trace.create () in
      Trace.attach tracer (Trace.Ring.sink (Trace.Ring.create ()));
      (tracer, None)
  | Full ->
      let oc = open_out_bin (trace_file ~dir:cfg.dir ~me:cfg.me ~gen:cfg.gen) in
      let tracer = Trace.create () in
      (* Flush every line: a Send must be on disk before the datagram is
         on the wire, otherwise a crash could yield a receiver-side
         Deliver whose Send the merged trace never saw (a false
         OPT002). *)
      Trace.attach tracer
        (Trace.jsonl_sink (fun line ->
             output_string oc line;
             flush oc));
      (tracer, Some oc)

let write_stats cfg ~net_stats ~store_stats outcome =
  let kv l = List.map (fun (k, v) -> (k, Json.Int v)) l in
  let j =
    Json.Obj
      [
        ("pid", Json.Int cfg.me);
        ("gen", Json.Int cfg.gen);
        ("protocol", Json.String (protocol_name cfg.protocol));
        ("telemetry", Json.String (telemetry_name cfg.telemetry));
        ("epoch", Json.Int outcome.epoch);
        ("digest", Json.Int outcome.digest);
        ("counters", Json.Obj (kv outcome.counters));
        ("net", Json.Obj (kv net_stats));
        ("store", Json.Obj (kv store_stats));
      ]
  in
  let path = stats_file ~dir:cfg.dir ~me:cfg.me ~gen:cfg.gen in
  let oc = open_out path in
  output_string oc (Json.to_string j);
  output_string oc "\n";
  close_out oc

(* Injection schedule: derived from the run seed exactly like the
   simulated runner derives it, shared by every worker, filtered down to
   this pid. A restarted incarnation recomputes the same schedule and
   keeps only the injections still in the future — the ones its
   predecessor already absorbed are in the stable log and come back via
   replay, so re-injecting them would double them. *)
let schedule_injections cfg loop inject =
  let injections =
    Schedule.poisson_injections
      ~seed:(Int64.add cfg.seed 7919L)
      ~n:cfg.n ~rate:cfg.rate ~duration:cfg.duration ~hops:cfg.hops
  in
  let now = Loop.now loop in
  List.iter
    (fun (inj : Schedule.injection) ->
      if inj.pid = cfg.me && inj.at > now then
        Loop.schedule loop ~delay:(inj.at -. now) (fun () ->
            inject (Traffic.fresh ~key:inj.key ~hops:inj.hops)))
    injections

(* Unique across incarnations: a replayed send must not collide with a
   new one, so the generation is folded into the uid. *)
let uid_gen cfg =
  let seq = ref 0 in
  fun () ->
    incr seq;
    (((cfg.gen lsl 28) + !seq) * cfg.n) + cfg.me

let live_dg_config =
  {
    Types.default_config with
    checkpoint_interval = 1.0;
    flush_interval = 0.25;
    restart_delay = 0.3;
    retransmit_lost = true;
  }

(* --- telemetry plumbing --- *)

let snapshot_period = 0.5

let emit_snapshot cfg loop ~ver values =
  let tracer = Loop.tracer loop in
  if Trace.enabled tracer then
    Trace.emit tracer
      {
        Trace.at = Loop.now loop;
        pid = cfg.me;
        ver;
        clock = [||];
        kind =
          Trace.Snapshot { protocol = protocol_name cfg.protocol; values };
      }

(* Periodic metric snapshots, re-armed until the loop deadline drops the
   pending timer. [ver] and [scope] are thunked because the snapshot
   content must reflect the protocol state at fire time. *)
let schedule_snapshots cfg loop ~ver scope =
  if Trace.enabled (Loop.tracer loop) then begin
    let rec tick () =
      emit_snapshot cfg loop ~ver:(ver ())
        (("gen", float_of_int cfg.gen) :: Metrics.Scope.snapshot (scope ()));
      Loop.schedule loop ~delay:snapshot_period tick
    in
    Loop.schedule loop ~delay:snapshot_period tick
  end

let final_snapshot cfg loop ~ver scope =
  emit_snapshot cfg loop ~ver
    (("gen", float_of_int cfg.gen) :: Metrics.Scope.snapshot scope)

(* Wrap the transport so every inbound datagram's protocol handling runs
   under a span. One span per message is cheap next to the syscall that
   delivered it, and it is what makes per-message latency visible in the
   merged timeline. *)
let span_transport sctx (net : 'a Transport.t) =
  {
    net with
    Transport.set_handler =
      (fun pid f ->
        net.Transport.set_handler pid (fun m ->
            Span.with_ sctx "handle" (fun () -> f m)));
  }

(* One recovery record per restarted incarnation: wall-clock latency of
   the whole path (store reload -> process rebuild -> recover/replay),
   plus what it cost. [depth] is the protocol's orphan-discard count
   ("log_truncated"); a clean crash-replay recovery legitimately reports
   0 — nothing that survived was rolled back. *)
let emit_recovery cfg loop store ~ver ~latency ~replayed ~depth ~bytes_before =
  emit_snapshot cfg loop ~ver
    [
      ("gen", float_of_int cfg.gen);
      ("recovery.bytes_reread", float_of_int (Store.bytes_read store - bytes_before));
      ("recovery.latency", latency);
      ("recovery.messages_replayed", float_of_int replayed);
      ("recovery.rollback_depth", float_of_int depth);
    ]

let run_dg cfg loop sctx net store =
  let app = Traffic.app ~n:cfg.n cfg.pattern in
  let span name f = Span.with_ sctx name f in
  let stable =
    {
      Process.log_appended =
        (fun entries ->
          span "store.log_flush" (fun () ->
              List.iter (Store.append_log store) entries));
      log_truncated =
        (fun ~stable ->
          span "store.truncate" (fun () -> Store.truncate_log store ~stable));
      checkpoint_recorded =
        (fun ~position cp ->
          span "store.checkpoint" (fun () ->
              Store.append_checkpoint store ~position cp));
      checkpoints_discarded_after =
        (fun ~position -> Store.discard_checkpoints_after store ~position);
      tokens_logged =
        (fun tokens ->
          span "store.tokens" (fun () -> Store.write_tokens store tokens));
    }
  in
  let recovering = cfg.gen > 0 in
  let rec_span = if recovering then Some (Span.start sctx "recovery") else None in
  let bytes_before = Store.bytes_read store in
  let restore =
    if not recovering then None
    else
      Some
        {
          Process.im_log = Store.load_log store;
          im_checkpoints = Store.load_checkpoints store;
          im_tokens = Store.load_tokens store;
        }
  in
  let p =
    Process.create_rt ~rt:(Loop.runtime loop)
      ~net:(span_transport sctx net)
      ~app ~id:cfg.me ~n:cfg.n ~config:live_dg_config ~stable ?restore
      ~next_uid:(uid_gen cfg) ()
  in
  Span.set_version sctx (fun () -> Process.version p);
  Store.write_gen store cfg.gen;
  (match rec_span with
  | None -> ()
  | Some sp ->
      Process.recover p;
      let latency = Span.finish sctx sp in
      let m = Process.metrics p in
      emit_recovery cfg loop store ~ver:(Process.version p) ~latency
        ~replayed:(Metrics.Scope.get m "replayed")
        ~depth:(Metrics.Scope.get m "log_truncated")
        ~bytes_before);
  schedule_snapshots cfg loop
    ~ver:(fun () -> Process.version p)
    (fun () -> Process.metrics p);
  schedule_injections cfg loop (Process.inject p);
  Loop.run loop ~until:(cfg.duration +. cfg.settle);
  Process.flush_now p;
  final_snapshot cfg loop ~ver:(Process.version p) (Process.metrics p);
  {
    counters = Process.counters p;
    digest = Traffic.digest (Process.state p);
    epoch = Process.version p;
  }

let live_pessimist_config =
  {
    Pessimistic.default_config with
    sync_write_latency = 0.002;
    checkpoint_interval = 1.0;
    restart_delay = 0.3;
  }

let run_pessimist cfg loop sctx net store =
  let app = Traffic.app ~n:cfg.n cfg.pattern in
  let span name f = Span.with_ sctx name f in
  let stable =
    {
      Pessimistic.log_appended =
        (fun entries ->
          span "store.log_flush" (fun () ->
              List.iter (Store.append_log store) entries));
      checkpoint_recorded =
        (fun ~position s ->
          span "store.checkpoint" (fun () ->
              Store.append_checkpoint store ~position s));
      epoch_recorded = (fun epoch -> Store.write_gen store epoch);
    }
  in
  let recovering = cfg.gen > 0 in
  let rec_span = if recovering then Some (Span.start sctx "recovery") else None in
  let bytes_before = Store.bytes_read store in
  let restore =
    if not recovering then None
    else
      Some
        {
          Pessimistic.im_log = Store.load_log store;
          im_checkpoints = Store.load_checkpoints store;
          im_epoch = Store.load_gen store;
        }
  in
  let p =
    Pessimistic.create_rt ~rt:(Loop.runtime loop)
      ~net:(span_transport sctx net)
      ~app ~id:cfg.me ~n:cfg.n ~config:live_pessimist_config ~stable ?restore
      ~next_uid:(uid_gen cfg) ()
  in
  Span.set_version sctx (fun () -> cfg.gen);
  (match rec_span with
  | None -> ()
  | Some sp ->
      Pessimistic.recover p;
      let latency = Span.finish sctx sp in
      let m = Pessimistic.metrics p in
      (* The pessimistic baseline never rolls surviving state back. *)
      emit_recovery cfg loop store ~ver:cfg.gen ~latency
        ~replayed:(Metrics.Scope.get m "replayed")
        ~depth:0 ~bytes_before);
  schedule_snapshots cfg loop
    ~ver:(fun () -> cfg.gen)
    (fun () -> Pessimistic.metrics p);
  schedule_injections cfg loop (Pessimistic.inject p);
  Loop.run loop ~until:(cfg.duration +. cfg.settle);
  final_snapshot cfg loop ~ver:cfg.gen (Pessimistic.metrics p);
  {
    counters = Pessimistic.counters p;
    digest = Traffic.digest (Pessimistic.state p);
    epoch = Store.load_gen store;
  }

let live_sender_config =
  { Sender_based.checkpoint_interval = 1.0; restart_delay = 0.3 }

let run_sender cfg loop sctx net store =
  let app = Traffic.app ~n:cfg.n cfg.pattern in
  let span name f = Span.with_ sctx name f in
  let stable =
    {
      Sender_based.checkpoint_recorded =
        (fun ~position ck ->
          span "store.checkpoint" (fun () ->
              Store.append_checkpoint store ~position ck));
      epoch_recorded = (fun epoch -> Store.write_gen store epoch);
    }
  in
  let recovering = cfg.gen > 0 in
  let rec_span = if recovering then Some (Span.start sctx "recovery") else None in
  let bytes_before = Store.bytes_read store in
  let restore =
    if not recovering then None
    else
      Some
        {
          Sender_based.im_checkpoints = Store.load_checkpoints store;
          im_epoch = Store.load_gen store;
        }
  in
  let p =
    Sender_based.create_rt ~rt:(Loop.runtime loop)
      ~net:(span_transport sctx net)
      ~app ~id:cfg.me ~n:cfg.n ~config:live_sender_config ~stable ?restore
      ~next_uid:(uid_gen cfg) ()
  in
  Span.set_version sctx (fun () -> cfg.gen);
  (match rec_span with
  | None -> ()
  | Some sp ->
      Sender_based.recover p;
      let latency = Span.finish sctx sp in
      let m = Sender_based.metrics p in
      (* Retransmissions arrive asynchronously after the broadcast, so
         [replayed] here counts only what was in by the time recover
         returned; peers never roll back (depth 0). *)
      emit_recovery cfg loop store ~ver:cfg.gen ~latency
        ~replayed:(Metrics.Scope.get m "replayed")
        ~depth:0 ~bytes_before);
  schedule_snapshots cfg loop
    ~ver:(fun () -> cfg.gen)
    (fun () -> Sender_based.metrics p);
  schedule_injections cfg loop (Sender_based.inject p);
  Loop.run loop ~until:(cfg.duration +. cfg.settle);
  final_snapshot cfg loop ~ver:cfg.gen (Sender_based.metrics p);
  {
    counters = Sender_based.counters p;
    digest = Traffic.digest (Sender_based.state p);
    epoch = Store.load_gen store;
  }

let live_sy_config =
  {
    Strom_yemini.checkpoint_interval = 1.0;
    flush_interval = 0.25;
    restart_delay = 0.3;
  }

let run_sy cfg loop sctx net store =
  let app = Traffic.app ~n:cfg.n cfg.pattern in
  let span name f = Span.with_ sctx name f in
  (* The announcement table is small and rewritten whole on every change
     (the tokens file is a single-blob slot, like D-G's token log). *)
  let announcements = ref (Store.load_tokens store : Strom_yemini.announcement list) in
  let stable =
    {
      Strom_yemini.log_flushed =
        (fun entries ->
          span "store.log_flush" (fun () ->
              List.iter (Store.append_log store) entries));
      log_truncated =
        (fun stop ->
          span "store.truncate" (fun () -> Store.truncate_log store ~stable:stop));
      checkpoint_recorded =
        (fun ~position cp ->
          span "store.checkpoint" (fun () ->
              Store.append_checkpoint store ~position cp));
      checkpoints_discarded_after =
        (fun ~position -> Store.discard_checkpoints_after store ~position);
      announcement_recorded =
        (fun a ->
          announcements := a :: !announcements;
          span "store.tokens" (fun () ->
              Store.write_tokens store !announcements));
    }
  in
  let recovering = cfg.gen > 0 in
  let rec_span = if recovering then Some (Span.start sctx "recovery") else None in
  let bytes_before = Store.bytes_read store in
  let restore =
    if not recovering then None
    else
      Some
        {
          Strom_yemini.im_log = Store.load_log store;
          im_checkpoints = Store.load_checkpoints store;
          im_announcements = !announcements;
        }
  in
  let p =
    Strom_yemini.create_rt ~rt:(Loop.runtime loop)
      ~net:(span_transport sctx net)
      ~app ~id:cfg.me ~n:cfg.n ~config:live_sy_config ~stable ?restore
      ~next_uid:(uid_gen cfg) ()
  in
  Span.set_version sctx (fun () -> Strom_yemini.incarnation p);
  Store.write_gen store cfg.gen;
  (match rec_span with
  | None -> ()
  | Some sp ->
      Strom_yemini.recover p;
      let latency = Span.finish sctx sp in
      let m = Strom_yemini.metrics p in
      emit_recovery cfg loop store
        ~ver:(Strom_yemini.incarnation p)
        ~latency
        ~replayed:(Metrics.Scope.get m "replayed")
        ~depth:(Metrics.Scope.get m "log_truncated")
        ~bytes_before);
  schedule_snapshots cfg loop
    ~ver:(fun () -> Strom_yemini.incarnation p)
    (fun () -> Strom_yemini.metrics p);
  schedule_injections cfg loop (Strom_yemini.inject p);
  Loop.run loop ~until:(cfg.duration +. cfg.settle);
  final_snapshot cfg loop
    ~ver:(Strom_yemini.incarnation p)
    (Strom_yemini.metrics p);
  {
    counters = Strom_yemini.counters p;
    digest = Traffic.digest (Strom_yemini.state p);
    epoch = Strom_yemini.incarnation p;
  }

let live_cpo_config =
  { Checkpoint_only.checkpoint_interval = 1.0; restart_delay = 0.3 }

let run_cpo cfg loop sctx net store =
  let app = Traffic.app ~n:cfg.n cfg.pattern in
  let span name f = Span.with_ sctx name f in
  let stable =
    {
      Checkpoint_only.checkpoint_recorded =
        (fun ~position cp ->
          span "store.checkpoint" (fun () ->
              Store.append_checkpoint store ~position cp));
      checkpoints_discarded_after =
        (fun ~position -> Store.discard_checkpoints_after store ~position);
      aux_recorded =
        (fun aux ->
          span "store.tokens" (fun () -> Store.write_tokens store [ aux ]));
    }
  in
  let recovering = cfg.gen > 0 in
  let rec_span = if recovering then Some (Span.start sctx "recovery") else None in
  let bytes_before = Store.bytes_read store in
  let restore =
    if not recovering then None
    else
      let aux =
        match (Store.load_tokens store : Checkpoint_only.aux list) with
        | a :: _ -> a
        | [] ->
            {
              Checkpoint_only.ax_epoch = 0;
              ax_floor = Array.make cfg.n max_int;
              ax_peer_epoch = Array.make cfg.n 0;
            }
      in
      Some
        {
          Checkpoint_only.im_checkpoints = Store.load_checkpoints store;
          im_aux = aux;
        }
  in
  let p =
    Checkpoint_only.create_rt ~rt:(Loop.runtime loop)
      ~net:(span_transport sctx net)
      ~app ~id:cfg.me ~n:cfg.n ~config:live_cpo_config ~stable ?restore
      ~next_uid:(uid_gen cfg) ()
  in
  Span.set_version sctx (fun () -> cfg.gen);
  Store.write_gen store cfg.gen;
  (match rec_span with
  | None -> ()
  | Some sp ->
      Checkpoint_only.recover p;
      let latency = Span.finish sctx sp in
      let m = Checkpoint_only.metrics p in
      (* No log, so nothing replays; the cost is the work forfeited. *)
      emit_recovery cfg loop store ~ver:cfg.gen ~latency ~replayed:0
        ~depth:(Metrics.Scope.get m "lost_states")
        ~bytes_before);
  schedule_snapshots cfg loop
    ~ver:(fun () -> cfg.gen)
    (fun () -> Checkpoint_only.metrics p);
  schedule_injections cfg loop (Checkpoint_only.inject p);
  Loop.run loop ~until:(cfg.duration +. cfg.settle);
  final_snapshot cfg loop ~ver:cfg.gen (Checkpoint_only.metrics p);
  {
    counters = Checkpoint_only.counters p;
    digest = Traffic.digest (Checkpoint_only.state p);
    epoch = Store.load_gen store;
  }

let live_koo_config =
  { Coordinated.checkpoint_interval = 1.0; restart_delay = 0.3 }

let run_koo cfg loop sctx net store =
  let app = Traffic.app ~n:cfg.n cfg.pattern in
  let span name f = Span.with_ sctx name f in
  let stable =
    {
      Coordinated.snapshot_committed =
        (fun sn ->
          span "store.checkpoint" (fun () ->
              Store.append_checkpoint store ~position:sn.Coordinated.sn_round sn));
      aux_recorded =
        (fun aux ->
          span "store.tokens" (fun () -> Store.write_tokens store [ aux ]));
    }
  in
  let recovering = cfg.gen > 0 in
  let rec_span = if recovering then Some (Span.start sctx "recovery") else None in
  let bytes_before = Store.bytes_read store in
  let restore =
    if not recovering then None
    else
      let committed =
        match Store.load_checkpoints store with
        | (sn, _) :: _ -> sn
        | [] -> { Coordinated.sn_state = app.Types.init cfg.me; sn_round = 0 }
      in
      let aux =
        match (Store.load_tokens store : Coordinated.aux list) with
        | a :: _ -> a
        | [] ->
            {
              Coordinated.ax_epoch = 0;
              ax_peer_epoch = Array.make cfg.n 0;
              ax_round = 0;
            }
      in
      Some { Coordinated.im_committed = committed; im_aux = aux }
  in
  let p =
    Coordinated.create_rt ~rt:(Loop.runtime loop)
      ~net:(span_transport sctx net)
      ~app ~id:cfg.me ~n:cfg.n ~config:live_koo_config ~stable ?restore
      ~next_uid:(uid_gen cfg) ()
  in
  Span.set_version sctx (fun () -> cfg.gen);
  Store.write_gen store cfg.gen;
  (match rec_span with
  | None -> ()
  | Some sp ->
      Coordinated.recover p;
      let latency = Span.finish sctx sp in
      let m = Coordinated.metrics p in
      emit_recovery cfg loop store ~ver:cfg.gen ~latency ~replayed:0
        ~depth:(Metrics.Scope.get m "lost_states")
        ~bytes_before);
  schedule_snapshots cfg loop
    ~ver:(fun () -> cfg.gen)
    (fun () -> Coordinated.metrics p);
  schedule_injections cfg loop (Coordinated.inject p);
  Loop.run loop ~until:(cfg.duration +. cfg.settle);
  final_snapshot cfg loop ~ver:cfg.gen (Coordinated.metrics p);
  {
    counters = Coordinated.counters p;
    digest = Traffic.digest (Coordinated.state p);
    epoch = Store.load_gen store;
  }

(* Wire-level telemetry rides the same Snapshot machinery as protocol
   metrics, in separate link.*-valued records: the recovery profiler
   keys on "delivered"/"recovery.*" and ignores them, while the bench
   and dashboards get per-link byte/frame/reconnect series for free. *)
let schedule_link_snapshots cfg loop (link : _ Link.t) =
  if Trace.enabled (Loop.tracer loop) then begin
    let rec tick () =
      emit_snapshot cfg loop ~ver:cfg.gen
        (("gen", float_of_int cfg.gen) :: link.Link.snapshot ());
      Loop.schedule loop ~delay:snapshot_period tick
    in
    Loop.schedule loop ~delay:snapshot_period tick
  end

(* Each protocol branch builds its own link so the transport's payload
   type is fixed per branch (DG and the pessimistic baseline have
   different wire types). *)
let with_net cfg loop run =
  let factory =
    match cfg.link with
    | Some f -> f
    | None ->
        Livenet.factory ~faults:cfg.faults ~dir:cfg.dir ~n:cfg.n
          ~seed:cfg.seed ()
  in
  let link =
    factory.Link.make ~loop ~me:cfg.me ~gen:cfg.gen ~jitter:cfg.jitter
  in
  (* Gen 0 waits for the whole mesh to come up before the protocol starts
     talking; restarted incarnations find every peer already present. *)
  if not (link.Link.ready ~timeout:10.0) then (
    prerr_endline
      (Printf.sprintf "worker %d: peers did not appear within 10s" cfg.me);
    exit 1);
  let store = Store.open_ (store_dir ~dir:cfg.dir ~me:cfg.me) in
  schedule_link_snapshots cfg loop link;
  let outcome = run link.Link.transport store in
  emit_snapshot cfg loop ~ver:cfg.gen
    (("gen", float_of_int cfg.gen) :: link.Link.snapshot ());
  write_stats cfg
    ~net_stats:(link.Link.stats ())
    ~store_stats:(Store.stats store) outcome;
  Store.close store;
  link.Link.close ()

let main cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Strom-Yemini assumes FIFO channels; zero jitter keeps the datagram
     mesh order-preserving enough for the assumption to hold in practice
     (kernel AF_UNIX queues are FIFO per socket pair). *)
  let cfg =
    match cfg.protocol with
    | Sy -> { cfg with jitter = (0.0, 0.0) }
    | _ -> cfg
  in
  let tracer, trace_oc = open_trace cfg in
  let loop = Loop.create ~tracer ~base:cfg.base () in
  let sctx =
    Span.create ~tracer ~now:(fun () -> Loop.now loop) ~pid:cfg.me ()
  in
  (match cfg.protocol with
  | Dg -> with_net cfg loop (fun net store -> run_dg cfg loop sctx net store)
  | Pessimist ->
      with_net cfg loop (fun net store -> run_pessimist cfg loop sctx net store)
  | Sender ->
      with_net cfg loop (fun net store -> run_sender cfg loop sctx net store)
  | Sy -> with_net cfg loop (fun net store -> run_sy cfg loop sctx net store)
  | Cpo -> with_net cfg loop (fun net store -> run_cpo cfg loop sctx net store)
  | Koo -> with_net cfg loop (fun net store -> run_koo cfg loop sctx net store));
  Trace.close tracer;
  Option.iter close_out_noerr trace_oc
