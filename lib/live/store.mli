(** On-disk stable storage for one live worker.

    The crash-surviving counterpart of the in-memory
    {!Optimist_storage} structures, written through the protocol's
    stable hooks: an append-only message log, append-only checkpoint
    records, the synchronously relogged token list, and a generation
    counter. Values are marshalled — the protocol's wire and state types
    are all closure-free — and every append is flushed immediately, so a
    SIGKILL (which loses user-space buffers, not kernel page cache)
    cannot lose anything the protocol already considers stable.
    Whole-file rewrites go through temp-file + rename; a torn trailing
    record from a kill mid-append is discarded on load.

    The store is untyped at the module level (Marshal): each worker must
    read back with the same types it wrote, which holds because a store
    directory belongs to exactly one (protocol, worker) pair. *)

type t

val open_ : string -> t
(** Open (creating if needed) the store rooted at the given directory. *)

val append_log : t -> 'e -> unit

val load_log : t -> 'e array
(** Stable log entries, position order. *)

val truncate_log : t -> stable:int -> unit
(** Keep only the first [stable] entries (rollback/restart truncation). *)

val append_checkpoint : t -> position:int -> 'c -> unit

val load_checkpoints : t -> ('c * int) list
(** [(payload, position)], newest first — the shape
    {!Optimist_storage.Checkpoint_store.of_items} expects. *)

val discard_checkpoints_after : t -> position:int -> unit

val write_tokens : t -> 'tk list -> unit
(** Replace the persisted token list (relogged in full on every change). *)

val load_tokens : t -> 'tk list

val write_gen : t -> int -> unit
(** Persist the worker's incarnation generation. *)

val load_gen : t -> int
(** 0 when never written. *)

val stats : t -> (string * int) list
(** I/O accounting since [open_]: [bytes_read], [bytes_written],
    [read_ops], [write_ops]. Feeds the [recovery.bytes_reread]
    telemetry. *)

val bytes_read : t -> int
(** Total bytes loaded from disk since [open_]. *)

val close : t -> unit
