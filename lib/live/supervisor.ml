module Json = Optimist_obs.Json
module Traffic = Optimist_workload.Traffic

(* The supervisor is the only process of a live run with a global view:
   it forks the n workers, injects failures by sending real SIGKILLs at
   scheduled instants, respawns the victims (next generation, same
   stable store) after a restart delay, reaps children, and finally
   merges the per-incarnation traces into one lintable stream.

   Workers are forked, not exec'd: the child shares the parent's code
   image and jumps straight into [Worker.main], which sidesteps
   argv-marshalling and keeps the run self-contained in one binary. The
   child leaves via [Unix._exit] so inherited channel buffers are not
   flushed twice. *)

type cfg = {
  dir : string;
  n : int;
  protocol : Worker.protocol;
  seed : int64;
  duration : float;
  settle : float;
  rate : float;
  hops : int;
  pattern : Traffic.pattern;
  faults : (float * int) list;  (** (seconds into the run, pid) SIGKILLs *)
  net_faults : Livenet.faults;  (** seeded drops/dups/partitions *)
  restart_delay : float;
  jitter : float * float;
  telemetry : Worker.telemetry;
  link : Link.factory option;  (** [None] = the UDS mesh under [dir] *)
}

let default_cfg =
  {
    dir = "live-run";
    n = 4;
    protocol = Worker.Dg;
    seed = 1L;
    duration = 3.0;
    settle = 2.0;
    rate = 8.0;
    hops = 3;
    pattern = Traffic.Uniform;
    faults = [];
    net_faults = Livenet.no_faults;
    restart_delay = 0.3;
    jitter = (0.001, 0.02);
    telemetry = Worker.Full;
    link = None;
  }

type result = {
  merged : string;  (** path of the merged JSONL trace *)
  chrome : string;  (** path of the merged Chrome trace *)
  events : int;
  dropped : int;  (** torn/unparsable trace lines skipped by the merge *)
  crashes : int;  (** SIGKILLs actually delivered *)
  clean_exits : int;  (** final incarnations that exited 0 *)
}

let merged_file dir = Filename.concat dir "merged.jsonl"
let chrome_file dir = Filename.concat dir "trace.chrome.json"
let run_file dir = Filename.concat dir "run.json"

let validate cfg =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if cfg.n < 2 then fail "n must be at least 2 (got %d)" cfg.n;
  (* Catch an over-long --dir here, before any worker hits the opaque
     [Unix.bind] EINVAL/ENAMETOOLONG deep inside its fork. *)
  (match cfg.link with
  | Some _ -> () (* non-UDS fabric: no socket paths under [dir] *)
  | None -> (
      match Livenet.check_dir ~dir:cfg.dir ~n:cfg.n with
      | Ok () -> ()
      | Error e -> fail "%s" e));
  if cfg.duration <= 0.0 then fail "duration must be positive";
  if cfg.settle < 0.0 then fail "settle must be non-negative";
  if cfg.rate <= 0.0 then fail "rate must be positive";
  if cfg.restart_delay <= 0.0 then fail "restart delay must be positive";
  List.iter
    (fun (at, pid) ->
      if pid < 0 || pid >= cfg.n then
        fail "fault pid %d out of range [0, %d)" pid cfg.n;
      if at <= 0.0 || at >= cfg.duration then
        fail "fault time %g outside the injection window (0, %g)" at
          cfg.duration)
    cfg.faults;
  let rate_ok r = Float.is_finite r && r >= 0.0 && r < 1.0 in
  if not (rate_ok cfg.net_faults.drop_rate) then
    fail "drop rate must be in [0, 1) (got %g)" cfg.net_faults.drop_rate;
  if not (rate_ok cfg.net_faults.dup_rate) then
    fail "dup rate must be in [0, 1) (got %g)" cfg.net_faults.dup_rate;
  List.iter
    (fun (p : Livenet.partition) ->
      if p.pt_start < 0.0 || p.pt_stop <= p.pt_start then
        fail "partition window [%g, %g) is empty or negative" p.pt_start
          p.pt_stop;
      if p.pt_island = [] then fail "partition island must not be empty";
      List.iter
        (fun pid ->
          if pid < 0 || pid >= cfg.n then
            fail "partition pid %d out of range [0, %d)" pid cfg.n)
        p.pt_island)
    cfg.net_faults.partitions

(* Clear the previous run's artifacts (sockets, traces, stores, reports)
   so a reused directory cannot mix two runs' traces. *)
let clean_dir cfg =
  if not (Sys.file_exists cfg.dir) then Unix.mkdir cfg.dir 0o755
  else
    Array.iter
      (fun name ->
        let path = Filename.concat cfg.dir name in
        if Sys.is_directory path then begin
          if String.length name >= 6 && String.sub name 0 6 = "store." then begin
            Array.iter
              (fun f -> Sys.remove (Filename.concat path f))
              (Sys.readdir path);
            Unix.rmdir path
          end
        end
        else Sys.remove path)
      (Sys.readdir cfg.dir)

let spawn cfg ~base ~pid ~gen =
  let wcfg =
    {
      Worker.dir = cfg.dir;
      me = pid;
      n = cfg.n;
      protocol = cfg.protocol;
      gen;
      seed = cfg.seed;
      base;
      duration = cfg.duration;
      settle = cfg.settle;
      rate = cfg.rate;
      hops = cfg.hops;
      pattern = cfg.pattern;
      jitter = cfg.jitter;
      faults = cfg.net_faults;
      telemetry = cfg.telemetry;
      link = cfg.link;
    }
  in
  match Unix.fork () with
  | 0 ->
      (try Worker.main wcfg
       with e ->
         prerr_endline
           (Printf.sprintf "worker %d: %s" pid (Printexc.to_string e));
         Unix._exit 1);
      Unix._exit 0
  | child -> child

let kill_hard ospid =
  try Unix.kill ospid Sys.sigkill
  with Unix.Unix_error (Unix.ESRCH, _, _) -> ()

type sv_result = {
  sv_crashes : int;
  sv_clean_exits : int;
  sv_gens : (int * int) list;  (** (pid, final generation) *)
}

(* The supervision loop over an explicit pid subset: a single-host run
   supervises all n workers; a cluster agent supervises only its local
   block against a coordinator-chosen [base], with the fault schedule
   filtered down to the pids it hosts. [base] may lie in the future
   (coordinated multi-host start): workers' loop clocks idle at 0 until
   it passes, and the deadline below is measured from it. *)
let supervise cfg ~base ~workers =
  let now () = Unix.gettimeofday () -. base in
  let deadline = cfg.duration +. cfg.settle in
  (* os pid -> worker index, for reaping *)
  let children = Hashtbl.create 16 in
  let gens = Hashtbl.create 16 in
  let alive = Hashtbl.create 16 in
  let clean_exits = ref 0 in
  let crashes = ref 0 in
  let start ~pid ~gen =
    let child = spawn cfg ~base ~pid ~gen in
    Hashtbl.replace children child pid;
    Hashtbl.replace gens pid gen;
    Hashtbl.replace alive pid true
  in
  List.iter (fun pid -> start ~pid ~gen:0) workers;
  let kills =
    ref
      (List.sort compare
         (List.filter (fun (_, pid) -> List.mem pid workers) cfg.faults))
  in
  let respawns = ref [] (* (at, pid), unsorted — scanned each tick *) in
  let reap ~blocking =
    let flags = if blocking then [] else [ Unix.WNOHANG ] in
    let continue = ref true in
    while !continue do
      match Unix.waitpid flags (-1) with
      | 0, _ -> continue := false
      | child, status ->
          (match Hashtbl.find_opt children child with
          | Some pid ->
              Hashtbl.replace alive pid false;
              if status = Unix.WEXITED 0 then incr clean_exits
          | None -> ());
          Hashtbl.remove children child;
          if blocking then continue := false
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  (* Supervision loop: deliver due SIGKILLs, respawn the victims one
     generation up, reap exits. *)
  while now () < deadline do
    let t = now () in
    (match !kills with
    | (at, pid) :: rest when at <= t ->
        kills := rest;
        if Hashtbl.find_opt alive pid = Some true then begin
          let ospid, _ =
            Hashtbl.fold
              (fun os p acc -> if p = pid then (os, p) else acc)
              children (-1, pid)
          in
          if ospid > 0 then begin
            kill_hard ospid;
            incr crashes;
            (* The corpse is reaped by the WNOHANG pass below; the next
               incarnation starts after the restart delay. *)
            respawns := (t +. cfg.restart_delay, pid) :: !respawns
          end
        end
    | _ -> ());
    let due, later = List.partition (fun (at, _) -> at <= t) !respawns in
    respawns := later;
    List.iter
      (fun (_, pid) -> start ~pid ~gen:(Hashtbl.find gens pid + 1))
      due;
    reap ~blocking:false;
    Unix.sleepf 0.005
  done;
  (* Workers stop at the same wall-clock deadline; give them a grace
     period to write stats and exit, then put down any straggler. *)
  let grace = Unix.gettimeofday () +. 10.0 in
  while Hashtbl.length children > 0 && Unix.gettimeofday () < grace do
    reap ~blocking:false;
    Unix.sleepf 0.02
  done;
  Hashtbl.iter (fun ospid _ -> kill_hard ospid) children;
  while Hashtbl.length children > 0 do
    reap ~blocking:true
  done;
  {
    sv_crashes = !crashes;
    sv_clean_exits = !clean_exits;
    sv_gens =
      List.map (fun pid -> (pid, Hashtbl.find gens pid)) workers;
  }

let run cfg =
  validate cfg;
  clean_dir cfg;
  let base = Unix.gettimeofday () in
  let sv =
    supervise cfg ~base ~workers:(List.init cfg.n (fun pid -> pid))
  in
  let crashes = ref sv.sv_crashes in
  let clean_exits = ref sv.sv_clean_exits in
  let gens = Array.make cfg.n 0 in
  List.iter (fun (pid, g) -> gens.(pid) <- g) sv.sv_gens;
  let events, dropped = Merge.run ~dir:cfg.dir ~out:(merged_file cfg.dir) in
  ignore
    (Merge.chrome ~src:(merged_file cfg.dir) ~out:(chrome_file cfg.dir));
  let summary =
    Json.Obj
      [
        ("protocol", Json.String (Worker.protocol_name cfg.protocol));
        ("telemetry", Json.String (Worker.telemetry_name cfg.telemetry));
        ("n", Json.Int cfg.n);
        ("seed", Json.String (Int64.to_string cfg.seed));
        ("duration", Json.Float cfg.duration);
        ("settle", Json.Float cfg.settle);
        ("rate", Json.Float cfg.rate);
        ("hops", Json.Int cfg.hops);
        ( "faults",
          Json.List
            (List.map
               (fun (at, pid) ->
                 Json.Obj [ ("at", Json.Float at); ("pid", Json.Int pid) ])
               cfg.faults) );
        ("drop_rate", Json.Float cfg.net_faults.drop_rate);
        ("dup_rate", Json.Float cfg.net_faults.dup_rate);
        ( "partitions",
          Json.List
            (List.map
               (fun (p : Livenet.partition) ->
                 Json.Obj
                   [
                     ("start", Json.Float p.pt_start);
                     ("stop", Json.Float p.pt_stop);
                     ( "island",
                       Json.List (List.map (fun i -> Json.Int i) p.pt_island)
                     );
                   ])
               cfg.net_faults.partitions) );
        ("crashes", Json.Int !crashes);
        ("clean_exits", Json.Int !clean_exits);
        ("events", Json.Int events);
        ("dropped_lines", Json.Int dropped);
        ( "generations",
          Json.List (Array.to_list (Array.map (fun g -> Json.Int g) gens)) );
      ]
  in
  let oc = open_out (run_file cfg.dir) in
  output_string oc (Json.to_string summary);
  output_string oc "\n";
  close_out oc;
  {
    merged = merged_file cfg.dir;
    chrome = chrome_file cfg.dir;
    events;
    dropped;
    crashes = !crashes;
    clean_exits = !clean_exits;
  }
