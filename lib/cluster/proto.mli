(** Coordinator/agent control protocol: length-prefixed marshalled
    messages over one blocking TCP connection per agent.

    The exchange is strictly request/response, driven by the
    coordinator: [Hello]/[Welcome] (version handshake), [Plan]/[Ok_]
    (ship the run plan), [Start]/[Done_] (run the supervision loop to
    completion — the one long-blocking step), [Fetch]/[File...Fetched]
    (stream back run artifacts), [Bye]/[Ok_]. Both ends must be the
    same build of the recsim binary (Marshal on the wire); [Welcome]
    carries {!version} to catch mismatches. *)

module Worker = Optimist_live.Worker
module Livenet = Optimist_live.Livenet
module Traffic = Optimist_workload.Traffic

val version : int

type agent_cfg = {
  ag_run : string;  (** run id, for agent-side logging *)
  ag_n : int;  (** total workers across the cluster *)
  ag_workers : int list;  (** the pids this agent hosts *)
  ag_endpoints : (string * int) array;  (** worker pid -> host, data port *)
  ag_protocol : Worker.protocol;
  ag_seed : int64;
  ag_duration : float;
  ag_settle : float;
  ag_rate : float;
  ag_hops : int;
  ag_pattern : Traffic.pattern;
  ag_kills : (float * int) list;
      (** the full cluster-wide SIGKILL schedule; the agent filters it
          down to the pids it hosts — this is how the coordinator
          schedules kills remotely *)
  ag_net : Livenet.faults;
  ag_restart_delay : float;
  ag_telemetry : Worker.telemetry;
}

type request =
  | Hello
  | Plan of agent_cfg
  | Start of { base : float }
      (** absolute [Unix.gettimeofday] run origin, chosen slightly in
          the future so all agents' workers share one timeline
          (multi-host use assumes synchronized clocks) *)
  | Fetch
  | Bye

type response =
  | Welcome of { version : int }
  | Ok_
  | Done_ of { crashes : int; clean_exits : int; gens : (int * int) list }
  | File of { path : string; data : string }
      (** one run artifact, path relative to the agent's run directory *)
  | Fetched
  | Error_ of string

val send_request : Unix.file_descr -> request -> unit
val recv_request : Unix.file_descr -> request
val send_response : Unix.file_descr -> response -> unit
val recv_response : Unix.file_descr -> response
