module Worker = Optimist_live.Worker
module Livenet = Optimist_live.Livenet
module Merge = Optimist_live.Merge
module Json = Optimist_obs.Json
module Traffic = Optimist_workload.Traffic
module Scenario = Optimist_soak.Scenario
module Soak = Optimist_soak.Soak

(* The coordinator drives N agents through one cluster run: split the
   worker ids into contiguous per-agent blocks, ship every agent the
   plan (full endpoint table, full SIGKILL schedule — each agent filters
   to its block), start everyone against a shared base instant slightly
   in the future, wait for the supervision loops to finish, fetch the
   per-host traces/stats/stores back, and feed them through the
   single-host Merge and report/lint pipeline. The merged artifacts are
   indistinguishable from a single-host run's, which is the point: every
   downstream consumer (recsim check/report, the soak assessor) works
   unchanged. *)

type cfg = {
  cc_out : string;  (** coordinator-side output directory *)
  cc_n : int;
  cc_protocol : Worker.protocol;
  cc_seed : int64;
  cc_duration : float;
  cc_settle : float;
  cc_rate : float;
  cc_hops : int;
  cc_pattern : Traffic.pattern;
  cc_kills : (float * int) list;
  cc_net : Livenet.faults;
  cc_restart_delay : float;
  cc_telemetry : Worker.telemetry;
  cc_lead : float;  (** seconds between Start and the shared base *)
  cc_worker_base : int;  (** worker pid [i] listens on [cc_worker_base + i] *)
}

let default_cfg =
  {
    cc_out = "cluster-run";
    cc_n = 4;
    cc_protocol = Worker.Dg;
    cc_seed = 1L;
    cc_duration = 3.0;
    cc_settle = 2.0;
    cc_rate = 8.0;
    cc_hops = 3;
    cc_pattern = Traffic.Uniform;
    cc_kills = [];
    cc_net = Livenet.no_faults;
    cc_restart_delay = 0.3;
    cc_telemetry = Worker.Full;
    cc_lead = 0.5;
    cc_worker_base = 7900;
  }

type summary = {
  cs_merged : string;
  cs_chrome : string;
  cs_events : int;
  cs_dropped : int;
  cs_crashes : int;
  cs_clean_exits : int;
  cs_gens : (int * int) list;  (** (pid, final generation) *)
}

let merged_file out = Filename.concat out "merged.jsonl"
let chrome_file out = Filename.concat out "trace.chrome.json"
let run_file out = Filename.concat out "run.json"

(* Contiguous pid blocks: agent [j] of [k] hosts a run of
   [n/k (+1 for the first n mod k agents)] consecutive pids. *)
let blocks ~n ~k =
  let q = n / k and r = n mod k in
  List.init k (fun j ->
      let lo = (j * q) + min j r in
      let size = q + if j < r then 1 else 0 in
      List.init size (fun i -> lo + i))

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Clear fetched artifacts of a previous run: top-level files and
   store.* directories. Agent scratch directories (forked-localhost
   mode) are left alone — live agents may be inside them. *)
let clean_out out =
  if not (Sys.file_exists out) then Unix.mkdir out 0o755
  else
    Array.iter
      (fun name ->
        let path = Filename.concat out name in
        if Sys.is_directory path then begin
          if starts_with "store." name then rm_rf path
        end
        else Sys.remove path)
      (Sys.readdir out)

(* A fetched path must stay inside the output directory. *)
let safe_path rel =
  Filename.is_relative rel
  && rel <> ""
  && List.for_all
       (fun seg -> seg <> ".." && seg <> "")
       (String.split_on_char '/' rel)

let write_artifact ~out ~rel data =
  let rec ensure_dir d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      ensure_dir (Filename.dirname d);
      Unix.mkdir d 0o755
    end
  in
  let path = Filename.concat out rel in
  ensure_dir (Filename.dirname path);
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let connect ~host ~port ~timeout =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found ->
        failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec attempt () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ETIMEDOUT), _, _)
      when Unix.gettimeofday () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        attempt ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  attempt ()

let expect_ok fd what =
  match Proto.recv_response fd with
  | Proto.Ok_ -> ()
  | Proto.Error_ msg -> failwith (Printf.sprintf "%s: %s" what msg)
  | _ -> failwith (Printf.sprintf "%s: unexpected response" what)

let run ?(log = fun _ -> ()) cfg ~peers =
  let k = List.length peers in
  if k = 0 then Error "no agents"
  else if cfg.cc_n < k then
    Error
      (Printf.sprintf "%d agent(s) for %d worker(s) — at most one per worker"
         k cfg.cc_n)
  else begin
    let run_id =
      Printf.sprintf "run-%s-%Ld"
        (Worker.protocol_name cfg.cc_protocol)
        cfg.cc_seed
    in
    let peer_arr = Array.of_list peers in
    let pid_blocks = blocks ~n:cfg.cc_n ~k in
    let endpoints = Array.make cfg.cc_n ("", 0) in
    List.iteri
      (fun j pids ->
        let host, _ = peer_arr.(j) in
        List.iter
          (fun pid -> endpoints.(pid) <- (host, cfg.cc_worker_base + pid))
          pids)
      pid_blocks;
    clean_out cfg.cc_out;
    let conns = ref [] in
    let close_all () =
      List.iter
        (fun (fd, _, _) ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        !conns
    in
    match
      begin
        (* Connect and handshake every agent before anything starts. *)
        List.iteri
          (fun j (host, port) ->
            let fd = connect ~host ~port ~timeout:5.0 in
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO
              (cfg.cc_duration +. cfg.cc_settle +. 60.0);
            conns := !conns @ [ (fd, j, Printf.sprintf "%s:%d" host port) ];
            Proto.send_request fd Proto.Hello;
            match Proto.recv_response fd with
            | Proto.Welcome { version } when version = Proto.version -> ()
            | Proto.Welcome { version } ->
                failwith
                  (Printf.sprintf
                     "agent %s:%d speaks protocol v%d, coordinator v%d \
                      (mismatched builds?)"
                     host port version Proto.version)
            | _ -> failwith "bad handshake")
          peers;
        List.iter
          (fun (fd, j, who) ->
            let a =
              {
                Proto.ag_run = run_id;
                ag_n = cfg.cc_n;
                ag_workers = List.nth pid_blocks j;
                ag_endpoints = endpoints;
                ag_protocol = cfg.cc_protocol;
                ag_seed = cfg.cc_seed;
                ag_duration = cfg.cc_duration;
                ag_settle = cfg.cc_settle;
                ag_rate = cfg.cc_rate;
                ag_hops = cfg.cc_hops;
                ag_pattern = cfg.cc_pattern;
                ag_kills = cfg.cc_kills;
                ag_net = cfg.cc_net;
                ag_restart_delay = cfg.cc_restart_delay;
                ag_telemetry = cfg.cc_telemetry;
              }
            in
            Proto.send_request fd (Proto.Plan a);
            expect_ok fd (Printf.sprintf "agent %s rejected the plan" who))
          !conns;
        (* One shared origin, slightly in the future so every agent's
           workers are up and connected before time starts flowing. *)
        let base = Unix.gettimeofday () +. cfg.cc_lead in
        List.iter
          (fun (fd, _, _) -> Proto.send_request fd (Proto.Start { base }))
          !conns;
        log
          (Printf.sprintf "cluster: %d agent(s) started, base +%.2fs"
             k cfg.cc_lead);
        let crashes = ref 0 and clean_exits = ref 0 in
        let gens = ref [] in
        List.iter
          (fun (fd, _, who) ->
            match Proto.recv_response fd with
            | Proto.Done_ d ->
                crashes := !crashes + d.crashes;
                clean_exits := !clean_exits + d.clean_exits;
                gens := !gens @ d.gens
            | Proto.Error_ msg ->
                failwith (Printf.sprintf "agent %s failed: %s" who msg)
            | _ -> failwith (Printf.sprintf "agent %s: unexpected response" who))
          !conns;
        (* Pull every agent's artifacts into the shared output dir. *)
        List.iter
          (fun (fd, _, who) ->
            Proto.send_request fd Proto.Fetch;
            let fetching = ref true in
            while !fetching do
              match Proto.recv_response fd with
              | Proto.File { path; data } ->
                  if safe_path path then
                    write_artifact ~out:cfg.cc_out ~rel:path data
                  else
                    log
                      (Printf.sprintf "cluster: agent %s sent unsafe path %S — skipped"
                         who path)
              | Proto.Fetched -> fetching := false
              | Proto.Error_ msg ->
                  failwith (Printf.sprintf "agent %s fetch failed: %s" who msg)
              | _ ->
                  failwith
                    (Printf.sprintf "agent %s: unexpected fetch response" who)
            done)
          !conns;
        List.iter
          (fun (fd, _, _) ->
            Proto.send_request fd Proto.Bye;
            match Proto.recv_response fd with _ | (exception _) -> ())
          !conns;
        (!crashes, !clean_exits, List.sort compare !gens)
      end
    with
    | exception e ->
        close_all ();
        Error (Printexc.to_string e)
    | crashes, clean_exits, gens ->
        close_all ();
        let events, dropped =
          Merge.run ~dir:cfg.cc_out ~out:(merged_file cfg.cc_out)
        in
        ignore
          (Merge.chrome ~src:(merged_file cfg.cc_out)
             ~out:(chrome_file cfg.cc_out));
        let summary =
          Json.Obj
            [
              ("transport", Json.String "tcp");
              ("run", Json.String run_id);
              ("protocol", Json.String (Worker.protocol_name cfg.cc_protocol));
              ("telemetry", Json.String (Worker.telemetry_name cfg.cc_telemetry));
              ("n", Json.Int cfg.cc_n);
              ("agents", Json.Int k);
              ( "peers",
                Json.List
                  (List.map (fun (h, p) -> Json.String (Printf.sprintf "%s:%d" h p)) peers)
              );
              ("seed", Json.String (Int64.to_string cfg.cc_seed));
              ("duration", Json.Float cfg.cc_duration);
              ("settle", Json.Float cfg.cc_settle);
              ("rate", Json.Float cfg.cc_rate);
              ("hops", Json.Int cfg.cc_hops);
              ( "faults",
                Json.List
                  (List.map
                     (fun (at, pid) ->
                       Json.Obj [ ("at", Json.Float at); ("pid", Json.Int pid) ])
                     cfg.cc_kills) );
              ("drop_rate", Json.Float cfg.cc_net.Livenet.drop_rate);
              ("dup_rate", Json.Float cfg.cc_net.Livenet.dup_rate);
              ("crashes", Json.Int crashes);
              ("clean_exits", Json.Int clean_exits);
              ("events", Json.Int events);
              ("dropped_lines", Json.Int dropped);
              ( "generations",
                Json.List (List.map (fun (_, g) -> Json.Int g) gens) );
            ]
        in
        let oc = open_out (run_file cfg.cc_out) in
        output_string oc (Json.to_string summary);
        output_string oc "\n";
        close_out oc;
        Ok
          {
            cs_merged = merged_file cfg.cc_out;
            cs_chrome = chrome_file cfg.cc_out;
            cs_events = events;
            cs_dropped = dropped;
            cs_crashes = crashes;
            cs_clean_exits = clean_exits;
            cs_gens = gens;
          }
  end

(* Localhost multi-process mode: fork the agents ourselves (same binary,
   straight into [Agent.serve ~once]), run against them as 127.0.0.1
   peers, and reap. Control ports [port_base + j]; worker data ports
   come from [cfg.cc_worker_base] as usual. *)
let run_forked ?(log = fun _ -> ()) ?(port_base = 7800) ~agents cfg =
  if agents < 1 then Error "need at least one agent"
  else begin
    clean_out cfg.cc_out;
    (* Stale scratch dirs from a previous run with a different layout. *)
    Array.iter
      (fun name ->
        let path = Filename.concat cfg.cc_out name in
        if Sys.is_directory path && starts_with "agent" name then rm_rf path)
      (Sys.readdir cfg.cc_out);
    let children =
      List.init agents (fun j ->
          let port = port_base + j in
          let dir = Filename.concat cfg.cc_out (Printf.sprintf "agent%d" j) in
          match Unix.fork () with
          | 0 ->
              (try Agent.serve ~quiet:true ~once:true ~dir ~port ()
               with e ->
                 prerr_endline
                   (Printf.sprintf "agent %d: %s" j (Printexc.to_string e));
                 Unix._exit 1);
              Unix._exit 0
          | pid -> pid)
    in
    let peers = List.init agents (fun j -> ("127.0.0.1", port_base + j)) in
    let res = run ~log cfg ~peers in
    (match res with
    | Ok _ -> ()
    | Error _ ->
        (* A failed exchange can leave agents blocked mid-protocol. *)
        List.iter
          (fun pid ->
            try Unix.kill pid Sys.sigkill
            with Unix.Unix_error _ -> ())
          children);
    List.iter
      (fun pid ->
        try ignore (Unix.waitpid [] pid)
        with Unix.Unix_error _ -> ())
      children;
    res
  end

(* Soak integration: a {!Optimist_soak.Soak.run_campaign} runner that
   executes each scenario as a forked-localhost TCP cluster and judges
   it with the shared assessor — multi-host soak without the harness
   knowing anything changed. *)
let scenario_runner ?(agents = 2) ?(port_base = 7800) ?(worker_base = 7900) ()
    ~dir (s : Scenario.t) =
  match Worker.protocol_of_string s.Scenario.sc_protocol with
  | None -> Error (Printf.sprintf "unknown protocol %S" s.Scenario.sc_protocol)
  | Some protocol -> (
      let cfg =
        {
          cc_out = dir;
          cc_n = s.sc_n;
          cc_protocol = protocol;
          cc_seed = Scenario.run_seed s;
          cc_duration = s.sc_duration;
          cc_settle = s.sc_settle;
          cc_rate = s.sc_rate;
          cc_hops = s.sc_hops;
          cc_pattern = Traffic.Uniform;
          cc_kills =
            List.map
              (fun k -> (k.Scenario.kl_at, k.Scenario.kl_pid))
              s.sc_kills;
          cc_net =
            {
              Livenet.drop_rate = s.sc_drop;
              dup_rate = s.sc_dup;
              partitions =
                List.map
                  (fun p ->
                    {
                      Livenet.pt_start = p.Scenario.pr_start;
                      pt_stop = p.Scenario.pr_stop;
                      pt_island = p.Scenario.pr_island;
                    })
                  s.sc_partitions;
            };
          cc_restart_delay = s.sc_restart_delay;
          cc_telemetry = Worker.Full;
          cc_lead = default_cfg.cc_lead;
          cc_worker_base = worker_base;
        }
      in
      match run_forked ~port_base ~agents:(min agents s.sc_n) cfg with
      | Error _ as e -> e
      | Ok r ->
          Soak.assess ~crashes:r.cs_crashes ~events:r.cs_events
            ~merged:r.cs_merged s)
