(** Cluster coordinator: drives N agents through one multi-host live
    run over the TCP mesh and merges the result.

    The worker ids are split into contiguous per-agent blocks; each
    agent receives the full endpoint table and SIGKILL schedule, runs
    the ordinary supervision loop over its block against a shared time
    origin, and streams its artifacts back. The coordinator then runs
    the single-host {!Optimist_live.Merge} + report pipeline over the
    collected traces, so a cluster run's output directory is
    indistinguishable from a single-host run's. *)

module Worker = Optimist_live.Worker
module Livenet = Optimist_live.Livenet
module Traffic = Optimist_workload.Traffic
module Scenario = Optimist_soak.Scenario
module Soak = Optimist_soak.Soak

type cfg = {
  cc_out : string;  (** coordinator-side output directory *)
  cc_n : int;
  cc_protocol : Worker.protocol;
  cc_seed : int64;
  cc_duration : float;
  cc_settle : float;
  cc_rate : float;
  cc_hops : int;
  cc_pattern : Traffic.pattern;
  cc_kills : (float * int) list;  (** cluster-wide SIGKILL schedule *)
  cc_net : Livenet.faults;
  cc_restart_delay : float;
  cc_telemetry : Worker.telemetry;
  cc_lead : float;  (** seconds between Start and the shared base *)
  cc_worker_base : int;  (** worker pid [i] listens on [cc_worker_base + i] *)
}

val default_cfg : cfg

type summary = {
  cs_merged : string;
  cs_chrome : string;
  cs_events : int;
  cs_dropped : int;
  cs_crashes : int;
  cs_clean_exits : int;
  cs_gens : (int * int) list;  (** (pid, final generation) *)
}

val merged_file : string -> string
val chrome_file : string -> string
val run_file : string -> string

val blocks : n:int -> k:int -> int list list
(** Contiguous pid blocks: agent [j] of [k] hosts [n/k] (plus one for
    the first [n mod k] agents) consecutive pids. *)

val run :
  ?log:(string -> unit) ->
  cfg ->
  peers:(string * int) list ->
  (summary, string) result
(** Run one cluster run against already-listening agents at
    [peers = (host, control port) list]. Blocks for the whole run. *)

val run_forked :
  ?log:(string -> unit) ->
  ?port_base:int ->
  agents:int ->
  cfg ->
  (summary, string) result
(** Localhost multi-process mode: fork [agents] in-process agents
    (control ports [port_base + j], scratch dirs [cc_out/agentJ]), run
    against them, reap them. *)

val scenario_runner :
  ?agents:int ->
  ?port_base:int ->
  ?worker_base:int ->
  unit ->
  dir:string ->
  Scenario.t ->
  (Soak.run_result, string) result
(** A {!Soak.run_campaign} [?runner] that executes each scenario as a
    forked-localhost TCP cluster ([min agents sc_n] agents) and judges
    it with the shared soak assessor. *)
