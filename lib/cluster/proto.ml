module Worker = Optimist_live.Worker
module Livenet = Optimist_live.Livenet
module Traffic = Optimist_workload.Traffic

(* Coordinator <-> agent control protocol: length-prefixed marshalled
   messages over one blocking TCP connection per agent. Both ends are
   the same recsim binary, which is what makes Marshal across the wire
   sound (same type layout); the version handshake guards against
   mismatched builds on different hosts. *)

let version = 1

type agent_cfg = {
  ag_run : string;  (** run id, for agent-side logging *)
  ag_n : int;  (** total workers across the cluster *)
  ag_workers : int list;  (** the pids this agent hosts *)
  ag_endpoints : (string * int) array;  (** worker pid -> host, data port *)
  ag_protocol : Worker.protocol;
  ag_seed : int64;
  ag_duration : float;
  ag_settle : float;
  ag_rate : float;
  ag_hops : int;
  ag_pattern : Traffic.pattern;
  ag_kills : (float * int) list;
      (** the full cluster-wide SIGKILL schedule; the agent filters it
          down to the pids it hosts *)
  ag_net : Livenet.faults;
  ag_restart_delay : float;
  ag_telemetry : Worker.telemetry;
}

type request =
  | Hello
  | Plan of agent_cfg
  | Start of { base : float }
      (** absolute [Unix.gettimeofday] origin of the run, chosen by the
          coordinator slightly in the future so every agent's workers
          share one timeline (multi-host use assumes synchronized
          clocks; on localhost the origin is exact) *)
  | Fetch
  | Bye

type response =
  | Welcome of { version : int }
  | Ok_
  | Done_ of { crashes : int; clean_exits : int; gens : (int * int) list }
  | File of { path : string; data : string }
      (** one run artifact, path relative to the agent's run directory *)
  | Fetched
  | Error_ of string

(* --- framed blocking IO --- *)

let max_msg = 1 lsl 28

let write_all fd bytes =
  let len = Bytes.length bytes in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write fd bytes !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let read_all fd len =
  let buf = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    match Unix.read fd buf !pos (len - !pos) with
    | 0 -> failwith "cluster proto: connection closed mid-message"
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  buf

let send_msg fd v =
  let body = Marshal.to_bytes v [] in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Bytes.length body));
  write_all fd hdr;
  write_all fd body

let recv_msg fd =
  let hdr = read_all fd 4 in
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len <= 0 || len > max_msg then
    failwith (Printf.sprintf "cluster proto: bad message length %d" len);
  Marshal.from_bytes (read_all fd len) 0

let send_request fd (r : request) = send_msg fd r
let recv_request fd : request = recv_msg fd
let send_response fd (r : response) = send_msg fd r
let recv_response fd : response = recv_msg fd
