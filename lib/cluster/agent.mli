(** Cluster agent: hosts a block of live workers on this machine on
    behalf of a remote coordinator ([recsim cluster agent]).

    The agent listens on a control port and executes the coordinator's
    {!Proto} exchange: receive the run plan, supervise its pid block
    over the TCP mesh (forking workers, delivering the scheduled
    SIGKILLs that fall on its pids, respawning from stable storage),
    then stream the run artifacts — per-incarnation traces, stats files
    and stores — back for merging. *)

val serve : ?quiet:bool -> ?once:bool -> dir:string -> port:int -> unit -> unit
(** Serve coordinator connections forever (or one connection when
    [once], for in-process forked agents). [dir] is the agent's local
    run directory, cleared at each new plan. Blocks. *)
