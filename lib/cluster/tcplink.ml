module Transport = Optimist_core.Transport
module Prng = Optimist_util.Prng
module Metrics = Optimist_obs.Metrics
module Loop = Optimist_live.Loop
module Link = Optimist_live.Link
module Livenet = Optimist_live.Livenet

(* TCP mesh: worker [i] listens on [endpoints.(i)] and keeps one
   *outbound* stream connection to every peer. Connections are directed:
   my sends to [dst] ride my outbound connection, and everything [dst]
   sends me — acks and heartbeat pongs included — rides its own outbound
   connection back (every frame carries its source pid, so inbound
   streams need no handshake). A SIGKILL-ed peer costs its
   correspondents a dead connection, rebuilt by capped
   exponential-backoff reconnect once the successor incarnation listens
   again; in the interim, Data frames are dropped (a real in-flight
   loss) and Control frames come back through the retransmit timer —
   exactly the UDS mesh's lane semantics, so the protocol layer and the
   soak scenarios cannot tell the fabrics apart.

   Framing is a 4-byte big-endian length prefix over a marshalled frame.
   Heartbeat pings flow on every live connection; a peer that stops
   ponging for [hb_timeout] is declared down and its connection is torn
   and rebuilt (failure detection under silent network death, where TCP
   itself may take minutes to notice). Fault injection (seeded
   drop/dup/jitter on Data, burst partitions below every frame) is
   applied at the frame layer, mirroring {!Optimist_live.Livenet}. *)

type 'a frame =
  | Data_msg of { src : int; payload : 'a }
  | Ctl_msg of { src : int; seq : int; payload : 'a }
  | Ctl_ack of { seq : int }
  | Hb_ping of { src : int; at : float }
  | Hb_pong of { src : int; at : float }

(* A frame larger than this is a corrupt stream, not a message. *)
let max_frame = 1 lsl 24

(* Bound on unflushed bytes per connection before sends start counting
   as errors — backpressure against a peer that stops reading. *)
let outbuf_cap = 1 lsl 22

type conn = {
  c_dst : int;
  mutable c_fd : Unix.file_descr option;
  mutable c_up : bool;  (** connect completed, stream writable *)
  mutable c_ever_up : bool;  (** distinguishes connects from reconnects *)
  mutable c_armed : bool;  (** writable callback registered *)
  c_q : Bytes.t Queue.t;  (** unflushed chunks *)
  mutable c_q_off : int;  (** write offset into the queue head *)
  mutable c_q_bytes : int;
  mutable c_backoff : float;
  mutable c_next_attempt : float;  (** wall clock; 0 = due now *)
  mutable c_last_seen : float;  (** wall clock of the last pong *)
}

type 'a t = {
  loop : Loop.t;
  me : int;
  n : int;
  endpoints : (string * int) array;
  rng : Prng.t;
  jitter_lo : float;
  jitter_span : float;
  retransmit_every : float;
  hb_every : float;
  hb_timeout : float;
  faults : Livenet.faults;
  scope : Metrics.Scope.t;
  conns : conn array;  (** index = dst; [me]'s slot is never used *)
  mutable listen_fd : Unix.file_descr option;
  mutable inbound : Unix.file_descr list;  (** accepted connections *)
  mutable handler : 'a -> unit;
  mutable ctl_seq : int;
  unacked : (int, int * Bytes.t) Hashtbl.t; (* seq -> (dst, encoded frame) *)
  seen_ctl : (int * int, unit) Hashtbl.t; (* (src, seq) already delivered *)
  mutable closed : bool;
}

let backoff_min = 0.05
let backoff_max = 1.0

let incr ?by t name = Metrics.Scope.incr ?by t.scope name

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found ->
      failwith (Printf.sprintf "tcp link: cannot resolve host %S" host))

let encode frame =
  let body = Marshal.to_bytes frame [] in
  let n = Bytes.length body in
  let out = Bytes.create (4 + n) in
  Bytes.set_int32_be out 0 (Int32.of_int n);
  Bytes.blit body 0 out 4 n;
  out

(* Same gate as the UDS mesh: an active partition blocks frames crossing
   the island boundary in either direction, heartbeats included (a
   partitioned peer genuinely looks dead). *)
let partitioned t ~dst =
  t.faults.Livenet.partitions <> []
  && begin
       let now = Loop.now t.loop in
       List.exists
         (fun (p : Livenet.partition) ->
           now >= p.pt_start && now < p.pt_stop
           && List.mem t.me p.pt_island <> List.mem dst p.pt_island)
         t.faults.Livenet.partitions
     end

let conn_down t conn =
  (match conn.c_fd with
  | None -> ()
  | Some fd ->
      Loop.remove_fd t.loop fd;
      conn.c_armed <- false;
      (try Unix.close fd with Unix.Unix_error _ -> ()));
  conn.c_fd <- None;
  conn.c_up <- false;
  Queue.clear conn.c_q;
  conn.c_q_off <- 0;
  conn.c_q_bytes <- 0;
  conn.c_next_attempt <- Unix.gettimeofday () +. conn.c_backoff;
  conn.c_backoff <- Float.min (conn.c_backoff *. 2.0) backoff_max

let rec flush t conn =
  match conn.c_fd with
  | None -> ()
  | Some fd ->
      if Queue.is_empty conn.c_q then begin
        if conn.c_armed then begin
          Loop.remove_writable t.loop fd;
          conn.c_armed <- false
        end
      end
      else begin
        let head = Queue.peek conn.c_q in
        let len = Bytes.length head - conn.c_q_off in
        match Unix.write fd head conn.c_q_off len with
        | n ->
            conn.c_q_bytes <- conn.c_q_bytes - n;
            if n = len then begin
              ignore (Queue.pop conn.c_q);
              conn.c_q_off <- 0;
              flush t conn
            end
            else begin
              conn.c_q_off <- conn.c_q_off + n;
              arm t conn fd
            end
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            arm t conn fd
        | exception Unix.Unix_error _ -> conn_down t conn
      end

and arm t conn fd =
  if not conn.c_armed then begin
    conn.c_armed <- true;
    Loop.on_writable t.loop fd (fun () -> flush t conn)
  end

(* Enqueue one encoded frame on [dst]'s outbound connection. Down or
   clogged connections drop the frame (counted as a send error): that is
   a Data frame's fate, and Control frames retry via the retransmit
   timer — the TCP analogue of the datagram mesh's ECONNREFUSED path. *)
let conn_send t ~dst bytes =
  let conn = t.conns.(dst) in
  if (not conn.c_up) || conn.c_q_bytes > outbuf_cap then
    incr t "send_errors"
  else begin
    incr t "frames_sent";
    incr ~by:(Bytes.length bytes) t "bytes_sent";
    Queue.push bytes conn.c_q;
    conn.c_q_bytes <- conn.c_q_bytes + Bytes.length bytes;
    flush t conn
  end

let send_frame t ~dst frame =
  if partitioned t ~dst then incr t "partition_blocked"
  else conn_send t ~dst (encode frame)

let dispatch t frame =
  incr t "received";
  match frame with
  | Data_msg { src = _; payload } -> t.handler payload
  | Ctl_msg { src; seq; payload } ->
      (* Ack first (cheap, idempotent); deliver only the first copy. *)
      send_frame t ~dst:src (Ctl_ack { seq });
      if not (Hashtbl.mem t.seen_ctl (src, seq)) then begin
        Hashtbl.replace t.seen_ctl (src, seq) ();
        t.handler payload
      end
  | Ctl_ack { seq } -> Hashtbl.remove t.unacked seq
  | Hb_ping { src; at } -> send_frame t ~dst:src (Hb_pong { src = t.me; at })
  | Hb_pong { src; at } ->
      let now = Unix.gettimeofday () in
      if src >= 0 && src < t.n then t.conns.(src).c_last_seen <- now;
      Metrics.Scope.observe_hist t.scope "hb_rtt_ms"
        (Float.max 0.0 ((now -. at) *. 1000.0))

(* Reassemble length-prefixed frames from a stream buffer. Both inbound
   accepted connections and outbound connections read through this (a
   peer only ever sends us frames on its own outbound connection, but an
   EOF on ours is how we learn it died). *)
let drain_frames t buf ~on_error =
  let s = Buffer.contents buf in
  let total = String.length s in
  let pos = ref 0 in
  let continue = ref true in
  let bad = ref false in
  while !continue do
    if total - !pos < 4 then continue := false
    else begin
      let flen = Int32.to_int (String.get_int32_be s !pos) in
      if flen <= 0 || flen > max_frame then begin
        bad := true;
        continue := false
      end
      else if total - !pos - 4 < flen then continue := false
      else begin
        incr t "frames_received";
        (match (Marshal.from_string s (!pos + 4) : _ frame) with
        | frame -> dispatch t frame
        | exception _ -> ());
        pos := !pos + 4 + flen
      end
    end
  done;
  if !bad then on_error ()
  else begin
    Buffer.clear buf;
    Buffer.add_substring buf s !pos (total - !pos)
  end

(* Register a frame reader on [fd]. [on_close] runs on EOF, a read
   error, or a corrupt stream. *)
let add_reader t fd ~on_close =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  Loop.on_readable t.loop fd (fun () ->
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> on_close ()
      | n ->
          incr ~by:n t "bytes_received";
          Buffer.add_subbytes buf chunk 0 n;
          drain_frames t buf ~on_error:on_close
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> on_close ())

let on_connected t conn fd =
  conn.c_up <- true;
  conn.c_backoff <- backoff_min;
  conn.c_last_seen <- Unix.gettimeofday ();
  if conn.c_ever_up then incr t "reconnects" else incr t "connects";
  conn.c_ever_up <- true;
  add_reader t fd ~on_close:(fun () -> conn_down t conn)

(* Non-blocking connect: EINPROGRESS parks the socket in the writable
   set; completion is judged by SO_ERROR. *)
let attempt_connect t conn =
  if (not t.closed) && conn.c_fd = None then begin
    let host, port = t.endpoints.(conn.c_dst) in
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ ->
        conn.c_next_attempt <- Unix.gettimeofday () +. conn.c_backoff
    | fd -> (
        Unix.set_nonblock fd;
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        conn.c_fd <- Some fd;
        conn.c_up <- false;
        match Unix.connect fd (Unix.ADDR_INET (resolve host, port)) with
        | () -> on_connected t conn fd
        | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
          ->
            Loop.on_writable t.loop fd (fun () ->
                Loop.remove_writable t.loop fd;
                if conn.c_fd = Some fd && not conn.c_up then
                  match Unix.getsockopt_error fd with
                  | None -> on_connected t conn fd
                  | Some _ -> conn_down t conn)
        | exception Unix.Unix_error _ -> conn_down t conn)
  end

(* Retry every due disconnected peer. Driven from the periodic tick and
   from [ready]'s pump (loop timers idle until the run base passes, so
   the pre-base connection barrier cannot rely on them). *)
let reconnect_due t =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun conn ->
      if
        conn.c_dst <> t.me && conn.c_fd = None
        && conn.c_next_attempt <= now
      then attempt_connect t conn)
    t.conns

let heartbeat t =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun conn ->
      if conn.c_dst <> t.me && conn.c_up then begin
        if now -. conn.c_last_seen > t.hb_timeout then begin
          (* Silence despite a live TCP stream: declare the peer down
             and rebuild through the backoff path. *)
          incr t "hb_timeouts";
          conn_down t conn
        end
        else send_frame t ~dst:conn.c_dst (Hb_ping { src = t.me; at = now })
      end)
    t.conns

let send t ~lane ~dst payload =
  if not t.closed then
    match lane with
    | Transport.Data ->
        incr t "sent_data";
        if
          t.faults.Livenet.drop_rate > 0.0
          && Prng.bernoulli t.rng t.faults.Livenet.drop_rate
        then incr t "faults_dropped"
        else begin
          let bytes = encode (Data_msg { src = t.me; payload }) in
          (* Sender-side jitter, as in the UDS mesh: the frame hits the
             stream a random delay late, so back-to-back sends to
             different peers genuinely interleave. *)
          let post () =
            let delay = t.jitter_lo +. Prng.float t.rng t.jitter_span in
            Loop.schedule t.loop ~delay (fun () ->
                if not t.closed then
                  if partitioned t ~dst then incr t "partition_blocked"
                  else conn_send t ~dst bytes)
          in
          post ();
          if
            t.faults.Livenet.dup_rate > 0.0
            && Prng.bernoulli t.rng t.faults.Livenet.dup_rate
          then begin
            incr t "faults_duplicated";
            post ()
          end
        end
    | Transport.Control ->
        incr t "sent_control";
        t.ctl_seq <- t.ctl_seq + 1;
        let seq = t.ctl_seq in
        let bytes = encode (Ctl_msg { src = t.me; seq; payload }) in
        Hashtbl.replace t.unacked seq (dst, bytes);
        if partitioned t ~dst then incr t "partition_blocked"
        else conn_send t ~dst bytes

let retransmit_pending t =
  Hashtbl.iter
    (fun _ (dst, bytes) ->
      incr t "retransmits";
      if partitioned t ~dst then incr t "partition_blocked"
      else conn_send t ~dst bytes)
    t.unacked

let transport t =
  {
    Transport.send = (fun ~lane ~src:_ ~dst payload -> send t ~lane ~dst payload);
    broadcast =
      (fun ~lane ~src:_ payload ->
        for dst = 0 to t.n - 1 do
          if dst <> t.me then send t ~lane ~dst payload
        done);
    set_handler = (fun id f -> if id = t.me then t.handler <- f);
    (* Crashes are real process deaths here; the fabric has no gate. *)
    set_down = (fun _ -> ());
    set_up = (fun ~drop_held_data:_ _ -> ());
  }

let listen t =
  let _, port = t.endpoints.(t.me) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_any, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  t.listen_fd <- Some fd;
  Loop.on_readable t.loop fd (fun () ->
      let continue = ref true in
      while !continue do
        match Unix.accept fd with
        | cfd, _ ->
            Unix.set_nonblock cfd;
            Unix.setsockopt cfd Unix.TCP_NODELAY true;
            incr t "accepted";
            t.inbound <- cfd :: t.inbound;
            add_reader t cfd ~on_close:(fun () ->
                t.inbound <- List.filter (fun f -> f <> cfd) t.inbound;
                Loop.remove_fd t.loop cfd;
                try Unix.close cfd with Unix.Unix_error _ -> ())
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            continue := false
        | exception Unix.Unix_error _ -> continue := false
      done)

let create ?(jitter = (0.001, 0.02)) ?(retransmit_every = 0.1)
    ?(hb_every = 0.25) ?(hb_timeout = 3.0) ?(seq_base = 0)
    ?(faults = Livenet.no_faults) ~loop ~endpoints ~me ~n ~seed () =
  if Array.length endpoints <> n then
    invalid_arg
      (Printf.sprintf "tcp link: %d endpoints for %d workers"
         (Array.length endpoints) n);
  let jitter_lo, jitter_hi = jitter in
  let t =
    {
      loop;
      me;
      n;
      endpoints;
      rng = Prng.create seed;
      jitter_lo;
      jitter_span = Float.max (jitter_hi -. jitter_lo) 1e-9;
      retransmit_every;
      hb_every;
      hb_timeout;
      faults;
      scope = Metrics.Scope.create ~protocol:"tcp" ~process:me ();
      conns =
        Array.init n (fun dst ->
            {
              c_dst = dst;
              c_fd = None;
              c_up = false;
              c_ever_up = false;
              c_armed = false;
              c_q = Queue.create ();
              c_q_off = 0;
              c_q_bytes = 0;
              c_backoff = backoff_min;
              c_next_attempt = 0.0;
              c_last_seen = 0.0;
            });
      listen_fd = None;
      inbound = [];
      handler = (fun _ -> ());
      ctl_seq = seq_base;
      unacked = Hashtbl.create 64;
      seen_ctl = Hashtbl.create 256;
      closed = false;
    }
  in
  listen t;
  reconnect_due t;
  let rec retry_loop () =
    if not t.closed then begin
      retransmit_pending t;
      Loop.schedule loop ~delay:t.retransmit_every retry_loop
    end
  in
  Loop.schedule loop ~delay:retransmit_every retry_loop;
  let rec hb_loop () =
    if not t.closed then begin
      heartbeat t;
      reconnect_due t;
      Loop.schedule loop ~delay:t.hb_every hb_loop
    end
  in
  Loop.schedule loop ~delay:hb_every hb_loop;
  t

let connected t =
  Array.for_all (fun conn -> conn.c_dst = t.me || conn.c_up) t.conns

(* Startup barrier: pump the loop (connect completions, accepts) until
   every outbound connection is up. Wall-clock driven — the loop's own
   clock may still be idling before the run base. *)
let wait_connected t ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    if connected t then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      reconnect_due t;
      Loop.run_once t.loop ~max_wait:0.02;
      wait ()
    end
  in
  wait ()

let unacked_count t = Hashtbl.length t.unacked

let stats t = Metrics.Scope.counters t.scope

let snapshot t = Metrics.Scope.snapshot_prefixed ~prefix:"link." t.scope

let scope t = t.scope

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun conn ->
        match conn.c_fd with
        | None -> ()
        | Some fd ->
            Loop.remove_fd t.loop fd;
            (try Unix.close fd with Unix.Unix_error _ -> ());
            conn.c_fd <- None;
            conn.c_up <- false)
      t.conns;
    (* Accepted inbound connections too: a process death would close
       them for free, but an in-process teardown (tests, same-process
       incarnation swaps) must not leave readers that keep consuming a
       peer's frames — the peer would never see EOF and never reconnect
       to the successor. *)
    List.iter
      (fun fd ->
        Loop.remove_fd t.loop fd;
        try Unix.close fd with Unix.Unix_error _ -> ())
      t.inbound;
    t.inbound <- [];
    match t.listen_fd with
    | None -> ()
    | Some fd ->
        Loop.remove_fd t.loop fd;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        t.listen_fd <- None
  end

let link t =
  {
    Link.transport = transport t;
    ready = (fun ~timeout -> wait_connected t ~timeout);
    unacked = (fun () -> unacked_count t);
    stats = (fun () -> stats t);
    snapshot = (fun () -> snapshot t);
    close = (fun () -> close t);
    kind = "tcp";
  }

(* Per-incarnation seed and control-sequence base derivation matches
   {!Optimist_live.Livenet.factory}, so a scenario replays identically
   over either fabric modulo wall-clock timing. *)
let factory ?retransmit_every ?hb_every ?hb_timeout
    ?(faults = Livenet.no_faults) ~endpoints ~n ~seed () =
  {
    Link.f_kind = "tcp";
    make =
      (fun ~loop ~me ~gen ~jitter ->
        let seed = Int64.add seed (Int64.of_int (1 + me + (gen * n))) in
        link
          (create ~jitter ?retransmit_every ?hb_every ?hb_timeout
             ~seq_base:(gen * 1_000_000)
             ~faults ~loop ~endpoints ~me ~n ~seed ()));
  }
