(** TCP mesh transport: the multi-host counterpart of
    {!Optimist_live.Livenet}.

    Worker [i] listens on [endpoints.(i)] and keeps one outbound stream
    connection per peer (directed: acks and pongs return on the peer's
    own outbound connection; every frame carries its source pid, so
    inbound streams need no handshake). Frames are marshalled with a
    4-byte big-endian length prefix. Connections are established
    non-blockingly and rebuilt after loss with capped exponential
    backoff; heartbeat pings double as a failure detector (a peer silent
    for [hb_timeout] has its connection torn and rebuilt) and feed an
    RTT histogram. While a peer is down, Data frames drop (real
    in-flight losses) and Control frames return through the retransmit
    timer — the same lane semantics as the UDS mesh, so protocol code
    and soak scenarios run unchanged over either fabric. The seeded
    drop/dup/jitter/partition fault plan is applied at the frame layer,
    mirroring {!Optimist_live.Livenet}. *)

module Transport = Optimist_core.Transport
module Metrics = Optimist_obs.Metrics
module Loop = Optimist_live.Loop
module Link = Optimist_live.Link
module Livenet = Optimist_live.Livenet

type 'a t

val create :
  ?jitter:float * float ->
  ?retransmit_every:float ->
  ?hb_every:float ->
  ?hb_timeout:float ->
  ?seq_base:int ->
  ?faults:Livenet.faults ->
  loop:Loop.t ->
  endpoints:(string * int) array ->
  me:int ->
  n:int ->
  seed:int64 ->
  unit ->
  'a t
(** Binds and listens on [endpoints.(me)] (SO_REUSEADDR), starts
    connecting to every peer, and arms the retransmit (default 0.1 s)
    and heartbeat (default 0.25 s, 3 s timeout) timers on [loop].
    [jitter], [seq_base] and [faults] behave as in
    {!Optimist_live.Livenet.create}. *)

val wait_connected : 'a t -> timeout:float -> bool
(** Pump the loop until every outbound connection is up; [false] on
    timeout. Wall-clock driven, so it works before the run base. *)

val connected : 'a t -> bool

val transport : 'a t -> 'a Transport.t

val unacked_count : 'a t -> int
(** Control frames not yet acknowledged. *)

val stats : 'a t -> (string * int) list
(** Wire counters: the UDS mesh's names ([sent_data], [sent_control],
    [retransmits], [received], [send_errors], [faults_dropped],
    [faults_duplicated], [partition_blocked]) plus the stream layer's
    [bytes_sent], [bytes_received], [frames_sent], [frames_received],
    [connects], [reconnects], [accepted], [hb_timeouts]. *)

val snapshot : 'a t -> (string * float) list
(** The link's metric scope flattened under the ["link."] prefix,
    including [link.hb_rtt_ms.count/p50/p95] from the heartbeat RTT
    histogram — the payload merged into the worker's Snapshot records. *)

val scope : 'a t -> Metrics.Scope.t

val close : 'a t -> unit

val link : 'a t -> 'a Link.t
(** The mesh behind the transport-agnostic {!Optimist_live.Link}
    interface ([kind = "tcp"]). *)

val factory :
  ?retransmit_every:float ->
  ?hb_every:float ->
  ?hb_timeout:float ->
  ?faults:Livenet.faults ->
  endpoints:(string * int) array ->
  n:int ->
  seed:int64 ->
  unit ->
  Link.factory
(** A {!Optimist_live.Link.factory} for the TCP mesh. Per-incarnation
    seed and control-sequence base derivation matches
    {!Optimist_live.Livenet.factory}. *)
