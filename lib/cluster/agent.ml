module Worker = Optimist_live.Worker
module Supervisor = Optimist_live.Supervisor

(* One cluster agent: hosts a block of workers on this machine on behalf
   of a remote coordinator. The agent listens on a control port, accepts
   one coordinator connection at a time, and executes the Plan/Start/
   Fetch exchange — Start runs the ordinary live supervision loop
   ({!Optimist_live.Supervisor.supervise}) over the agent's pid block,
   with every worker on the TCP mesh, so SIGKILL injection, respawn and
   stable-store recovery behave exactly as in a single-host run. *)

type session = { mutable plan : Proto.agent_cfg option }

let log ~quiet fmt =
  Printf.ksprintf
    (fun s -> if not quiet then (print_string s; print_newline (); flush stdout))
    fmt

let sup_cfg ~dir (a : Proto.agent_cfg) =
  {
    Supervisor.dir;
    n = a.ag_n;
    protocol = a.ag_protocol;
    seed = a.ag_seed;
    duration = a.ag_duration;
    settle = a.ag_settle;
    rate = a.ag_rate;
    hops = a.ag_hops;
    pattern = a.ag_pattern;
    faults = a.ag_kills;
    net_faults = a.ag_net;
    restart_delay = a.ag_restart_delay;
    jitter = Supervisor.default_cfg.Supervisor.jitter;
    telemetry = a.ag_telemetry;
    link =
      Some
        (Tcplink.factory ~faults:a.ag_net ~endpoints:a.ag_endpoints
           ~n:a.ag_n ~seed:a.ag_seed ());
  }

(* Run artifacts, as run-directory-relative paths: per-incarnation
   traces and stats plus the stable stores, everything a coordinator
   needs to merge and audit the run. *)
let artifacts dir =
  let acc = ref [] in
  let rec walk rel =
    let abs = if rel = "" then dir else Filename.concat dir rel in
    Array.iter
      (fun name ->
        let rel = if rel = "" then name else Filename.concat rel name in
        let abs = Filename.concat dir rel in
        if Sys.is_directory abs then walk rel else acc := rel :: !acc)
      (Sys.readdir abs)
  in
  walk "";
  List.sort compare !acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let handle_conn ~dir ~quiet fd =
  let session = { plan = None } in
  let continue = ref true in
  while !continue do
    match Proto.recv_request fd with
    | Proto.Hello -> Proto.send_response fd (Proto.Welcome { version = Proto.version })
    | Proto.Plan a -> (
        let cfg = sup_cfg ~dir a in
        match Supervisor.validate cfg with
        | () ->
            Supervisor.clean_dir cfg;
            session.plan <- Some a;
            log ~quiet "agent: plan %s — workers [%s] of %d, protocol %s" a.ag_run
              (String.concat ";" (List.map string_of_int a.ag_workers))
              a.ag_n
              (Worker.protocol_name a.ag_protocol);
            Proto.send_response fd Proto.Ok_
        | exception Invalid_argument msg ->
            Proto.send_response fd (Proto.Error_ msg))
    | Proto.Start { base } -> (
        match session.plan with
        | None -> Proto.send_response fd (Proto.Error_ "start before plan")
        | Some a -> (
            log ~quiet "agent: starting %s (base in %.3fs)" a.ag_run
              (base -. Unix.gettimeofday ());
            match
              Supervisor.supervise (sup_cfg ~dir a) ~base ~workers:a.ag_workers
            with
            | sv ->
                log ~quiet "agent: %s done — %d crash(es), %d clean exit(s)"
                  a.ag_run sv.Supervisor.sv_crashes sv.Supervisor.sv_clean_exits;
                Proto.send_response fd
                  (Proto.Done_
                     {
                       crashes = sv.Supervisor.sv_crashes;
                       clean_exits = sv.Supervisor.sv_clean_exits;
                       gens = sv.Supervisor.sv_gens;
                     })
            | exception e ->
                Proto.send_response fd (Proto.Error_ (Printexc.to_string e))))
    | Proto.Fetch ->
        List.iter
          (fun rel ->
            let data = read_file (Filename.concat dir rel) in
            Proto.send_response fd (Proto.File { path = rel; data }))
          (artifacts dir);
        Proto.send_response fd Proto.Fetched
    | Proto.Bye ->
        Proto.send_response fd Proto.Ok_;
        continue := false
    | exception _ -> continue := false
  done

let serve ?(quiet = false) ?(once = false) ~dir ~port () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_any, port));
  Unix.listen lfd 8;
  log ~quiet "agent: listening on port %d (dir %s)" port dir;
  let continue = ref true in
  while !continue do
    match Unix.accept lfd with
    | fd, _ ->
        (try handle_conn ~dir ~quiet fd
         with e ->
           log ~quiet "agent: session error: %s" (Printexc.to_string e));
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if once then continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  try Unix.close lfd with Unix.Unix_error _ -> ()
