let int_at_least min s =
  match int_of_string_opt s with
  | None -> Error (Printf.sprintf "expected an integer, got %S" s)
  | Some v when v < min ->
      Error (Printf.sprintf "must be at least %d (got %d)" min v)
  | Some v -> Ok v

let finite_float s =
  match float_of_string_opt s with
  | None -> Error (Printf.sprintf "expected a number, got %S" s)
  | Some v when not (Float.is_finite v) ->
      Error (Printf.sprintf "must be finite (got %g)" v)
  | Some v -> Ok v

let positive_float s =
  match finite_float s with
  | Error _ as e -> e
  | Ok v when v <= 0.0 -> Error (Printf.sprintf "must be positive (got %g)" v)
  | Ok v -> Ok v

let non_negative_float s =
  match finite_float s with
  | Error _ as e -> e
  | Ok v when v < 0.0 ->
      Error (Printf.sprintf "must be non-negative (got %g)" v)
  | Ok v -> Ok v

let probability s =
  match finite_float s with
  | Error _ as e -> e
  | Ok v when v < 0.0 || v > 1.0 ->
      Error (Printf.sprintf "must be a probability in [0, 1] (got %g)" v)
  | Ok v -> Ok v

let port s =
  match int_of_string_opt s with
  | None -> Error (Printf.sprintf "expected a port number, got %S" s)
  | Some p when p < 1 || p > 65535 ->
      Error (Printf.sprintf "port must be in 1..65535 (got %d)" p)
  | Some p -> Ok p

let host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      if host = "" then Error (Printf.sprintf "expected HOST:PORT, got %S" s)
      else
        match port port_s with
        | Ok p -> Ok (host, p)
        | Error e -> Error e)

let fault s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "expected SECONDS:PID, got %S" s)
  | Some i -> (
      let at = String.sub s 0 i in
      let pid = String.sub s (i + 1) (String.length s - i - 1) in
      match (float_of_string_opt at, int_of_string_opt pid) with
      | Some at, Some pid when at > 0.0 && Float.is_finite at && pid >= 0 ->
          Ok (at, pid)
      | Some at, Some _ when at <= 0.0 || not (Float.is_finite at) ->
          Error (Printf.sprintf "fault time must be positive (got %g)" at)
      | Some _, Some pid ->
          Error (Printf.sprintf "fault pid must be non-negative (got %d)" pid)
      | _ -> Error (Printf.sprintf "expected SECONDS:PID, got %S" s))
