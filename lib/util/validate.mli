(** Validated parsing of numeric command-line values.

    Every [recsim] flag that takes a number goes through one of these
    parsers: nonsense values (0 processes, a negative failure count, a
    probability of 3) must die at argument parsing with a one-line
    message, not as an exception backtrace out of a run. The parsers are
    pure ([Result]-valued) so the CLI conversions wrapping them and the
    table-driven tests exercise exactly the same code. *)

val int_at_least : int -> string -> (int, string) result
(** [int_at_least min s] parses an integer no smaller than [min]. *)

val positive_float : string -> (float, string) result
(** A finite float strictly greater than 0. *)

val non_negative_float : string -> (float, string) result
(** A finite float greater than or equal to 0. *)

val probability : string -> (float, string) result
(** A finite float in [0, 1]. *)

val port : string -> (int, string) result
(** A TCP port number in 1..65535. *)

val host_port : string -> (string * int, string) result
(** A ["HOST:PORT"] endpoint: non-empty host, valid port. The split is
    on the last [':'] so a numeric IPv6 host still parses if given as
    the whole prefix. *)

val fault : string -> (float * int, string) result
(** A ["SECONDS:PID"] crash point: positive finite time, non-negative
    pid. Range checks against the run's [n] and duration happen later,
    in [Supervisor.validate]. *)
