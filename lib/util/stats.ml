module Summary = struct
  type t = {
    mutable count : int;
    mutable total : float;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; total = 0.0; mean = 0.0; m2 = 0.0; min = 0.0; max = 0.0 }

  (* Welford's online algorithm keeps the variance numerically stable for
     long runs. *)
  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.count = 1 then begin
      t.min <- x;
      t.max <- x
    end
    else begin
      if x < t.min then t.min <- x;
      if x > t.max then t.max <- x
    end

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int t.count
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let pp ppf t =
    if t.count = 0 then Format.fprintf ppf "n=0"
    else
      Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.count
        (mean t) (stddev t) t.min t.max
end

module Histogram = struct
  type t = {
    bounds : float array;
    counts : int array; (* length = Array.length bounds + 1, last = overflow *)
    mutable count : int;
  }

  let default_buckets =
    let rec loop acc x =
      if x > 1.0e6 then List.rev acc else loop (x :: acc) (x *. 3.1622776601683795)
    in
    Array.of_list (loop [] 1.0)

  let create ?(buckets = default_buckets) () =
    { bounds = buckets; counts = Array.make (Array.length buckets + 1) 0; count = 0 }

  let add t x =
    let n = Array.length t.bounds in
    let rec find i = if i >= n || x <= t.bounds.(i) then i else find (i + 1) in
    let i = find 0 in
    t.counts.(i) <- t.counts.(i) + 1;
    t.count <- t.count + 1

  let count t = t.count

  let percentile t q =
    if t.count = 0 then nan
    else begin
      let target = q *. float_of_int t.count in
      let n = Array.length t.bounds in
      let rec loop i acc =
        if i > n then infinity
        else
          let acc = acc + t.counts.(i) in
          if float_of_int acc >= target then
            if i < n then t.bounds.(i) else infinity
          else loop (i + 1) acc
      in
      loop 0 0
    end

  let pp ppf t =
    Format.fprintf ppf "n=%d p50<=%.1f p99<=%.1f" t.count (percentile t 0.5)
      (percentile t 0.99)
end

module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t name (ref by)

  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp ppf t =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
      (fun ppf (k, v) -> Format.fprintf ppf "%-40s %d" k v)
      ppf (to_list t)
end
