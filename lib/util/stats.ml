module Summary = struct
  type t = {
    mutable count : int;
    mutable total : float;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; total = 0.0; mean = 0.0; m2 = 0.0; min = 0.0; max = 0.0 }

  (* Welford's online algorithm keeps the variance numerically stable for
     long runs. *)
  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.count = 1 then begin
      t.min <- x;
      t.max <- x
    end
    else begin
      if x < t.min then t.min <- x;
      if x > t.max then t.max <- x
    end

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int t.count
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let pp ppf t =
    if t.count = 0 then Format.fprintf ppf "n=0"
    else
      Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.count
        (mean t) (stddev t) t.min t.max
end

module Histogram = struct
  type t = {
    bounds : float array;
    counts : int array; (* length = Array.length bounds + 1, last = overflow *)
    mutable count : int;
    mutable sum : float;
  }

  (* Half-decade steps computed as exact powers so that round values like
     10.0 or 1000.0 compare equal to their bucket's upper bound instead of
     drifting past it through repeated multiplication. *)
  let default_buckets =
    let rec loop acc k =
      let x = 10.0 ** (float_of_int k /. 2.0) in
      if x > 1.0e6 then List.rev acc else loop (x :: acc) (k + 1)
    in
    Array.of_list (loop [] 0)

  let create ?(buckets = default_buckets) () =
    {
      bounds = buckets;
      counts = Array.make (Array.length buckets + 1) 0;
      count = 0;
      sum = 0.0;
    }

  (* An observation equal to an upper bound lands in that bucket: buckets
     are (lower, upper] intervals, matching Prometheus semantics. *)
  let add t x =
    let n = Array.length t.bounds in
    let rec find i = if i >= n || x <= t.bounds.(i) then i else find (i + 1) in
    let i = find 0 in
    t.counts.(i) <- t.counts.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x

  let count t = t.count
  let sum t = t.sum
  let bounds t = Array.copy t.bounds
  let counts t = Array.copy t.counts

  let merge a b =
    if a.bounds <> b.bounds then
      invalid_arg "Histogram.merge: incompatible bucket bounds";
    let t = create ~buckets:a.bounds () in
    Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
    t.count <- a.count + b.count;
    t.sum <- a.sum +. b.sum;
    t

  let percentile t q =
    if t.count = 0 then nan
    else begin
      let target = q *. float_of_int t.count in
      let n = Array.length t.bounds in
      let rec loop i acc =
        if i > n then infinity
        else
          let acc = acc + t.counts.(i) in
          if float_of_int acc >= target then
            if i < n then t.bounds.(i) else infinity
          else loop (i + 1) acc
      in
      loop 0 0
    end

  (* Linear interpolation within the bucket containing the target rank,
     assuming observations spread uniformly over (lower, upper]. The
     overflow bucket has no upper bound, so its answer is the last finite
     bound (a lower bound on the truth) — still monotone in [q]. *)
  let quantile t q =
    if t.count = 0 then nan
    else begin
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let target = q *. float_of_int t.count in
      let n = Array.length t.bounds in
      let rec loop i seen =
        if i > n then if n = 0 then infinity else t.bounds.(n - 1)
        else
          let here = t.counts.(i) in
          if here > 0 && float_of_int (seen + here) >= target then
            if i >= n then (if n = 0 then infinity else t.bounds.(n - 1))
            else
              let lower = if i = 0 then 0.0 else t.bounds.(i - 1) in
              let upper = t.bounds.(i) in
              let into = (target -. float_of_int seen) /. float_of_int here in
              let into = if into < 0.0 then 0.0 else into in
              lower +. ((upper -. lower) *. into)
          else loop (i + 1) (seen + here)
      in
      loop 0 0
    end

  let pp ppf t =
    Format.fprintf ppf "n=%d p50<=%.1f p99<=%.1f" t.count (percentile t 0.5)
      (percentile t 0.99)
end

module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t name (ref by)

  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp ppf t =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
      (fun ppf (k, v) -> Format.fprintf ppf "%-40s %d" k v)
      ppf (to_list t)
end
