(** Streaming descriptive statistics and named counters.

    Experiment runs accumulate observations (latencies, rollback depths,
    piggyback sizes) into [Summary.t] values and integer [Counter]s; the
    bench harness turns them into the rows of the paper's tables. *)

module Summary : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int
  val total : t -> float
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Population variance (Welford); 0 when fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** 0 when empty. *)

  val max : t -> float
  (** 0 when empty. *)

  val pp : Format.formatter -> t -> unit
  (** Prints just ["n=0"] for an empty summary. *)
end

module Histogram : sig
  type t

  val create : ?buckets:float array -> unit -> t
  (** [buckets] are upper bounds of the histogram bins, strictly
      increasing; observations above the last bound land in an overflow
      bin. The default covers 1..10^6 in half-decade steps. *)

  val add : t -> float -> unit
  (** Buckets are [(lower, upper]] intervals: an observation equal to an
      upper bound lands in that bucket deterministically. *)

  val count : t -> int
  val sum : t -> float
  (** Sum of all observations; 0 when empty. *)

  val bounds : t -> float array
  (** Copy of the finite upper bounds. *)

  val counts : t -> int array
  (** Copy of the per-bucket counts; one longer than [bounds], the last
      entry being the overflow bucket. *)

  val merge : t -> t -> t
  (** Combine two histograms with identical bounds into a fresh one.
      @raise Invalid_argument when the bounds differ. *)

  val percentile : t -> float -> float
  (** [percentile t 0.99] returns an upper bound of the bucket containing
      the given quantile; [nan] when empty. *)

  val quantile : t -> float -> float
  (** Bucket-interpolated quantile: linear interpolation inside the
      bucket containing the target rank ([0.0] as the implicit lower edge
      of the first bucket). Observations in the overflow bucket clamp to
      the last finite bound. [nan] when empty. *)

  val pp : Format.formatter -> t -> unit
end

module Counters : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)

  val pp : Format.formatter -> t -> unit
end
