(** Scheduler decisions, canonical ordering, and the independence
    relation behind the sleep-set partial-order reduction. *)

module Engine = Optimist_sim.Engine

type decision =
  | Fire of { kind : string; pid : int; src : int; info : string; nth : int }
      (** fire the [nth] enabled event (in engine order) carrying this
          label — label + ordinal is stable across interleavings, unlike
          engine sequence numbers *)
  | Crash of int  (** crash the process at the current instant *)

val fire_of_label : Engine.label -> nth:int -> decision

val compare_label : Engine.label -> Engine.label -> int

val canonical : Engine.candidate array -> (Engine.candidate * decision) list
(** The enabled set sorted by label (ties by seq), paired with each
    candidate's decision. The head is the checker's deterministic
    default choice wherever it does not branch. *)

val pid_of : decision -> int

val independent : decision -> decision -> bool
(** [true] when the two transitions commute: both are labelled events
    acting on distinct processes. Crashes and anonymous events are
    conservatively dependent on everything. *)

val filter_sleep : taken:decision -> decision list -> decision list
(** Sleep-set propagation: keep the sleeping decisions that commute with
    the transition just executed. *)

val to_string : decision -> string

val seq_to_string : decision list -> string
