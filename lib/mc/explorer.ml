(* Depth-first stateless exploration over the branch points reported by
   {!Strategy.execute}. Each execution contributes a stack of frames —
   one per fresh branch point — whose untried alternatives drive the
   next executions. In DPOR mode, sleep sets (Godefroid) cut executions
   that only reorder independent transitions of one already explored. *)

type mode = Naive | Dpor

type opts = {
  depth : int;  (** max branch points per execution *)
  max_steps : int;  (** per-execution event budget (runaway guard) *)
  max_schedules : int;  (** stop after this many executions; 0 = unlimited *)
  fingerprint : bool;
  mode : mode;
  stop_on_violation : bool;
  log_schedules : bool;
      (** record every completed execution's decision sequence (test
          support; memory-heavy on big trees) *)
}

let default_opts =
  {
    depth = 6;
    max_steps = 200_000;
    max_schedules = 0;
    fingerprint = true;
    mode = Dpor;
    stop_on_violation = true;
    log_schedules = false;
  }

type outcome = {
  o_schedules : int;  (** executions actually run *)
  o_pruned_fp : int;
  o_pruned_sleep : int;
  o_truncated : int;
  o_exhausted : bool;
      (** the frontier drained within the limits: the run covered every
          non-equivalent schedule up to [depth] *)
  o_max_points : int;  (** deepest branch count seen *)
  o_violation : (Dpor.decision list * string list) option;
      (** first counterexample, prefix-minimized *)
  o_all_violations : string list;  (** sorted, deduplicated *)
  o_schedule_log : Dpor.decision list list;
      (** completed executions' decision sequences, in exploration
          order; empty unless [log_schedules] *)
}

type frame = {
  fr_prefix : Dpor.decision list;  (** decisions leading to this point *)
  mutable fr_todo : Dpor.decision list;
  mutable fr_done : Dpor.decision list;
  fr_sleep : Dpor.decision list;  (** sleep set on entry to the point *)
}

module S = Set.Make (String)

(* Shrink a counterexample by prefix truncation: the shortest prefix of
   the violating decision sequence that still violates when completed
   with the canonical default tail. Linear in the prefix length; each
   probe is one extra (uncounted) execution. *)
let minimize ~build ~crashes ~max_steps decisions =
  let arr = Array.of_list decisions in
  let rec probe k =
    if k > Array.length arr then None
    else
      let prefix = Array.to_list (Array.sub arr 0 k) in
      let r =
        Strategy.execute ~build ~crashes ~prefix ~depth:k ~max_steps ()
      in
      if (not r.Strategy.x_truncated) && r.Strategy.x_violations <> [] then
        Some (prefix, r.Strategy.x_violations)
      else probe (k + 1)
  in
  probe 0

let explore ~(build : unit -> Model.instance) ~crashes opts =
  let fp = if opts.fingerprint then Some (Fingerprint.create_table ()) else None in
  let stack = ref [] in
  let schedules = ref 0 in
  let pruned_fp = ref 0 in
  let pruned_sleep = ref 0 in
  let truncated = ref 0 in
  let max_points = ref 0 in
  let schedule_log = ref [] in
  let all_violations = ref S.empty in
  let first_violation = ref None in
  let stopped = ref false in
  let run_one ~prefix ~sleep0 ~prefix_len =
    let r =
      Strategy.execute ~build ~crashes ~prefix ~depth:opts.depth
        ~max_steps:opts.max_steps ~sleep0 ?fp ()
    in
    incr schedules;
    if r.Strategy.x_pruned_fp then incr pruned_fp;
    if r.Strategy.x_pruned_sleep then incr pruned_sleep;
    if r.Strategy.x_truncated then incr truncated;
    let npoints = List.length r.Strategy.x_points in
    if npoints > !max_points then max_points := npoints;
    let completed =
      (not r.Strategy.x_pruned_fp) && (not r.Strategy.x_pruned_sleep)
      && not r.Strategy.x_truncated
    in
    let decisions = Strategy.decisions_of r in
    if completed && opts.log_schedules then
      schedule_log := decisions :: !schedule_log;
    if completed && r.Strategy.x_violations <> [] then begin
      List.iter
        (fun v -> all_violations := S.add v !all_violations)
        r.Strategy.x_violations;
      if !first_violation = None then begin
        let minimized =
          match
            minimize ~build ~crashes ~max_steps:opts.max_steps decisions
          with
          | Some cx -> cx
          | None -> (decisions, r.Strategy.x_violations)
        in
        first_violation := Some minimized
      end;
      if opts.stop_on_violation then stopped := true
    end;
    (* New frames for the branch points this execution discovered beyond
       its own prefix (earlier points already have frames). *)
    let decs = Array.of_list decisions in
    List.iteri
      (fun i (pt : Strategy.point) ->
        if i >= prefix_len then begin
          let sleep = match opts.mode with Dpor -> pt.pt_sleep | Naive -> [] in
          let todo =
            List.filter
              (fun d -> d <> pt.pt_taken && not (List.mem d sleep))
              pt.pt_alts
          in
          stack :=
            {
              fr_prefix = Array.to_list (Array.sub decs 0 i);
              fr_todo = todo;
              fr_done = [ pt.pt_taken ];
              fr_sleep = sleep;
            }
            :: !stack
        end)
      r.Strategy.x_points
  in
  run_one ~prefix:[] ~sleep0:[] ~prefix_len:0;
  let budget_left () =
    opts.max_schedules = 0 || !schedules < opts.max_schedules
  in
  let exhausted = ref false in
  let continue = ref true in
  while !continue do
    if !stopped then continue := false
    else if not (budget_left ()) then continue := false
    else
      match !stack with
      | [] ->
          exhausted := true;
          continue := false
      | fr :: rest -> (
          match fr.fr_todo with
          | [] -> stack := rest
          | d :: todo ->
              fr.fr_todo <- todo;
              (* Child sleep set: still-sleeping or already-explored
                 siblings that commute with [d] (computed before [d]
                 joins the done set). *)
              let sleep0 =
                match opts.mode with
                | Naive -> []
                | Dpor ->
                    List.filter
                      (fun z -> Dpor.independent z d)
                      (fr.fr_sleep @ fr.fr_done)
              in
              fr.fr_done <- d :: fr.fr_done;
              run_one
                ~prefix:(fr.fr_prefix @ [ d ])
                ~sleep0
                ~prefix_len:(List.length fr.fr_prefix + 1))
  done;
  {
    o_schedules = !schedules;
    o_pruned_fp = !pruned_fp;
    o_pruned_sleep = !pruned_sleep;
    o_truncated = !truncated;
    o_exhausted = !exhausted;
    o_max_points = !max_points;
    o_violation = !first_violation;
    o_all_violations = S.elements !all_violations;
    o_schedule_log = List.rev !schedule_log;
  }
