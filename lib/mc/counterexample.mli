(** Serializable counterexamples: a configuration plus the decision
    sequence that reaches the violation, replayable into a standard
    JSONL trace. *)

type t = {
  cx_cfg : Model.cfg;
  cx_decisions : Dpor.decision list;
  cx_violations : string list;
}

val to_json : t -> Optimist_obs.Json.t
val to_string : t -> string

val of_json : Optimist_obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result

val replay : write:(string -> unit) -> t -> string list
(** Re-run the counterexample's schedule on a fresh instance, streaming
    the execution as a JSONL trace (schema header included) through
    [write]. Returns the violations the re-execution reports — empty
    means the counterexample no longer reproduces. *)
