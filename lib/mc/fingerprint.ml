module Engine = Optimist_sim.Engine

(* FNV-1a over the observable model state: application digests, the
   crash budget, virtual time, and the multiset of pending events. Two
   interleavings that reach the same fingerprint have the same future
   behaviour under the default tail policy, so the second can be cut.

   Pending events are hashed in (time, label) order — never by engine
   seq, which differs between interleavings of the same state. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix h x = Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime

let mix_string h s =
  let h = ref (mix h (String.length s)) in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

let state ~digest ~clock ~budget ~(queued : Engine.candidate array) =
  let items = Array.to_list queued in
  let sorted =
    List.sort
      (fun (a : Engine.candidate) (b : Engine.candidate) ->
        let c = compare a.c_at b.c_at in
        if c <> 0 then c else Dpor.compare_label a.c_label b.c_label)
      items
  in
  let h = ref fnv_offset in
  h := mix !h digest;
  h := mix !h budget;
  h := mix !h (Hashtbl.hash clock);
  List.iter
    (fun (c : Engine.candidate) ->
      h := mix !h (Hashtbl.hash c.c_at);
      h := mix !h (if c.c_daemon then 1 else 0);
      h := mix_string !h c.c_label.l_kind;
      h := mix !h c.c_label.l_pid;
      h := mix !h c.c_label.l_src;
      h := mix_string !h c.c_label.l_info)
    sorted;
  !h

(* Visited table: fingerprint -> the largest remaining branching budget
   with which that state was already explored. Re-visiting with no more
   budget than before cannot reach anything new. *)
type table = (int64, int) Hashtbl.t

let create_table () : table = Hashtbl.create 997

let seen (tbl : table) fp ~remaining =
  match Hashtbl.find_opt tbl fp with
  | Some r when r >= remaining -> true
  | _ ->
      Hashtbl.replace tbl fp remaining;
      false
