module Engine = Optimist_sim.Engine

(* One controlled execution of a model instance.

   The executor installs an [Engine.strategy] that, at every scheduling
   decision, computes the full alternative set (canonically-ordered
   enabled events, plus crash injections while budget remains), consumes
   the supplied decision prefix at branch points, and falls back to the
   canonical head everywhere else. Replaying the same prefix against a
   fresh instance therefore reproduces the same execution — the whole
   checker is stateless, no snapshotting. *)

type point = {
  pt_alts : Dpor.decision list;
      (** every alternative at this branch point, fires first in
          canonical order, then crash injections *)
  pt_taken : Dpor.decision;
  pt_sleep : Dpor.decision list;  (** sleep set on entry (DPOR mode) *)
}

type result = {
  x_points : point list;  (** branch points in execution order *)
  x_violations : string list;
      (** end-of-execution verdict; only meaningful when the execution
          ran to quiescence (neither pruned nor truncated) *)
  x_pruned_fp : bool;
  x_pruned_sleep : bool;
  x_truncated : bool;  (** hit [max_steps] before quiescence *)
  x_events : int;
}

let decisions_of r = List.map (fun p -> p.pt_taken) r.x_points

exception Divergence of string
(** A prefix decision was not available when replay reached its branch
    point — the model is not deterministic, or the prefix is stale. *)

(* Abort signal for pruned executions; raised from inside the strategy
   and caught around the drive loop. *)
exception Stop_fp
exception Stop_sleep

let execute ~(build : unit -> Model.instance) ~crashes ~prefix ~depth
    ?(max_steps = 200_000) ?(sleep0 = []) ?fp () =
  let inst = build () in
  let engine = inst.Model.i_engine in
  let budget = ref crashes in
  let nchoice = ref 0 in
  let prefix_rest = ref prefix in
  (* The sleep set becomes active only once the prefix is consumed:
     prefix decisions were vetted by the frames that produced them. *)
  let sleep = ref (if prefix = [] then sleep0 else []) in
  let points = ref [] in
  let pruned_fp = ref false in
  let pruned_sleep = ref false in
  let in_sleep d = List.exists (fun z -> z = d) !sleep in
  let record pt = points := pt :: !points in
  let take_prefix () =
    match !prefix_rest with
    | [] -> None
    | d :: rest ->
        prefix_rest := rest;
        if rest = [] then sleep := sleep0;
        Some d
  in
  (* Crash alternatives: processes that are alive, have at least one
     enabled event acting on them (so the crash actually races with
     something), while budget remains. *)
  let crash_alts (cands : Engine.candidate array) =
    if !budget <= 0 then []
    else begin
      let pids = ref [] in
      Array.iter
        (fun (c : Engine.candidate) ->
          let p = c.c_label.Engine.l_pid in
          if p >= 0 && inst.Model.i_alive p && not (List.mem p !pids) then
            pids := p :: !pids)
        cands;
      List.map (fun p -> Dpor.Crash p) (List.sort compare !pids)
    end
  in
  let strat (cands : Engine.candidate array) =
    (* May recurse after applying a crash decision: the enabled events
       are unchanged (crashes cancel nothing; restarts land later), but
       budget and liveness move, so alternatives are re-derived. *)
    let rec decide (cands : Engine.candidate array) =
      let canon = Dpor.canonical cands in
      let fires = List.map snd canon in
      let alts = fires @ crash_alts cands in
      let is_choice = List.length alts > 1 && !nchoice < depth in
      let taken =
        if is_choice then begin
          let d =
            match take_prefix () with
            | Some d ->
                if not (List.mem d alts) then
                  raise
                    (Divergence
                       (Printf.sprintf "prefix decision [%s] not enabled"
                          (Dpor.to_string d)));
                d
            | None -> (
                (* Fresh branch point. Fingerprint-prune only here:
                   beyond the prefix, with no pending sleep obligations,
                   a previously-expanded state has nothing new. *)
                (match fp with
                | Some tbl when !sleep = [] ->
                    let h =
                      Fingerprint.state
                        ~digest:(inst.Model.i_digest ())
                        ~clock:(Engine.now engine) ~budget:!budget
                        ~queued:(Engine.queued engine)
                    in
                    if Fingerprint.seen tbl h ~remaining:(depth - !nchoice)
                    then begin
                      pruned_fp := true;
                      raise Stop_fp
                    end
                | _ -> ());
                match List.filter (fun d -> not (in_sleep d)) alts with
                | [] ->
                    pruned_sleep := true;
                    raise Stop_sleep
                | d :: _ -> d)
          in
          if in_sleep d then begin
            pruned_sleep := true;
            raise Stop_sleep
          end;
          record { pt_alts = alts; pt_taken = d; pt_sleep = !sleep };
          incr nchoice;
          d
        end
        else begin
          (* Forced: canonical head. A forced transition that is asleep
             means this whole execution is a re-ordering of one already
             explored. *)
          let d = List.hd fires in
          if in_sleep d then begin
            pruned_sleep := true;
            raise Stop_sleep
          end;
          d
        end
      in
      sleep := Dpor.filter_sleep ~taken !sleep;
      match taken with
      | Dpor.Crash p ->
          decr budget;
          inst.Model.i_crash p;
          decide cands
      | Dpor.Fire _ as d -> (
          match List.find_opt (fun (_, d') -> d' = d) canon with
          | Some ((c : Engine.candidate), _) ->
              (* Index into [cands] of the chosen candidate. *)
              let idx = ref (-1) in
              Array.iteri
                (fun i (x : Engine.candidate) ->
                  if x.c_seq = c.c_seq then idx := i)
                cands;
              !idx
          | None -> assert false)
    in
    decide cands
  in
  Engine.set_strategy engine (Some strat);
  let steps = ref 0 in
  let truncated = ref false in
  let completed = ref false in
  (try
     let continue = ref true in
     while !continue do
       if Engine.live_work engine = 0 then begin
         completed := true;
         continue := false
       end
       else if !steps >= max_steps then begin
         truncated := true;
         continue := false
       end
       else if Engine.step engine then incr steps
       else begin
         completed := true;
         continue := false
       end
     done
   with
  | Stop_fp -> ()
  | Stop_sleep -> ());
  let violations = if !completed then inst.Model.i_finish () else [] in
  {
    x_points = List.rev !points;
    x_violations = violations;
    x_pruned_fp = !pruned_fp;
    x_pruned_sleep = !pruned_sleep;
    x_truncated = !truncated;
    x_events = Engine.events_fired engine;
  }
