(** Depth-first stateless exploration of every schedule and crash
    placement of a configuration, with optional sleep-set partial-order
    reduction and fingerprint pruning. *)

type mode = Naive | Dpor

type opts = {
  depth : int;  (** max branch points per execution *)
  max_steps : int;  (** per-execution event budget (runaway guard) *)
  max_schedules : int;  (** stop after this many executions; 0 = unlimited *)
  fingerprint : bool;
  mode : mode;
  stop_on_violation : bool;
  log_schedules : bool;
      (** record every completed execution's decision sequence (test
          support; memory-heavy on big trees) *)
}

val default_opts : opts
(** depth 6, DPOR, fingerprinting on, stop at first violation. *)

type outcome = {
  o_schedules : int;  (** executions actually run *)
  o_pruned_fp : int;
  o_pruned_sleep : int;
  o_truncated : int;
  o_exhausted : bool;
      (** the frontier drained within the limits: the run covered every
          non-equivalent schedule up to [depth] *)
  o_max_points : int;  (** deepest branch count seen *)
  o_violation : (Dpor.decision list * string list) option;
      (** first counterexample, prefix-minimized *)
  o_all_violations : string list;  (** sorted, deduplicated *)
  o_schedule_log : Dpor.decision list list;
      (** completed executions' decision sequences, in exploration
          order; empty unless [log_schedules] *)
}

val minimize :
  build:(unit -> Model.instance) ->
  crashes:int ->
  max_steps:int ->
  Dpor.decision list ->
  (Dpor.decision list * string list) option
(** Shortest prefix of the given decision sequence that still violates
    when completed with the canonical default schedule. *)

val explore :
  build:(unit -> Model.instance) -> crashes:int -> opts -> outcome
