(** One controlled execution of a model instance: replay a decision
    prefix, complete with the canonical default schedule, and report the
    branch points passed on the way. *)

type point = {
  pt_alts : Dpor.decision list;
      (** every alternative at this branch point: enabled fires in
          canonical order, then crash injections *)
  pt_taken : Dpor.decision;
  pt_sleep : Dpor.decision list;  (** sleep set on entry (DPOR mode) *)
}

type result = {
  x_points : point list;  (** branch points in execution order *)
  x_violations : string list;
      (** end-of-execution verdict; only meaningful when the execution
          ran to quiescence (neither pruned nor truncated) *)
  x_pruned_fp : bool;  (** cut at a fingerprint-known state *)
  x_pruned_sleep : bool;  (** cut as a reordering of an explored run *)
  x_truncated : bool;  (** hit [max_steps] before quiescence *)
  x_events : int;
}

val decisions_of : result -> Dpor.decision list
(** The decisions taken at this execution's branch points — the
    schedule's identity. *)

exception Divergence of string
(** A prefix decision was not available when replay reached its branch
    point — the model is not deterministic, or the prefix is stale. *)

val execute :
  build:(unit -> Model.instance) ->
  crashes:int ->
  prefix:Dpor.decision list ->
  depth:int ->
  ?max_steps:int ->
  ?sleep0:Dpor.decision list ->
  ?fp:Fingerprint.table ->
  unit ->
  result
(** Build a fresh instance and drive it to quiescence under the
    controlled scheduler. [prefix] is consumed at branch points (>1
    alternative, within [depth]); everywhere else the canonical head
    fires. [sleep0] is the sleep set that becomes active once the
    prefix is consumed; [fp] enables fingerprint pruning at fresh
    branch points. *)
