module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Metrics = Optimist_obs.Metrics
module Trace = Optimist_obs.Trace
module Types = Optimist_core.Types
module System = Optimist_core.System
module Process = Optimist_core.Process
module Oracle = Optimist_oracle.Oracle
module Traffic = Optimist_workload.Traffic
module Check = Optimist_check.Check
module Runner = Optimist_runner.Runner
module Pessimistic = Optimist_protocols.Pessimistic
module Sender_based = Optimist_protocols.Sender_based
module Strom_yemini = Optimist_protocols.Strom_yemini
module Peterson_kearns = Optimist_protocols.Peterson_kearns
module Checkpoint_only = Optimist_protocols.Checkpoint_only
module Coordinated = Optimist_protocols.Coordinated

(* A model-checking configuration: one small protocol instance plus a
   traffic script and a crash budget. Everything the checker explores is
   a function of this record — no wall clock, no uncontrolled
   randomness — so a (cfg, decision sequence) pair fully identifies an
   execution and can be serialized as a counterexample. *)
type cfg = {
  protocol : Runner.protocol;
  n : int;  (** processes, ids [0, n) *)
  msgs : int;  (** app messages injected at t=0, round-robin over pids *)
  hops : int;  (** forwarding hops per injected message *)
  crashes : int;  (** crash-injection budget for the explorer *)
  mutation : string;  (** [""] for the unmodified protocol *)
}

let default_cfg =
  { protocol = Runner.Damani_garg; n = 3; msgs = 2; hops = 2; crashes = 1;
    mutation = "" }

type mutant = {
  mu_name : string;
  mu_protocol : Runner.protocol;
  mu_rule : string;  (** the sanitizer rule the mutant must trip *)
  mu_doc : string;
}

(* Deliberately broken protocol variants the checker must catch. Each
   maps to a single code-level mutation (lib/core/process.ml or the
   pessimistic baseline) and to the offline-checkable rule it violates,
   so a replayed counterexample trace also fails [recsim check --strict]. *)
let mutants =
  [
    { mu_name = "skip-piggyback"; mu_protocol = Runner.Damani_garg;
      mu_rule = "OPT004";
      mu_doc = "process 0 sends a zeroed FTVC on the 0->1 edge" };
    { mu_name = "skip-dedup"; mu_protocol = Runner.Damani_garg;
      mu_rule = "OPT003";
      mu_doc = "duplicate-uid suppression disabled (explored under a \
                duplicating network)" };
    { mu_name = "eager-rollback"; mu_protocol = Runner.Damani_garg;
      mu_rule = "OPT011";
      mu_doc = "rolls back on every token, detected orphan or not" };
    { mu_name = "ack-before-fsync"; mu_protocol = Runner.Pessimistic;
      mu_rule = "OPT013";
      mu_doc = "pessimistic logger delivers before the entry is stable" };
  ]

let find_mutant name = List.find_opt (fun m -> m.mu_name = name) mutants

let validate cfg =
  if cfg.n < 2 || cfg.n > 8 then
    invalid_arg "Model: procs must be in [2, 8]";
  if cfg.msgs < 1 then invalid_arg "Model: at least one injected message";
  if cfg.mutation <> "" then
    match find_mutant cfg.mutation with
    | None ->
        invalid_arg (Printf.sprintf "Model: unknown mutation %S" cfg.mutation)
    | Some m ->
        if m.mu_protocol <> cfg.protocol then
          invalid_arg
            (Printf.sprintf "Model: mutation %S applies to %s, not %s"
               cfg.mutation
               (Runner.protocol_name m.mu_protocol)
               (Runner.protocol_name cfg.protocol))

(* One rebuildable execution of the configuration. The checker replays
   decisions against a fresh instance for every explored schedule
   (stateless model checking — no snapshot/restore). *)
type instance = {
  i_engine : Engine.t;
  i_alive : int -> bool;
  i_crash : int -> unit;
  i_digest : unit -> int;  (** observable-state hash, for fingerprinting *)
  i_finish : unit -> string list;
      (** end-of-execution verdict: sanitizer + oracle violations,
          rendered as stable strings (no timestamps, so violation sets
          compare across interleavings) *)
}

(* Determinism note: latencies are [Constant] so no RNG is drawn per
   delivery, and drop/dup probabilities are 0 or 1 so the bernoulli
   draws that do happen have interleaving-independent outcomes. All
   injections land at t=0, making the first instant the first genuine
   branch point. *)
let mc_net_config ~n ~dup =
  {
    (Network.default_config ~n) with
    Network.ordering = Network.Reorder;
    latency = Network.Constant 1.0;
    control_latency = Some (Network.Constant 1.0);
    drop_probability = 0.0;
    duplicate_probability = dup;
  }

(* Short periods relative to the 1.0 delivery latency so timer events
   genuinely race with deliveries inside small exploration depths. *)
let mc_dg_config ~hold ~mutation =
  {
    Types.default_config with
    Types.flush_interval = 3.0;
    checkpoint_interval = 11.0;
    restart_delay = 5.0;
    hold_undeliverable = hold;
    mutation;
  }

let mc_pessimistic_config ~mutation =
  {
    Pessimistic.sync_write_latency = 0.5;
    checkpoint_interval = 4.0;
    restart_delay = 5.0;
    ack_before_fsync = (mutation = "ack-before-fsync");
  }

let violation_string (v : Check.violation) =
  Printf.sprintf "%s %s: %s" v.Check.rule.Check.id v.Check.rule.Check.slug
    v.Check.message

let inject_label pid = { Engine.l_kind = "inject"; l_pid = pid; l_src = -1;
                         l_info = "" }

let build_damani ?sink cfg ~hold =
  let mutation =
    match cfg.mutation with
    | "" -> Types.M_none
    | "skip-piggyback" -> Types.M_drop_piggyback
    | "skip-dedup" -> Types.M_skip_dedup
    | "eager-rollback" -> Types.M_eager_rollback
    | m -> invalid_arg (Printf.sprintf "Model: mutation %S is not a DG mutation" m)
  in
  let dup = if mutation = Types.M_skip_dedup then 1.0 else 0.0 in
  let oracle = Oracle.create ~n:cfg.n in
  let trace = Trace.create () in
  let monitor =
    Check.Monitor.create ~rules:(Runner.check_rules cfg.protocol) ()
  in
  Trace.attach trace (Check.Monitor.sink monitor);
  (match sink with Some s -> Trace.attach trace s | None -> ());
  let sys =
    System.create ~seed:1L ~net_config:(mc_net_config ~n:cfg.n ~dup)
      ~config:(mc_dg_config ~hold ~mutation) ~tracer:(Oracle.tracer oracle)
      ~trace ~n:cfg.n
      ~app:(Traffic.app ~n:cfg.n Traffic.Ring)
      ()
  in
  for i = 0 to cfg.msgs - 1 do
    System.inject_at sys ~at:0.0 ~pid:(i mod cfg.n)
      (Traffic.fresh ~key:(i + 1) ~hops:cfg.hops)
  done;
  let proc pid = System.process sys pid in
  {
    i_engine = System.engine sys;
    i_alive = (fun pid -> Process.alive (proc pid));
    i_crash = (fun pid -> Process.fail (proc pid));
    i_digest =
      (fun () ->
        let acc = ref 0 in
        for pid = 0 to cfg.n - 1 do
          let p = proc pid in
          acc :=
            Hashtbl.hash
              (!acc, Traffic.digest (Process.state p), Process.alive p,
               Process.version p)
        done;
        !acc);
    i_finish =
      (fun () ->
        Check.Monitor.cross_check monitor ~n:cfg.n
          ~failures:(Oracle.failures oracle)
          ~rollbacks_of:(Oracle.rollbacks_of oracle);
        let sanitizer =
          List.map violation_string (Check.Monitor.finish monitor)
        in
        let ground_truth =
          List.map
            (fun v -> Printf.sprintf "oracle %s: %s" v.Oracle.check v.Oracle.detail)
            (Oracle.check oracle)
        in
        sanitizer @ ground_truth);
  }

(* Baselines share the runner's uniform protocol surface; only the
   per-module closures differ. *)
let build_baseline (type w p) ?sink cfg ~name
    ~(make_net : Engine.t -> Network.config -> w)
    ~(create :
       engine:Engine.t ->
       net:w ->
       app:(Traffic.state, Traffic.msg) Types.app ->
       id:int ->
       n:int ->
       metrics:Metrics.Scope.t ->
       next_uid:(unit -> int) ->
       unit ->
       p) ~(inject : p -> Traffic.msg -> unit) ~(fail : p -> unit)
    ~(alive : p -> bool) ~(state : p -> Traffic.state) =
  let engine = Engine.create ~seed:1L () in
  let trace = Trace.create () in
  let monitor =
    Check.Monitor.create ~rules:(Runner.check_rules cfg.protocol) ()
  in
  Trace.attach trace (Check.Monitor.sink monitor);
  (match sink with Some s -> Trace.attach trace s | None -> ());
  Engine.set_tracer engine trace;
  let net = make_net engine (mc_net_config ~n:cfg.n ~dup:0.0) in
  let registry = Metrics.registry () in
  let uid = ref 0 in
  let next_uid () = incr uid; !uid in
  let app = Traffic.app ~n:cfg.n Traffic.Ring in
  let procs =
    Array.init cfg.n (fun id ->
        let metrics =
          Metrics.Scope.create ~registry ~protocol:name ~process:id ()
        in
        create ~engine ~net ~app ~id ~n:cfg.n ~metrics ~next_uid ())
  in
  for i = 0 to cfg.msgs - 1 do
    let pid = i mod cfg.n in
    let msg = Traffic.fresh ~key:(i + 1) ~hops:cfg.hops in
    ignore
      (Engine.schedule_at engine ~label:(inject_label pid) 0.0 (fun () ->
           inject procs.(pid) msg))
  done;
  {
    i_engine = engine;
    i_alive = (fun pid -> alive procs.(pid));
    i_crash = (fun pid -> fail procs.(pid));
    i_digest =
      (fun () ->
        Array.fold_left
          (fun acc p -> Hashtbl.hash (acc, Traffic.digest (state p), alive p))
          0 procs);
    i_finish =
      (fun () -> List.map violation_string (Check.Monitor.finish monitor));
  }

let build ?sink cfg =
  validate cfg;
  match cfg.protocol with
  | Runner.Damani_garg -> build_damani ?sink cfg ~hold:true
  | Runner.Damani_garg_no_hold -> build_damani ?sink cfg ~hold:false
  | Runner.Pessimistic ->
      build_baseline ?sink cfg ~name:"pessimistic"
        ~make_net:Pessimistic.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Pessimistic.create ~engine ~net ~app ~id ~n
            ~config:(mc_pessimistic_config ~mutation:cfg.mutation)
            ~metrics ~next_uid ())
        ~inject:Pessimistic.inject ~fail:Pessimistic.fail
        ~alive:Pessimistic.alive ~state:Pessimistic.state
  | Runner.Sender_based ->
      build_baseline ?sink cfg ~name:"sender-based"
        ~make_net:Sender_based.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Sender_based.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Sender_based.inject ~fail:Sender_based.fail
        ~alive:Sender_based.alive ~state:Sender_based.state
  | Runner.Strom_yemini ->
      build_baseline ?sink cfg ~name:"strom-yemini"
        ~make_net:Strom_yemini.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Strom_yemini.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Strom_yemini.inject ~fail:Strom_yemini.fail
        ~alive:Strom_yemini.alive ~state:Strom_yemini.state
  | Runner.Peterson_kearns ->
      build_baseline ?sink cfg ~name:"peterson-kearns"
        ~make_net:Peterson_kearns.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Peterson_kearns.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Peterson_kearns.inject ~fail:Peterson_kearns.fail
        ~alive:Peterson_kearns.alive ~state:Peterson_kearns.state
  | Runner.Checkpoint_only ->
      build_baseline ?sink cfg ~name:"checkpoint-only"
        ~make_net:Checkpoint_only.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Checkpoint_only.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Checkpoint_only.inject ~fail:Checkpoint_only.fail
        ~alive:Checkpoint_only.alive ~state:Checkpoint_only.state
  | Runner.Coordinated ->
      build_baseline ?sink cfg ~name:"coordinated"
        ~make_net:Coordinated.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Coordinated.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Coordinated.inject ~fail:Coordinated.fail
        ~alive:Coordinated.alive ~state:Coordinated.state
