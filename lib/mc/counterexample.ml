module Json = Optimist_obs.Json
module Trace = Optimist_obs.Trace
module Runner = Optimist_runner.Runner

(* A counterexample is a (configuration, decision sequence) pair —
   everything needed to re-run the violating schedule on a fresh
   instance. The JSON form is the checker's exchange format: [recsim mc]
   writes it, [recsim mc replay] turns it back into a standard JSONL
   trace that the offline linter and trace tooling accept. *)

type t = {
  cx_cfg : Model.cfg;
  cx_decisions : Dpor.decision list;
  cx_violations : string list;
}

let decision_to_json = function
  | Dpor.Fire { kind; pid; src; info; nth } ->
      Json.Obj
        [
          ("t", Json.String "fire");
          ("kind", Json.String kind);
          ("pid", Json.Int pid);
          ("src", Json.Int src);
          ("info", Json.String info);
          ("nth", Json.Int nth);
        ]
  | Dpor.Crash pid ->
      Json.Obj [ ("t", Json.String "crash"); ("pid", Json.Int pid) ]

let to_json cx =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("kind", Json.String "mc-counterexample");
      ("protocol", Json.String (Runner.protocol_name cx.cx_cfg.Model.protocol));
      ("mutation", Json.String cx.cx_cfg.Model.mutation);
      ("procs", Json.Int cx.cx_cfg.Model.n);
      ("msgs", Json.Int cx.cx_cfg.Model.msgs);
      ("hops", Json.Int cx.cx_cfg.Model.hops);
      ("crashes", Json.Int cx.cx_cfg.Model.crashes);
      ("decisions", Json.List (List.map decision_to_json cx.cx_decisions));
      ( "violations",
        Json.List (List.map (fun v -> Json.String v) cx.cx_violations) );
    ]

let to_string cx = Json.to_string (to_json cx)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Option.bind (Json.mem name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "counterexample: missing or bad %S" name)

let decision_of_json j =
  let* t = field "t" Json.string_value j in
  match t with
  | "crash" ->
      let* pid = field "pid" Json.to_int j in
      Ok (Dpor.Crash pid)
  | "fire" ->
      let* kind = field "kind" Json.string_value j in
      let* pid = field "pid" Json.to_int j in
      let* src = field "src" Json.to_int j in
      let* info = field "info" Json.string_value j in
      let* nth = field "nth" Json.to_int j in
      Ok (Dpor.Fire { kind; pid; src; info; nth })
  | other -> Error (Printf.sprintf "counterexample: unknown decision %S" other)

let rec decisions_of_json = function
  | [] -> Ok []
  | j :: rest ->
      let* d = decision_of_json j in
      let* ds = decisions_of_json rest in
      Ok (d :: ds)

let of_json j =
  let* protocol_name = field "protocol" Json.string_value j in
  let* protocol =
    match Runner.protocol_of_string protocol_name with
    | Some p -> Ok p
    | None ->
        Error (Printf.sprintf "counterexample: unknown protocol %S" protocol_name)
  in
  let* mutation = field "mutation" Json.string_value j in
  let* n = field "procs" Json.to_int j in
  let* msgs = field "msgs" Json.to_int j in
  let* hops = field "hops" Json.to_int j in
  let* crashes = field "crashes" Json.to_int j in
  let* decision_js = field "decisions" Json.list_value j in
  let* decisions = decisions_of_json decision_js in
  let violations =
    match Json.mem "violations" j with
    | Some (Json.List l) -> List.filter_map Json.string_value l
    | _ -> []
  in
  Ok
    {
      cx_cfg = { Model.protocol; n; msgs; hops; crashes; mutation };
      cx_decisions = decisions;
      cx_violations = violations;
    }

let of_string s =
  let* j = Json.of_string s in
  of_json j

(* Re-run the counterexample's schedule, streaming the execution as a
   standard JSONL trace through [write]. Returns the violations the
   re-execution reports (empty means the counterexample went stale). *)
let replay ~write cx =
  let sink = Trace.jsonl_sink write in
  let build () = Model.build ~sink cx.cx_cfg in
  let r =
    Strategy.execute ~build ~crashes:cx.cx_cfg.Model.crashes
      ~prefix:cx.cx_decisions
      ~depth:(List.length cx.cx_decisions)
      ()
  in
  r.Strategy.x_violations
