module Engine = Optimist_sim.Engine

(* A decision names one transition of the controlled scheduler: fire one
   enabled event, or crash a process at the current instant. Events are
   addressed by their label plus an ordinal among same-label candidates
   (two in-flight copies of a duplicated message carry the same label),
   never by engine sequence number — seq assignment depends on the
   interleaving, labels do not, so decisions replay stably. *)
type decision =
  | Fire of { kind : string; pid : int; src : int; info : string; nth : int }
  | Crash of int

let fire_of_label (l : Engine.label) ~nth =
  Fire { kind = l.l_kind; pid = l.l_pid; src = l.l_src; info = l.l_info; nth }

let compare_label (a : Engine.label) (b : Engine.label) =
  compare
    (a.l_kind, a.l_pid, a.l_src, a.l_info)
    (b.l_kind, b.l_pid, b.l_src, b.l_info)

(* Canonical view of an enabled set: candidates sorted by label (ties by
   seq), each paired with its [Fire] decision. The head of this list is
   the default choice everywhere the explorer does not branch — crucially
   NOT the engine's FIFO order, which would diverge after the explorer
   swaps two independent events upstream (seq assignment shifts, label
   order does not). *)
let canonical (cands : Engine.candidate array) :
    (Engine.candidate * decision) list =
  let sorted =
    List.sort
      (fun (a : Engine.candidate) (b : Engine.candidate) ->
        let c = compare_label a.c_label b.c_label in
        if c <> 0 then c else compare a.c_seq b.c_seq)
      (Array.to_list cands)
  in
  let rec tag prev nth = function
    | [] -> []
    | (c : Engine.candidate) :: rest ->
        let nth =
          match prev with
          | Some (p : Engine.candidate) when compare_label p.c_label c.c_label = 0
            ->
              nth + 1
          | _ -> 0
        in
        (c, fire_of_label c.c_label ~nth) :: tag (Some c) nth rest
  in
  tag None 0 sorted

let pid_of = function Fire f -> f.pid | Crash p -> p

(* Independence relation for sleep sets. Two fired events commute when
   they act on different processes: every labelled event (delivery,
   timer, restart, injection) mutates exactly one process's state plus
   per-destination network queues. Anonymous events (pid -1) and crash
   decisions are conservatively dependent on everything — conservatism
   only costs pruning, never soundness. *)
let independent a b =
  match (a, b) with
  | Crash _, _ | _, Crash _ -> false
  | Fire f, Fire g -> f.pid >= 0 && g.pid >= 0 && f.pid <> g.pid

(* Sleep-set propagation along an executed transition: a sleeping
   decision stays asleep only while the execution keeps commuting with
   it (Godefroid's rule). *)
let filter_sleep ~taken sleep = List.filter (independent taken) sleep

let to_string = function
  | Fire { kind; pid; src; info; nth } ->
      let b = Buffer.create 24 in
      Buffer.add_string b kind;
      if pid >= 0 then Buffer.add_string b (Printf.sprintf " p%d" pid);
      if src >= 0 then Buffer.add_string b (Printf.sprintf " <-%d" src);
      if info <> "" then Buffer.add_string b (" " ^ info);
      if nth > 0 then Buffer.add_string b (Printf.sprintf " #%d" nth);
      Buffer.contents b
  | Crash p -> Printf.sprintf "crash p%d" p

let seq_to_string ds = String.concat "; " (List.map to_string ds)
