(** State fingerprints for pruning re-visited states during
    exploration. *)

module Engine = Optimist_sim.Engine

val state :
  digest:int ->
  clock:float ->
  budget:int ->
  queued:Engine.candidate array ->
  int64
(** FNV-1a hash of the observable model state: application/process
    digest, virtual time, remaining crash budget, and the pending-event
    multiset (hashed in (time, label) order — engine sequence numbers
    are interleaving-dependent and excluded). *)

type table

val create_table : unit -> table

val seen : table -> int64 -> remaining:int -> bool
(** [seen tbl fp ~remaining] is [true] when [fp] was already recorded
    with at least [remaining] branching budget left — in which case the
    current execution cannot reach anything new and may be cut.
    Otherwise records the pair and returns [false]. *)
