(** Model-checking configurations: small protocol instances rebuilt
    from scratch for every explored schedule. *)

module Engine = Optimist_sim.Engine
module Trace = Optimist_obs.Trace
module Runner = Optimist_runner.Runner

type cfg = {
  protocol : Runner.protocol;
  n : int;  (** processes, ids [0, n) *)
  msgs : int;  (** app messages injected at t=0, round-robin over pids *)
  hops : int;  (** forwarding hops per injected message *)
  crashes : int;  (** crash-injection budget for the explorer *)
  mutation : string;  (** [""] for the unmodified protocol *)
}

val default_cfg : cfg
(** Damani-Garg, 3 processes, 2 messages x 2 hops, 1 crash. *)

type mutant = {
  mu_name : string;
  mu_protocol : Runner.protocol;
  mu_rule : string;  (** the sanitizer rule the mutant must trip *)
  mu_doc : string;
}

val mutants : mutant list
(** The shipped deliberately-broken variants; each is catchable by the
    offline linter, so replayed counterexample traces fail
    [recsim check --strict]. *)

val find_mutant : string -> mutant option

val validate : cfg -> unit
(** Raises [Invalid_argument] on out-of-range sizes, unknown mutations,
    or a mutation applied to the wrong protocol. *)

type instance = {
  i_engine : Engine.t;
  i_alive : int -> bool;
  i_crash : int -> unit;
  i_digest : unit -> int;  (** observable-state hash, for fingerprinting *)
  i_finish : unit -> string list;
      (** end-of-execution verdict: sanitizer + oracle violations as
          stable strings (no timestamps, so violation sets compare
          across interleavings). Valid only at quiescence. *)
}

val build : ?sink:Trace.sink -> cfg -> instance
(** Construct a fresh instance: engine, network, processes, monitor
    (and, for Damani-Garg, the ground-truth oracle), with all traffic
    injected at t=0. [sink] additionally receives the execution's trace
    events (used by counterexample replay). *)
