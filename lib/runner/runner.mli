(** Experiment runner: one entry point that executes the same workload and
    fault schedule under any of the implemented recovery protocols and
    returns normalized metrics. The bench harness builds every table of
    EXPERIMENTS.md out of these reports. *)

module Network = Optimist_net.Network
module Metrics = Optimist_obs.Metrics
module Trace = Optimist_obs.Trace
module Check = Optimist_check.Check
module Schedule = Optimist_workload.Schedule
module Traffic = Optimist_workload.Traffic

type protocol =
  | Damani_garg  (** the paper's protocol, lib/core *)
  | Damani_garg_no_hold  (** ablation: deliverability hold disabled *)
  | Pessimistic
  | Sender_based
  | Strom_yemini
  | Peterson_kearns
  | Checkpoint_only
  | Coordinated  (** consistent checkpointing, Koo-Toueg style *)

val all_protocols : protocol list

val protocol_name : protocol -> string

val protocol_of_string : string -> protocol option

type check_mode =
  | No_check
  | Check  (** run the online sanitizer; violations land in [r_check] *)
  | Check_strict
      (** same monitoring — the mode only signals to callers (the CLI)
          that warnings should also fail the run *)

val check_rules : protocol -> string list
(** The sanitizer rules this protocol's trace is expected to satisfy:
    every rule for the Damani-Garg variants, the subset each baseline
    declares ([check_rules] in its module) otherwise. *)

type params = {
  protocol : protocol;
  n : int;
  seed : int64;
  pattern : Traffic.pattern;
  rate : float;  (** environment injections per process per time unit *)
  duration : float;  (** injection window; the run then drains *)
  hops : int;  (** forwarding chain length per injection *)
  faults : Schedule.fault list;
  ordering : Network.ordering;
  drop : float;  (** Data-message loss probability, in [0, 1] *)
  dup : float;  (** Data-message duplication probability, in [0, 1] *)
  with_oracle : bool;
      (** attach the ground-truth oracle (Damani-garg variants only) *)
  trace : Trace.t;
      (** structured-trace recorder installed on the engine; defaults to
          {!Trace.null} (no events, one boolean check per site) *)
  check : check_mode;
      (** attach the online sanitizer as a trace sink (forcing a live
          recorder if [trace] is {!Trace.null}); defaults to
          [No_check] *)
}

val default_params : params

type report = {
  r_protocol : string;
  r_params : params;
  r_counters : (string * int) list;  (** summed over processes *)
  r_net : (string * int) list;
  r_digests : int list;  (** final application digests, per process *)
  r_events : int;  (** simulation events executed *)
  r_virtual_end : float;  (** virtual time at quiescence *)
  r_oracle_stats : (int * int * int) option;  (** live, lost, discarded *)
  r_violations : string list;  (** oracle check failures (empty = clean) *)
  r_check : Check.violation list;
      (** online-sanitizer violations, including the oracle cross-check
          when both the sanitizer and the oracle ran (empty = clean or
          checking off); also counted by the [check.violations] metric *)
  r_registry : Metrics.registry;
      (** per-process metric scopes, labelled [(protocol, pid)] *)
}

val counter : report -> string -> int
(** 0 when absent. *)

val run : params -> report

val pp_report : Format.formatter -> report -> unit
