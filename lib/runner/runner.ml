module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Counters = Optimist_util.Stats.Counters
module Metrics = Optimist_obs.Metrics
module Trace = Optimist_obs.Trace
module Types = Optimist_core.Types
module System = Optimist_core.System
module Process = Optimist_core.Process
module Oracle = Optimist_oracle.Oracle
module Schedule = Optimist_workload.Schedule
module Traffic = Optimist_workload.Traffic
module Check = Optimist_check.Check
module Pessimistic = Optimist_protocols.Pessimistic
module Sender_based = Optimist_protocols.Sender_based
module Strom_yemini = Optimist_protocols.Strom_yemini
module Peterson_kearns = Optimist_protocols.Peterson_kearns
module Checkpoint_only = Optimist_protocols.Checkpoint_only
module Coordinated = Optimist_protocols.Coordinated

type protocol =
  | Damani_garg
  | Damani_garg_no_hold
  | Pessimistic
  | Sender_based
  | Strom_yemini
  | Peterson_kearns
  | Checkpoint_only
  | Coordinated

let all_protocols =
  [
    Damani_garg;
    Damani_garg_no_hold;
    Pessimistic;
    Sender_based;
    Strom_yemini;
    Peterson_kearns;
    Checkpoint_only;
    Coordinated;
  ]

let protocol_name = function
  | Damani_garg -> "damani-garg"
  | Damani_garg_no_hold -> "damani-garg-nohold"
  | Pessimistic -> "pessimistic"
  | Sender_based -> "sender-based"
  | Strom_yemini -> "strom-yemini"
  | Peterson_kearns -> "peterson-kearns"
  | Checkpoint_only -> "checkpoint-only"
  | Coordinated -> "coordinated"

let protocol_of_string s =
  List.find_opt (fun p -> protocol_name p = s) all_protocols

type check_mode = No_check | Check | Check_strict

type params = {
  protocol : protocol;
  n : int;
  seed : int64;
  pattern : Traffic.pattern;
  rate : float;
  duration : float;
  hops : int;
  faults : Schedule.fault list;
  ordering : Network.ordering;
  drop : float;  (** Data-message loss probability *)
  dup : float;  (** Data-message duplication probability *)
  with_oracle : bool;
  trace : Trace.t;
  check : check_mode;
}

let default_params =
  {
    protocol = Damani_garg;
    n = 4;
    seed = 1L;
    pattern = Traffic.Uniform;
    rate = 0.05;
    duration = 500.0;
    hops = 6;
    faults = [];
    ordering = Network.Reorder;
    drop = 0.0;
    dup = 0.0;
    with_oracle = false;
    trace = Trace.null;
    check = No_check;
  }

(* Which sanitizer rules a protocol's trace is expected to satisfy. The
   Damani-Garg variants are the paper's protocol and carry every rule;
   each baseline declares its own applicable subset. *)
let check_rules = function
  | Damani_garg | Damani_garg_no_hold -> Check.all_ids
  | Pessimistic -> Optimist_protocols.Pessimistic.check_rules
  | Sender_based -> Optimist_protocols.Sender_based.check_rules
  | Strom_yemini -> Optimist_protocols.Strom_yemini.check_rules
  | Peterson_kearns -> Optimist_protocols.Peterson_kearns.check_rules
  | Checkpoint_only -> Optimist_protocols.Checkpoint_only.check_rules
  | Coordinated -> Optimist_protocols.Coordinated.check_rules

type report = {
  r_protocol : string;
  r_params : params;
  r_counters : (string * int) list;
  r_net : (string * int) list;
  r_digests : int list;
  r_events : int;
  r_virtual_end : float;
  r_oracle_stats : (int * int * int) option;
  r_violations : string list;
  r_check : Check.violation list;
  r_registry : Metrics.registry;
}

let counter r name =
  match List.assoc_opt name r.r_counters with Some v -> v | None -> 0

let merge_counters dumps =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun dump ->
      List.iter
        (fun (k, v) ->
          match Hashtbl.find_opt acc k with
          | Some r -> r := !r + v
          | None -> Hashtbl.add acc k (ref v))
        dump)
    dumps;
  Hashtbl.fold (fun k r l -> (k, !r) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let injections params =
  Schedule.poisson_injections ~seed:(Int64.add params.seed 7919L) ~n:params.n
    ~rate:params.rate ~duration:params.duration ~hops:params.hops

let net_config params =
  {
    (Network.default_config ~n:params.n) with
    Network.ordering = params.ordering;
    drop_probability = params.drop;
    duplicate_probability = params.dup;
  }

(* The Damani-Garg variants run through System (they share lib/core). *)
let run_damani params ~hold ~monitor =
  let oracle = if params.with_oracle then Some (Oracle.create ~n:params.n) else None in
  let tracer = Option.map Oracle.tracer oracle in
  let config = { Types.default_config with Types.hold_undeliverable = hold } in
  let app = Traffic.app ~n:params.n params.pattern in
  let registry = Metrics.registry () in
  let sys =
    System.create ~seed:params.seed ~net_config:(net_config params) ~config
      ?tracer ~trace:params.trace ~registry ~n:params.n ~app ()
  in
  let schedule = Schedule.make ~injections:(injections params) ~faults:params.faults in
  Schedule.apply schedule
    ~inject:(fun ~at ~pid msg -> System.inject_at sys ~at ~pid msg)
    ~crash:(fun ~at ~pid -> System.fail_at sys ~at ~pid)
    ~partition:(fun ~at ~groups -> System.partition_at sys ~at ~groups)
    ~heal:(fun ~at -> System.heal_at sys ~at);
  System.run sys;
  (* Online sanitizer cross-check against the ground-truth timeline:
     the monitor reconstructed failure/rollback counts from the event
     stream alone; the oracle observed the real states (OPT014). *)
  (match (monitor, oracle) with
  | Some m, Some o ->
      Check.Monitor.cross_check m ~n:params.n ~failures:(Oracle.failures o)
        ~rollbacks_of:(Oracle.rollbacks_of o)
  | _ -> ());
  let engine = System.engine sys in
  let dumps = List.map snd (System.counters sys) in
  let history_records =
    Array.fold_left
      (fun acc p -> acc + Process.history_record_count p)
      0 (System.processes sys)
  in
  {
    r_protocol =
      (if hold then protocol_name Damani_garg
       else protocol_name Damani_garg_no_hold);
    r_params = params;
    r_counters = merge_counters ([ ("history_records", history_records) ] :: dumps);
    r_net = Counters.to_list (Network.stats (System.network sys));
    r_digests =
      Array.to_list
        (Array.map (fun p -> Traffic.digest (Process.state p)) (System.processes sys));
    r_events = Engine.events_fired engine;
    r_virtual_end = Engine.now engine;
    r_oracle_stats = Option.map Oracle.status_counts oracle;
    r_violations =
      (match oracle with
      | None -> []
      | Some o ->
          List.map
            (fun v -> v.Oracle.check ^ ": " ^ v.Oracle.detail)
            (Oracle.check o));
    r_check = [];
    r_registry = registry;
  }

(* Generic driver for the baselines, which share the same surface. *)
let run_baseline (type w t) params ~name
    ~(make_net : Engine.t -> Network.config -> w)
    ~(create :
       engine:Engine.t ->
       net:w ->
       app:(Traffic.state, Traffic.msg) Types.app ->
       id:int ->
       n:int ->
       metrics:Metrics.Scope.t ->
       next_uid:(unit -> int) ->
       unit ->
       t) ~(inject : t -> Traffic.msg -> unit) ~(fail : t -> unit)
    ~(state : t -> Traffic.state) =
  let engine = Engine.create ~seed:params.seed () in
  Engine.set_tracer engine params.trace;
  let net = make_net engine (net_config params) in
  let registry = Metrics.registry () in
  let uid = ref 0 in
  let next_uid () = incr uid; !uid in
  let app = Traffic.app ~n:params.n params.pattern in
  let procs =
    Array.init params.n (fun id ->
        let metrics =
          Metrics.Scope.create ~registry ~protocol:name ~process:id ()
        in
        create ~engine ~net ~app ~id ~n:params.n ~metrics ~next_uid ())
  in
  let schedule = Schedule.make ~injections:(injections params) ~faults:params.faults in
  Schedule.apply schedule
    ~inject:(fun ~at ~pid msg ->
      ignore (Engine.schedule_at engine at (fun () -> inject procs.(pid) msg)))
    ~crash:(fun ~at ~pid ->
      ignore (Engine.schedule_at engine at (fun () -> fail procs.(pid))))
    ~partition:(fun ~at:_ ~groups:_ -> ())
    ~heal:(fun ~at:_ -> ());
  Engine.run engine;
  {
    r_protocol = name;
    r_params = params;
    r_counters = Metrics.totals registry;
    r_net = [];
    r_digests = Array.to_list (Array.map (fun p -> Traffic.digest (state p)) procs);
    r_events = Engine.events_fired engine;
    r_virtual_end = Engine.now engine;
    r_oracle_stats = None;
    r_violations = [];
    r_check = [];
    r_registry = registry;
  }

let dispatch params ~monitor =
  match params.protocol with
  | Damani_garg -> run_damani params ~hold:true ~monitor
  | Damani_garg_no_hold -> run_damani params ~hold:false ~monitor
  | Pessimistic ->
      run_baseline params ~name:(protocol_name Pessimistic)
        ~make_net:Pessimistic.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Pessimistic.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Pessimistic.inject ~fail:Pessimistic.fail
        ~state:Pessimistic.state
  | Sender_based ->
      run_baseline params ~name:(protocol_name Sender_based)
        ~make_net:Sender_based.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Sender_based.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Sender_based.inject ~fail:Sender_based.fail
        ~state:Sender_based.state
  | Strom_yemini ->
      run_baseline params ~name:(protocol_name Strom_yemini)
        ~make_net:Strom_yemini.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Strom_yemini.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Strom_yemini.inject ~fail:Strom_yemini.fail
        ~state:Strom_yemini.state
  | Peterson_kearns ->
      run_baseline params ~name:(protocol_name Peterson_kearns)
        ~make_net:Peterson_kearns.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Peterson_kearns.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Peterson_kearns.inject ~fail:Peterson_kearns.fail
        ~state:Peterson_kearns.state
  | Checkpoint_only ->
      run_baseline params ~name:(protocol_name Checkpoint_only)
        ~make_net:Checkpoint_only.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Checkpoint_only.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Checkpoint_only.inject ~fail:Checkpoint_only.fail
        ~state:Checkpoint_only.state
  | Coordinated ->
      run_baseline params ~name:(protocol_name Coordinated)
        ~make_net:Coordinated.make_net
        ~create:(fun ~engine ~net ~app ~id ~n ~metrics ~next_uid () ->
          Coordinated.create ~engine ~net ~app ~id ~n ~metrics ~next_uid ())
        ~inject:Coordinated.inject ~fail:Coordinated.fail
        ~state:Coordinated.state

let run params =
  match params.check with
  | No_check -> dispatch params ~monitor:None
  | Check | Check_strict ->
      (* The sanitizer is a trace sink, so checking forces a live
         recorder even when the caller did not ask for tracing. *)
      let trace =
        if params.trace == Trace.null then Trace.create () else params.trace
      in
      let monitor =
        Check.Monitor.create ~rules:(check_rules params.protocol) ()
      in
      Trace.attach trace (Check.Monitor.sink monitor);
      let r = dispatch { params with trace } ~monitor:(Some monitor) in
      let violations = Check.Monitor.finish monitor in
      let scope =
        Metrics.Scope.create ~registry:r.r_registry ~protocol:r.r_protocol
          ~process:(-1) ()
      in
      Metrics.Scope.incr ~by:(List.length violations) scope "check.violations";
      { r with r_check = violations }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>protocol: %s@,events: %d  virtual end: %.1f@," r.r_protocol
    r.r_events r.r_virtual_end;
  List.iter (fun (k, v) -> Format.fprintf ppf "%-28s %d@," k v) r.r_counters;
  (match r.r_oracle_stats with
  | Some (live, lost, discarded) ->
      Format.fprintf ppf "oracle: live=%d lost=%d discarded=%d@," live lost discarded
  | None -> ());
  List.iter (fun v -> Format.fprintf ppf "VIOLATION %s@," v) r.r_violations;
  List.iter
    (fun v -> Format.fprintf ppf "CHECK %a@," Check.pp_violation v)
    r.r_check;
  Format.fprintf ppf "@]"
