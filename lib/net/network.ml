module Engine = Optimist_sim.Engine
module Prng = Optimist_util.Prng
module Counters = Optimist_util.Stats.Counters
module Trace = Optimist_obs.Trace

type traffic = Data | Control

type ordering = Fifo | Reorder

type latency = Constant of float | Uniform of float * float | Exponential of float

type config = {
  n : int;
  ordering : ordering;
  latency : latency;
  control_latency : latency option;
  drop_probability : float;
  duplicate_probability : float;
}

let default_config ~n =
  {
    n;
    ordering = Reorder;
    latency = Uniform (1.0, 10.0);
    control_latency = None;
    drop_probability = 0.0;
    duplicate_probability = 0.0;
  }

type 'a envelope = {
  src : int;
  dst : int;
  sent_at : Engine.time;
  traffic : traffic;
  payload : 'a;
}

type 'a t = {
  engine : Engine.t;
  cfg : config;
  rng : Prng.t;
  handlers : ('a envelope -> unit) option array;
  (* Next available delivery instant per (src, dst) channel, for FIFO. *)
  channel_clock : Engine.time array array;
  mutable group_of : int array option; (* partition group per endpoint *)
  down : bool array;
  (* Traffic blocked by a partition, waiting for heal. *)
  mutable partition_held : 'a envelope list;
  (* Traffic addressed to a down endpoint, waiting for it to come up. *)
  down_held : 'a envelope list array;
  stats : Counters.t;
}

let create engine cfg =
  if cfg.n <= 0 then invalid_arg "Network.create: n must be positive";
  {
    engine;
    cfg;
    rng = Prng.split (Engine.rng engine);
    handlers = Array.make cfg.n None;
    channel_clock = Array.make_matrix cfg.n cfg.n 0.0;
    group_of = None;
    down = Array.make cfg.n false;
    partition_held = [];
    down_held = Array.make cfg.n [];
    stats = Counters.create ();
  }

let config t = t.cfg

let stats t = t.stats

let set_handler t id f =
  if id < 0 || id >= t.cfg.n then invalid_arg "Network.set_handler: bad id";
  t.handlers.(id) <- Some f

let draw_latency t traffic =
  let model =
    match (traffic, t.cfg.control_latency) with
    | Control, Some m -> m
    | (Control | Data), _ -> t.cfg.latency
  in
  match model with
  | Constant d -> d
  | Uniform (lo, hi) -> Prng.uniform_float t.rng ~lo ~hi
  | Exponential mean -> Prng.exponential t.rng ~mean

let reachable t src dst =
  match t.group_of with
  | None -> true
  | Some groups -> groups.(src) = groups.(dst)

let is_down t id = t.down.(id)

let traffic_label = function Data -> "data" | Control -> "control"

(* Network events are infrastructure, not protocol state, so they go out
   as [Custom] records with pid = the endpoint they concern (or -1 for
   fabric-wide ones). Callers guard with [trace_on] before building the
   detail string. *)
let trace_on t = Trace.enabled (Engine.tracer t.engine)

let trace_emit t ~pid name detail =
  Trace.emit (Engine.tracer t.engine)
    {
      at = Engine.now t.engine;
      pid;
      ver = 0;
      clock = [||];
      kind = Custom { name; detail };
    }

let deliver t env =
  if t.down.(env.dst) then begin
    Counters.incr t.stats "held.down";
    if trace_on t then
      trace_emit t ~pid:env.dst "net.held_down"
        (Printf.sprintf "src=%d %s" env.src (traffic_label env.traffic));
    t.down_held.(env.dst) <- env :: t.down_held.(env.dst)
  end
  else begin
    Counters.incr t.stats (Printf.sprintf "delivered.%s" (traffic_label env.traffic));
    match t.handlers.(env.dst) with
    | Some f -> f env
    | None ->
        failwith (Printf.sprintf "Network: no handler installed for endpoint %d" env.dst)
  end

(* Schedule one copy of [env] for delivery, honouring FIFO channel clocks. *)
let schedule_delivery t env =
  let lat = draw_latency t env.traffic in
  let arrival =
    match t.cfg.ordering with
    | Reorder -> Engine.now t.engine +. lat
    | Fifo ->
        let floor = t.channel_clock.(env.src).(env.dst) in
        let at = Float.max (Engine.now t.engine +. lat) floor in
        (* Strictly increasing per channel so ties cannot reorder. *)
        t.channel_clock.(env.src).(env.dst) <- at +. 1e-9;
        at
  in
  let label =
    {
      Engine.l_kind = "deliver";
      l_pid = env.dst;
      l_src = env.src;
      l_info = traffic_label env.traffic;
    }
  in
  ignore (Engine.schedule_at t.engine ~label arrival (fun () -> deliver t env))

let send_envelope t env =
  Counters.incr t.stats (Printf.sprintf "sent.%s" (traffic_label env.traffic));
  if not (reachable t env.src env.dst) then begin
    Counters.incr t.stats "held.partition";
    if trace_on t then
      trace_emit t ~pid:env.src "net.held_partition"
        (Printf.sprintf "dst=%d %s" env.dst (traffic_label env.traffic));
    t.partition_held <- env :: t.partition_held
  end
  else begin
    match env.traffic with
    | Control -> schedule_delivery t env
    | Data ->
        if Prng.bernoulli t.rng t.cfg.drop_probability then begin
          Counters.incr t.stats "dropped.data";
          if trace_on t then
            trace_emit t ~pid:env.src "net.drop"
              (Printf.sprintf "dst=%d" env.dst)
        end
        else begin
          schedule_delivery t env;
          if Prng.bernoulli t.rng t.cfg.duplicate_probability then begin
            Counters.incr t.stats "duplicated.data";
            if trace_on t then
              trace_emit t ~pid:env.src "net.dup"
                (Printf.sprintf "dst=%d" env.dst);
            schedule_delivery t env
          end
        end
  end

let send t ?(traffic = Data) ~src ~dst payload =
  if src < 0 || src >= t.cfg.n || dst < 0 || dst >= t.cfg.n then
    invalid_arg "Network.send: endpoint out of range";
  send_envelope t
    { src; dst; sent_at = Engine.now t.engine; traffic; payload }

let broadcast t ?(traffic = Data) ~src payload =
  for dst = 0 to t.cfg.n - 1 do
    if dst <> src then send t ~traffic ~src ~dst payload
  done

let partition t groups =
  let assignment = Array.make t.cfg.n (-1) in
  List.iteri
    (fun g members ->
      List.iter
        (fun id ->
          if id < 0 || id >= t.cfg.n then
            invalid_arg "Network.partition: endpoint out of range";
          assignment.(id) <- g)
        members)
    groups;
  (* Endpoints not named form an implicit final group. *)
  let implicit = List.length groups in
  Array.iteri (fun id g -> if g = -1 then assignment.(id) <- implicit) assignment;
  t.group_of <- Some assignment;
  if trace_on t then
    trace_emit t ~pid:(-1) "net.partition"
      (Printf.sprintf "groups=%d" (implicit + 1))

let heal t =
  t.group_of <- None;
  let held = List.rev t.partition_held in
  t.partition_held <- [];
  if trace_on t then
    trace_emit t ~pid:(-1) "net.heal"
      (Printf.sprintf "released=%d" (List.length held));
  List.iter (fun env -> send_envelope t env) held

let set_down t id = t.down.(id) <- true

let set_up t ?(drop_held_data = false) id =
  t.down.(id) <- false;
  let held = List.rev t.down_held.(id) in
  t.down_held.(id) <- [];
  let keep env =
    match env.traffic with
    | Control -> true
    | Data -> not drop_held_data
  in
  List.iter
    (fun env ->
      if keep env then schedule_delivery t env
      else begin
        Counters.incr t.stats "dropped.data";
        if trace_on t then
          trace_emit t ~pid:id "net.drop"
            (Printf.sprintf "src=%d held" env.src)
      end)
    held
