module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Transport = Optimist_core.Transport
module Vclock = Optimist_clock.Vclock
module Ftvc = Optimist_clock.Ftvc
module Checkpoint_store = Optimist_storage.Checkpoint_store
module Metrics = Optimist_obs.Metrics
module Trace = Optimist_obs.Trace
open Optimist_core.Types

type announcement = {
  a_origin : int;
  a_ts : int; (* surviving own timestamp: states past it are gone *)
  a_cascade : bool; (* true when caused by a rollback, not a failure *)
}

type 'm wire =
  | W_app of { data : 'm; vc : Vclock.t; epoch : int; sender : int; uid : int }
  | W_ann of announcement

type ('s, 'm) checkpoint = { cp_state : 's; cp_vc : Vclock.t }

type config = { checkpoint_interval : float; restart_delay : float }

let default_config = { checkpoint_interval = 100.0; restart_delay = 20.0 }

type aux = {
  ax_epoch : int;
  ax_floor : int array;
  ax_peer_epoch : int array;
}

(* Durable state beyond the checkpoints themselves: the epoch counter and
   the announcement floors must survive a crash, or a restarted process
   would accept dependencies on states the whole system already agreed
   are forfeit. *)
type ('s, 'm) stable_hooks = {
  checkpoint_recorded : position:int -> ('s, 'm) checkpoint -> unit;
  checkpoints_discarded_after : position:int -> unit;
  aux_recorded : aux -> unit;
}

let null_hooks =
  {
    checkpoint_recorded = (fun ~position:_ _ -> ());
    checkpoints_discarded_after = (fun ~position:_ -> ());
    aux_recorded = (fun _ -> ());
  }

type ('s, 'm) image = {
  im_checkpoints : (('s, 'm) checkpoint * int) list; (* newest first *)
  im_aux : aux;
}

type ('s, 'm) t = {
  pid : int;
  n : int;
  rt : Transport.runtime;
  net : 'm wire Transport.t;
  app : ('s, 'm) app;
  config : config;
  stable_io : ('s, 'm) stable_hooks;
  next_uid : unit -> int;
  mutable state : 's;
  mutable vc : Vclock.t;
  mutable alive : bool;
  mutable epoch : int; (* bumped on every restart or rollback *)
  mutable peer_epoch : int array; (* newest epoch seen per peer *)
  mutable states_since_restore : int;
  checkpoints : ('s, 'm) checkpoint Checkpoint_store.t;
  (* Minimum surviving timestamp ever announced per origin: with no way to
     replay, dependencies past it are permanently invalid. *)
  floor : int array;
  metrics : Metrics.Scope.t;
}

let make_net engine cfg = Network.create engine cfg

let id t = t.pid
let alive t = t.alive
let state t = t.state
let metrics t = t.metrics
let counters t = Metrics.Scope.counters t.metrics

let tr_on t = Trace.enabled (t.rt.Transport.tracer ())

(* Vector clock rendered as FTVC entries with ver = 0; the event's [ver]
   field carries the epoch (bumped on every restart or rollback). *)
let tr_clock vc =
  Array.of_list (List.map (fun ts -> { Ftvc.ver = 0; ts }) (Vclock.to_list vc))

let tr_emit ?clock t kind =
  let clock = match clock with Some c -> c | None -> tr_clock t.vc in
  Trace.emit
    (t.rt.Transport.tracer ())
    { at = t.rt.Transport.now (); pid = t.pid; ver = t.epoch; clock; kind }

let record_aux t =
  t.stable_io.aux_recorded
    {
      ax_epoch = t.epoch;
      ax_floor = Array.copy t.floor;
      ax_peer_epoch = Array.copy t.peer_epoch;
    }

let send_app t dst data =
  Metrics.Scope.incr t.metrics "sent";
  Metrics.Scope.incr ~by:(t.n + 1) t.metrics "piggyback_words";
  let uid = t.next_uid () in
  if tr_on t then tr_emit t (Trace.Send { uid; dst });
  t.net.Transport.send ~lane:Transport.Data ~src:t.pid ~dst
    (W_app { data; vc = t.vc; epoch = t.epoch; sender = t.pid; uid });
  t.vc <- Vclock.tick t.vc ~me:t.pid

let run_app t ~src data =
  let state', sends = t.app.on_message ~me:t.pid ~src t.state data in
  t.state <- state';
  t.states_since_restore <- t.states_since_restore + 1;
  List.iter (fun (dst, payload) -> send_app t dst payload) sends

let take_checkpoint t =
  Metrics.Scope.incr t.metrics "checkpoints";
  if tr_on t then
    tr_emit t (Trace.Checkpoint { position = Vclock.get t.vc t.pid });
  let cp = { cp_state = t.state; cp_vc = t.vc } in
  let position = Vclock.get t.vc t.pid in
  Checkpoint_store.record t.checkpoints ~position cp;
  t.stable_io.checkpoint_recorded ~position cp

let announce t ~cascade =
  Metrics.Scope.incr ~by:(t.n - 1) t.metrics "control_messages";
  if tr_on t then
    tr_emit t
      (Trace.Token_sent
         { origin = t.pid; ver = t.epoch; ts = Vclock.get t.vc t.pid });
  t.net.Transport.broadcast ~lane:Transport.Control ~src:t.pid
    (W_ann
       { a_origin = t.pid; a_ts = Vclock.get t.vc t.pid; a_cascade = cascade })

(* Land on the newest checkpoint consistent with every announcement floor.
   There is no log: everything since that checkpoint is forfeited. *)
let restore_to_floor t =
  match
    Checkpoint_store.latest_satisfying t.checkpoints (fun cp _ ->
        let ok = ref true in
        for j = 0 to t.n - 1 do
          if j <> t.pid && Vclock.get cp.cp_vc j > t.floor.(j) then ok := false
        done;
        !ok)
  with
  | None -> assert false
  | Some (cp, position) ->
      Metrics.Scope.incr ~by:t.states_since_restore t.metrics "lost_states";
      t.states_since_restore <- 0;
      t.state <- cp.cp_state;
      t.vc <- cp.cp_vc;
      Checkpoint_store.discard_after t.checkpoints ~position;
      t.stable_io.checkpoints_discarded_after ~position

let orphaned t =
  let rec loop j =
    j < t.n
    && ((j <> t.pid && Vclock.get t.vc j > t.floor.(j)) || loop (j + 1))
  in
  loop 0

let rollback t ~cascade =
  Metrics.Scope.incr t.metrics "rollbacks";
  if cascade then Metrics.Scope.incr t.metrics "cascade_rollbacks";
  let lost_before = Metrics.Scope.get t.metrics "lost_states" in
  restore_to_floor t;
  t.epoch <- t.epoch + 1;
  record_aux t;
  if tr_on t then
    tr_emit t
      (Trace.Rollback
         { discarded = Metrics.Scope.get t.metrics "lost_states" - lost_before });
  (* Our own rollback may orphan others: the domino propagates. The
     announcement carries the restored timestamp — everything beyond it is
     forfeit. *)
  announce t ~cascade:true;
  t.vc <- Vclock.tick t.vc ~me:t.pid

let receive_announcement t (a : announcement) =
  Metrics.Scope.incr t.metrics "tokens_received";
  if tr_on t then
    tr_emit t (Trace.Token_recv { origin = a.a_origin; ver = 0; ts = a.a_ts });
  if a.a_ts < t.floor.(a.a_origin) then begin
    t.floor.(a.a_origin) <- a.a_ts;
    record_aux t
  end;
  if t.alive && orphaned t then begin
    if tr_on t then
      tr_emit t
        (Trace.Orphan_detected { origin = a.a_origin; ver = 0; ts = a.a_ts });
    rollback t ~cascade:a.a_cascade
  end

let do_restart t =
  Metrics.Scope.incr t.metrics "restarts";
  t.epoch <- t.epoch + 1;
  restore_to_floor t;
  record_aux t;
  t.alive <- true;
  if tr_on t then tr_emit t (Trace.Restart { new_ver = t.epoch });
  t.net.Transport.set_up ~drop_held_data:false t.pid;
  announce t ~cascade:false;
  t.vc <- Vclock.tick t.vc ~me:t.pid;
  take_checkpoint t

let fail t =
  if t.alive then begin
    t.alive <- false;
    if tr_on t then tr_emit t Trace.Failure;
    Metrics.Scope.incr t.metrics "failures";
    t.net.Transport.set_down t.pid;
    t.rt.Transport.schedule ~daemon:false ~delay:t.config.restart_delay
      (fun () -> do_restart t)
  end

let receive_app t ?(uid = -1) ~src ~vc ~epoch data =
  if epoch < t.peer_epoch.(src) then begin
    (* Stale traffic from a discarded incarnation of the sender. *)
    Metrics.Scope.incr t.metrics "discarded_obsolete";
    if tr_on t then
      tr_emit ~clock:(tr_clock vc) t (Trace.Drop_obsolete { uid; src })
  end
  else begin
    if epoch > t.peer_epoch.(src) then begin
      t.peer_epoch.(src) <- epoch;
      record_aux t
    end;
    (* Dependency on permanently lost states: unrecoverable, drop. *)
    let dead = ref false in
    for j = 0 to t.n - 1 do
      if j <> t.pid && Vclock.get vc j > t.floor.(j) then dead := true
    done;
    if !dead then begin
      Metrics.Scope.incr t.metrics "discarded_obsolete";
      if tr_on t then
        tr_emit ~clock:(tr_clock vc) t (Trace.Drop_obsolete { uid; src })
    end
    else begin
      Metrics.Scope.incr t.metrics "delivered";
      (* The delivery record carries the clock the send piggybacked (not
         the post-merge local clock): the sanitizer's piggyback-integrity
         rule pairs the two, and orphan knowledge is reconstructed from
         exactly what crossed the wire. *)
      if tr_on t then tr_emit ~clock:(tr_clock vc) t (Trace.Deliver { uid; src });
      t.vc <- Vclock.merge t.vc ~me:t.pid vc;
      run_app t ~src data
    end
  end

let inject t data =
  if t.alive then begin
    Metrics.Scope.incr t.metrics "injected";
    t.vc <- Vclock.tick t.vc ~me:t.pid;
    run_app t ~src:env_src data
  end

let handle_wire t (w : 'm wire) =
  match w with
  | W_app { data; vc; epoch; sender; uid } ->
      if t.alive then receive_app t ~uid ~src:sender ~vc ~epoch data
  | W_ann a -> receive_announcement t a

let create_rt ~rt ~net ~app ~id:pid ~n ?(config = default_config) ?metrics
    ?(stable = null_hooks) ?restore:image ~next_uid () =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Metrics.Scope.create ~protocol:"checkpoint-only" ~process:pid ()
  in
  let checkpoints, epoch, floor, peer_epoch =
    match image with
    | None ->
        (Checkpoint_store.create (), 0, Array.make n max_int, Array.make n 0)
    | Some im ->
        ( Checkpoint_store.of_items im.im_checkpoints,
          im.im_aux.ax_epoch,
          Array.copy im.im_aux.ax_floor,
          Array.copy im.im_aux.ax_peer_epoch )
  in
  let t =
    {
      pid;
      n;
      rt;
      net;
      app;
      config;
      stable_io = stable;
      next_uid;
      state = app.init pid;
      vc = Vclock.create ~n ~me:pid;
      alive = true;
      epoch;
      peer_epoch;
      states_since_restore = 0;
      checkpoints;
      floor;
      metrics;
    }
  in
  net.Transport.set_handler pid (fun w -> handle_wire t w);
  (match image with None -> take_checkpoint t | Some _ -> ());
  let rec checkpoint_loop () =
    if t.alive then take_checkpoint t;
    rt.Transport.schedule ~daemon:true ~delay:config.checkpoint_interval
      checkpoint_loop
  in
  rt.Transport.schedule ~daemon:true ~delay:config.checkpoint_interval
    checkpoint_loop;
  t

let create ~engine ~net ~app ~id ~n ?config ?metrics ~next_uid () =
  create_rt ~rt:(Transport.of_engine engine) ~net:(Transport.of_network net)
    ~app ~id ~n ?config ?metrics ~next_uid ()

(* Live-mode recovery for a process built with [?restore]: the crash
   already happened (SIGKILL); emit the failure record for the killed
   incarnation, then run the ordinary restart — land on the newest
   checkpoint consistent with the persisted floors and announce the
   surviving timestamp so peers can domino. *)
let recover t =
  if Checkpoint_store.count t.checkpoints = 0 then
    invalid_arg "Checkpoint_only.recover: empty checkpoint store";
  Metrics.Scope.incr t.metrics "failures";
  if tr_on t then tr_emit t Trace.Failure;
  t.alive <- false;
  do_restart t

(* Trace-sanitizer rules (optimist.check ids): deliveries carry the
   piggybacked vector clock, so the clock-pairing rule applies alongside
   the structural ones; recovery is announcement-driven without
   per-token rollback accounting. *)
let check_rules =
  [ "OPT001"; "OPT002"; "OPT003"; "OPT004"; "OPT005"; "OPT006"; "OPT007" ]
