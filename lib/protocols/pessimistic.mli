(** Pessimistic receiver-based message logging — the [3, 20] row of the
    paper's Table 1 (Borg-Baumbach-Glazer; Powell-Presotto).

    Every delivered message is written to stable storage {e synchronously}
    before the application processes it, so a crash never loses a delivered
    message: recovery is purely local (restore last checkpoint, replay the
    log) and no other process ever rolls back. The price is paid on every
    delivery during failure-free operation — modelled here as a stable-write
    latency that delays processing and is accumulated in the
    [blocked_time] counter. No clock is piggybacked (an O(1) header).

    Table 1 expectations this implementation reproduces: message ordering
    [None], asynchronous recovery (trivially — nobody is asked anything),
    rollbacks per failure [0] for peers, timestamps [O(1)], concurrent
    failures [n]. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Transport = Optimist_core.Transport

type 'm wire

type 'm entry
(** One logged delivery (payload + sender); opaque outside the live
    runtime's stable store. *)

type ('s, 'm) t

type config = {
  sync_write_latency : float;
      (** stable-storage latency charged to every delivery *)
  checkpoint_interval : float;
  restart_delay : float;
  ack_before_fsync : bool;
      (** deliberately broken variant for [recsim mc --mutate]: run the
          handler before the log entry is stable (OPT013 catches it) *)
}

val default_config : config

type ('s, 'm) stable_hooks = {
  log_appended : 'm entry list -> unit;
  checkpoint_recorded : position:int -> 's -> unit;
  epoch_recorded : int -> unit;
}
(** Mirrors of the stable state for an external store (the live
    runtime); the epoch is persisted so a rebuilt worker resumes
    counting incarnations where the dead one stopped. *)

val null_hooks : ('s, 'm) stable_hooks

type ('s, 'm) image = {
  im_log : 'm entry array;
  im_checkpoints : ('s * int) list;  (** newest first *)
  im_epoch : int;
}

val create :
  engine:Engine.t ->
  net:'m wire Network.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t

val create_rt :
  rt:Transport.runtime ->
  net:'m wire Transport.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  ?stable:('s, 'm) stable_hooks ->
  ?restore:('s, 'm) image ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t
(** Substrate-agnostic constructor behind {!create}; see
    {!Optimist_core.Process.create_rt} for the conventions. *)

val recover : ('s, 'm) t -> unit
(** Live-mode crash recovery for a process built with [?restore]: emits
    the failure record, restores the latest checkpoint, replays the
    stable log, advances the epoch and re-checkpoints. Raises
    [Invalid_argument] if the checkpoint store is empty. *)

val make_net : Engine.t -> Network.config -> 'm wire Network.t

val id : ('s, 'm) t -> int
val alive : ('s, 'm) t -> bool
val state : ('s, 'm) t -> 's
val inject : ('s, 'm) t -> 'm -> unit
val fail : ('s, 'm) t -> unit
val metrics : ('s, 'm) t -> Optimist_obs.Metrics.Scope.t
(** The per-process metrics scope (labelled with this protocol's
    name); shares counter names with the core engine where the
    concepts coincide. *)

val counters : ('s, 'm) t -> (string * int) list
(** [delivered], [sent], [restarts], [replayed], [piggyback_words],
    [blocked_time_x1000] (accumulated synchronous-write delay), plus the
    shared counter names used by the comparison table. *)

val check_rules : string list
(** Trace-sanitizer rule ids (see [optimist.check]) that are meaningful
    for this baseline; [Runner.check_rules] consults this under
    [recsim run --check]. *)
