(** Peterson-Kearns-style synchronous rollback based on vector time — the
    [19] row of the paper's Table 1.

    Optimistic receiver logging with a plain Mattern vector clock (no
    incarnation numbers). After a failure the restarting process restores
    checkpoint + stable log, then broadcasts a recovery token carrying the
    restored vector time and {e blocks} until every peer acknowledges:
    recovery is synchronous (Table 1 "Asynchronous recovery: No"). Peers
    holding states that depend on the lost interval roll back (at most once)
    before acknowledging; application messages arriving at the recovering
    process are buffered until the token round completes, and the stall is
    accumulated in [blocked_time_x1000].

    Without incarnation numbers the protocol cannot tell states of the
    failed process's new life from lost states of the old one: it handles a
    {e single} failure (Table 1 "Number of concurrent failures allowed: 1").
    A second failure while any recovery is in flight — or a later failure
    whose timestamps overlap a recovered interval — can produce undetected
    orphans; the [unsupported_overlap] counter reports when the
    implementation detects that its assumption was violated. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network

type 'm wire

type ('s, 'm) t

type config = {
  checkpoint_interval : float;
  flush_interval : float;
  restart_delay : float;
}

val default_config : config

val create :
  engine:Engine.t ->
  net:'m wire Network.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t

val make_net : Engine.t -> Network.config -> 'm wire Network.t

val id : ('s, 'm) t -> int
val alive : ('s, 'm) t -> bool
val blocked : ('s, 'm) t -> bool
val state : ('s, 'm) t -> 's
val inject : ('s, 'm) t -> 'm -> unit
val fail : ('s, 'm) t -> unit
val metrics : ('s, 'm) t -> Optimist_obs.Metrics.Scope.t
(** The per-process metrics scope (labelled with this protocol's
    name); shares counter names with the core engine where the
    concepts coincide. *)

val counters : ('s, 'm) t -> (string * int) list

val check_rules : string list
(** Trace-sanitizer rule ids (see [optimist.check]) that are meaningful
    for this baseline; [Runner.check_rules] consults this under
    [recsim run --check]. *)
