(** Coordinated (consistent) checkpointing, Koo-Toueg style [13] — the
    approach the paper's introduction argues against: "different processes
    synchronize their checkpointing actions … For large systems, the cost
    of this synchronization is prohibitive. Furthermore, these protocols
    may not restore the maximum recoverable state."

    An initiator runs a two-phase round: request → every process takes a
    tentative checkpoint and {e blocks} (no sends, deliveries buffered so no
    message crosses the line) → ready from all → commit. On any failure the
    whole system rolls back to the last committed line: everything since is
    lost (no message logging), and every process rolls back for every
    failure.

    Measured costs reproduced: [blocked_time_x1000] grows with both the
    round frequency and n (the slowest straggler gates the commit);
    [control_messages] = 3(n−1) per round; [lost_states] counts the work a
    failure forfeits; [rollbacks] = n−1 peers per failure. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network

type 'm wire

type ('s, 'm) t

type config = { checkpoint_interval : float; restart_delay : float }

val default_config : config

val create :
  engine:Engine.t ->
  net:'m wire Network.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t

val make_net : Engine.t -> Network.config -> 'm wire Network.t

val id : ('s, 'm) t -> int
val alive : ('s, 'm) t -> bool
val state : ('s, 'm) t -> 's
val inject : ('s, 'm) t -> 'm -> unit
val fail : ('s, 'm) t -> unit
val metrics : ('s, 'm) t -> Optimist_obs.Metrics.Scope.t
(** The per-process metrics scope (labelled with this protocol's
    name); shares counter names with the core engine where the
    concepts coincide. *)

val counters : ('s, 'm) t -> (string * int) list

val check_rules : string list
(** Trace-sanitizer rule ids (see [optimist.check]) that are meaningful
    for this baseline; [Runner.check_rules] consults this under
    [recsim run --check]. *)
