(** Coordinated (consistent) checkpointing, Koo-Toueg style [13] — the
    approach the paper's introduction argues against: "different processes
    synchronize their checkpointing actions … For large systems, the cost
    of this synchronization is prohibitive. Furthermore, these protocols
    may not restore the maximum recoverable state."

    An initiator runs a two-phase round: request → every process takes a
    tentative checkpoint and {e blocks} (no sends, deliveries buffered so no
    message crosses the line) → ready from all → commit. On any failure the
    whole system rolls back to the last committed line: everything since is
    lost (no message logging), and every process rolls back for every
    failure.

    Measured costs reproduced: [blocked_time_x1000] grows with both the
    round frequency and n (the slowest straggler gates the commit);
    [control_messages] = 3(n−1) per round; [lost_states] counts the work a
    failure forfeits; [rollbacks] = n−1 peers per failure. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Transport = Optimist_core.Transport

type 'm wire

type ('s, 'm) t

type ('s, 'm) snapshot = { sn_state : 's; sn_round : int }
(** A committed (or tentative) line entry: the state plus the two-phase
    round that produced it. *)

type config = { checkpoint_interval : float; restart_delay : float }

val default_config : config

type aux = { ax_epoch : int; ax_peer_epoch : int array; ax_round : int }
(** Durable counters beside the committed snapshot: the system-wide
    rollback epoch, the newest epoch seen per peer, and the last
    checkpoint round. *)

type ('s, 'm) stable_hooks = {
  snapshot_committed : ('s, 'm) snapshot -> unit;
  aux_recorded : aux -> unit;
}

val null_hooks : ('s, 'm) stable_hooks

type ('s, 'm) image = { im_committed : ('s, 'm) snapshot; im_aux : aux }
(** Durable state reloaded by a restarted live process. *)

val create_rt :
  rt:Transport.runtime ->
  net:'m wire Transport.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  ?stable:('s, 'm) stable_hooks ->
  ?restore:('s, 'm) image ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t
(** Runtime-seam constructor. With [?restore] the process resumes a prior
    incarnation: the committed line, epoch and round counters continue
    from the image, and the initiator's round loop resumes past
    [ax_round]. *)

val create :
  engine:Engine.t ->
  net:'m wire Network.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t

val make_net : Engine.t -> Network.config -> 'm wire Network.t

val id : ('s, 'm) t -> int
val alive : ('s, 'm) t -> bool
val state : ('s, 'm) t -> 's
val inject : ('s, 'm) t -> 'm -> unit
val fail : ('s, 'm) t -> unit
(** Simulated crash: a restart is scheduled after [restart_delay]. *)

val recover : ('s, 'm) t -> unit
(** Live-mode recovery for a process built with [?restore]: emit the
    failure record, restore the committed line and broadcast the rollback
    token that drags every peer back to it. *)

val metrics : ('s, 'm) t -> Optimist_obs.Metrics.Scope.t
(** The per-process metrics scope (labelled with this protocol's
    name); shares counter names with the core engine where the
    concepts coincide. *)

val counters : ('s, 'm) t -> (string * int) list

val check_rules : string list
(** Trace-sanitizer rule ids (see [optimist.check]) that are meaningful
    for this baseline; [Runner.check_rules] consults this under
    [recsim run --check]. *)
