module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Metrics = Optimist_obs.Metrics
module Trace = Optimist_obs.Trace
open Optimist_core.Types

type 'm wire =
  | W_app of { data : 'm; epoch : int; sender : int; uid : int }
  | W_request of { round : int }  (** initiator -> all: tentative checkpoint *)
  | W_ready of { round : int }  (** participant -> initiator *)
  | W_commit of { round : int }  (** initiator -> all: make permanent *)
  | W_rollback of { epoch : int }  (** failure: everyone back to the line *)

type ('s, 'm) snapshot = { sn_state : 's; sn_round : int }

type config = { checkpoint_interval : float; restart_delay : float }

let default_config = { checkpoint_interval = 150.0; restart_delay = 20.0 }

type ('s, 'm) t = {
  pid : int;
  n : int;
  engine : Engine.t;
  net : 'm wire Network.t;
  app : ('s, 'm) app;
  config : config;
  next_uid : unit -> int;
  mutable state : 's;
  mutable alive : bool;
  mutable epoch : int; (* bumped on every system-wide rollback *)
  mutable peer_epoch : int array;
  mutable committed : ('s, 'm) snapshot; (* last committed line (stable) *)
  mutable tentative : ('s, 'm) snapshot option;
  mutable in_round : bool; (* between tentative checkpoint and commit *)
  mutable blocked_since : float;
  mutable buffered : (int * 'm * int) list; (* src, data, epoch; newest first *)
  mutable outbox : (int * 'm) list; (* sends held during the round *)
  mutable ready_count : int; (* initiator-side *)
  mutable round : int;
  mutable states_since_commit : int;
  metrics : Metrics.Scope.t;
}

let make_net engine cfg = Network.create engine cfg

let id t = t.pid
let alive t = t.alive
let state t = t.state
let metrics t = t.metrics
let counters t = Metrics.Scope.counters t.metrics

let tr_on t = Trace.enabled (Engine.tracer t.engine)

let tr_emit t kind =
  Trace.emit (Engine.tracer t.engine)
    { at = Engine.now t.engine; pid = t.pid; ver = t.epoch; clock = [||]; kind }

let is_initiator t = t.pid = 0

let really_send t dst data =
  Metrics.Scope.incr t.metrics "sent";
  Metrics.Scope.incr ~by:2 t.metrics "piggyback_words";
  let uid = t.next_uid () in
  if tr_on t then tr_emit t (Trace.Send { uid; dst });
  Network.send t.net ~src:t.pid ~dst
    (W_app { data; epoch = t.epoch; sender = t.pid; uid })

let send_app t dst data =
  if t.in_round then t.outbox <- (dst, data) :: t.outbox
  else really_send t dst data

let run_app t ~src data =
  let state', sends = t.app.on_message ~me:t.pid ~src t.state data in
  t.state <- state';
  t.states_since_commit <- t.states_since_commit + 1;
  List.iter (fun (dst, payload) -> send_app t dst payload) sends

let deliver t ?(uid = -1) ~src ~epoch data =
  if src >= 0 && epoch < t.peer_epoch.(src) then begin
    (* Stale traffic from before a system-wide rollback. *)
    Metrics.Scope.incr t.metrics "discarded_obsolete";
    if tr_on t then tr_emit t (Trace.Drop_obsolete { uid; src })
  end
  else begin
    if src >= 0 then t.peer_epoch.(src) <- epoch;
    if t.in_round then t.buffered <- (src, data, epoch) :: t.buffered
    else begin
      Metrics.Scope.incr t.metrics "delivered";
      if tr_on t then tr_emit t (Trace.Deliver { uid; src });
      run_app t ~src data
    end
  end

let inject t data =
  if t.alive then begin
    Metrics.Scope.incr t.metrics "injected";
    deliver t ~src:env_src ~epoch:t.epoch data
  end

let control t dst w =
  Metrics.Scope.incr t.metrics "control_messages";
  Network.send t.net ~traffic:Network.Control ~src:t.pid ~dst w

let broadcast_control t w =
  Metrics.Scope.incr ~by:(t.n - 1) t.metrics "control_messages";
  Network.broadcast t.net ~traffic:Network.Control ~src:t.pid w

(* Enter the blocking phase: tentative checkpoint, hold all traffic. *)
let take_tentative t round =
  if t.alive && not t.in_round then begin
    t.in_round <- true;
    t.round <- round;
    t.blocked_since <- Engine.now t.engine;
    t.tentative <- Some { sn_state = t.state; sn_round = round };
    Metrics.Scope.incr t.metrics "checkpoints";
    if tr_on t then tr_emit t (Trace.Checkpoint { position = round })
  end

let release t =
  Metrics.Scope.incr
    ~by:(int_of_float (1000.0 *. (Engine.now t.engine -. t.blocked_since)))
    t.metrics "blocked_time_x1000";
  t.in_round <- false;
  let sends = List.rev t.outbox in
  t.outbox <- [];
  List.iter (fun (dst, data) -> really_send t dst data) sends;
  let pending = List.rev t.buffered in
  t.buffered <- [];
  List.iter (fun (src, data, epoch) -> deliver t ~src ~epoch data) pending

let commit t round =
  (match t.tentative with
  | Some sn when sn.sn_round = round ->
      t.committed <- sn;
      t.states_since_commit <- 0;
      t.tentative <- None
  | _ -> ());
  if t.in_round then release t

(* Every process rolls back to the committed line; all work since is
   forfeit (there is no log to replay from). *)
let rollback_to_line t ~epoch =
  if epoch > t.epoch then begin
    Metrics.Scope.incr t.metrics "rollbacks";
    Metrics.Scope.incr ~by:t.states_since_commit t.metrics "lost_states";
    let discarded = t.states_since_commit in
    t.states_since_commit <- 0;
    t.state <- t.committed.sn_state;
    t.epoch <- epoch;
    if tr_on t then tr_emit t (Trace.Rollback { discarded });
    t.tentative <- None;
    if t.in_round then release t;
    t.buffered <- [];
    t.outbox <- []
  end

let do_restart t =
  Metrics.Scope.incr t.metrics "restarts";
  t.state <- t.committed.sn_state;
  Metrics.Scope.incr ~by:t.states_since_commit t.metrics "lost_states";
  t.states_since_commit <- 0;
  t.epoch <- t.epoch + 1;
  t.tentative <- None;
  t.in_round <- false;
  t.buffered <- [];
  t.outbox <- [];
  t.alive <- true;
  if tr_on t then begin
    tr_emit t (Trace.Restart { new_ver = t.epoch });
    tr_emit t (Trace.Token_sent { origin = t.pid; ver = t.epoch; ts = 0 })
  end;
  Network.set_up t.net t.pid ~drop_held_data:true;
  broadcast_control t (W_rollback { epoch = t.epoch })

let fail t =
  if t.alive then begin
    t.alive <- false;
    if tr_on t then tr_emit t Trace.Failure;
    Metrics.Scope.incr t.metrics "failures";
    Network.set_down t.net t.pid;
    ignore
      (Engine.schedule t.engine ~delay:t.config.restart_delay (fun () ->
           do_restart t))
  end

let handle_wire t (env : 'm wire Network.envelope) =
  match env.Network.payload with
  | W_app { data; epoch; sender; uid } ->
      if t.alive then deliver t ~uid ~src:sender ~epoch data
  | W_request { round } ->
      take_tentative t round;
      control t 0 (W_ready { round })
  | W_ready { round } ->
      if is_initiator t && round = t.round then begin
        t.ready_count <- t.ready_count + 1;
        if t.ready_count = t.n - 1 then begin
          broadcast_control t (W_commit { round });
          commit t round
        end
      end
  | W_commit { round } -> commit t round
  | W_rollback { epoch } ->
      if tr_on t then
        tr_emit t
          (Trace.Token_recv { origin = env.Network.src; ver = epoch; ts = 0 });
      rollback_to_line t ~epoch

let create ~engine ~net ~app ~id:pid ~n ?(config = default_config) ?metrics ~next_uid ()
    =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Metrics.Scope.create ~protocol:"coordinated" ~process:pid ()
  in
  let t =
    {
      pid;
      n;
      engine;
      net;
      app;
      config;
      next_uid;
      state = app.init pid;
      alive = true;
      epoch = 0;
      peer_epoch = Array.make n 0;
      committed = { sn_state = app.init pid; sn_round = 0 };
      tentative = None;
      in_round = false;
      blocked_since = 0.0;
      buffered = [];
      outbox = [];
      ready_count = 0;
      round = 0;
      states_since_commit = 0;
      metrics;
    }
  in
  Network.set_handler net pid (fun env -> handle_wire t env);
  if is_initiator t then begin
    let rec round_loop k () =
      if t.alive && not t.in_round then begin
        t.ready_count <- 0;
        take_tentative t k;
        broadcast_control t (W_request { round = k })
      end;
      ignore
        (Engine.schedule engine ~daemon:true ~delay:config.checkpoint_interval
           (round_loop (k + 1)))
    in
    ignore
      (Engine.schedule engine ~daemon:true ~delay:config.checkpoint_interval
         (round_loop 1))
  end;
  t

(* Trace-sanitizer rules (optimist.check ids): no clocks at all, and
   non-failed processes roll back to the coordinated line without
   detecting orphans, so only the structural rules apply. *)
let check_rules = [ "OPT001"; "OPT002"; "OPT003"; "OPT006"; "OPT007" ]
