module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Transport = Optimist_core.Transport
module Metrics = Optimist_obs.Metrics
module Trace = Optimist_obs.Trace
open Optimist_core.Types

(* The transport seam hands the protocol the bare payload (no envelope),
   so the rollback token names its origin in the wire type itself. *)
type 'm wire =
  | W_app of { data : 'm; epoch : int; sender : int; uid : int }
  | W_request of { round : int }  (** initiator -> all: tentative checkpoint *)
  | W_ready of { round : int }  (** participant -> initiator *)
  | W_commit of { round : int }  (** initiator -> all: make permanent *)
  | W_rollback of { sender : int; epoch : int }
      (** failure: everyone back to the line *)

type ('s, 'm) snapshot = { sn_state : 's; sn_round : int }

type config = { checkpoint_interval : float; restart_delay : float }

let default_config = { checkpoint_interval = 150.0; restart_delay = 20.0 }

type aux = { ax_epoch : int; ax_peer_epoch : int array; ax_round : int }

(* The committed line is the only recovery point, so it (plus the epoch
   and round counters) is all that ever reaches stable storage. *)
type ('s, 'm) stable_hooks = {
  snapshot_committed : ('s, 'm) snapshot -> unit;
  aux_recorded : aux -> unit;
}

let null_hooks =
  { snapshot_committed = (fun _ -> ()); aux_recorded = (fun _ -> ()) }

type ('s, 'm) image = { im_committed : ('s, 'm) snapshot; im_aux : aux }

type ('s, 'm) t = {
  pid : int;
  n : int;
  rt : Transport.runtime;
  net : 'm wire Transport.t;
  app : ('s, 'm) app;
  config : config;
  stable_io : ('s, 'm) stable_hooks;
  next_uid : unit -> int;
  mutable state : 's;
  mutable alive : bool;
  mutable epoch : int; (* bumped on every system-wide rollback *)
  mutable peer_epoch : int array;
  mutable committed : ('s, 'm) snapshot; (* last committed line (stable) *)
  mutable tentative : ('s, 'm) snapshot option;
  mutable in_round : bool; (* between tentative checkpoint and commit *)
  mutable blocked_since : float;
  mutable buffered : (int * 'm * int) list; (* src, data, epoch; newest first *)
  mutable outbox : (int * 'm) list; (* sends held during the round *)
  mutable ready_count : int; (* initiator-side *)
  mutable round : int;
  mutable states_since_commit : int;
  metrics : Metrics.Scope.t;
}

let make_net engine cfg = Network.create engine cfg

let id t = t.pid
let alive t = t.alive
let state t = t.state
let metrics t = t.metrics
let counters t = Metrics.Scope.counters t.metrics

let tr_on t = Trace.enabled (t.rt.Transport.tracer ())

let tr_emit t kind =
  Trace.emit
    (t.rt.Transport.tracer ())
    { at = t.rt.Transport.now (); pid = t.pid; ver = t.epoch; clock = [||]; kind }

let is_initiator t = t.pid = 0

let record_aux t =
  t.stable_io.aux_recorded
    {
      ax_epoch = t.epoch;
      ax_peer_epoch = Array.copy t.peer_epoch;
      ax_round = t.round;
    }

let really_send t dst data =
  Metrics.Scope.incr t.metrics "sent";
  Metrics.Scope.incr ~by:2 t.metrics "piggyback_words";
  let uid = t.next_uid () in
  if tr_on t then tr_emit t (Trace.Send { uid; dst });
  t.net.Transport.send ~lane:Transport.Data ~src:t.pid ~dst
    (W_app { data; epoch = t.epoch; sender = t.pid; uid })

let send_app t dst data =
  if t.in_round then t.outbox <- (dst, data) :: t.outbox
  else really_send t dst data

let run_app t ~src data =
  let state', sends = t.app.on_message ~me:t.pid ~src t.state data in
  t.state <- state';
  t.states_since_commit <- t.states_since_commit + 1;
  List.iter (fun (dst, payload) -> send_app t dst payload) sends

let deliver t ?(uid = -1) ~src ~epoch data =
  if src >= 0 && epoch < t.peer_epoch.(src) then begin
    (* Stale traffic from before a system-wide rollback. *)
    Metrics.Scope.incr t.metrics "discarded_obsolete";
    if tr_on t then tr_emit t (Trace.Drop_obsolete { uid; src })
  end
  else begin
    if src >= 0 && epoch > t.peer_epoch.(src) then begin
      t.peer_epoch.(src) <- epoch;
      record_aux t
    end;
    if t.in_round then t.buffered <- (src, data, epoch) :: t.buffered
    else begin
      Metrics.Scope.incr t.metrics "delivered";
      if tr_on t then tr_emit t (Trace.Deliver { uid; src });
      run_app t ~src data
    end
  end

let inject t data =
  if t.alive then begin
    Metrics.Scope.incr t.metrics "injected";
    deliver t ~src:env_src ~epoch:t.epoch data
  end

let control t dst w =
  Metrics.Scope.incr t.metrics "control_messages";
  t.net.Transport.send ~lane:Transport.Control ~src:t.pid ~dst w

let broadcast_control t w =
  Metrics.Scope.incr ~by:(t.n - 1) t.metrics "control_messages";
  t.net.Transport.broadcast ~lane:Transport.Control ~src:t.pid w

(* Enter the blocking phase: tentative checkpoint, hold all traffic. *)
let take_tentative t round =
  if t.alive && not t.in_round then begin
    t.in_round <- true;
    t.round <- round;
    t.blocked_since <- t.rt.Transport.now ();
    t.tentative <- Some { sn_state = t.state; sn_round = round };
    Metrics.Scope.incr t.metrics "checkpoints";
    if tr_on t then tr_emit t (Trace.Checkpoint { position = round })
  end

let release t =
  Metrics.Scope.incr
    ~by:(int_of_float (1000.0 *. (t.rt.Transport.now () -. t.blocked_since)))
    t.metrics "blocked_time_x1000";
  t.in_round <- false;
  let sends = List.rev t.outbox in
  t.outbox <- [];
  List.iter (fun (dst, data) -> really_send t dst data) sends;
  let pending = List.rev t.buffered in
  t.buffered <- [];
  List.iter (fun (src, data, epoch) -> deliver t ~src ~epoch data) pending

let commit t round =
  (match t.tentative with
  | Some sn when sn.sn_round = round ->
      t.committed <- sn;
      t.states_since_commit <- 0;
      t.tentative <- None;
      t.stable_io.snapshot_committed sn;
      record_aux t
  | _ -> ());
  if t.in_round then release t

(* Every process rolls back to the committed line; all work since is
   forfeit (there is no log to replay from). *)
let rollback_to_line t ~src ~epoch =
  if epoch > t.epoch then begin
    Metrics.Scope.incr t.metrics "rollbacks";
    Metrics.Scope.incr ~by:t.states_since_commit t.metrics "lost_states";
    let discarded = t.states_since_commit in
    t.states_since_commit <- 0;
    t.state <- t.committed.sn_state;
    (* The rollback token orphans everything since the line: record the
       detection against the token before stepping to its epoch, keyed so
       each system-wide rollback counts as one distinct token. *)
    if tr_on t then
      tr_emit t (Trace.Orphan_detected { origin = src; ver = 0; ts = -epoch });
    t.epoch <- epoch;
    if tr_on t then tr_emit t (Trace.Rollback { discarded });
    t.tentative <- None;
    if t.in_round then release t;
    t.buffered <- [];
    t.outbox <- [];
    record_aux t
  end

let do_restart t =
  Metrics.Scope.incr t.metrics "restarts";
  t.state <- t.committed.sn_state;
  Metrics.Scope.incr ~by:t.states_since_commit t.metrics "lost_states";
  t.states_since_commit <- 0;
  t.epoch <- t.epoch + 1;
  t.tentative <- None;
  t.in_round <- false;
  t.buffered <- [];
  t.outbox <- [];
  t.alive <- true;
  record_aux t;
  if tr_on t then begin
    tr_emit t (Trace.Restart { new_ver = t.epoch });
    tr_emit t (Trace.Token_sent { origin = t.pid; ver = t.epoch; ts = 0 })
  end;
  t.net.Transport.set_up ~drop_held_data:true t.pid;
  broadcast_control t (W_rollback { sender = t.pid; epoch = t.epoch })

let fail t =
  if t.alive then begin
    t.alive <- false;
    if tr_on t then tr_emit t Trace.Failure;
    Metrics.Scope.incr t.metrics "failures";
    t.net.Transport.set_down t.pid;
    t.rt.Transport.schedule ~daemon:false ~delay:t.config.restart_delay
      (fun () -> do_restart t)
  end

let handle_wire t (w : 'm wire) =
  match w with
  | W_app { data; epoch; sender; uid } ->
      if t.alive then deliver t ~uid ~src:sender ~epoch data
  | W_request { round } ->
      take_tentative t round;
      control t 0 (W_ready { round })
  | W_ready { round } ->
      if is_initiator t && round = t.round then begin
        t.ready_count <- t.ready_count + 1;
        if t.ready_count = t.n - 1 then begin
          broadcast_control t (W_commit { round });
          commit t round
        end
      end
  | W_commit { round } -> commit t round
  | W_rollback { sender; epoch } ->
      if tr_on t then
        tr_emit t (Trace.Token_recv { origin = sender; ver = epoch; ts = 0 });
      rollback_to_line t ~src:sender ~epoch

let start_rounds t =
  if is_initiator t then begin
    let rec round_loop k () =
      if t.alive && not t.in_round then begin
        t.ready_count <- 0;
        take_tentative t k;
        broadcast_control t (W_request { round = k })
      end;
      t.rt.Transport.schedule ~daemon:true ~delay:t.config.checkpoint_interval
        (round_loop (k + 1))
    in
    t.rt.Transport.schedule ~daemon:true ~delay:t.config.checkpoint_interval
      (round_loop (t.round + 1))
  end

let create_rt ~rt ~net ~app ~id:pid ~n ?(config = default_config) ?metrics
    ?(stable = null_hooks) ?restore:image ~next_uid () =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Metrics.Scope.create ~protocol:"coordinated" ~process:pid ()
  in
  let committed, epoch, peer_epoch, round =
    match image with
    | None -> ({ sn_state = app.init pid; sn_round = 0 }, 0, Array.make n 0, 0)
    | Some im ->
        ( im.im_committed,
          im.im_aux.ax_epoch,
          Array.copy im.im_aux.ax_peer_epoch,
          im.im_aux.ax_round )
  in
  let t =
    {
      pid;
      n;
      rt;
      net;
      app;
      config;
      stable_io = stable;
      next_uid;
      state = app.init pid;
      alive = true;
      epoch;
      peer_epoch;
      committed;
      tentative = None;
      in_round = false;
      blocked_since = 0.0;
      buffered = [];
      outbox = [];
      ready_count = 0;
      round;
      states_since_commit = 0;
      metrics;
    }
  in
  net.Transport.set_handler pid (fun w -> handle_wire t w);
  start_rounds t;
  t

let create ~engine ~net ~app ~id ~n ?config ?metrics ~next_uid () =
  create_rt ~rt:(Transport.of_engine engine) ~net:(Transport.of_network net)
    ~app ~id ~n ?config ?metrics ~next_uid ()

(* Live-mode recovery for a process built with [?restore]: emit the
   failure record for the killed incarnation, restore the committed line
   and broadcast the rollback token that drags every peer back to it. *)
let recover t =
  Metrics.Scope.incr t.metrics "failures";
  if tr_on t then tr_emit t Trace.Failure;
  t.alive <- false;
  do_restart t

(* Trace-sanitizer rules (optimist.check ids): no clocks at all; peers
   record the rollback token as the orphan that justifies their
   coordinated rollback, so the structural rules plus the
   rollback-bound rule apply. *)
let check_rules = [ "OPT001"; "OPT002"; "OPT003"; "OPT006"; "OPT007" ]
