module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Transport = Optimist_core.Transport
module Ftvc = Optimist_clock.Ftvc
module Message_log = Optimist_storage.Message_log
module Checkpoint_store = Optimist_storage.Checkpoint_store
module Metrics = Optimist_obs.Metrics
module Trace = Optimist_obs.Trace
open Optimist_core.Types

(* The dependency vector reuses the FTVC entry layout: (incarnation,
   timestamp) per process — Strom-Yemini also stamp incarnations, they just
   keep no per-incarnation history behind the current entry. *)

type announcement = { a_origin : int; a_inc : int; a_ts : int }

type 'm wire =
  | W_app of { data : 'm; clock : Ftvc.entry array; sender : int; uid : int }
  | W_ann of announcement

type 'm entry_log =
  | E_msg of { data : 'm; clock : Ftvc.entry array; sender : int }
  | E_mark of Ftvc.entry  (* rollback timestamp bump, as in the core *)

type ('s, 'm) checkpoint = { cp_state : 's; cp_clock : Ftvc.t }

type config = {
  checkpoint_interval : float;
  flush_interval : float;
  restart_delay : float;
}

let default_config =
  { checkpoint_interval = 200.0; flush_interval = 25.0; restart_delay = 20.0 }

(* Everything a crash must not erase: the flushed log prefix, the
   checkpoints, and the announcement table (Strom-Yemini announcements
   play the role of D-G tokens and are logged stably on receipt). *)
type ('s, 'm) stable_hooks = {
  log_flushed : 'm entry_log list -> unit;
      (** newly stable entries, oldest first *)
  log_truncated : int -> unit;  (** new total length after a rollback *)
  checkpoint_recorded : position:int -> ('s, 'm) checkpoint -> unit;
  checkpoints_discarded_after : position:int -> unit;
  announcement_recorded : announcement -> unit;
}

let null_hooks =
  {
    log_flushed = (fun _ -> ());
    log_truncated = (fun _ -> ());
    checkpoint_recorded = (fun ~position:_ _ -> ());
    checkpoints_discarded_after = (fun ~position:_ -> ());
    announcement_recorded = (fun _ -> ());
  }

type ('s, 'm) image = {
  im_log : 'm entry_log array; (* stable prefix, position order *)
  im_checkpoints : (('s, 'm) checkpoint * int) list; (* newest first *)
  im_announcements : announcement list;
}

type ('s, 'm) t = {
  pid : int;
  n : int;
  rt : Transport.runtime;
  net : 'm wire Transport.t;
  app : ('s, 'm) app;
  config : config;
  stable_io : ('s, 'm) stable_hooks;
  next_uid : unit -> int;
  mutable state : 's;
  mutable clock : Ftvc.t;
  mutable alive : bool;
  mutable replaying : bool;
  (* dirty.(j): our entry for j jumped to an incarnation whose predecessor
     announcements we had not yet seen — dependency info was lost. *)
  dirty : bool array;
  log : 'm entry_log Message_log.t;
  checkpoints : ('s, 'm) checkpoint Checkpoint_store.t;
  mutable announcements : announcement list; (* stable, like D-G tokens *)
  metrics : Metrics.Scope.t;
}

let make_net engine cfg = Network.create engine cfg

let id t = t.pid
let alive t = t.alive
let state t = t.state
let incarnation t = (Ftvc.own t.clock).Ftvc.ver
let metrics t = t.metrics
let counters t = Metrics.Scope.counters t.metrics

let tr_on t = Trace.enabled (t.rt.Transport.tracer ())

let tr_emit ?clock t kind =
  let clock = match clock with Some c -> c | None -> Ftvc.entries t.clock in
  Trace.emit
    (t.rt.Transport.tracer ())
    {
      at = t.rt.Transport.now ();
      pid = t.pid;
      ver = (Ftvc.own t.clock).Ftvc.ver;
      clock;
      kind;
    }

let has_announcement t ~origin ~inc =
  List.exists (fun a -> a.a_origin = origin && a.a_inc = inc) t.announcements

let announcements_complete_below t ~origin ~inc =
  let rec loop l = l >= inc || (has_announcement t ~origin ~inc:l && loop (l + 1)) in
  loop 0

(* Lemma-4-style obsolete test, against the announcement table. *)
let clock_entry_dead t ~pid (e : Ftvc.entry) =
  List.exists
    (fun a -> a.a_origin = pid && a.a_inc = e.Ftvc.ver && e.Ftvc.ts > a.a_ts)
    t.announcements

let message_obsolete t (clock : Ftvc.entry array) =
  let n = Array.length clock in
  let rec loop j = j < n && (clock_entry_dead t ~pid:j clock.(j) || loop (j + 1)) in
  loop 0

(* --- storage --- *)

let flush_now t =
  let before = Message_log.stable_length t.log in
  Message_log.flush t.log;
  let stable = Message_log.stable_length t.log in
  if stable > before then begin
    let fresh = ref [] in
    Message_log.iter_range t.log ~from:before ~until:stable (fun e ->
        fresh := e :: !fresh);
    t.stable_io.log_flushed (List.rev !fresh);
    if tr_on t then tr_emit t (Trace.Log_flush { stable })
  end

let take_checkpoint t =
  flush_now t;
  Metrics.Scope.incr t.metrics "checkpoints";
  if tr_on t then
    tr_emit t (Trace.Checkpoint { position = Message_log.total_length t.log });
  let position = Message_log.total_length t.log in
  let cp = { cp_state = t.state; cp_clock = t.clock } in
  Checkpoint_store.record t.checkpoints ~position cp;
  t.stable_io.checkpoint_recorded ~position cp

(* --- sending / delivering --- *)

let send_app t dst data =
  if t.replaying then t.clock <- Ftvc.sent t.clock
  else begin
    let uid = t.next_uid () in
    Metrics.Scope.incr t.metrics "sent";
    Metrics.Scope.incr ~by:(Ftvc.size_words t.clock) t.metrics "piggyback_words";
    if tr_on t then tr_emit t (Trace.Send { uid; dst });
    t.net.Transport.send ~lane:Transport.Data ~src:t.pid ~dst
      (W_app { data; clock = Ftvc.entries t.clock; sender = t.pid; uid });
    t.clock <- Ftvc.sent t.clock
  end

let run_app t ~src data =
  let state', sends = t.app.on_message ~me:t.pid ~src t.state data in
  t.state <- state';
  List.iter (fun (dst, payload) -> send_app t dst payload) sends

let note_blind_jumps t (clock : Ftvc.entry array) =
  Array.iteri
    (fun j (e : Ftvc.entry) ->
      if j <> t.pid then begin
        let mine = Ftvc.get t.clock j in
        if
          e.Ftvc.ver > mine.Ftvc.ver
          && not (announcements_complete_below t ~origin:j ~inc:e.Ftvc.ver)
        then begin
          Metrics.Scope.incr t.metrics "blind_jumps";
          t.dirty.(j) <- true
        end
      end)
    clock

let deliver_now t ~src ~clock data =
  Message_log.append t.log (E_msg { data; clock; sender = src });
  note_blind_jumps t clock;
  t.clock <- Ftvc.deliver_entries t.clock ~received:clock;
  Metrics.Scope.incr t.metrics (if src = env_src then "injected" else "delivered");
  run_app t ~src data

let replay_entry t e =
  Metrics.Scope.incr t.metrics "replayed";
  match e with
  | E_msg { data; clock; sender } ->
      t.clock <- Ftvc.deliver_entries t.clock ~received:clock;
      run_app t ~src:sender data
  | E_mark own -> t.clock <- Ftvc.with_own t.clock own

(* --- restore machinery --- *)

(* Safety of a dependency entry with respect to one announcement. The
   [conservative] flag implements the information-loss penalty: when the
   entry has already jumped past the announced incarnation, the process
   cannot tell whether the dead interval is in its causal past, so the
   state counts as unsafe. *)
let entry_safe ~conservative (a : announcement) (e : Ftvc.entry) =
  if e.Ftvc.ver = a.a_inc then e.Ftvc.ts <= a.a_ts
  else if e.Ftvc.ver > a.a_inc then not conservative
  else true

let clock_safe ~against (c : Ftvc.entry array) =
  List.for_all
    (fun (a, conservative) -> entry_safe ~conservative a c.(a.a_origin))
    against

let restore t ~against =
  match
    Checkpoint_store.latest_satisfying t.checkpoints (fun cp _ ->
        clock_safe ~against (Ftvc.entries cp.cp_clock))
  with
  | None -> assert false
  | Some (cp, position) ->
      t.state <- cp.cp_state;
      t.clock <- cp.cp_clock;
      let stable = Message_log.stable_length t.log in
      t.replaying <- true;
      let rec replay pos =
        if pos < stable then
          let e = Message_log.get t.log pos in
          let ok =
            match e with
            | E_mark _ -> true
            | E_msg { clock; _ } -> clock_safe ~against clock
          in
          if ok then begin
            replay_entry t e;
            replay (pos + 1)
          end
          else pos
        else pos
      in
      let stop = replay position in
      t.replaying <- false;
      if stop < Message_log.total_length t.log then begin
        Metrics.Scope.incr
          ~by:(Message_log.total_length t.log - stop)
          t.metrics "log_truncated";
        Message_log.truncate t.log stop;
        t.stable_io.log_truncated stop;
        Checkpoint_store.discard_after t.checkpoints ~position:stop;
        t.stable_io.checkpoints_discarded_after ~position:stop
      end

let all_known_exact t =
  List.map (fun a -> (a, false)) t.announcements

let record_announcement t a =
  if not (has_announcement t ~origin:a.a_origin ~inc:a.a_inc) then begin
    t.announcements <- a :: t.announcements;
    t.stable_io.announcement_recorded a
  end

let rollback t ~trigger ~conservative =
  Metrics.Scope.incr t.metrics "rollbacks";
  if conservative then Metrics.Scope.incr t.metrics "conservative_rollbacks";
  flush_now t;
  let orphaned = t.clock in
  let against = (trigger, conservative) :: all_known_exact t in
  let truncated_before = Metrics.Scope.get t.metrics "log_truncated" in
  restore t ~against;
  if tr_on t then
    tr_emit t
      (Trace.Rollback
         {
           discarded =
             Metrics.Scope.get t.metrics "log_truncated" - truncated_before;
         });
  t.clock <- Ftvc.rolled_back_from ~restored:t.clock ~orphaned;
  Message_log.append t.log (E_mark (Ftvc.own t.clock));
  flush_now t;
  Array.fill t.dirty 0 t.n false

(* --- announcements --- *)

let receive_announcement t (a : announcement) =
  Metrics.Scope.incr t.metrics "tokens_received";
  if tr_on t then
    tr_emit t
      (Trace.Token_recv { origin = a.a_origin; ver = a.a_inc; ts = a.a_ts });
  record_announcement t a;
  let e = Ftvc.get t.clock a.a_origin in
  if e.Ftvc.ver = a.a_inc && e.Ftvc.ts > a.a_ts then begin
    if tr_on t then
      tr_emit t
        (Trace.Orphan_detected
           { origin = a.a_origin; ver = a.a_inc; ts = a.a_ts });
    rollback t ~trigger:a ~conservative:false
  end
  else if e.Ftvc.ver > a.a_inc && t.dirty.(a.a_origin) then
    (* The dependency information on the announced incarnation was lost in
       a blind jump: roll back conservatively past the jump. *)
    rollback t ~trigger:a ~conservative:true

(* --- failure / restart --- *)

(* The post-restore half of a restart: announce the surviving own entry,
   step to the next incarnation, checkpoint the restored state. *)
let announce_and_restart t =
  let own = Ftvc.own t.clock in
  if tr_on t then
    tr_emit t
      (Trace.Token_sent { origin = t.pid; ver = own.Ftvc.ver; ts = own.Ftvc.ts });
  t.net.Transport.broadcast ~lane:Transport.Control ~src:t.pid
    (W_ann { a_origin = t.pid; a_inc = own.Ftvc.ver; a_ts = own.Ftvc.ts });
  record_announcement t
    { a_origin = t.pid; a_inc = own.Ftvc.ver; a_ts = own.Ftvc.ts };
  t.clock <- Ftvc.restart t.clock;
  t.alive <- true;
  if tr_on t then
    tr_emit t (Trace.Restart { new_ver = (Ftvc.own t.clock).Ftvc.ver });
  t.net.Transport.set_up ~drop_held_data:false t.pid;
  take_checkpoint t

let do_restart t =
  Metrics.Scope.incr t.metrics "restarts";
  restore t ~against:(all_known_exact t);
  announce_and_restart t

let fail t =
  if t.alive then begin
    t.alive <- false;
    if tr_on t then tr_emit t Trace.Failure;
    Metrics.Scope.incr t.metrics "failures";
    Message_log.crash t.log;
    Array.fill t.dirty 0 t.n false;
    t.net.Transport.set_down t.pid;
    t.rt.Transport.schedule ~daemon:false ~delay:t.config.restart_delay
      (fun () -> do_restart t)
  end

(* --- receive path: no deliverability hold --- *)

let receive_app t ~src ~clock ~uid data =
  if message_obsolete t clock then begin
    Metrics.Scope.incr t.metrics "discarded_obsolete";
    if tr_on t then tr_emit ~clock t (Trace.Drop_obsolete { uid; src })
  end
  else begin
    if tr_on t then tr_emit ~clock t (Trace.Deliver { uid; src });
    deliver_now t ~src ~clock data
  end

let inject t data =
  if t.alive then
    deliver_now t ~src:env_src ~clock:(Array.make t.n { Ftvc.ver = 0; ts = 0 }) data

let handle_wire t (w : 'm wire) =
  match w with
  | W_app { data; clock; sender; uid } -> receive_app t ~src:sender ~clock ~uid data
  | W_ann a -> receive_announcement t a

let create_rt ~rt ~net ~app ~id:pid ~n ?(config = default_config) ?metrics
    ?(stable = null_hooks) ?restore:image ~next_uid () =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Metrics.Scope.create ~protocol:"strom-yemini" ~process:pid ()
  in
  let log, checkpoints, announcements =
    match image with
    | None -> (Message_log.create (), Checkpoint_store.create (), [])
    | Some im ->
        ( Message_log.of_stable im.im_log,
          Checkpoint_store.of_items im.im_checkpoints,
          im.im_announcements )
  in
  let t =
    {
      pid;
      n;
      rt;
      net;
      app;
      config;
      stable_io = stable;
      next_uid;
      state = app.init pid;
      clock = Ftvc.create ~n ~me:pid;
      alive = true;
      replaying = false;
      dirty = Array.make n false;
      log;
      checkpoints;
      announcements;
      metrics;
    }
  in
  net.Transport.set_handler pid (fun w -> handle_wire t w);
  (match image with None -> take_checkpoint t | Some _ -> ());
  let rec flush_loop () =
    if t.alive then flush_now t;
    rt.Transport.schedule ~daemon:true ~delay:config.flush_interval flush_loop
  in
  let rec checkpoint_loop () =
    if t.alive then take_checkpoint t;
    rt.Transport.schedule ~daemon:true ~delay:config.checkpoint_interval
      checkpoint_loop
  in
  rt.Transport.schedule ~daemon:true ~delay:config.flush_interval flush_loop;
  rt.Transport.schedule ~daemon:true ~delay:config.checkpoint_interval
    checkpoint_loop;
  t

let create ~engine ~net ~app ~id ~n ?config ?metrics ~next_uid () =
  create_rt ~rt:(Transport.of_engine engine) ~net:(Transport.of_network net)
    ~app ~id ~n ?config ?metrics ~next_uid ()

(* Live-mode recovery for a process built with [?restore]. The restore
   runs first so the failure record carries the incarnation the crash
   actually killed (every own-incarnation bump is flushed before any
   later event, so the stable log always knows it); then the ordinary
   restart tail announces and steps to the next incarnation. *)
let recover t =
  if Checkpoint_store.count t.checkpoints = 0 then
    invalid_arg "Strom_yemini.recover: empty checkpoint store";
  Metrics.Scope.incr t.metrics "failures";
  Metrics.Scope.incr t.metrics "restarts";
  restore t ~against:(all_known_exact t);
  if tr_on t then tr_emit t Trace.Failure;
  t.alive <- false;
  announce_and_restart t

(* Trace-sanitizer rules (optimist.check ids): messages piggyback full
   clocks, so the clock-integrity rules apply, and obsolete discards
   are driven by recovery announcements just like Lemma 4 tokens.
   Rollbacks can be conservative — triggered by an announcement without
   a per-token orphan detection — so the rollback-bound rule is out. *)
let check_rules =
  [
    "OPT001";
    "OPT002";
    "OPT003";
    "OPT004";
    "OPT005";
    "OPT006";
    "OPT007";
    "OPT008";
    "OPT009";
  ]
