(** Uncoordinated checkpointing {e without} message logging — the classic
    domino-effect baseline (Randell [21], Russell [22]) that motivates the
    whole message-logging line of work in the paper's introduction.

    Processes checkpoint independently and keep no message log, so a
    rollback can only land {e on a checkpoint}: everything since is simply
    lost. Because a rollback discards states that other processes may
    depend on, each rollback broadcasts its own announcement, which can
    force further rollbacks elsewhere — the cascade ("domino effect") can
    collapse the whole computation back to its initial checkpoints. The
    [rollbacks] counter divided by [failures] is the quantity the paper's
    "minimal rollback" property bounds at 1 for Damani-Garg and that is
    unbounded here.

    Each incarnation (restart or rollback) bumps an epoch number carried on
    every message so stale in-flight traffic from discarded states is
    filtered out. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network

type 'm wire

type ('s, 'm) t

type config = { checkpoint_interval : float; restart_delay : float }

val default_config : config

val create :
  engine:Engine.t ->
  net:'m wire Network.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t

val make_net : Engine.t -> Network.config -> 'm wire Network.t

val id : ('s, 'm) t -> int
val alive : ('s, 'm) t -> bool
val state : ('s, 'm) t -> 's
val inject : ('s, 'm) t -> 'm -> unit
val fail : ('s, 'm) t -> unit
val metrics : ('s, 'm) t -> Optimist_obs.Metrics.Scope.t
(** The per-process metrics scope (labelled with this protocol's
    name); shares counter names with the core engine where the
    concepts coincide. *)

val counters : ('s, 'm) t -> (string * int) list
(** Shared names plus [cascade_rollbacks] (rollbacks triggered by another
    process's rollback announcement rather than directly by a failure) and
    [lost_states] (work discarded without any possibility of replay). *)

val check_rules : string list
(** Trace-sanitizer rule ids (see [optimist.check]) that are meaningful
    for this baseline; [Runner.check_rules] consults this under
    [recsim run --check]. *)
