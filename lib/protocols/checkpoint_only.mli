(** Uncoordinated checkpointing {e without} message logging — the classic
    domino-effect baseline (Randell [21], Russell [22]) that motivates the
    whole message-logging line of work in the paper's introduction.

    Processes checkpoint independently and keep no message log, so a
    rollback can only land {e on a checkpoint}: everything since is simply
    lost. Because a rollback discards states that other processes may
    depend on, each rollback broadcasts its own announcement, which can
    force further rollbacks elsewhere — the cascade ("domino effect") can
    collapse the whole computation back to its initial checkpoints. The
    [rollbacks] counter divided by [failures] is the quantity the paper's
    "minimal rollback" property bounds at 1 for Damani-Garg and that is
    unbounded here.

    Each incarnation (restart or rollback) bumps an epoch number carried on
    every message so stale in-flight traffic from discarded states is
    filtered out. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Transport = Optimist_core.Transport

type 'm wire

type ('s, 'm) t

type ('s, 'm) checkpoint = { cp_state : 's; cp_vc : Optimist_clock.Vclock.t }

type config = { checkpoint_interval : float; restart_delay : float }

val default_config : config

type aux = {
  ax_epoch : int;
  ax_floor : int array;
  ax_peer_epoch : int array;
}
(** Durable non-checkpoint state: epoch counter, announcement floors and
    newest peer epochs. A restarted process that forgot its floors would
    accept dependencies on states the whole system already forfeited. *)

type ('s, 'm) stable_hooks = {
  checkpoint_recorded : position:int -> ('s, 'm) checkpoint -> unit;
  checkpoints_discarded_after : position:int -> unit;
  aux_recorded : aux -> unit;
}

val null_hooks : ('s, 'm) stable_hooks

type ('s, 'm) image = {
  im_checkpoints : (('s, 'm) checkpoint * int) list;  (** newest first *)
  im_aux : aux;
}
(** Durable state reloaded by a restarted live process. *)

val create_rt :
  rt:Transport.runtime ->
  net:'m wire Transport.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  ?stable:('s, 'm) stable_hooks ->
  ?restore:('s, 'm) image ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t
(** Runtime-seam constructor. With [?restore] the process resumes a prior
    incarnation: no initial checkpoint is taken and the epoch, floors and
    peer epochs continue from [im_aux]. *)

val create :
  engine:Engine.t ->
  net:'m wire Network.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t

val make_net : Engine.t -> Network.config -> 'm wire Network.t

val id : ('s, 'm) t -> int
val alive : ('s, 'm) t -> bool
val state : ('s, 'm) t -> 's
val inject : ('s, 'm) t -> 'm -> unit
val fail : ('s, 'm) t -> unit
(** Simulated crash: a restart is scheduled after [restart_delay]. *)

val recover : ('s, 'm) t -> unit
(** Live-mode recovery for a process built with [?restore]: emit the
    failure record, land on the newest checkpoint consistent with the
    persisted floors, and broadcast the surviving-timestamp announcement.
    Raises [Invalid_argument] if the checkpoint store is empty. *)

val metrics : ('s, 'm) t -> Optimist_obs.Metrics.Scope.t
(** The per-process metrics scope (labelled with this protocol's
    name); shares counter names with the core engine where the
    concepts coincide. *)

val counters : ('s, 'm) t -> (string * int) list
(** Shared names plus [cascade_rollbacks] (rollbacks triggered by another
    process's rollback announcement rather than directly by a failure) and
    [lost_states] (work discarded without any possibility of replay). *)

val check_rules : string list
(** Trace-sanitizer rule ids (see [optimist.check]) that are meaningful
    for this baseline; [Runner.check_rules] consults this under
    [recsim run --check]. *)
