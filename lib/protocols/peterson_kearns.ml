module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Vclock = Optimist_clock.Vclock
module Ftvc = Optimist_clock.Ftvc
module Message_log = Optimist_storage.Message_log
module Checkpoint_store = Optimist_storage.Checkpoint_store
module Metrics = Optimist_obs.Metrics
module Trace = Optimist_obs.Trace
open Optimist_core.Types

type announcement = { a_origin : int; a_ts : int; a_round : int }

type 'm wire =
  | W_app of { data : 'm; vc : Vclock.t; sender : int; uid : int }
  | W_token of announcement
  | W_ack of { round : int }
  | W_resume of { round : int }

type 'm entry_log =
  | E_msg of { data : 'm; vc : Vclock.t; sender : int }
  | E_mark of int  (* own component after a rollback bump *)

type ('s, 'm) checkpoint = { cp_state : 's; cp_vc : Vclock.t }

type config = {
  checkpoint_interval : float;
  flush_interval : float;
  restart_delay : float;
}

let default_config =
  { checkpoint_interval = 200.0; flush_interval = 25.0; restart_delay = 20.0 }

type ('s, 'm) t = {
  pid : int;
  n : int;
  engine : Engine.t;
  net : 'm wire Network.t;
  app : ('s, 'm) app;
  config : config;
  next_uid : unit -> int;
  mutable state : 's;
  mutable vc : Vclock.t;
  mutable alive : bool;
  mutable replaying : bool;
  log : 'm entry_log Message_log.t;
  checkpoints : ('s, 'm) checkpoint Checkpoint_store.t;
  (* My own in-flight recovery round, if any. *)
  mutable awaiting_acks : int;
  mutable my_round : int;
  mutable round_counter : int;
  mutable blocked_since : float option;
  mutable buffered : (int * 'm * Vclock.t) list; (* src, data, vc; newest first *)
  (* Active recovery announcements by other processes: obsolete filter. *)
  mutable active : announcement list;
  metrics : Metrics.Scope.t;
}

let make_net engine cfg = Network.create engine cfg

let id t = t.pid
let alive t = t.alive
let blocked t = t.awaiting_acks > 0
let state t = t.state
let metrics t = t.metrics
let counters t = Metrics.Scope.counters t.metrics

let tr_on t = Trace.enabled (Engine.tracer t.engine)

(* The vector clock maps onto the trace's FTVC shape with ver = 0 per
   entry; the event's [ver] field carries the recovery-round counter. *)
let tr_clock vc =
  Array.of_list (List.map (fun ts -> { Ftvc.ver = 0; ts }) (Vclock.to_list vc))

let tr_emit ?clock t kind =
  let clock = match clock with Some c -> c | None -> tr_clock t.vc in
  Trace.emit (Engine.tracer t.engine)
    {
      at = Engine.now t.engine;
      pid = t.pid;
      ver = t.round_counter;
      clock;
      kind;
    }

let flush_now t =
  let before = Message_log.stable_length t.log in
  Message_log.flush t.log;
  let stable = Message_log.stable_length t.log in
  if stable > before && tr_on t then tr_emit t (Trace.Log_flush { stable })

let take_checkpoint t =
  flush_now t;
  Metrics.Scope.incr t.metrics "checkpoints";
  if tr_on t then
    tr_emit t (Trace.Checkpoint { position = Message_log.total_length t.log });
  Checkpoint_store.record t.checkpoints
    ~position:(Message_log.total_length t.log)
    { cp_state = t.state; cp_vc = t.vc }

let send_app t dst data =
  if t.replaying then t.vc <- Vclock.tick t.vc ~me:t.pid
  else begin
    Metrics.Scope.incr t.metrics "sent";
    Metrics.Scope.incr ~by:t.n t.metrics "piggyback_words";
    let uid = t.next_uid () in
    if tr_on t then tr_emit t (Trace.Send { uid; dst });
    Network.send t.net ~src:t.pid ~dst
      (W_app { data; vc = t.vc; sender = t.pid; uid });
    t.vc <- Vclock.tick t.vc ~me:t.pid
  end

let run_app t ~src data =
  let state', sends = t.app.on_message ~me:t.pid ~src t.state data in
  t.state <- state';
  List.iter (fun (dst, payload) -> send_app t dst payload) sends

let deliver_now t ?(uid = -1) ~src ~vc data =
  Message_log.append t.log (E_msg { data; vc; sender = src });
  t.vc <- Vclock.merge t.vc ~me:t.pid vc;
  Metrics.Scope.incr t.metrics (if src = env_src then "injected" else "delivered");
  if tr_on t then tr_emit t (Trace.Deliver { uid; src });
  run_app t ~src data

let replay_entry t e =
  Metrics.Scope.incr t.metrics "replayed";
  match e with
  | E_msg { data; vc; sender } ->
      t.vc <- Vclock.merge t.vc ~me:t.pid vc;
      run_app t ~src:sender data
  | E_mark own ->
      let l = Vclock.to_list t.vc in
      t.vc <- Vclock.of_list (List.mapi (fun i x -> if i = t.pid then own else x) l)

(* Restore the latest state whose knowledge of [origin] is within the
   surviving prefix [<= ts]. *)
let restore t ~origin ~ts =
  match
    Checkpoint_store.latest_satisfying t.checkpoints (fun cp _ ->
        Vclock.get cp.cp_vc origin <= ts)
  with
  | None -> assert false
  | Some (cp, position) ->
      t.state <- cp.cp_state;
      t.vc <- cp.cp_vc;
      let stable = Message_log.stable_length t.log in
      t.replaying <- true;
      let rec replay pos =
        if pos < stable then
          let e = Message_log.get t.log pos in
          let ok =
            match e with
            | E_mark _ -> true
            | E_msg { vc; _ } -> Vclock.get vc origin <= ts
          in
          if ok then begin
            replay_entry t e;
            replay (pos + 1)
          end
          else pos
        else pos
      in
      let stop = replay position in
      t.replaying <- false;
      if stop < Message_log.total_length t.log then begin
        Metrics.Scope.incr
          ~by:(Message_log.total_length t.log - stop)
          t.metrics "log_truncated";
        Message_log.truncate t.log stop;
        Checkpoint_store.discard_after t.checkpoints ~position:stop
      end

let rollback t ~origin ~ts =
  Metrics.Scope.incr t.metrics "rollbacks";
  flush_now t;
  let truncated_before = Metrics.Scope.get t.metrics "log_truncated" in
  restore t ~origin ~ts;
  if tr_on t then
    tr_emit t
      (Trace.Rollback
         {
           discarded =
             Metrics.Scope.get t.metrics "log_truncated" - truncated_before;
         });
  t.vc <- Vclock.tick t.vc ~me:t.pid;
  Message_log.append t.log (E_mark (Vclock.get t.vc t.pid));
  flush_now t

let message_obsolete t (vc : Vclock.t) =
  List.exists (fun a -> Vclock.get vc a.a_origin > a.a_ts) t.active

let receive_app t ?(uid = -1) ~src ~vc data =
  if t.awaiting_acks > 0 then
    (* Synchronous recovery: block application traffic until the round
       completes. *)
    t.buffered <- (src, data, vc) :: t.buffered
  else if message_obsolete t vc then begin
    Metrics.Scope.incr t.metrics "discarded_obsolete";
    if tr_on t then tr_emit ~clock:(tr_clock vc) t (Trace.Drop_obsolete { uid; src })
  end
  else deliver_now t ~uid ~src ~vc data

let inject t data =
  if t.alive then
    if t.awaiting_acks > 0 then
      t.buffered <- (env_src, data, Vclock.of_list (List.init t.n (fun _ -> 0))) :: t.buffered
    else deliver_now t ~src:env_src ~vc:(Vclock.of_list (List.init t.n (fun _ -> 0))) data

let finish_round t =
  (match t.blocked_since with
  | Some since ->
      Metrics.Scope.incr
        ~by:(int_of_float (1000.0 *. (Engine.now t.engine -. since)))
        t.metrics "blocked_time_x1000";
      t.blocked_since <- None
  | None -> ());
  t.awaiting_acks <- 0;
  Metrics.Scope.incr ~by:(t.n - 1) t.metrics "control_messages";
  Network.broadcast t.net ~traffic:Network.Control ~src:t.pid
    (W_resume { round = t.my_round });
  let pending = List.rev t.buffered in
  t.buffered <- [];
  List.iter (fun (src, data, vc) -> receive_app t ~src ~vc data) pending

let do_restart t =
  Metrics.Scope.incr t.metrics "restarts";
  if t.active <> [] then Metrics.Scope.incr t.metrics "unsupported_overlap";
  (* Restore checkpoint + full stable log: the maximum locally recoverable
     state. *)
  (match Checkpoint_store.latest t.checkpoints with
  | None -> assert false
  | Some (cp, position) ->
      t.state <- cp.cp_state;
      t.vc <- cp.cp_vc;
      t.replaying <- true;
      Message_log.iter_range t.log ~from:position
        ~until:(Message_log.stable_length t.log) (fun e -> replay_entry t e);
      t.replaying <- false;
      Message_log.truncate t.log (Message_log.stable_length t.log));
  t.alive <- true;
  Network.set_up t.net t.pid;
  t.round_counter <- t.round_counter + 1;
  t.my_round <- t.round_counter;
  t.awaiting_acks <- t.n - 1;
  if tr_on t then tr_emit t (Trace.Restart { new_ver = t.round_counter });
  t.blocked_since <- Some (Engine.now t.engine);
  Metrics.Scope.incr ~by:(t.n - 1) t.metrics "control_messages";
  if tr_on t then
    tr_emit t
      (Trace.Token_sent
         { origin = t.pid; ver = t.my_round; ts = Vclock.get t.vc t.pid });
  Network.broadcast t.net ~traffic:Network.Control ~src:t.pid
    (W_token
       { a_origin = t.pid; a_ts = Vclock.get t.vc t.pid; a_round = t.my_round });
  t.vc <- Vclock.tick t.vc ~me:t.pid;
  take_checkpoint t

let fail t =
  if t.alive then begin
    t.alive <- false;
    if tr_on t then tr_emit t Trace.Failure;
    Metrics.Scope.incr t.metrics "failures";
    Message_log.crash t.log;
    t.buffered <- [];
    t.awaiting_acks <- 0;
    t.blocked_since <- None;
    Network.set_down t.net t.pid;
    ignore
      (Engine.schedule t.engine ~delay:t.config.restart_delay (fun () ->
           do_restart t))
  end

let receive_token t (a : announcement) =
  Metrics.Scope.incr t.metrics "tokens_received";
  if tr_on t then
    tr_emit t
      (Trace.Token_recv { origin = a.a_origin; ver = a.a_round; ts = a.a_ts });
  t.active <- a :: t.active;
  if Vclock.get t.vc a.a_origin > a.a_ts then begin
    if tr_on t then
      tr_emit t
        (Trace.Orphan_detected
           { origin = a.a_origin; ver = a.a_round; ts = a.a_ts });
    rollback t ~origin:a.a_origin ~ts:a.a_ts
  end;
  Metrics.Scope.incr t.metrics "control_messages";
  Network.send t.net ~traffic:Network.Control ~src:t.pid ~dst:a.a_origin
    (W_ack { round = a.a_round })

let handle_wire t (env : 'm wire Network.envelope) =
  match env.Network.payload with
  | W_app { data; vc; sender; uid } -> receive_app t ~uid ~src:sender ~vc data
  | W_token a -> receive_token t a
  | W_ack { round } ->
      if round = t.my_round && t.awaiting_acks > 0 then begin
        t.awaiting_acks <- t.awaiting_acks - 1;
        if t.awaiting_acks = 0 then finish_round t
      end
  | W_resume { round } ->
      t.active <- List.filter (fun a -> a.a_round <> round) t.active

let create ~engine ~net ~app ~id:pid ~n ?(config = default_config) ?metrics ~next_uid ()
    =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Metrics.Scope.create ~protocol:"peterson-kearns" ~process:pid ()
  in
  let t =
    {
      pid;
      n;
      engine;
      net;
      app;
      config;
      next_uid;
      state = app.init pid;
      vc = Vclock.create ~n ~me:pid;
      alive = true;
      replaying = false;
      log = Message_log.create ();
      checkpoints = Checkpoint_store.create ();
      awaiting_acks = 0;
      my_round = -1;
      round_counter = 0;
      blocked_since = None;
      buffered = [];
      active = [];
      metrics;
    }
  in
  Network.set_handler net pid (fun env -> handle_wire t env);
  take_checkpoint t;
  let rec flush_loop () =
    if t.alive then flush_now t;
    ignore
      (Engine.schedule engine ~daemon:true ~delay:config.flush_interval flush_loop)
  in
  let rec checkpoint_loop () =
    if t.alive && t.awaiting_acks = 0 then take_checkpoint t;
    ignore
      (Engine.schedule engine ~daemon:true ~delay:config.checkpoint_interval
         checkpoint_loop)
  in
  ignore
    (Engine.schedule engine ~daemon:true ~delay:config.flush_interval flush_loop);
  ignore
    (Engine.schedule engine ~daemon:true ~delay:config.checkpoint_interval
       checkpoint_loop);
  t

(* Trace-sanitizer rules (optimist.check ids): Deliver events stamp the
   receiver's merged clock rather than the sender's piggyback, so
   piggyback-integrity does not apply; the vector-clock rules (rendered
   as version-0 FTVC entries) do. *)
let check_rules =
  [ "OPT001"; "OPT002"; "OPT003"; "OPT005"; "OPT006"; "OPT007"; "OPT013" ]
