module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Transport = Optimist_core.Transport
module Checkpoint_store = Optimist_storage.Checkpoint_store
module Metrics = Optimist_obs.Metrics
module Trace = Optimist_obs.Trace
open Optimist_core.Types

(* Every frame names its sender: the transport seam hands the protocol
   the bare payload (no envelope), so ack/confirm/retransmission targets
   ride in the wire type itself. *)
type 'm wire =
  | W_app of { data : 'm; sender : int; uid : int; retransmit_rsn : int option }
      (** application message; [retransmit_rsn] is set on recovery resends
          so the receiver can slot it at its original position *)
  | W_ack of { sender : int; uid : int; rsn : int }
      (** receiver -> sender: RSN *)
  | W_confirm of { rsn : int }  (** sender -> receiver: RSN recorded *)
  | W_recover of { sender : int; from_rsn : int }
      (** restarting receiver -> all *)
  | W_recover_done

type 'm sent_record = {
  sr_dst : int;
  sr_data : 'm;
  sr_uid : int;
  mutable sr_rsn : int option;
}

type 's checkpoint = { ck_state : 's; ck_rsn : int }

type config = { checkpoint_interval : float; restart_delay : float }

let default_config = { checkpoint_interval = 200.0; restart_delay = 20.0 }

(* Only checkpoints and the incarnation counter are stable in J-Z — the
   send log is volatile by design (that is the protocol's point), so the
   hooks mirror nothing else. *)
type ('s, 'm) stable_hooks = {
  checkpoint_recorded : position:int -> 's checkpoint -> unit;
  epoch_recorded : int -> unit;
}

let null_hooks =
  {
    checkpoint_recorded = (fun ~position:_ _ -> ());
    epoch_recorded = (fun _ -> ());
  }

type ('s, 'm) image = {
  im_checkpoints : ('s checkpoint * int) list; (* newest first *)
  im_epoch : int;
}

type ('s, 'm) recovery = {
  mutable buffered : (int * 'm * int) list; (* rsn, data, src *)
  mutable done_count : int;
  started_at : float;
}

type ('s, 'm) t = {
  pid : int;
  n : int;
  rt : Transport.runtime;
  net : 'm wire Transport.t;
  app : ('s, 'm) app;
  config : config;
  stable_io : ('s, 'm) stable_hooks;
  next_uid : unit -> int;
  mutable state : 's;
  mutable alive : bool;
  mutable replaying : bool;
  mutable rsn_next : int; (* next receive sequence number = deliveries so far *)
  mutable unconfirmed : int; (* deliveries whose RSN is not yet confirmed *)
  mutable outbox : (int * 'm) list; (* sends blocked on confirmation, newest first *)
  mutable blocked_since : float option;
  (* volatile send log, keyed by uid *)
  send_log : (int, 'm sent_record) Hashtbl.t;
  (* stable record of deliveries indexed by rsn, for local replay *)
  mutable delivered_log : (int * 'm) array; (* src, data *)
  mutable delivered_len : int;
  mutable recovery : ('s, 'm) recovery option;
  mutable fresh_during_recovery : (int * 'm * (int * int) option) list;
      (* src, data, (sender, uid) to acknowledge *)
  checkpoints : 's checkpoint Checkpoint_store.t;
  mutable epoch : int;
  metrics : Metrics.Scope.t;
}

let make_net engine cfg = Network.create engine cfg

let id t = t.pid
let alive t = t.alive
let recovering t = t.recovery <> None
let state t = t.state
let metrics t = t.metrics
let counters t = Metrics.Scope.counters t.metrics

let tr_on t = Trace.enabled (t.rt.Transport.tracer ())

let tr_emit t kind =
  Trace.emit
    (t.rt.Transport.tracer ())
    {
      at = t.rt.Transport.now ();
      pid = t.pid;
      ver = t.epoch;
      clock = [||];
      kind;
    }

let charge_blocked t since =
  let ms = int_of_float (1000.0 *. (t.rt.Transport.now () -. since)) in
  Metrics.Scope.incr ~by:ms t.metrics "blocked_time_x1000"

(* In J-Z the receiver's deliveries are reconstructed from the senders'
   logs; we additionally keep a local array standing in for the volatile
   delivery record that a real implementation replays from after the
   senders retransmit. It is wiped on crash like any volatile state. *)
let record_delivery t ~src data =
  if t.delivered_len = Array.length t.delivered_log then begin
    let next = max 16 (2 * t.delivered_len) in
    let a = Array.make next (src, data) in
    Array.blit t.delivered_log 0 a 0 t.delivered_len;
    t.delivered_log <- a
  end;
  t.delivered_log.(t.delivered_len) <- (src, data);
  t.delivered_len <- t.delivered_len + 1

let send_wire t ?(lane = Transport.Data) dst w =
  t.net.Transport.send ~lane ~src:t.pid ~dst w

let really_send t dst data =
  let uid = t.next_uid () in
  Metrics.Scope.incr t.metrics "sent";
  Metrics.Scope.incr ~by:2 t.metrics "piggyback_words";
  Hashtbl.replace t.send_log uid
    { sr_dst = dst; sr_data = data; sr_uid = uid; sr_rsn = None };
  if tr_on t then tr_emit t (Trace.Send { uid; dst });
  send_wire t dst (W_app { data; sender = t.pid; uid; retransmit_rsn = None })

let flush_outbox t =
  if t.unconfirmed = 0 && t.recovery = None then begin
    (match t.blocked_since with
    | Some since ->
        charge_blocked t since;
        t.blocked_since <- None
    | None -> ());
    let sends = List.rev t.outbox in
    t.outbox <- [];
    List.iter (fun (dst, data) -> really_send t dst data) sends
  end

(* The send-blocking rule: a send may leave only when every local delivery
   has a confirmed RSN at its sender. *)
let send_app t dst data =
  if not t.replaying then begin
    if t.unconfirmed = 0 && t.recovery = None then really_send t dst data
    else begin
      if t.outbox = [] && t.blocked_since = None then
        t.blocked_since <- Some (t.rt.Transport.now ());
      t.outbox <- (dst, data) :: t.outbox
    end
  end

let run_app t ~src data =
  let state', sends = t.app.on_message ~me:t.pid ~src t.state data in
  t.state <- state';
  List.iter (fun (dst, payload) -> send_app t dst payload) sends

let deliver t ~src data ~ack =
  let rsn = t.rsn_next in
  t.rsn_next <- rsn + 1;
  record_delivery t ~src data;
  Metrics.Scope.incr t.metrics "delivered";
  if tr_on t then begin
    let uid = match ack with Some (_, uid) -> uid | None -> -1 in
    tr_emit t (Trace.Deliver { uid; src })
  end;
  (match ack with
  | Some (sender, uid) when sender >= 0 ->
      t.unconfirmed <- t.unconfirmed + 1;
      Metrics.Scope.incr t.metrics "control_messages";
      send_wire t ~lane:Transport.Control sender
        (W_ack { sender = t.pid; uid; rsn })
  | _ -> ());
  run_app t ~src data

let inject t data =
  if t.alive && t.recovery = None then begin
    Metrics.Scope.incr t.metrics "injected";
    (* Environment stimuli are treated as stably logged on arrival. *)
    deliver t ~src:env_src data ~ack:None
  end

let take_checkpoint t =
  Metrics.Scope.incr t.metrics "checkpoints";
  if tr_on t then tr_emit t (Trace.Checkpoint { position = t.rsn_next });
  let cp = { ck_state = t.state; ck_rsn = t.rsn_next } in
  Checkpoint_store.record t.checkpoints ~position:t.rsn_next cp;
  t.stable_io.checkpoint_recorded ~position:t.rsn_next cp

let finish_recovery t (r : ('s, 'm) recovery) =
  (* Replay retransmitted messages in RSN order from the checkpoint; a gap
     means the original sender crashed too and its volatile log is gone. *)
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) r.buffered in
  t.replaying <- false;
  let rec replay expected = function
    | [] -> expected
    | (rsn, data, src) :: rest ->
        if rsn < expected then replay expected rest (* duplicate *)
        else if rsn = expected then begin
          Metrics.Scope.incr t.metrics "replayed";
          record_delivery t ~src data;
          run_app t ~src data;
          replay (expected + 1) rest
        end
        else begin
          Metrics.Scope.incr ~by:(List.length rest + 1) t.metrics "unrecoverable";
          expected
        end
  in
  (* Suppress resends while reconstructing: peers already hold them. *)
  t.replaying <- true;
  let resumed_at = replay t.rsn_next sorted in
  t.replaying <- false;
  t.rsn_next <- resumed_at;
  t.recovery <- None;
  charge_blocked t r.started_at;
  take_checkpoint t;
  (* Deliver what arrived while recovering. *)
  let fresh = List.rev t.fresh_during_recovery in
  t.fresh_during_recovery <- [];
  List.iter (fun (src, data, ack) -> deliver t ~src data ~ack) fresh;
  flush_outbox t

let do_restart t =
  Metrics.Scope.incr t.metrics "restarts";
  t.epoch <- t.epoch + 1;
  t.stable_io.epoch_recorded t.epoch;
  (match Checkpoint_store.latest t.checkpoints with
  | None -> assert false
  | Some (cp, _) ->
      t.state <- cp.ck_state;
      t.rsn_next <- cp.ck_rsn;
      t.delivered_len <- min t.delivered_len cp.ck_rsn);
  t.alive <- true;
  if tr_on t then tr_emit t (Trace.Restart { new_ver = t.epoch });
  t.unconfirmed <- 0;
  t.outbox <- [];
  t.blocked_since <- None;
  t.net.Transport.set_up ~drop_held_data:false t.pid;
  t.recovery <-
    Some { buffered = []; done_count = 0; started_at = t.rt.Transport.now () };
  Metrics.Scope.incr ~by:(t.n - 1) t.metrics "control_messages";
  if tr_on t then
    tr_emit t (Trace.Token_sent { origin = t.pid; ver = t.epoch; ts = t.rsn_next });
  t.net.Transport.broadcast ~lane:Transport.Control ~src:t.pid
    (W_recover { sender = t.pid; from_rsn = t.rsn_next })

let fail t =
  if t.alive then begin
    t.alive <- false;
    if tr_on t then tr_emit t Trace.Failure;
    Metrics.Scope.incr t.metrics "failures";
    (* Volatile state lost: the send log, delivery record, outbox. *)
    Hashtbl.reset t.send_log;
    t.delivered_len <- 0;
    t.outbox <- [];
    t.fresh_during_recovery <- [];
    t.recovery <- None;
    t.net.Transport.set_down t.pid;
    t.rt.Transport.schedule ~daemon:false ~delay:t.config.restart_delay
      (fun () -> do_restart t)
  end

let handle_recover_request t ~src ~from_rsn =
  if tr_on t then
    tr_emit t (Trace.Token_recv { origin = src; ver = 0; ts = from_rsn });
  (* Retransmit everything we logged for [src] with a recorded RSN past the
     checkpoint, then signal completion. *)
  Hashtbl.iter
    (fun _ r ->
      if r.sr_dst = src then
        match r.sr_rsn with
        | Some rsn when rsn >= from_rsn ->
            Metrics.Scope.incr t.metrics "retransmitted";
            send_wire t ~lane:Transport.Control src
              (W_app
                 {
                   data = r.sr_data;
                   sender = t.pid;
                   uid = r.sr_uid;
                   retransmit_rsn = Some rsn;
                 })
        | Some _ -> ()
        | None ->
            (* Unacknowledged: the receiver never delivered it (or lost the
               delivery); resend as fresh. *)
            Metrics.Scope.incr t.metrics "retransmitted";
            send_wire t ~lane:Transport.Control src
              (W_app
                 {
                   data = r.sr_data;
                   sender = t.pid;
                   uid = r.sr_uid;
                   retransmit_rsn = None;
                 }))
    t.send_log;
  Metrics.Scope.incr t.metrics "control_messages";
  send_wire t ~lane:Transport.Control src W_recover_done

let handle_wire t (w : 'm wire) =
  match w with
  | W_app { data; sender = src; uid; retransmit_rsn } -> (
      match t.recovery with
      | Some r -> (
          match retransmit_rsn with
          | Some rsn -> r.buffered <- (rsn, data, src) :: r.buffered
          | None ->
              t.fresh_during_recovery <-
                (src, data, Some (src, uid)) :: t.fresh_during_recovery)
      | None -> (
          match retransmit_rsn with
          | Some _ ->
              (* Late retransmission after recovery finished: duplicate. *)
              ()
          | None -> deliver t ~src data ~ack:(Some (src, uid))))
  | W_ack { sender = src; uid; rsn } -> (
      match Hashtbl.find_opt t.send_log uid with
      | Some r ->
          r.sr_rsn <- Some rsn;
          Metrics.Scope.incr t.metrics "control_messages";
          send_wire t ~lane:Transport.Control src (W_confirm { rsn })
      | None ->
          (* We crashed since sending; the record is gone. The receiver's
             delivery is then unrecoverable if we crash again — nothing to
             confirm. Still confirm so the receiver does not block forever. *)
          send_wire t ~lane:Transport.Control src (W_confirm { rsn }))
  | W_confirm _ ->
      if t.unconfirmed > 0 then begin
        t.unconfirmed <- t.unconfirmed - 1;
        flush_outbox t
      end
  | W_recover { sender = src; from_rsn } ->
      handle_recover_request t ~src ~from_rsn
  | W_recover_done -> (
      match t.recovery with
      | Some r ->
          r.done_count <- r.done_count + 1;
          if r.done_count = t.n - 1 then finish_recovery t r
      | None -> ())

let create_rt ~rt ~net ~app ~id:pid ~n ?(config = default_config) ?metrics
    ?(stable = null_hooks) ?restore:image ~next_uid () =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Metrics.Scope.create ~protocol:"sender-based" ~process:pid ()
  in
  let checkpoints, epoch =
    match image with
    | None -> (Checkpoint_store.create (), 0)
    | Some im -> (Checkpoint_store.of_items im.im_checkpoints, im.im_epoch)
  in
  let t =
    {
      pid;
      n;
      rt;
      net;
      app;
      config;
      stable_io = stable;
      next_uid;
      state = app.init pid;
      alive = true;
      replaying = false;
      rsn_next = 0;
      unconfirmed = 0;
      outbox = [];
      blocked_since = None;
      send_log = Hashtbl.create 64;
      delivered_log = [||];
      delivered_len = 0;
      recovery = None;
      fresh_during_recovery = [];
      checkpoints;
      epoch;
      metrics;
    }
  in
  net.Transport.set_handler pid (fun w -> handle_wire t w);
  (match image with None -> take_checkpoint t | Some _ -> ());
  let rec checkpoint_loop () =
    if t.alive && t.recovery = None then take_checkpoint t;
    rt.Transport.schedule ~daemon:true ~delay:config.checkpoint_interval
      checkpoint_loop
  in
  rt.Transport.schedule ~daemon:true ~delay:config.checkpoint_interval
    checkpoint_loop;
  t

let create ~engine ~net ~app ~id ~n ?config ?metrics ~next_uid () =
  create_rt ~rt:(Transport.of_engine engine) ~net:(Transport.of_network net)
    ~app ~id ~n ?config ?metrics ~next_uid ()

(* Live-mode crash recovery for a process built with [?restore]: emit the
   failure record for the incarnation the crash killed, then run the
   ordinary restart — restore the last stable checkpoint and ask every
   peer to retransmit from its volatile send log. The answers arrive
   through the transport, so recovery completes asynchronously once all
   [n - 1] peers (or their next incarnations) have responded. *)
let recover t =
  if Checkpoint_store.count t.checkpoints = 0 then
    invalid_arg "Sender_based.recover: empty checkpoint store";
  Metrics.Scope.incr t.metrics "failures";
  if tr_on t then tr_emit t Trace.Failure;
  t.alive <- false;
  do_restart t

(* Trace-sanitizer rules (optimist.check ids): no clocks on the wire,
   so only the structural rules apply. Duplicate-delivery is out: a
   send that was never acknowledged is resent as fresh during the
   receiver's recovery, and the original copy may still be in flight,
   so the same uid can genuinely reach the application twice — this
   baseline dedups retransmissions by RSN only. *)
let check_rules = [ "OPT001"; "OPT002"; "OPT006"; "OPT007" ]
