(** Sender-based message logging — the Johnson-Zwaenepoel [11] row of the
    paper's Table 1.

    Each message is logged in the {e sender's} volatile memory. The receiver
    assigns a receive sequence number (RSN) on delivery and returns it in an
    acknowledgement; the sender records the RSN and confirms. A process may
    deliver optimistically, but it must not {e send} while any of its own
    deliveries is still unconfirmed — this send-blocking is the protocol's
    failure-free cost, accumulated in [blocked_time_x1000] along with
    recovery stalls.

    Recovery is {e not} asynchronous: the restarting process broadcasts a
    retransmission request and must wait for every peer to respond before it
    can make progress. Peers never roll back. Messages whose sender also
    crashed (volatile send log lost) are unrecoverable and counted in
    [unrecoverable].

    Table 1 expectations reproduced: ordering [None], asynchronous recovery
    [No], rollbacks per failure [1] (only the failed process), timestamps
    [O(1)]. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Transport = Optimist_core.Transport

type 'm wire

type ('s, 'm) t

type 's checkpoint = { ck_state : 's; ck_rsn : int }
(** Snapshot plus the receive-sequence number it covers. *)

type config = {
  checkpoint_interval : float;
  restart_delay : float;
}

val default_config : config

type ('s, 'm) stable_hooks = {
  checkpoint_recorded : position:int -> 's checkpoint -> unit;
  epoch_recorded : int -> unit;
}
(** Callbacks fired when durable state changes. The send log is
    deliberately {e not} mirrored: keeping it volatile is the protocol's
    defining trade-off. *)

val null_hooks : ('s, 'm) stable_hooks

type ('s, 'm) image = {
  im_checkpoints : ('s checkpoint * int) list;  (** newest first *)
  im_epoch : int;
}
(** Durable state reloaded by a restarted live process. *)

val create_rt :
  rt:Transport.runtime ->
  net:'m wire Transport.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  ?stable:('s, 'm) stable_hooks ->
  ?restore:('s, 'm) image ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t
(** Runtime-seam constructor. With [?restore] the process resumes a prior
    incarnation: no initial checkpoint is taken and the epoch continues
    from [im_epoch]. *)

val create :
  engine:Engine.t ->
  net:'m wire Network.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t

val make_net : Engine.t -> Network.config -> 'm wire Network.t

val id : ('s, 'm) t -> int
val alive : ('s, 'm) t -> bool
val recovering : ('s, 'm) t -> bool
val state : ('s, 'm) t -> 's
val inject : ('s, 'm) t -> 'm -> unit
val fail : ('s, 'm) t -> unit
(** Simulated crash: volatile state is wiped and a restart is scheduled
    after [restart_delay]. *)

val recover : ('s, 'm) t -> unit
(** Live-mode recovery for a process built with [?restore]: emit the
    failure record, restore the latest stable checkpoint, and broadcast
    the retransmission request. Raises [Invalid_argument] if the
    checkpoint store is empty. *)

val metrics : ('s, 'm) t -> Optimist_obs.Metrics.Scope.t
(** The per-process metrics scope (labelled with this protocol's
    name); shares counter names with the core engine where the
    concepts coincide. *)

val counters : ('s, 'm) t -> (string * int) list

val check_rules : string list
(** Trace-sanitizer rule ids (see [optimist.check]) that are meaningful
    for this baseline; [Runner.check_rules] consults this under
    [recsim run --check]. *)
