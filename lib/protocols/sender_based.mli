(** Sender-based message logging — the Johnson-Zwaenepoel [11] row of the
    paper's Table 1.

    Each message is logged in the {e sender's} volatile memory. The receiver
    assigns a receive sequence number (RSN) on delivery and returns it in an
    acknowledgement; the sender records the RSN and confirms. A process may
    deliver optimistically, but it must not {e send} while any of its own
    deliveries is still unconfirmed — this send-blocking is the protocol's
    failure-free cost, accumulated in [blocked_time_x1000] along with
    recovery stalls.

    Recovery is {e not} asynchronous: the restarting process broadcasts a
    retransmission request and must wait for every peer to respond before it
    can make progress. Peers never roll back. Messages whose sender also
    crashed (volatile send log lost) are unrecoverable and counted in
    [unrecoverable].

    Table 1 expectations reproduced: ordering [None], asynchronous recovery
    [No], rollbacks per failure [1] (only the failed process), timestamps
    [O(1)]. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network

type 'm wire

type ('s, 'm) t

type config = {
  checkpoint_interval : float;
  restart_delay : float;
}

val default_config : config

val create :
  engine:Engine.t ->
  net:'m wire Network.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t

val make_net : Engine.t -> Network.config -> 'm wire Network.t

val id : ('s, 'm) t -> int
val alive : ('s, 'm) t -> bool
val recovering : ('s, 'm) t -> bool
val state : ('s, 'm) t -> 's
val inject : ('s, 'm) t -> 'm -> unit
val fail : ('s, 'm) t -> unit
val metrics : ('s, 'm) t -> Optimist_obs.Metrics.Scope.t
(** The per-process metrics scope (labelled with this protocol's
    name); shares counter names with the core engine where the
    concepts coincide. *)

val counters : ('s, 'm) t -> (string * int) list

val check_rules : string list
(** Trace-sanitizer rule ids (see [optimist.check]) that are meaningful
    for this baseline; [Runner.check_rules] consults this under
    [recsim run --check]. *)
