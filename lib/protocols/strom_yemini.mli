(** Strom-Yemini-style optimistic recovery — the [27] row of the paper's
    Table 1.

    Like Damani-Garg this logs messages asynchronously at the receiver,
    piggybacks an O(n) dependency vector with incarnation numbers, and
    broadcasts a recovery announcement on failure. The differences captured
    here are exactly what the paper criticises:

    - {b No history mechanism}: a process only knows the single
      (incarnation, timestamp) entry per peer in its current dependency
      vector. When an entry is overwritten by a later incarnation before
      the announcement that ended the earlier one arrives (possible even on
      FIFO channels, through a third process), the dependency information
      on the dead incarnation is {e lost}. On receiving the late
      announcement the process must {e conservatively roll back past the
      blind incarnation jump} — rollbacks Damani-Garg provably avoids
      (the paper's "minimal rollback" property). The [conservative_rollbacks]
      counter and the oracle's needless-rollback statistic measure this.
    - {b No deliverability rule}: messages referencing unknown incarnations
      are accepted optimistically, which is what creates the blind jumps.
    - {b FIFO assumed}: the original protocol requires FIFO channels;
      running this implementation on a reordering network exercises that
      assumption.

    The announcement table (this implementation keeps received
    announcements stably, like D-G tokens) still allows exact obsolete-
    message discarding, so runs remain consistent — just with more and
    deeper rollbacks than Damani-Garg on the same schedule. *)

module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Transport = Optimist_core.Transport
module Ftvc = Optimist_clock.Ftvc

type announcement = { a_origin : int; a_inc : int; a_ts : int }
(** A recovery announcement: states of incarnation [a_inc] of [a_origin]
    past timestamp [a_ts] are dead. *)

type 'm wire

type 'm entry_log =
  | E_msg of { data : 'm; clock : Ftvc.entry array; sender : int }
  | E_mark of Ftvc.entry
(** One receiver-log record: a delivered message with its piggybacked
    dependency vector, or an own-entry bump written by a rollback. *)

type ('s, 'm) t

type ('s, 'm) checkpoint = { cp_state : 's; cp_clock : Ftvc.t }

type config = {
  checkpoint_interval : float;
  flush_interval : float;
  restart_delay : float;
}

val default_config : config

type ('s, 'm) stable_hooks = {
  log_flushed : 'm entry_log list -> unit;
      (** newly stable entries, oldest first *)
  log_truncated : int -> unit;  (** new total length after a rollback *)
  checkpoint_recorded : position:int -> ('s, 'm) checkpoint -> unit;
  checkpoints_discarded_after : position:int -> unit;
  announcement_recorded : announcement -> unit;
}
(** Callbacks fired when durable state changes: the flushed log prefix,
    the checkpoints, and the announcement table. *)

val null_hooks : ('s, 'm) stable_hooks

type ('s, 'm) image = {
  im_log : 'm entry_log array;  (** stable prefix, position order *)
  im_checkpoints : (('s, 'm) checkpoint * int) list;  (** newest first *)
  im_announcements : announcement list;
}
(** Durable state reloaded by a restarted live process. *)

val create_rt :
  rt:Transport.runtime ->
  net:'m wire Transport.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  ?stable:('s, 'm) stable_hooks ->
  ?restore:('s, 'm) image ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t
(** Runtime-seam constructor. With [?restore] the process resumes a prior
    incarnation from the stable log, checkpoints and announcement table;
    no initial checkpoint is taken. *)

val create :
  engine:Engine.t ->
  net:'m wire Network.t ->
  app:('s, 'm) Optimist_core.Types.app ->
  id:int ->
  n:int ->
  ?config:config ->
  ?metrics:Optimist_obs.Metrics.Scope.t ->
  next_uid:(unit -> int) ->
  unit ->
  ('s, 'm) t

val make_net : Engine.t -> Network.config -> 'm wire Network.t

val id : ('s, 'm) t -> int
val alive : ('s, 'm) t -> bool
val state : ('s, 'm) t -> 's
val incarnation : ('s, 'm) t -> int
val inject : ('s, 'm) t -> 'm -> unit
val fail : ('s, 'm) t -> unit
(** Simulated crash: the volatile log suffix is lost and a restart is
    scheduled after [restart_delay]. *)

val recover : ('s, 'm) t -> unit
(** Live-mode recovery for a process built with [?restore]: restore from
    the stable log (so the failure record carries the incarnation the
    crash killed), then announce and step to the next incarnation.
    Raises [Invalid_argument] if the checkpoint store is empty. *)

val metrics : ('s, 'm) t -> Optimist_obs.Metrics.Scope.t
(** The per-process metrics scope (labelled with this protocol's
    name); shares counter names with the core engine where the
    concepts coincide. *)

val counters : ('s, 'm) t -> (string * int) list
(** Shared names plus [conservative_rollbacks]. *)

val check_rules : string list
(** Trace-sanitizer rule ids (see [optimist.check]) that are meaningful
    for this baseline; [Runner.check_rules] consults this under
    [recsim run --check]. *)
