module Engine = Optimist_sim.Engine
module Network = Optimist_net.Network
module Transport = Optimist_core.Transport
module Message_log = Optimist_storage.Message_log
module Checkpoint_store = Optimist_storage.Checkpoint_store
module Metrics = Optimist_obs.Metrics
module Trace = Optimist_obs.Trace
open Optimist_core.Types

(* The wire format carries no clock: pessimism needs no causality
   tracking. *)
type 'm wire = { data : 'm; sender : int; uid : int }

type 'm entry = { e_data : 'm; e_sender : int }

type config = {
  sync_write_latency : float;
  checkpoint_interval : float;
  restart_delay : float;
  ack_before_fsync : bool;
      (** Mutant for the model checker's self-test: process and
          acknowledge a delivery before its log entry reaches stable
          storage. Breaks the whole point of pessimism — a crash in the
          window silently loses a processed message, and checkpoints
          cover log positions that were never stable (OPT013). *)
}

let default_config =
  {
    sync_write_latency = 0.5;
    checkpoint_interval = 200.0;
    restart_delay = 20.0;
    ack_before_fsync = false;
  }

(* Mirrors of the stable state for an external store (the live runtime);
   the epoch is persisted so a rebuilt worker resumes counting
   incarnations where the dead one stopped. *)
type ('s, 'm) stable_hooks = {
  log_appended : 'm entry list -> unit;
  checkpoint_recorded : position:int -> 's -> unit;
  epoch_recorded : int -> unit;
}

let null_hooks =
  {
    log_appended = (fun _ -> ());
    checkpoint_recorded = (fun ~position:_ _ -> ());
    epoch_recorded = (fun _ -> ());
  }

type ('s, 'm) image = {
  im_log : 'm entry array;
  im_checkpoints : ('s * int) list; (* newest first *)
  im_epoch : int;
}

type ('s, 'm) t = {
  pid : int;
  rt : Transport.runtime;
  net : 'm wire Transport.t;
  app : ('s, 'm) app;
  config : config;
  stable_io : ('s, 'm) stable_hooks;
  next_uid : unit -> int;
  mutable state : 's;
  mutable alive : bool;
  mutable replaying : bool;
  mutable processed : int; (* log entries whose handler has run *)
  mutable epoch : int; (* incarnation counter guarding delayed handlers *)
  log : 'm entry Message_log.t;
  checkpoints : 's Checkpoint_store.t;
  metrics : Metrics.Scope.t;
}

let make_net engine cfg = Network.create engine cfg

let id t = t.pid
let alive t = t.alive
let state t = t.state
let metrics t = t.metrics
let counters t = Metrics.Scope.counters t.metrics

let tr_on t = Trace.enabled (t.rt.Transport.tracer ())

let tr_emit t kind =
  Trace.emit
    (t.rt.Transport.tracer ())
    {
      at = t.rt.Transport.now ();
      pid = t.pid;
      ver = t.epoch;
      clock = [||];
      kind;
    }

let send_app t dst data =
  if not t.replaying then begin
    Metrics.Scope.incr t.metrics "sent";
    (* O(1) header: sender id + uid, counted as 2 words. *)
    Metrics.Scope.incr ~by:2 t.metrics "piggyback_words";
    let uid = t.next_uid () in
    if tr_on t then tr_emit t (Trace.Send { uid; dst });
    t.net.Transport.send ~lane:Transport.Data ~src:t.pid ~dst
      { data; sender = t.pid; uid }
  end

let run_app t ~src data =
  let state', sends = t.app.on_message ~me:t.pid ~src t.state data in
  t.state <- state';
  List.iter (fun (dst, payload) -> send_app t dst payload) sends

(* Synchronous logging: the entry is forced to stable storage, the
   simulated write latency is charged, and only then does the handler
   run. A crash in the window between the write and the handler loses
   nothing: replay re-runs the handler from the stable log. *)
let deliver t ?(uid = -1) ~src data =
  let entry = { e_data = data; e_sender = src } in
  if t.config.ack_before_fsync then begin
    (* Mutant: the entry is appended but never forced; the handler runs
       immediately, so [processed] races ahead of the stable prefix. *)
    Message_log.append t.log entry;
    if tr_on t then
      tr_emit t (Trace.Log_flush { stable = Message_log.stable_length t.log });
    Metrics.Scope.incr t.metrics "delivered";
    if tr_on t then tr_emit t (Trace.Deliver { uid; src });
    t.processed <- t.processed + 1;
    run_app t ~src data
  end
  else begin
    Message_log.append t.log entry;
    Message_log.flush t.log;
    t.stable_io.log_appended [ entry ];
    if tr_on t then
      tr_emit t (Trace.Log_flush { stable = Message_log.stable_length t.log });
    Metrics.Scope.incr
      ~by:(int_of_float (1000.0 *. t.config.sync_write_latency))
      t.metrics "blocked_time_x1000";
    let epoch = t.epoch in
    t.rt.Transport.schedule
      ~label:
        { Transport.Engine.l_kind = "handler"; l_pid = t.pid; l_src = src;
          l_info = "" }
      ~daemon:false ~delay:t.config.sync_write_latency
      (fun () ->
        if t.alive && t.epoch = epoch then begin
          Metrics.Scope.incr t.metrics "delivered";
          if tr_on t then tr_emit t (Trace.Deliver { uid; src });
          t.processed <- t.processed + 1;
          run_app t ~src data
        end)
  end

let inject t data =
  if t.alive then begin
    Metrics.Scope.incr t.metrics "injected";
    deliver t ~src:env_src data
  end

let take_checkpoint t =
  Metrics.Scope.incr t.metrics "checkpoints";
  if tr_on t then tr_emit t (Trace.Checkpoint { position = t.processed });
  Checkpoint_store.record t.checkpoints ~position:t.processed t.state;
  t.stable_io.checkpoint_recorded ~position:t.processed t.state

let do_restart t =
  Metrics.Scope.incr t.metrics "restarts";
  t.epoch <- t.epoch + 1;
  t.stable_io.epoch_recorded t.epoch;
  (match Checkpoint_store.latest t.checkpoints with
  | None -> assert false
  | Some (snapshot, position) ->
      t.state <- snapshot;
      t.replaying <- true;
      Message_log.iter_range t.log ~from:position
        ~until:(Message_log.stable_length t.log) (fun e ->
          Metrics.Scope.incr t.metrics "replayed";
          run_app t ~src:e.e_sender e.e_data);
      t.replaying <- false;
      t.processed <- Message_log.stable_length t.log);
  t.alive <- true;
  if tr_on t then tr_emit t (Trace.Restart { new_ver = t.epoch });
  t.net.Transport.set_up ~drop_held_data:false t.pid;
  take_checkpoint t

let fail t =
  if t.alive then begin
    t.alive <- false;
    if tr_on t then tr_emit t Trace.Failure;
    Metrics.Scope.incr t.metrics "failures";
    t.net.Transport.set_down t.pid;
    t.rt.Transport.schedule
      ~label:
        { Transport.Engine.l_kind = "restart"; l_pid = t.pid; l_src = -1;
          l_info = "" }
      ~daemon:false ~delay:t.config.restart_delay (fun () -> do_restart t)
  end

let handle_wire t (w : 'm wire) = deliver t ~uid:w.uid ~src:w.sender w.data

let create_rt ~rt ~net ~app ~id:pid ~n:_ ?(config = default_config) ?metrics
    ?(stable = null_hooks) ?restore:image ~next_uid () =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Metrics.Scope.create ~protocol:"pessimistic" ~process:pid ()
  in
  let log, checkpoints, epoch =
    match image with
    | None -> (Message_log.create (), Checkpoint_store.create (), 0)
    | Some im ->
        ( Message_log.of_stable im.im_log,
          Checkpoint_store.of_items im.im_checkpoints,
          im.im_epoch )
  in
  let t =
    {
      pid;
      rt;
      net;
      app;
      config;
      stable_io = stable;
      next_uid;
      state = app.init pid;
      alive = true;
      replaying = false;
      processed = 0;
      epoch;
      log;
      checkpoints;
      metrics;
    }
  in
  net.Transport.set_handler pid (fun w -> handle_wire t w);
  (match image with None -> take_checkpoint t | Some _ -> ());
  let timer =
    { Transport.Engine.l_kind = "timer"; l_pid = pid; l_src = -1;
      l_info = "checkpoint" }
  in
  let rec checkpoint_loop () =
    if t.alive then take_checkpoint t;
    rt.Transport.schedule ~label:timer ~daemon:true
      ~delay:config.checkpoint_interval checkpoint_loop
  in
  rt.Transport.schedule ~label:timer ~daemon:true
    ~delay:config.checkpoint_interval checkpoint_loop;
  t

let create ~engine ~net ~app ~id ~n ?config ?metrics ~next_uid () =
  create_rt ~rt:(Transport.of_engine engine) ~net:(Transport.of_network net)
    ~app ~id ~n ?config ?metrics ~next_uid ()

(* Live-mode crash recovery for a process built with [?restore]: emit the
   failure record for the incarnation the crash killed, then run the
   ordinary local restart (restore + replay + checkpoint). *)
let recover t =
  if Checkpoint_store.count t.checkpoints = 0 then
    invalid_arg "Pessimistic.recover: empty checkpoint store";
  Metrics.Scope.incr t.metrics "failures";
  if tr_on t then tr_emit t Trace.Failure;
  t.alive <- false;
  do_restart t

(* Trace-sanitizer rules (optimist.check ids) this baseline's event
   stream satisfies. No FTVCs are piggybacked, so the clock-carrying
   rules do not apply. Checkpoint positions count processed entries,
   and a handler only runs once its entry is stable, so the
   checkpoint-stability rule (OPT013) holds too — which is exactly what
   the [ack_before_fsync] mutant breaks. *)
let check_rules =
  [ "OPT001"; "OPT002"; "OPT003"; "OPT006"; "OPT007"; "OPT013" ]
