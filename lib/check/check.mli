(** Protocol sanitizer and trace linter.

    The paper's correctness argument is a set of checkable invariants:
    the history mechanism detects orphans and obsolete messages
    {e exactly} (Lemmas 3 and 4), FTVCs order states consistently with
    happened-before (Section 4), each process rolls back at most once
    per failure (Section 6), and committed outputs are never orphaned
    (Section 6.5). This module turns those proofs into executable
    checks over the typed event stream of {!Optimist_obs.Trace}.

    One rule engine, two front ends:

    - {b Online sanitizer} — a {!Monitor} attached as a trace sink on a
      live engine ([recsim run --check]); it sees every event as it is
      emitted and can additionally be cross-checked against the
      ground-truth oracle ({!Monitor.cross_check}).
    - {b Offline linter} — {!Lint} replays a recorded JSONL file
      through the same monitor with {e no re-execution}
      ([recsim check FILE.jsonl]): streaming line-by-line schema
      validation, happens-before reconstruction from piggybacked FTVCs,
      send/deliver pairing, rollback counting per failure.

    Rules carry stable numbered ids ([OPT001]…) so CI output, fixtures
    and documentation can reference them; each rule records the lemma
    or section of the paper it enforces.

    The monitor only ever {e reconstructs} per-process knowledge from
    the trace, and the reconstruction errs on the side of knowing more
    than the real process did (crashes and rollbacks erase real history
    records; the monitor's tables survive). Rules are therefore stated
    so that over-approximation cannot produce false alarms — e.g.
    orphan-exactness (OPT010) rejects detections that {e no} knowledge
    could justify, while the missed-orphan direction is covered by the
    online oracle cross-check (OPT014) instead. *)

module Trace = Optimist_obs.Trace
module Ftvc = Optimist_clock.Ftvc

(** {2 Rules} *)

type severity = Error | Warning

type rule = {
  id : string;  (** stable numbered id, e.g. ["OPT008"] *)
  slug : string;  (** kebab-case name, e.g. ["missed-obsolete"] *)
  severity : severity;
  reference : string;  (** the paper lemma/section the rule enforces *)
  doc : string;  (** one-line human description *)
  online_only : bool;
      (** [true] for rules that need live ground truth (the oracle
          cross-check) and are never evaluated by the offline linter *)
}

val rules : rule list
(** All rules, in id order. *)

val all_ids : string list

val offline_ids : string list
(** Ids of rules the offline linter can evaluate (excludes
    [online_only] rules). *)

val find_rule : string -> rule option
(** Look up by id (case-insensitive) or slug. *)

(** {2 Clock comparison}

    The exact comparison the checker uses for FTVC stamps, exposed so
    the property-test suite can verify the laws the rules rely on:
    reflexivity, antisymmetry, transitivity, and agreement with
    {!Optimist_clock.Vclock} ordering when all versions are equal. *)

val clock_leq : Ftvc.entry array -> Ftvc.entry array -> bool
(** Pointwise [Ftvc.entry_leq]; false when widths differ. *)

val clock_equal : Ftvc.entry array -> Ftvc.entry array -> bool

(** {2 Violations} *)

type violation = {
  rule : rule;
  line : int option;  (** 1-based trace-file line (offline linting) *)
  at : float;  (** virtual time of the offending event *)
  pid : int;
  ver : int;  (** incarnation of [pid] at the event *)
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit
val violation_to_json : violation -> Optimist_obs.Json.t

(** {2 Monitor — the streaming rule engine} *)

module Monitor : sig
  type t

  val create : ?rules:string list -> unit -> t
  (** [create ~rules ()] checks only the given rules (ids or slugs;
      defaults to {!all_ids}). Raises [Invalid_argument] on an unknown
      rule name. *)

  val feed : ?line:int -> t -> Trace.event -> unit
  (** Advance the monitor by one event. Events must arrive in trace
      order (the engine's deterministic event order). *)

  val parse_error : t -> line:int -> string -> unit
  (** Report an unparsable trace line (an OPT001 violation when that
      rule is enabled). *)

  val finish : t -> violation list
  (** Run end-of-trace rules (output-commit safety against the full
      token set, unmatched failures) and return every violation in
      detection order. Idempotent over the end-of-trace rules. *)

  val sink : t -> Trace.sink
  (** The monitor as a trace sink, for online attachment:
      [Trace.attach (Engine.ensure_tracer engine) (Monitor.sink m)]. *)

  val events_seen : t -> int

  val failures : t -> int
  (** Failure events observed so far. *)

  val rollbacks_of : t -> int -> int
  (** Rollback events observed at the given pid. *)

  val cross_check :
    t -> n:int -> failures:int -> rollbacks_of:(int -> int) -> unit
  (** Compare the monitor's observed failure/rollback counts against
      the ground-truth oracle's global timeline ([n] = process count).
      Mismatches are recorded as OPT014 violations (when enabled) and
      reported by the next {!finish}. Online use only. *)
end

(** {2 Lint — the offline file front end} *)

module Lint : sig
  type report = {
    file : string;
    events : int;  (** events parsed (excluding blank/bad lines) *)
    parse_errors : int;
    declared_schema : int option;
        (** the version the trace's schema header declares; [None] for
            headerless (pre-version-2) traces *)
    rules_checked : rule list;
    violations : violation list;  (** detection order *)
  }

  val schema_mismatch : report -> int option
  (** [Some v] when the trace declares a schema version [v] this reader
      does not accept (see {!Trace.schema_accepts}; v2 and v3 are both
      fine). Headerless traces are tolerated ([None]). *)

  val run :
    ?only:string list ->
    ?ignore:string list ->
    string ->
    (report, string) result
  (** [run file] streams [file] through a fresh monitor. [only]
      restricts checking to the named rules, [ignore] disables rules
      (both accept ids or slugs; [ignore] wins). Defaults to every
      offline rule. [Error _] on an unreadable file or an unknown rule
      name — never on trace contents (those are violations). *)

  val errors : report -> int
  (** Violations of [Error] severity. *)

  val warnings : report -> int

  val pp_human : Format.formatter -> report -> unit
  (** One ["file:line: [OPTxxx] slug: message"] line per violation plus
      a summary line. *)

  val to_json : report -> Optimist_obs.Json.t
end
