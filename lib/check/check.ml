module Trace = Optimist_obs.Trace
module Json = Optimist_obs.Json
module Ftvc = Optimist_clock.Ftvc

(* --- rules --- *)

type severity = Error | Warning

type rule = {
  id : string;
  slug : string;
  severity : severity;
  reference : string;
  doc : string;
  online_only : bool;
}

let mk ?(severity = Error) ?(online_only = false) id slug reference doc =
  { id; slug; severity; reference; doc; online_only }

let rules =
  [
    mk "OPT001" "trace-schema" "optimist.obs trace format"
      "every line decodes as a trace event and all FTVC stamps share one \
       width";
    mk "OPT002" "send-deliver-pairing" "Section 3 (system model)"
      "every delivered or discarded message was previously sent to that \
       process by that sender";
    mk "OPT003" "duplicate-delivery" "Section 3 (reliable FIFO channels)"
      "no message is delivered twice at a process within one \
       incarnation/rollback span";
    mk "OPT004" "piggyback-integrity" "Section 5 (piggybacked clocks)"
      "a delivery carries exactly the clock the matching send piggybacked";
    mk "OPT005" "clock-monotonic" "Section 4, Figure 2"
      "a process's own FTVC never decreases between failure/rollback \
       boundaries";
    mk "OPT006" "incarnation-order" "Section 4 (version numbers)"
      "incarnation numbers never decrease, and each restart advances the \
       failed incarnation";
    mk "OPT007" "restart-pairing" "Section 6.1"
      "every restart answers a pending failure of that process";
    mk "OPT008" "missed-obsolete" "Lemma 4, Section 5"
      "no delivered message depends on a rolled-back interval announced by a \
       token the receiver holds";
    mk "OPT009" "unjustified-discard" "Lemma 4, Section 5"
      "every obsolete discard is justified by a token the receiver could hold";
    mk "OPT010" "orphan-exactness" "Lemma 3, Section 5"
      "every orphan detection is justified by knowledge the process could \
       have acquired";
    mk "OPT011" "rollback-bound" "Section 6 (at-most-one rollback)"
      "each process rolls back at most once per failure token, and only \
       after detecting an orphan";
    mk "OPT012" "output-commit-safety" "Section 6.5"
      "no committed output is orphaned by any failure token in the whole \
       trace";
    mk ~severity:Warning "OPT013" "checkpoint-stability" "Section 6.3"
      "checkpoints only cover log prefixes already on stable storage \
       (processes that keep a message log, i.e. emit log_flush)";
    mk ~online_only:true "OPT014" "oracle-agreement" "lib/oracle ground truth"
      "the monitor's failure and rollback counts match the oracle's global \
       timeline";
  ]

let all_ids = List.map (fun r -> r.id) rules

let offline_ids =
  List.filter_map (fun r -> if r.online_only then None else Some r.id) rules

let find_rule name =
  let needle = String.lowercase_ascii name in
  List.find_opt
    (fun r -> String.lowercase_ascii r.id = needle || r.slug = needle)
    rules

(* --- clock comparison --- *)

let clock_leq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i ea -> if not (Ftvc.entry_leq ea b.(i)) then ok := false) a;
  !ok

let clock_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i (ea : Ftvc.entry) ->
      let eb : Ftvc.entry = b.(i) in
      if ea.ver <> eb.ver || ea.ts <> eb.ts then ok := false)
    a;
  !ok

let clock_str c =
  let b = Buffer.create 32 in
  Buffer.add_char b '[';
  Array.iteri
    (fun i (e : Ftvc.entry) ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (Printf.sprintf "%d.%d" e.ver e.ts))
    c;
  Buffer.add_char b ']';
  Buffer.contents b

(* --- violations --- *)

type violation = {
  rule : rule;
  line : int option;
  at : float;
  pid : int;
  ver : int;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let pp_violation ppf v =
  (match v.line with
  | Some l -> Format.fprintf ppf "line %d: " l
  | None -> ());
  Format.fprintf ppf "[%s] %s at t=%.3f p%d/v%d: %s (%s; %s)" v.rule.id
    v.rule.slug v.at v.pid v.ver v.message
    (severity_name v.rule.severity)
    v.rule.reference

let violation_to_json v =
  Json.Obj
    ((match v.line with Some l -> [ ("line", Json.Int l) ] | None -> [])
    @ [
        ("rule", Json.String v.rule.id);
        ("slug", Json.String v.rule.slug);
        ("severity", Json.String (severity_name v.rule.severity));
        ("reference", Json.String v.rule.reference);
        ("at", Json.Float v.at);
        ("pid", Json.Int v.pid);
        ("ver", Json.Int v.ver);
        ("message", Json.String v.message);
      ])

(* --- the streaming rule engine --- *)

module Monitor = struct
  type send_info = { spid : int; sdst : int; sclock : Ftvc.entry array }

  (* Per-process reconstructed state. The token tables come in two
     flavours because the trace cannot tell us whether a token survived
     a crash of its holder (that depends on the synchronous-logging
     config): [tokens_lo] forgets tokens not yet covered by a
     checkpoint when the holder fails — a lower bound on what any
     post-crash incarnation still knows, sound for accusing a missed
     discard (OPT008) — while [tokens_hi] never forgets — an upper
     bound, sound for accusing an unjustified discard (OPT009). *)
  type pstate = {
    p : int;
    mutable cur_ver : int; (* -1 until the first event *)
    mutable pending_failure : bool;
    mutable failure_ver : int;
    mutable last_sample : Ftvc.entry array option;
    mutable last_stable : int;
    mutable has_log : bool; (* pid emitted a Log_flush: positions are log indices *)
    delivered : (int, unit) Hashtbl.t;
    tokens_lo : (int * int, int * bool) Hashtbl.t; (* (origin,ver) -> ts, stable *)
    tokens_hi : (int * int, int) Hashtbl.t;
    knowledge : (int * int, int) Hashtbl.t; (* (owner,ver) -> max ts seen *)
    mutable last_orphan : (int * int * int) option;
    mutable rollbacks : int;
  }

  type commit = {
    c_line : int option;
    c_at : float;
    c_pid : int;
    c_ver : int;
    c_seq : int;
    c_clock : Ftvc.entry array;
  }

  type t = {
    enabled : (string, unit) Hashtbl.t;
    procs : (int, pstate) Hashtbl.t;
    sends : (int, send_info) Hashtbl.t;
    all_tokens : (int * int, int) Hashtbl.t;
    rollback_count : (int * int * int * int, int) Hashtbl.t;
    mutable commits : commit list; (* reversed *)
    mutable width : int; (* -1 until the first non-empty clock *)
    mutable events : int;
    mutable nfailures : int;
    mutable viols : violation list; (* reversed *)
    mutable finished : bool;
  }

  let create ?(rules = all_ids) () =
    let enabled = Hashtbl.create 16 in
    List.iter
      (fun name ->
        match find_rule name with
        | Some r -> Hashtbl.replace enabled r.id ()
        | None ->
            invalid_arg
              (Printf.sprintf "Check.Monitor.create: unknown rule %S" name))
      rules;
    {
      enabled;
      procs = Hashtbl.create 16;
      sends = Hashtbl.create 1024;
      all_tokens = Hashtbl.create 16;
      rollback_count = Hashtbl.create 16;
      commits = [];
      width = -1;
      events = 0;
      nfailures = 0;
      viols = [];
      finished = false;
    }

  let viol t ?line ~at ~pid ~ver id message =
    if Hashtbl.mem t.enabled id then
      match find_rule id with
      | None -> ()
      | Some rule -> t.viols <- { rule; line; at; pid; ver; message } :: t.viols

  let pstate t pid =
    match Hashtbl.find_opt t.procs pid with
    | Some st -> st
    | None ->
        let st =
          {
            p = pid;
            cur_ver = -1;
            pending_failure = false;
            failure_ver = 0;
            last_sample = None;
            last_stable = 0;
            has_log = false;
            delivered = Hashtbl.create 64;
            tokens_lo = Hashtbl.create 16;
            tokens_hi = Hashtbl.create 16;
            knowledge = Hashtbl.create 64;
            last_orphan = None;
            rollbacks = 0;
          }
        in
        Hashtbl.add t.procs pid st;
        st

  (* Knowledge any incarnation of [st.p] could have of (owner, ver):
     the max timestamp over delivered clocks, seeded with the initial
     history records — (Message, 0, 0) for everyone, (Message, 0, 1)
     for the process's own component (Section 5). *)
  let knowledge_of st ~owner ~ver =
    match Hashtbl.find_opt st.knowledge (owner, ver) with
    | Some ts -> Some ts
    | None -> if ver = 0 then Some (if owner = st.p then 1 else 0) else None

  let learn st ~owner ~ver ~ts =
    match knowledge_of st ~owner ~ver with
    | Some k when k >= ts -> ()
    | _ -> Hashtbl.replace st.knowledge (owner, ver) ts

  (* A rollback for token (owner, ver, ts) discards every state that
     depended past ts, so the surviving history records about that
     incarnation are clamped back to the token's timestamp. *)
  let clamp st ~owner ~ver ~ts =
    match knowledge_of st ~owner ~ver with
    | Some k when k > ts -> Hashtbl.replace st.knowledge (owner, ver) ts
    | _ -> ()

  let note_token t st ~origin ~ver ~ts =
    let key = (origin, ver) in
    Hashtbl.replace st.tokens_hi key ts;
    if not (Hashtbl.mem st.tokens_lo key) then
      Hashtbl.replace st.tokens_lo key (ts, false);
    Hashtbl.replace t.all_tokens key ts

  let stabilize_tokens st =
    Hashtbl.filter_map_inplace (fun _ (ts, _) -> Some (ts, true)) st.tokens_lo

  let prune_unstable_tokens st =
    Hashtbl.filter_map_inplace
      (fun _ ((_, stable) as v) -> if stable then Some v else None)
      st.tokens_lo

  (* Failure/restart/rollback are discontinuities in a process's state:
     the clock may legitimately step backwards and the surviving log
     suffix may be re-offered for delivery, so per-span rule state
     resets here. *)
  let span_boundary st =
    Hashtbl.reset st.delivered;
    st.last_sample <- None

  let check_width t ?line (ev : Trace.event) =
    let w = Array.length ev.clock in
    if w > 0 then
      if t.width < 0 then t.width <- w
      else if w <> t.width then
        viol t ?line ~at:ev.at ~pid:ev.pid ~ver:ev.ver "OPT001"
          (Printf.sprintf "FTVC stamp has width %d but the trace's width is %d"
             w t.width)

  let own_sample t ?line st (ev : Trace.event) =
    if Array.length ev.clock > 0 then begin
      (match st.last_sample with
      | Some prev when not (clock_leq prev ev.clock) ->
          viol t ?line ~at:ev.at ~pid:ev.pid ~ver:ev.ver "OPT005"
            (Printf.sprintf "own clock regressed: %s after %s"
               (clock_str ev.clock) (clock_str prev))
      | _ -> ());
      st.last_sample <- Some ev.clock
    end

  let feed ?line t (ev : Trace.event) =
    t.events <- t.events + 1;
    match ev.kind with
    | Trace.Custom _ -> () (* engine/network noise: no pid/ver guarantees *)
    | Trace.Span _ | Trace.Snapshot _ ->
        () (* telemetry records: no protocol semantics to check *)
    | kind ->
        let st = pstate t ev.pid in
        let flag id msg = viol t ?line ~at:ev.at ~pid:ev.pid ~ver:ev.ver id msg in
        check_width t ?line ev;
        (match kind with
        | Trace.Rollback _ -> ()
        (* A rollback that crosses the process's own restart point
           legitimately reports the restored, older incarnation. *)
        | _ ->
            if st.cur_ver >= 0 && ev.ver < st.cur_ver then
              flag "OPT006"
                (Printf.sprintf "incarnation went backwards: v%d after v%d"
                   ev.ver st.cur_ver));
        (match kind with
        | Trace.Send { uid; dst } ->
            Hashtbl.replace t.sends uid
              { spid = ev.pid; sdst = dst; sclock = ev.clock };
            own_sample t ?line st ev
        | Trace.Deliver { uid; src } ->
            if uid >= 0 && src >= 0 then begin
              (match Hashtbl.find_opt t.sends uid with
              | None ->
                  flag "OPT002"
                    (Printf.sprintf "delivery of uid=%d that was never sent"
                       uid)
              | Some si ->
                  if si.spid <> src then
                    flag "OPT002"
                      (Printf.sprintf
                         "uid=%d was sent by p%d but delivered as from p%d" uid
                         si.spid src)
                  else if si.sdst <> ev.pid then
                    flag "OPT002"
                      (Printf.sprintf
                         "uid=%d was addressed to p%d but delivered at p%d" uid
                         si.sdst ev.pid);
                  if
                    Array.length ev.clock > 0
                    && Array.length si.sclock > 0
                    && not (clock_equal ev.clock si.sclock)
                  then
                    flag "OPT004"
                      (Printf.sprintf
                         "uid=%d delivered with clock %s but sent with %s" uid
                         (clock_str ev.clock) (clock_str si.sclock)));
              if Hashtbl.mem st.delivered uid then
                flag "OPT003"
                  (Printf.sprintf
                     "uid=%d delivered twice within one incarnation" uid)
              else Hashtbl.replace st.delivered uid ()
            end;
            if Array.length ev.clock > 0 then begin
              Array.iteri
                (fun j (e : Ftvc.entry) ->
                  match Hashtbl.find_opt st.tokens_lo (j, e.ver) with
                  | Some (ts, _) when e.ts > ts ->
                      flag "OPT008"
                        (Printf.sprintf
                           "delivered uid=%d depends on (p%d, v%d) up to \
                            ts=%d, past held token ts=%d — the obsolete test \
                            should have discarded it"
                           uid j e.ver e.ts ts)
                  | _ -> ())
                ev.clock;
              Array.iteri
                (fun j (e : Ftvc.entry) -> learn st ~owner:j ~ver:e.ver ~ts:e.ts)
                ev.clock
            end
        | Trace.Drop_obsolete { uid; src } ->
            if uid >= 0 && src >= 0 then begin
              match Hashtbl.find_opt t.sends uid with
              | None ->
                  flag "OPT002"
                    (Printf.sprintf "discard of uid=%d that was never sent" uid)
              | Some si ->
                  if si.spid <> src || si.sdst <> ev.pid then
                    flag "OPT002"
                      (Printf.sprintf
                         "uid=%d discarded at p%d as from p%d but was sent \
                          p%d -> p%d"
                         uid ev.pid src si.spid si.sdst)
            end;
            if Array.length ev.clock > 0 then begin
              let justified = ref false in
              Array.iteri
                (fun j (e : Ftvc.entry) ->
                  match Hashtbl.find_opt st.tokens_hi (j, e.ver) with
                  | Some ts when e.ts > ts -> justified := true
                  | _ -> ())
                ev.clock;
              if not !justified then
                flag "OPT009"
                  (Printf.sprintf
                     "uid=%d discarded as obsolete but no token the receiver \
                      could hold justifies it (clock %s)"
                     uid (clock_str ev.clock))
            end
        | Trace.Checkpoint { position } ->
            (* Only meaningful for processes with a message log: baselines
               without one reuse [position] for counters (RSNs, clock
               components, round numbers) that are not log indices. *)
            if st.has_log && position > st.last_stable then
              flag "OPT013"
                (Printf.sprintf
                   "checkpoint covers log position %d but only %d entries are \
                    stable"
                   position st.last_stable);
            own_sample t ?line st ev;
            stabilize_tokens st
        | Trace.Log_flush { stable } ->
            st.has_log <- true;
            st.last_stable <- max st.last_stable stable;
            own_sample t ?line st ev
        | Trace.Failure ->
            t.nfailures <- t.nfailures + 1;
            st.pending_failure <- true;
            st.failure_ver <- ev.ver;
            span_boundary st;
            prune_unstable_tokens st
        | Trace.Restart { new_ver } ->
            if not st.pending_failure then
              flag "OPT007" "restart without a preceding failure"
            else if new_ver <= st.failure_ver then
              flag "OPT006"
                (Printf.sprintf
                   "restart did not advance the incarnation: v%d after \
                    failing at v%d"
                   new_ver st.failure_ver);
            st.pending_failure <- false;
            span_boundary st
        | Trace.Token_sent { origin; ver; ts }
        | Trace.Token_recv { origin; ver; ts } ->
            note_token t st ~origin ~ver ~ts
        | Trace.Orphan_detected { origin; ver; ts } ->
            (match knowledge_of st ~owner:origin ~ver with
            | Some k when k > ts -> ()
            | _ ->
                flag "OPT010"
                  (Printf.sprintf
                     "orphan declared against token (p%d, v%d, ts=%d) but no \
                      acquired knowledge of that incarnation exceeds ts=%d"
                     origin ver ts ts));
            st.last_orphan <- Some (origin, ver, ts)
        | Trace.Rollback _ ->
            st.rollbacks <- st.rollbacks + 1;
            (match st.last_orphan with
            | None -> flag "OPT011" "rollback without a detected orphan"
            | Some (o, v, ts) ->
                let key = (ev.pid, o, v, ts) in
                let c =
                  1
                  + Option.value ~default:0
                      (Hashtbl.find_opt t.rollback_count key)
                in
                Hashtbl.replace t.rollback_count key c;
                if c > 1 then
                  flag "OPT011"
                    (Printf.sprintf
                       "rollback #%d for token (p%d, v%d, ts=%d) — at most \
                        one rollback per failure"
                       c o v ts);
                clamp st ~owner:o ~ver:v ~ts);
            span_boundary st
        | Trace.Output_commit { seq } ->
            t.commits <-
              {
                c_line = line;
                c_at = ev.at;
                c_pid = ev.pid;
                c_ver = ev.ver;
                c_seq = seq;
                c_clock = ev.clock;
              }
              :: t.commits
        | Trace.Span _ | Trace.Snapshot _ | Trace.Custom _ -> ());
        st.cur_ver <- ev.ver

  let parse_error t ~line msg =
    viol t ~line ~at:0.0 ~pid:(-1) ~ver:0 "OPT001"
      (Printf.sprintf "unparsable trace line: %s" msg)

  let events_seen t = t.events

  let failures t = t.nfailures

  let rollbacks_of t pid =
    match Hashtbl.find_opt t.procs pid with
    | Some st -> st.rollbacks
    | None -> 0

  let cross_check t ~n ~failures ~rollbacks_of:oracle_rollbacks =
    if Hashtbl.mem t.enabled "OPT014" then begin
      if failures <> t.nfailures then
        viol t ~at:0.0 ~pid:(-1) ~ver:0 "OPT014"
          (Printf.sprintf "monitor saw %d failures but the oracle recorded %d"
             t.nfailures failures);
      for p = 0 to n - 1 do
        let seen = rollbacks_of t p in
        let truth = oracle_rollbacks p in
        if seen <> truth then
          viol t ~at:0.0 ~pid:p ~ver:0 "OPT014"
            (Printf.sprintf
               "monitor saw %d rollbacks at p%d but the oracle recorded %d"
               seen p truth)
      done
    end

  (* Output-commit safety is a whole-trace property: a commit is unsafe
     if any token ever announced — even long after the commit — orphans
     the committed state (the commit rule must have waited for global
     stability, Section 6.5). *)
  let finish t =
    if not t.finished then begin
      t.finished <- true;
      List.iter
        (fun c ->
          Array.iteri
            (fun j (e : Ftvc.entry) ->
              match Hashtbl.find_opt t.all_tokens (j, e.ver) with
              | Some ts when e.ts > ts ->
                  viol t ?line:c.c_line ~at:c.c_at ~pid:c.c_pid ~ver:c.c_ver
                    "OPT012"
                    (Printf.sprintf
                       "committed output seq=%d depends on (p%d, v%d) up to \
                        ts=%d, orphaned by token ts=%d"
                       c.c_seq j e.ver e.ts ts)
              | _ -> ())
            c.c_clock)
        (List.rev t.commits)
    end;
    List.rev t.viols

  let sink t = Trace.sink (fun ev -> feed t ev)
end

(* --- the offline file front end --- *)

module Lint = struct
  type report = {
    file : string;
    events : int;
    parse_errors : int;
    declared_schema : int option;
    rules_checked : rule list;
    violations : violation list;
  }

  let schema_mismatch r =
    match r.declared_schema with
    | Some v when not (Trace.schema_accepts v) -> Some v
    | Some _ | None -> None

  let resolve names =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match find_rule n with
          | Some r -> go (r :: acc) rest
          | None ->
              Error
                (Printf.sprintf "unknown rule %S (known: %s)" n
                   (String.concat ", " all_ids)))
    in
    go [] names

  let run ?(only = []) ?(ignore = []) file =
    let ( let* ) = Result.bind in
    let* selected =
      match only with
      | [] -> Ok (List.filter (fun r -> not r.online_only) rules)
      | names -> resolve names
    in
    let* () =
      match List.find_opt (fun r -> r.online_only) selected with
      | Some r ->
          Error
            (Printf.sprintf
               "rule %s (%s) needs a live run and cannot be linted offline"
               r.id r.slug)
      | None -> Ok ()
    in
    let* ignored = resolve ignore in
    let ignored_ids = List.map (fun r -> r.id) ignored in
    let checked =
      List.filter (fun r -> not (List.mem r.id ignored_ids)) selected
    in
    let m = Monitor.create ~rules:(List.map (fun r -> r.id) checked) () in
    let parse_errors = ref 0 in
    let events = ref 0 in
    let declared = ref None in
    match
      Trace.iter_file file ~f:(fun ~line res ->
          match res with
          | Ok ev ->
              incr events;
              (match Trace.schema_of_event ev with
              | Some v when !declared = None -> declared := Some v
              | _ -> ());
              Monitor.feed ~line m ev
          | Error msg ->
              incr parse_errors;
              Monitor.parse_error m ~line msg)
    with
    | () ->
        Ok
          {
            file;
            events = !events;
            parse_errors = !parse_errors;
            declared_schema = !declared;
            rules_checked = checked;
            violations = Monitor.finish m;
          }
    | exception Sys_error msg -> Error msg

  let errors r =
    List.length (List.filter (fun v -> v.rule.severity = Error) r.violations)

  let warnings r =
    List.length (List.filter (fun v -> v.rule.severity = Warning) r.violations)

  let plural n = if n = 1 then "" else "s"

  let pp_human ppf r =
    List.iter
      (fun v ->
        (match v.line with
        | Some l -> Format.fprintf ppf "%s:%d: " r.file l
        | None -> Format.fprintf ppf "%s: " r.file);
        Format.fprintf ppf "[%s] %s: %s (%s; %s)@\n" v.rule.id v.rule.slug
          v.message
          (severity_name v.rule.severity)
          v.rule.reference)
      r.violations;
    let e = errors r in
    let w = warnings r in
    Format.fprintf ppf "%s: %d event%s, %d rule%s checked: " r.file r.events
      (plural r.events)
      (List.length r.rules_checked)
      (plural (List.length r.rules_checked));
    if e = 0 && w = 0 then Format.fprintf ppf "clean"
    else
      Format.fprintf ppf "%d error%s, %d warning%s" e (plural e) w (plural w);
    let opt001_checked =
      List.exists (fun ru -> ru.id = "OPT001") r.rules_checked
    in
    if r.parse_errors > 0 && not opt001_checked then
      Format.fprintf ppf " (%d unparsable line%s ignored)" r.parse_errors
        (plural r.parse_errors);
    Format.fprintf ppf "@\n";
    match schema_mismatch r with
    | Some v ->
        Format.fprintf ppf
          "%s: trace declares schema version %d but this linter accepts \
           2..%d@\n"
          r.file v Trace.schema_version
    | None -> ()

  let to_json r =
    Json.Obj
      [
        ("file", Json.String r.file);
        ("events", Json.Int r.events);
        ("parse_errors", Json.Int r.parse_errors);
        ( "schema",
          match r.declared_schema with
          | Some v -> Json.Int v
          | None -> Json.Null );
        ( "rules",
          Json.List (List.map (fun ru -> Json.String ru.id) r.rules_checked) );
        ("errors", Json.Int (errors r));
        ("warnings", Json.Int (warnings r));
        ("violations", Json.List (List.map violation_to_json r.violations));
      ]
end
