(** Minimal JSON values: just enough for the trace subsystem to emit and
    re-read its own JSONL/Chrome-trace files without an external dependency.

    The printer is deterministic — object fields are emitted in the order
    given, floats with a fixed ["%.12g"] format — which is what lets a
    seeded simulation produce byte-identical trace files across runs (the
    golden-trace regression tests rely on it). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parses one JSON value (surrounding whitespace allowed). Rejects
    trailing garbage. Numbers with a fraction or exponent parse as
    [Float], others as [Int]. *)

(** {2 Accessors} (shallow, for decoding known shapes) *)

val mem : string -> t -> t option
(** [mem k (Obj ...)] is the first binding of [k]; [None] otherwise. *)

val to_int : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float : t -> float option
val string_value : t -> string option
val list_value : t -> t list option
