type ctx = {
  tracer : Trace.t;
  now : unit -> float;
  pid : int;
  mutable ver : unit -> int;
}

type span = { name : string; started : float }

let create ~tracer ~now ~pid () = { tracer; now; pid; ver = (fun () -> 0) }
let set_version ctx f = ctx.ver <- f
let start ctx name = { name; started = ctx.now () }

let finish ctx sp =
  let dur = ctx.now () -. sp.started in
  (* Guard against clock oddities: a span can never be negative. *)
  let dur = if dur < 0.0 then 0.0 else dur in
  if Trace.enabled ctx.tracer then
    Trace.emit ctx.tracer
      {
        Trace.at = sp.started;
        pid = ctx.pid;
        ver = ctx.ver ();
        clock = [||];
        kind = Trace.Span { name = sp.name; dur };
      };
  dur

let with_ ctx name f =
  let sp = start ctx name in
  Fun.protect ~finally:(fun () -> ignore (finish ctx sp)) f
