(** Offline recovery profiler: aggregate telemetry out of trace files.

    Consumes JSONL traces (typically a live run's [merged.jsonl], or
    several runs' worth) and reduces the [Snapshot] and [Span] records
    into per-protocol recovery statistics: recovery count, wall-clock
    latency quantiles, a rollback-depth histogram, replay and re-read
    totals, plus throughput — and, when both faulted and fault-free
    inputs are present for a protocol, the failure-free overhead of the
    faulted runs against that baseline.

    Recovery records are [Snapshot]s carrying a ["recovery.latency"]
    value (one is emitted per recovery by the live worker); periodic
    snapshots contribute the ["delivered"] counter used for throughput.
    Latency quantiles are exact (nearest-rank over the recorded
    recoveries), not bucket approximations. *)

type recovery = {
  pid : int;
  gen : int;  (** generation (incarnation) that performed the recovery *)
  latency : float;  (** wall-clock seconds, failure detected -> caught up *)
  rollback_depth : int;  (** log entries discarded as orphaned *)
  messages_replayed : int;
  bytes_reread : int;  (** bytes re-read from the on-disk store *)
}

type proto = {
  protocol : string;
  recoveries : recovery list;  (** trace order *)
  latency_p50 : float;  (** [nan] when no recoveries *)
  latency_p95 : float;
  latency_max : float;
  depth_hist : (int * int) list;  (** rollback depth -> count, sorted *)
  replayed_total : int;
  bytes_total : int;
  faulted_tput : float option;
      (** mean delivered/s over input files that contained recoveries *)
  baseline_tput : float option;  (** same, over recovery-free files *)
  overhead : float option;  (** [1 - faulted/baseline] when both exist *)
}

type span_row = { name : string; count : int; total : float; max_dur : float }

type t = {
  files : string list;
  events : int;
  parse_errors : int;
  schema_warnings : string list;
      (** files declaring schema versions outside 2..current *)
  protocols : proto list;  (** sorted by protocol name *)
  spans : span_row list;  (** sorted by span name *)
}

val of_files : string list -> (t, string) result
(** Streams every file once. [Error] on an empty file list or an
    unreadable file; unparsable lines are counted, not fatal. *)

val total_recoveries : t -> int

val to_text : t -> string
(** Aligned per-protocol table (latencies in milliseconds) followed by a
    span table and any schema warnings. *)

val to_json : t -> string
(** Single JSON object; latencies in seconds. *)

val to_csv : t -> string
(** One row per protocol with a header line. *)
