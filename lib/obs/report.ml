module Table = Optimist_util.Table

type recovery = {
  pid : int;
  gen : int;
  latency : float;
  rollback_depth : int;
  messages_replayed : int;
  bytes_reread : int;
}

type proto = {
  protocol : string;
  recoveries : recovery list; (* trace order *)
  latency_p50 : float;
  latency_p95 : float;
  latency_max : float;
  depth_hist : (int * int) list; (* depth -> count, sorted by depth *)
  replayed_total : int;
  bytes_total : int;
  faulted_tput : float option; (* delivered/s over files with recoveries *)
  baseline_tput : float option; (* delivered/s over files without *)
  overhead : float option; (* 1 - faulted/baseline *)
}

type span_row = { name : string; count : int; total : float; max_dur : float }

type t = {
  files : string list;
  events : int;
  parse_errors : int;
  schema_warnings : string list;
  protocols : proto list; (* sorted by protocol name *)
  spans : span_row list; (* sorted by name *)
}

let total_recoveries t =
  List.fold_left (fun acc p -> acc + List.length p.recoveries) 0 t.protocols

(* --- accumulation --- *)

type file_proto = {
  mutable fp_recoveries : recovery list; (* reverse trace order *)
  (* (pid, gen) -> latest "delivered" counter value seen in a snapshot;
     counters are per-incarnation, so generations sum rather than race. *)
  fp_delivered : (int * int, float) Hashtbl.t;
}

type file_acc = {
  protos : (string, file_proto) Hashtbl.t;
  mutable t_min : float;
  mutable t_max : float;
  mutable any : bool;
}

let value vs name = List.assoc_opt name vs

let feed_file acc path events parse_errors schema_warnings spans =
  Trace.fold_file path ~init:() ~f:(fun () ~line:_ -> function
    | Error _ -> incr parse_errors
    | Ok ev -> (
        incr events;
        (match Trace.schema_of_event ev with
        | Some v when not (Trace.schema_accepts v) ->
            schema_warnings :=
              Printf.sprintf
                "%s: declares schema version %d (this reader accepts 2..%d)"
                path v Trace.schema_version
              :: !schema_warnings
        | _ -> ());
        if ev.Trace.pid >= 0 then begin
          if (not acc.any) || ev.Trace.at < acc.t_min then
            acc.t_min <- ev.Trace.at;
          if (not acc.any) || ev.Trace.at > acc.t_max then
            acc.t_max <- ev.Trace.at;
          acc.any <- true
        end;
        match ev.Trace.kind with
        | Trace.Span { name; dur } ->
            let row =
              match Hashtbl.find_opt spans name with
              | Some r -> r
              | None ->
                  let r = ref (0, 0.0, 0.0) in
                  Hashtbl.add spans name r;
                  r
            in
            let c, tot, mx = !row in
            row := (c + 1, tot +. dur, Float.max mx dur)
        | Trace.Snapshot { protocol; values } -> (
            let fp =
              match Hashtbl.find_opt acc.protos protocol with
              | Some fp -> fp
              | None ->
                  let fp =
                    { fp_recoveries = []; fp_delivered = Hashtbl.create 8 }
                  in
                  Hashtbl.add acc.protos protocol fp;
                  fp
            in
            let gen =
              match value values "gen" with
              | Some g -> int_of_float g
              | None -> 0
            in
            (match value values "delivered" with
            | Some d -> Hashtbl.replace fp.fp_delivered (ev.Trace.pid, gen) d
            | None -> ());
            match value values "recovery.latency" with
            | None -> ()
            | Some latency ->
                let iget name =
                  match value values name with
                  | Some v -> int_of_float v
                  | None -> 0
                in
                fp.fp_recoveries <-
                  {
                    pid = ev.Trace.pid;
                    gen;
                    latency;
                    rollback_depth = iget "recovery.rollback_depth";
                    messages_replayed = iget "recovery.messages_replayed";
                    bytes_reread = iget "recovery.bytes_reread";
                  }
                  :: fp.fp_recoveries)
        | _ -> ()))

(* Nearest-rank quantile over an already-sorted array. *)
let rank_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let r = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (r - 1)))

let mean_opt = function
  | [] -> None
  | xs ->
      Some (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))

let of_files paths =
  if paths = [] then Error "no input files"
  else
    match
      let events = ref 0 and parse_errors = ref 0 in
      let schema_warnings = ref [] in
      let spans = Hashtbl.create 16 in
      (* protocol -> (faulted tputs, baseline tputs, recoveries rev) *)
      let merged = Hashtbl.create 8 in
      List.iter
        (fun path ->
          let acc =
            { protos = Hashtbl.create 8; t_min = 0.0; t_max = 0.0; any = false }
          in
          feed_file acc path events parse_errors schema_warnings spans;
          let elapsed = if acc.any then acc.t_max -. acc.t_min else 0.0 in
          Hashtbl.iter
            (fun protocol fp ->
              let delivered =
                Hashtbl.fold (fun _ v s -> s +. v) fp.fp_delivered 0.0
              in
              let tput =
                if elapsed > 0.0 then Some (delivered /. elapsed) else None
              in
              let faulted, baseline, recs =
                match Hashtbl.find_opt merged protocol with
                | Some x -> x
                | None -> ([], [], [])
              in
              let faulted, baseline =
                match (tput, fp.fp_recoveries) with
                | None, _ -> (faulted, baseline)
                | Some x, [] -> (faulted, x :: baseline)
                | Some x, _ -> (x :: faulted, baseline)
              in
              Hashtbl.replace merged protocol
                (faulted, baseline, List.rev fp.fp_recoveries @ recs))
            acc.protos)
        paths;
      let protocols =
        Hashtbl.fold
          (fun protocol (faulted, baseline, recs) acc ->
            let lats =
              List.map (fun r -> r.latency) recs
              |> List.sort compare |> Array.of_list
            in
            let depth_hist =
              let h = Hashtbl.create 8 in
              List.iter
                (fun r ->
                  let d = r.rollback_depth in
                  Hashtbl.replace h d (1 + Option.value ~default:0 (Hashtbl.find_opt h d)))
                recs;
              Hashtbl.fold (fun d c l -> (d, c) :: l) h []
              |> List.sort (fun (a, _) (b, _) -> compare a b)
            in
            let faulted_tput = mean_opt faulted in
            let baseline_tput = mean_opt baseline in
            let overhead =
              match (faulted_tput, baseline_tput) with
              | Some f, Some b when b > 0.0 -> Some (1.0 -. (f /. b))
              | _ -> None
            in
            {
              protocol;
              recoveries = recs;
              latency_p50 = rank_quantile lats 0.5;
              latency_p95 = rank_quantile lats 0.95;
              latency_max =
                (if Array.length lats = 0 then nan
                 else lats.(Array.length lats - 1));
              depth_hist;
              replayed_total =
                List.fold_left (fun a r -> a + r.messages_replayed) 0 recs;
              bytes_total =
                List.fold_left (fun a r -> a + r.bytes_reread) 0 recs;
              faulted_tput;
              baseline_tput;
              overhead;
            }
            :: acc)
          merged []
        |> List.sort (fun a b -> String.compare a.protocol b.protocol)
      in
      let spans =
        Hashtbl.fold
          (fun name row acc ->
            let count, total, max_dur = !row in
            { name; count; total; max_dur } :: acc)
          spans []
        |> List.sort (fun a b -> String.compare a.name b.name)
      in
      {
        files = paths;
        events = !events;
        parse_errors = !parse_errors;
        schema_warnings = List.rev !schema_warnings;
        protocols;
        spans;
      }
    with
    | t -> Ok t
    | exception Sys_error msg -> Error msg

(* --- rendering --- *)

let ms x = Printf.sprintf "%.1f" (x *. 1000.0)

let opt_tput = function
  | None -> "-"
  | Some x -> Printf.sprintf "%.0f" x

let opt_pct = function
  | None -> "-"
  | Some x -> Printf.sprintf "%.1f%%" (x *. 100.0)

let depth_hist_str hist =
  if hist = [] then "-"
  else
    hist
    |> List.map (fun (d, c) -> Printf.sprintf "%d:%d" d c)
    |> String.concat " "

let to_text t =
  let buf = Buffer.create 1024 in
  let tbl =
    Table.create
      ~columns:
        [
          ("protocol", Table.Left);
          ("recov", Table.Right);
          ("p50 ms", Table.Right);
          ("p95 ms", Table.Right);
          ("max ms", Table.Right);
          ("depth d:n", Table.Left);
          ("replayed", Table.Right);
          ("bytes", Table.Right);
          ("tput/s", Table.Right);
          ("base/s", Table.Right);
          ("ovhd", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      let n = List.length p.recoveries in
      Table.add_row tbl
        [
          p.protocol;
          string_of_int n;
          (if n = 0 then "-" else ms p.latency_p50);
          (if n = 0 then "-" else ms p.latency_p95);
          (if n = 0 then "-" else ms p.latency_max);
          depth_hist_str p.depth_hist;
          string_of_int p.replayed_total;
          string_of_int p.bytes_total;
          opt_tput p.faulted_tput;
          opt_tput p.baseline_tput;
          opt_pct p.overhead;
        ])
    t.protocols;
  Buffer.add_string buf (Table.render tbl);
  if t.spans <> [] then begin
    Buffer.add_string buf "\nspans:\n";
    let stbl =
      Table.create
        ~columns:
          [
            ("name", Table.Left);
            ("count", Table.Right);
            ("total ms", Table.Right);
            ("mean ms", Table.Right);
            ("max ms", Table.Right);
          ]
    in
    List.iter
      (fun s ->
        Table.add_row stbl
          [
            s.name;
            string_of_int s.count;
            ms s.total;
            ms (s.total /. float_of_int (max 1 s.count));
            ms s.max_dur;
          ])
      t.spans;
    Buffer.add_string buf (Table.render stbl)
  end;
  List.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf "warning: %s\n" w))
    t.schema_warnings;
  Buffer.contents buf

let num x = if Float.is_nan x then Json.Null else Json.Float x

let to_json t =
  let proto p =
    Json.Obj
      [
        ("protocol", Json.String p.protocol);
        ("recoveries", Json.Int (List.length p.recoveries));
        ("latency_p50_s", num p.latency_p50);
        ("latency_p95_s", num p.latency_p95);
        ("latency_max_s", num p.latency_max);
        ( "rollback_depth_hist",
          Json.Obj
            (List.map
               (fun (d, c) -> (string_of_int d, Json.Int c))
               p.depth_hist) );
        ("messages_replayed", Json.Int p.replayed_total);
        ("bytes_reread", Json.Int p.bytes_total);
        ( "throughput_per_s",
          match p.faulted_tput with None -> Json.Null | Some x -> Json.Float x
        );
        ( "baseline_per_s",
          match p.baseline_tput with None -> Json.Null | Some x -> Json.Float x
        );
        ( "overhead",
          match p.overhead with None -> Json.Null | Some x -> Json.Float x );
        ( "per_recovery",
          Json.List
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("pid", Json.Int r.pid);
                     ("gen", Json.Int r.gen);
                     ("latency_s", Json.Float r.latency);
                     ("rollback_depth", Json.Int r.rollback_depth);
                     ("messages_replayed", Json.Int r.messages_replayed);
                     ("bytes_reread", Json.Int r.bytes_reread);
                   ])
               p.recoveries) );
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("files", Json.List (List.map (fun f -> Json.String f) t.files));
         ("events", Json.Int t.events);
         ("parse_errors", Json.Int t.parse_errors);
         ( "schema_warnings",
           Json.List (List.map (fun w -> Json.String w) t.schema_warnings) );
         ("recoveries", Json.Int (total_recoveries t));
         ("protocols", Json.List (List.map proto t.protocols));
         ( "spans",
           Json.List
             (List.map
                (fun s ->
                  Json.Obj
                    [
                      ("name", Json.String s.name);
                      ("count", Json.Int s.count);
                      ("total_s", Json.Float s.total);
                      ("max_s", Json.Float s.max_dur);
                    ])
                t.spans) );
       ])

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "protocol,recoveries,latency_p50_ms,latency_p95_ms,latency_max_ms,rollback_depth_hist,messages_replayed,bytes_reread,throughput_per_s,baseline_per_s,overhead\n";
  List.iter
    (fun p ->
      let n = List.length p.recoveries in
      Buffer.add_string buf
        (String.concat ","
           [
             csv_escape p.protocol;
             string_of_int n;
             (if n = 0 then "" else ms p.latency_p50);
             (if n = 0 then "" else ms p.latency_p95);
             (if n = 0 then "" else ms p.latency_max);
             csv_escape (depth_hist_str p.depth_hist);
             string_of_int p.replayed_total;
             string_of_int p.bytes_total;
             (match p.faulted_tput with
             | None -> ""
             | Some x -> Printf.sprintf "%.3f" x);
             (match p.baseline_tput with
             | None -> ""
             | Some x -> Printf.sprintf "%.3f" x);
             (match p.overhead with
             | None -> ""
             | Some x -> Printf.sprintf "%.4f" x);
           ]);
      Buffer.add_char buf '\n')
    t.protocols;
  Buffer.contents buf
