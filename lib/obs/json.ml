type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* A fixed float format keeps the output deterministic; 12 significant
   digits round-trip every virtual time the engine produces (sums of
   seeded-PRNG latencies). *)
let float_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> Buffer.add_string buf (float_to_string x)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  to_buffer buf v;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> error c "unterminated escape"
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then error c "bad \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* Only BMP code points below 0x80 are emitted by our printer;
               decode the rest as UTF-8 for robustness. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | Some ch -> advance c; Buffer.add_char buf ch; loop ())
    | Some ch -> advance c; Buffer.add_char buf ch; loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    advance c
  done;
  let text = String.sub c.s start (c.pos - start) in
  let fractional =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text
  in
  if fractional then
    match float_of_string_opt text with
    | Some x -> Float x
    | None -> error c "bad number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> error c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List.rev (v :: acc)
          | _ -> error c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; fields ((k, v) :: acc)
          | Some '}' -> advance c; List.rev ((k, v) :: acc)
          | _ -> error c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected %C" ch)

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int = function
  | Int n -> Some n
  | Float x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_float = function
  | Float x -> Some x
  | Int n -> Some (float_of_int n)
  | _ -> None

let string_value = function String s -> Some s | _ -> None

let list_value = function List xs -> Some xs | _ -> None
