(** Wall-clock spans over a trace recorder.

    A span measures how long a stretch of real work took — handling a
    message, flushing the log, the whole recovery path — against a
    monotonic clock, and records it as a {!Trace.Span} event whose [at]
    is the span's start. Spans that nest in time nest visually in the
    Chrome exporter (["X"] complete slices on one thread track), so no
    explicit parent link is stored.

    A {!ctx} bundles the tracer, the clock, and the process identity so
    instrumentation sites stay one-liners. When the tracer is disabled,
    {!finish} still returns the measured duration (callers use it for
    metrics) but emits nothing. *)

type ctx

type span
(** An open span: name plus start timestamp. *)

val create :
  tracer:Trace.t -> now:(unit -> float) -> pid:int -> unit -> ctx
(** [now] must be monotonic (e.g. [Loop.now]); [pid] stamps every
    emitted event. The incarnation defaults to 0 until {!set_version}. *)

val set_version : ctx -> (unit -> int) -> unit
(** Register a thunk queried at {!finish} time for the current
    incarnation number, so spans emitted after a restart carry the new
    version. *)

val start : ctx -> string -> span

val finish : ctx -> span -> float
(** Emits the [Trace.Span] event (if the tracer is enabled) and returns
    the elapsed seconds (clamped at 0). *)

val with_ : ctx -> string -> (unit -> 'a) -> 'a
(** [with_ ctx name f] wraps [f ()] in a span; the span is finished even
    when [f] raises. *)
