(** Typed metrics with [(protocol, process)] labels.

    Replaces the ad-hoc [Stats.Counters] strings inside the protocol
    engines: each process owns a {!Scope} — a bag of named counters,
    gauges, summaries and histograms — labelled with the protocol it
    runs and its process id. Scopes register themselves in a
    {!registry}, so a run can be interrogated both per-process
    ([Scope.counters]) and in aggregate ({!totals}), which is what the
    runner's reports and the bench tables consume.

    Counter names keep the seed repo's dotted convention
    (["msg.sent"], ["rollback.count"], ...) so existing reports stay
    comparable across protocols. Instruments are created lazily on
    first use; reading a name that was never touched yields the zero
    value, never an exception. *)

module Stats = Optimist_util.Stats

type labels = { protocol : string; process : int }

type registry

val registry : unit -> registry

module Scope : sig
  type t

  val create : ?registry:registry -> protocol:string -> process:int -> unit -> t
  (** A fresh scope; when [registry] is given the scope is registered
      for aggregation. *)

  val labels : t -> labels

  (** {2 Counters} — monotone integer counts. *)

  val incr : ?by:int -> t -> string -> unit
  (** Same shape as [Stats.Counters.incr]; [by] defaults to 1. *)

  val get : t -> string -> int
  (** 0 for a name never incremented. *)

  val counters : t -> (string * int) list
  (** Sorted by name. *)

  (** {2 Gauges} — last-write-wins instantaneous values. *)

  val set_gauge : t -> string -> float -> unit
  val gauge : t -> string -> float
  (** 0.0 for a name never set. *)

  val gauges : t -> (string * float) list
  (** Sorted by name. *)

  (** {2 Summaries and histograms} — distributions of observations. *)

  val observe : t -> string -> float -> unit
  (** Adds to the named [Stats.Summary] (created on first use). *)

  val summary : t -> string -> Stats.Summary.t option

  val observe_hist : ?buckets:float array -> t -> string -> float -> unit
  (** Adds to the named [Stats.Histogram]; [buckets] only takes effect
      at creation (first observation). *)

  val histogram : t -> string -> Stats.Histogram.t option

  val snapshot : t -> (string * float) list
  (** The scope flattened to one name-sorted list of floats — the
      payload of a [Trace.Snapshot] telemetry record. Counters appear
      under their own name; summaries contribute [name.count],
      [name.mean], [name.max]; histograms contribute [name.count],
      [name.p50], [name.p95] (interpolated quantiles). Deterministic
      for a given scope state. *)

  val snapshot_prefixed : prefix:string -> t -> (string * float) list
  (** {!snapshot} with [prefix] prepended to every name — how wire-level
      scopes (the cluster links' ["link."] namespace) embed into a
      worker's snapshot stream without colliding with protocol metric
      names. *)

  val pp : Format.formatter -> t -> unit
end

(** {2 Aggregation across scopes} *)

val scopes : registry -> (labels * Scope.t) list
(** In registration order. *)

val totals : ?protocol:string -> registry -> (string * int) list
(** Counter totals summed across every scope (optionally restricted to
    one protocol label), sorted by name. *)

val total : ?protocol:string -> registry -> string -> int

type agg = { count : int; total : float; mean : float; min : float; max : float }
(** Cross-scope rollup of one summary name; zeros when no scope has
    observations for it. *)

val aggregate : ?protocol:string -> registry -> string -> agg
(** Every scope's observations for [name] folded together. *)

val to_prom : registry -> string
(** Prometheus text exposition of every scope in the registry. Metric
    names are mangled to [optimist_<name>] with non-alphanumerics
    replaced by ['_']; every sample carries [protocol] and [process]
    labels. Counters and gauges are single samples; summaries expose
    [_count]/[_sum]; histograms expose cumulative [_bucket{le="..."}]
    series plus [_sum]/[_count]. Families are sorted by source name, so
    the output is deterministic for a given registry state. *)

val pp : Format.formatter -> registry -> unit
