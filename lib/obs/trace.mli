(** Structured protocol tracing.

    The paper's argument is about causally ordered event histories —
    orphan detection, obsolete-message discard, at-most-one rollback per
    failure — so the simulator records exactly those observable events as
    a typed stream: each {!event} is stamped with virtual time, process
    id, the process's incarnation number, and (where one exists) the
    FTVC carried by or produced at the event.

    A {!t} (recorder) fans events out to pluggable {!sink}s: an in-memory
    ring buffer for tests, a JSONL writer, and a Chrome [trace_event]
    exporter that loads in [about://tracing]/Perfetto. Tracing is off by
    default; a disabled recorder costs one boolean load per potential
    event — call sites guard event construction with {!enabled}, so no
    closure or record is allocated on the hot path.

    Because the simulation engine is deterministic, the same seed yields
    a byte-identical JSONL stream, which turns recorded traces into
    golden-file regression tests for the protocol itself. *)

module Ftvc = Optimist_clock.Ftvc

(** {2 Events} *)

type kind =
  | Send of { uid : int; dst : int }
      (** application message handed to the network *)
  | Deliver of { uid : int; src : int }
      (** message delivered to the application ([src = -1]: environment
          stimulus) *)
  | Drop_obsolete of { uid : int; src : int }
      (** receive-path discard by the Lemma 4 obsolete test (or a
          baseline's equivalent) *)
  | Checkpoint of { position : int }
      (** checkpoint recorded at the given log position *)
  | Log_flush of { stable : int }
      (** volatile log suffix forced to stable storage; [stable] is the
          new stable length *)
  | Failure  (** crash: volatile state lost *)
  | Restart of { new_ver : int }  (** first state of a new incarnation *)
  | Token_sent of { origin : int; ver : int; ts : int }
      (** failure announcement broadcast *)
  | Token_recv of { origin : int; ver : int; ts : int }
  | Rollback of { discarded : int }
      (** orphan rollback; [discarded] counts the log entries thrown
          away *)
  | Orphan_detected of { origin : int; ver : int; ts : int }
      (** the Lemma 3 orphan test fired against this token *)
  | Output_commit of { seq : int }
      (** a buffered output passed the commit rule and was released *)
  | Span of { name : string; dur : float }
      (** wall-clock span: [at] is the (monotonic) start, [dur] the
          elapsed seconds; renders as a complete ["X"] slice in the
          Chrome exporter *)
  | Snapshot of { protocol : string; values : (string * float) list }
      (** periodic metrics snapshot for the named protocol; renders as a
          ["C"] counter record in the Chrome exporter *)
  | Custom of { name : string; detail : string }
      (** anything else (network drops, holds, gossip, ...) *)

type event = {
  at : float;  (** virtual time *)
  pid : int;  (** process the event happened at *)
  ver : int;  (** that process's incarnation number at the event *)
  clock : Ftvc.entry array;
      (** FTVC stamp: the sender's clock for message events, the
          process's own for state events; [[||]] when no clock applies *)
  kind : kind;
}

val kind_name : kind -> string
(** Stable lower-snake-case discriminator, e.g. ["drop_obsolete"]. *)

val kind_names : string list
(** Every discriminator {!kind_name} can produce (for CLI filters). *)

(** {2 Schema version} *)

val schema_version : int
(** Version of the JSONL encoding this library writes. Bumped whenever
    the format changes shape. *)

val schema_accepts : int -> bool
(** [schema_accepts v] is [true] when this reader understands streams
    declaring version [v] — currently 2 and 3, since v3 only added the
    [Span]/[Snapshot] kinds. Readers should warn (and fail only under
    [--strict]) on unknown higher versions. *)

val schema_header : event
(** The header record every {!jsonl_sink} stream starts with: a
    [Custom {name = "schema"; detail = "version=N"}] event at [t = 0]
    with [pid = -1]. Rule engines skip [Custom] events, so the header is
    inert for linting. *)

val schema_of_event : event -> int option
(** [Some v] iff the event is a schema header declaring version [v];
    used by readers to detect version mismatches. Headerless traces
    (written before version 2) simply never yield [Some _]. *)

(** {2 Sinks} *)

type sink

val sink : ?close:(unit -> unit) -> (event -> unit) -> sink
(** Custom sink from an event callback. *)

module Ring : sig
  (** Bounded in-memory sink: keeps the most recent [capacity] events in
      arrival order. The default test sink. *)

  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 4096. *)

  val sink : t -> sink
  val length : t -> int

  val to_list : t -> event list
  (** Oldest first. *)

  val clear : t -> unit
end

val jsonl_sink : (string -> unit) -> sink
(** One JSON object per event, one event per line (each write ends in
    ['\n']). The {!schema_header} line is written immediately when the
    sink is created. Deterministic byte-for-byte for a fixed event
    stream. *)

val chrome_sink : (string -> unit) -> sink
(** Chrome [trace_event] (catapult) JSON, loadable in [about://tracing]
    and Perfetto: instant events per trace event, flow arrows from each
    [Send] to its [Deliver] (matched by message uid), a "down" duration
    slice between [Failure] and [Restart], a complete ["X"] slice per
    [Span], and a ["C"] counter record per [Snapshot]. The stream is
    only valid JSON once the sink is closed (via {!close}). *)

(** {2 Recorder} *)

type t

val null : t
(** Shared disabled recorder: {!enabled} is [false] forever and
    {!attach} rejects it. The default everywhere. *)

val create : unit -> t
(** A recorder with no sinks; disabled until the first {!attach}. *)

val enabled : t -> bool
(** The hot-path guard. Instrumented code must test this before
    constructing an event:
    [if Trace.enabled tr then Trace.emit tr { ... }]. *)

val attach : t -> sink -> unit
(** Adds a sink and enables the recorder. Raises [Invalid_argument] on
    {!null}. *)

val emit : t -> event -> unit
(** Fans the event out to every sink (in attachment order). No-op when
    disabled. *)

val close : t -> unit
(** Closes every sink (finalizing file formats). The recorder is
    disabled afterwards. *)

(** {2 JSONL encoding} *)

val to_json : event -> Json.t
val of_json : Json.t -> (event, string) result

val to_line : event -> string
(** [Json.to_string (to_json e)] — no trailing newline. *)

val of_line : string -> (event, string) result

(** {2 Streaming JSONL reader}

    Both functions read a trace file one line at a time — constant
    memory, so arbitrarily long recordings can be linted or rendered.
    Line numbers are 1-based (editor convention) and blank lines are
    skipped without consuming a number slot's callback. A line that
    fails to parse is reported as [Error msg] rather than aborting the
    scan, so callers can count or surface malformed lines and keep
    going. Raises [Sys_error] if the file cannot be opened or read. *)

val fold_file :
  string -> init:'a -> f:('a -> line:int -> (event, string) result -> 'a) -> 'a

val iter_file : string -> f:(line:int -> (event, string) result -> unit) -> unit

(** {2 Pretty-printing} (the [recsim trace] renderer) *)

val pp_event : Format.formatter -> event -> unit
