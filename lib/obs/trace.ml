module Ftvc = Optimist_clock.Ftvc

type kind =
  | Send of { uid : int; dst : int }
  | Deliver of { uid : int; src : int }
  | Drop_obsolete of { uid : int; src : int }
  | Checkpoint of { position : int }
  | Log_flush of { stable : int }
  | Failure
  | Restart of { new_ver : int }
  | Token_sent of { origin : int; ver : int; ts : int }
  | Token_recv of { origin : int; ver : int; ts : int }
  | Rollback of { discarded : int }
  | Orphan_detected of { origin : int; ver : int; ts : int }
  | Output_commit of { seq : int }
  | Span of { name : string; dur : float }
  | Snapshot of { protocol : string; values : (string * float) list }
  | Custom of { name : string; detail : string }

type event = {
  at : float;
  pid : int;
  ver : int;
  clock : Ftvc.entry array;
  kind : kind;
}

let kind_name = function
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Drop_obsolete _ -> "drop_obsolete"
  | Checkpoint _ -> "checkpoint"
  | Log_flush _ -> "log_flush"
  | Failure -> "failure"
  | Restart _ -> "restart"
  | Token_sent _ -> "token_sent"
  | Token_recv _ -> "token_recv"
  | Rollback _ -> "rollback"
  | Orphan_detected _ -> "orphan_detected"
  | Output_commit _ -> "output_commit"
  | Span _ -> "span"
  | Snapshot _ -> "snapshot"
  | Custom _ -> "custom"

let kind_names =
  [
    "send";
    "deliver";
    "drop_obsolete";
    "checkpoint";
    "log_flush";
    "failure";
    "restart";
    "token_sent";
    "token_recv";
    "rollback";
    "orphan_detected";
    "output_commit";
    "span";
    "snapshot";
    "custom";
  ]

(* --- schema version --- *)

(* Bumped whenever the JSONL encoding changes shape. Version 1 was the
   headerless format of the first release; version 2 added the header
   record itself; version 3 added the wall-clock [span] and [snapshot]
   telemetry kinds. *)
let schema_version = 3

(* Version 3 only adds kinds, so a v3 reader handles v2 streams as-is.
   v1 streams have no header and therefore never reach this check. *)
let schema_accepts v = v >= 2 && v <= schema_version

let schema_header =
  {
    at = 0.0;
    pid = -1;
    ver = 0;
    clock = [||];
    kind =
      Custom
        {
          name = "schema";
          detail = Printf.sprintf "version=%d" schema_version;
        };
  }

let schema_of_event ev =
  match ev.kind with
  | Custom { name = "schema"; detail } ->
      let prefix = "version=" in
      let plen = String.length prefix in
      if String.length detail > plen && String.sub detail 0 plen = prefix then
        int_of_string_opt
          (String.sub detail plen (String.length detail - plen))
      else None
  | _ -> None

(* --- sinks --- *)

type sink = { on_event : event -> unit; on_close : unit -> unit }

let sink ?(close = fun () -> ()) on_event = { on_event; on_close = close }

module Ring = struct
  type t = { capacity : int; q : event Queue.t }

  let create ?(capacity = 4096) () =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity";
    { capacity; q = Queue.create () }

  let push t ev =
    Queue.push ev t.q;
    if Queue.length t.q > t.capacity then ignore (Queue.pop t.q)

  let sink t = { on_event = push t; on_close = (fun () -> ()) }
  let length t = Queue.length t.q
  let to_list t = List.of_seq (Queue.to_seq t.q)
  let clear t = Queue.clear t.q
end

(* --- JSONL encoding --- *)

let clock_to_json (clock : Ftvc.entry array) =
  Json.List
    (Array.to_list clock
    |> List.map (fun (e : Ftvc.entry) -> Json.List [ Json.Int e.ver; Json.Int e.ts ]))

let kind_fields = function
  | Send { uid; dst } -> [ ("uid", Json.Int uid); ("dst", Json.Int dst) ]
  | Deliver { uid; src } | Drop_obsolete { uid; src } ->
      [ ("uid", Json.Int uid); ("src", Json.Int src) ]
  | Checkpoint { position } -> [ ("position", Json.Int position) ]
  | Log_flush { stable } -> [ ("stable", Json.Int stable) ]
  | Failure -> []
  | Restart { new_ver } -> [ ("new_ver", Json.Int new_ver) ]
  | Token_sent { origin; ver; ts }
  | Token_recv { origin; ver; ts }
  | Orphan_detected { origin; ver; ts } ->
      [ ("origin", Json.Int origin); ("tver", Json.Int ver); ("tts", Json.Int ts) ]
  | Rollback { discarded } -> [ ("discarded", Json.Int discarded) ]
  | Output_commit { seq } -> [ ("seq", Json.Int seq) ]
  | Span { name; dur } -> [ ("name", Json.String name); ("dur", Json.Float dur) ]
  | Snapshot { protocol; values } ->
      [
        ("protocol", Json.String protocol);
        ("values", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) values));
      ]
  | Custom { name; detail } ->
      ("name", Json.String name)
      :: (if detail = "" then [] else [ ("detail", Json.String detail) ])

let to_json ev =
  Json.Obj
    ([
       ("at", Json.Float ev.at);
       ("pid", Json.Int ev.pid);
       ("ver", Json.Int ev.ver);
       ("kind", Json.String (kind_name ev.kind));
     ]
    @ kind_fields ev.kind
    @ if Array.length ev.clock = 0 then [] else [ ("clock", clock_to_json ev.clock) ])

let to_line ev = Json.to_string (to_json ev)

let clock_of_json j =
  match Json.list_value j with
  | None -> Error "clock: expected a list"
  | Some entries -> (
      let parse_entry e =
        match Json.list_value e with
        | Some [ v; t ] -> (
            match (Json.to_int v, Json.to_int t) with
            | Some ver, Some ts -> Some { Ftvc.ver; ts }
            | _ -> None)
        | _ -> None
      in
      let parsed = List.filter_map parse_entry entries in
      if List.length parsed <> List.length entries then
        Error "clock: malformed entry"
      else Ok (Array.of_list parsed))

let of_json j =
  let int_field name =
    match Option.bind (Json.mem name j) Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "missing int field %S" name)
  in
  let ( let* ) = Result.bind in
  let* at =
    match Option.bind (Json.mem "at" j) Json.to_float with
    | Some x -> Ok x
    | None -> Error "missing field \"at\""
  in
  let* pid = int_field "pid" in
  let* ver = int_field "ver" in
  let* kind_tag =
    match Option.bind (Json.mem "kind" j) Json.string_value with
    | Some s -> Ok s
    | None -> Error "missing field \"kind\""
  in
  let token_kind make =
    let* origin = int_field "origin" in
    let* tver = int_field "tver" in
    let* tts = int_field "tts" in
    Ok (make ~origin ~ver:tver ~ts:tts)
  in
  let* kind =
    match kind_tag with
    | "send" ->
        let* uid = int_field "uid" in
        let* dst = int_field "dst" in
        Ok (Send { uid; dst })
    | "deliver" ->
        let* uid = int_field "uid" in
        let* src = int_field "src" in
        Ok (Deliver { uid; src })
    | "drop_obsolete" ->
        let* uid = int_field "uid" in
        let* src = int_field "src" in
        Ok (Drop_obsolete { uid; src })
    | "checkpoint" ->
        let* position = int_field "position" in
        Ok (Checkpoint { position })
    | "log_flush" ->
        let* stable = int_field "stable" in
        Ok (Log_flush { stable })
    | "failure" -> Ok Failure
    | "restart" ->
        let* new_ver = int_field "new_ver" in
        Ok (Restart { new_ver })
    | "token_sent" ->
        token_kind (fun ~origin ~ver ~ts -> Token_sent { origin; ver; ts })
    | "token_recv" ->
        token_kind (fun ~origin ~ver ~ts -> Token_recv { origin; ver; ts })
    | "orphan_detected" ->
        token_kind (fun ~origin ~ver ~ts -> Orphan_detected { origin; ver; ts })
    | "rollback" ->
        let* discarded = int_field "discarded" in
        Ok (Rollback { discarded })
    | "output_commit" ->
        let* seq = int_field "seq" in
        Ok (Output_commit { seq })
    | "span" ->
        let* name =
          match Option.bind (Json.mem "name" j) Json.string_value with
          | Some s -> Ok s
          | None -> Error "missing field \"name\""
        in
        let* dur =
          match Option.bind (Json.mem "dur" j) Json.to_float with
          | Some x -> Ok x
          | None -> Error "missing field \"dur\""
        in
        Ok (Span { name; dur })
    | "snapshot" ->
        let* protocol =
          match Option.bind (Json.mem "protocol" j) Json.string_value with
          | Some s -> Ok s
          | None -> Error "missing field \"protocol\""
        in
        let* values =
          match Json.mem "values" j with
          | Some (Json.Obj fields) ->
              let rec conv acc = function
                | [] -> Ok (List.rev acc)
                | (k, v) :: rest -> (
                    match Json.to_float v with
                    | Some x -> conv ((k, x) :: acc) rest
                    | None ->
                        Error (Printf.sprintf "snapshot value %S: not a number" k))
              in
              conv [] fields
          | _ -> Error "missing object field \"values\""
        in
        Ok (Snapshot { protocol; values })
    | "custom" ->
        let name =
          Option.value ~default:""
            (Option.bind (Json.mem "name" j) Json.string_value)
        in
        let detail =
          Option.value ~default:""
            (Option.bind (Json.mem "detail" j) Json.string_value)
        in
        Ok (Custom { name; detail })
    | other -> Error (Printf.sprintf "unknown event kind %S" other)
  in
  let* clock =
    match Json.mem "clock" j with
    | None -> Ok [||]
    | Some c -> clock_of_json c
  in
  Ok { at; pid; ver; clock; kind }

let of_line line = Result.bind (Json.of_string line) of_json

(* --- streaming JSONL reader --- *)

let fold_file path ~init ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc lineno =
        match input_line ic with
        | exception End_of_file -> acc
        | raw ->
            let lineno = lineno + 1 in
            if String.trim raw = "" then loop acc lineno
            else loop (f acc ~line:lineno (of_line raw)) lineno
      in
      loop init 0)

let iter_file path ~f = fold_file path ~init:() ~f:(fun () ~line r -> f ~line r)

let jsonl_sink write =
  (* The header is the first line of every stream, so readers can refuse
     (or warn about) traces from an incompatible writer. *)
  write (to_line schema_header);
  write "\n";
  {
    on_event =
      (fun ev ->
        write (to_line ev);
        write "\n");
    on_close = (fun () -> ());
  }

(* --- Chrome trace_event (catapult) --- *)

(* Virtual time maps to microseconds 1:1 scaled by 1000, so one unit of
   virtual time reads as one millisecond in the Perfetto timeline. *)
let chrome_ts at = Json.Float (at *. 1000.0)

let chrome_sink write =
  let first = ref true in
  let seen_pids = Hashtbl.create 16 in
  let write_record json =
    if !first then begin
      first := false;
      write "{\"traceEvents\":[\n"
    end
    else write ",\n";
    write (Json.to_string json)
  in
  let base ev name ph extra =
    Json.Obj
      ([
         ("name", Json.String name);
         ("cat", Json.String "protocol");
         ("ph", Json.String ph);
         ("ts", chrome_ts ev.at);
         ("pid", Json.Int ev.pid);
         ("tid", Json.Int ev.pid);
       ]
      @ extra)
  in
  let ensure_pid ev =
    if not (Hashtbl.mem seen_pids ev.pid) then begin
      Hashtbl.add seen_pids ev.pid ();
      write_record
        (Json.Obj
           [
             ("name", Json.String "process_name");
             ("ph", Json.String "M");
             ("pid", Json.Int ev.pid);
             ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "P%d" ev.pid)) ]);
           ])
    end
  in
  let args ev =
    ( "args",
      Json.Obj
        (("ver", Json.Int ev.ver) :: kind_fields ev.kind
        @
        if Array.length ev.clock = 0 then []
        else [ ("clock", clock_to_json ev.clock) ]) )
  in
  let on_event ev =
    ensure_pid ev;
    (match ev.kind with
    | Failure ->
        (* Duration slice covering the downtime, closed by Restart. *)
        write_record (base ev "down" "B" [ args ev ])
    | Restart _ ->
        write_record (base ev "down" "E" []);
        write_record
          (base ev (kind_name ev.kind) "i" [ ("s", Json.String "t"); args ev ])
    | Span { name; dur } ->
        (* Complete slice: [at] is the span start, [dur] its length. *)
        write_record
          (base ev name "X"
             [ ("dur", Json.Float (dur *. 1000.0)); args ev ])
    | Snapshot { values; _ } ->
        (* Counter track per metric family. *)
        write_record
          (base ev "metrics" "C"
             [
               ( "args",
                 Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) values) );
             ])
    | _ ->
        write_record
          (base ev (kind_name ev.kind) "i" [ ("s", Json.String "t"); args ev ]));
    (* Flow arrows: one per message, Send -> Deliver, matched by uid. *)
    match ev.kind with
    | Send { uid; _ } ->
        write_record (base ev "msg" "s" [ ("id", Json.Int uid) ])
    | Deliver { uid; src } when src >= 0 ->
        write_record
          (base ev "msg" "f" [ ("id", Json.Int uid); ("bp", Json.String "e") ])
    | _ -> ()
  in
  let on_close () =
    if !first then write "{\"traceEvents\":[\n";
    write "\n]}\n"
  in
  { on_event; on_close }

(* --- recorder --- *)

type t = {
  mutable recording : bool;
  mutable sinks : sink list; (* attachment order *)
  is_null : bool;
}

let null = { recording = false; sinks = []; is_null = true }

let create () = { recording = false; sinks = []; is_null = false }

let enabled t = t.recording [@@inline]

let attach t s =
  if t.is_null then invalid_arg "Trace.attach: the null recorder";
  t.sinks <- t.sinks @ [ s ];
  t.recording <- true

let emit t ev = if t.recording then List.iter (fun s -> s.on_event ev) t.sinks

let close t =
  List.iter (fun s -> s.on_close ()) t.sinks;
  t.sinks <- [];
  t.recording <- false

(* --- pretty-printing --- *)

let pp_clock ppf clock =
  Format.pp_print_string ppf "[";
  Array.iteri
    (fun i (e : Ftvc.entry) ->
      if i > 0 then Format.pp_print_string ppf " ";
      Format.fprintf ppf "%d.%d" e.ver e.ts)
    clock;
  Format.pp_print_string ppf "]"

let pp_kind ppf = function
  | Send { uid; dst } -> Format.fprintf ppf "send            uid=%d dst=%d" uid dst
  | Deliver { uid; src } ->
      if src < 0 then Format.fprintf ppf "deliver         uid=%d (env)" uid
      else Format.fprintf ppf "deliver         uid=%d src=%d" uid src
  | Drop_obsolete { uid; src } ->
      Format.fprintf ppf "drop_obsolete   uid=%d src=%d" uid src
  | Checkpoint { position } -> Format.fprintf ppf "checkpoint      pos=%d" position
  | Log_flush { stable } -> Format.fprintf ppf "log_flush       stable=%d" stable
  | Failure -> Format.fprintf ppf "failure"
  | Restart { new_ver } -> Format.fprintf ppf "restart         ver=%d" new_ver
  | Token_sent { origin; ver; ts } ->
      Format.fprintf ppf "token_sent      (%d,%d,%d)" origin ver ts
  | Token_recv { origin; ver; ts } ->
      Format.fprintf ppf "token_recv      (%d,%d,%d)" origin ver ts
  | Rollback { discarded } ->
      Format.fprintf ppf "rollback        discarded=%d" discarded
  | Orphan_detected { origin; ver; ts } ->
      Format.fprintf ppf "orphan_detected (%d,%d,%d)" origin ver ts
  | Output_commit { seq } -> Format.fprintf ppf "output_commit   seq=%d" seq
  | Span { name; dur } ->
      Format.fprintf ppf "span            %s dur=%.6fs" name dur
  | Snapshot { protocol; values } ->
      Format.fprintf ppf "snapshot        %s" protocol;
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%g" k v) values
  | Custom { name; detail } ->
      if detail = "" then Format.fprintf ppf "custom          %s" name
      else Format.fprintf ppf "custom          %s %s" name detail

let pp_event ppf ev =
  Format.fprintf ppf "[%10.3f] p%d/v%-2d %a" ev.at ev.pid ev.ver pp_kind ev.kind;
  if Array.length ev.clock > 0 then Format.fprintf ppf "  %a" pp_clock ev.clock
