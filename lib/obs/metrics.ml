module Stats = Optimist_util.Stats

type labels = { protocol : string; process : int }

module S = struct
  type t = {
    labels : labels;
    counters : (string, int ref) Hashtbl.t;
    gauges : (string, float ref) Hashtbl.t;
    summaries : (string, Stats.Summary.t) Hashtbl.t;
    histograms : (string, Stats.Histogram.t) Hashtbl.t;
  }

  let make labels =
    {
      labels;
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 4;
      summaries = Hashtbl.create 4;
      histograms = Hashtbl.create 4;
    }

  let labels t = t.labels

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t.counters name (ref by)

  let get t name =
    match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

  let sorted_bindings tbl read =
    Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let counters t = sorted_bindings t.counters ( ! )

  let set_gauge t name v =
    match Hashtbl.find_opt t.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.add t.gauges name (ref v)

  let gauge t name =
    match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0.0

  let gauges t = sorted_bindings t.gauges ( ! )

  let observe t name v =
    let s =
      match Hashtbl.find_opt t.summaries name with
      | Some s -> s
      | None ->
          let s = Stats.Summary.create () in
          Hashtbl.add t.summaries name s;
          s
    in
    Stats.Summary.add s v

  let summary t name = Hashtbl.find_opt t.summaries name

  let observe_hist ?buckets t name v =
    let h =
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          let h = Stats.Histogram.create ?buckets () in
          Hashtbl.add t.histograms name h;
          h
    in
    Stats.Histogram.add h v

  let histogram t name = Hashtbl.find_opt t.histograms name

  (* One flat, name-sorted list of floats: the payload of a
     [Trace.Snapshot] record. Summaries and histograms are flattened to
     a few derived values so the snapshot stays shallow. *)
  let snapshot t =
    let counters = List.map (fun (k, v) -> (k, float_of_int v)) (counters t) in
    let summaries =
      sorted_bindings t.summaries Fun.id
      |> List.concat_map (fun (k, s) ->
             [
               (k ^ ".count", float_of_int (Stats.Summary.count s));
               (k ^ ".mean", Stats.Summary.mean s);
               (k ^ ".max", Stats.Summary.max s);
             ])
    in
    let histograms =
      sorted_bindings t.histograms Fun.id
      |> List.concat_map (fun (k, h) ->
             [
               (k ^ ".count", float_of_int (Stats.Histogram.count h));
               (k ^ ".p50", Stats.Histogram.quantile h 0.5);
               (k ^ ".p95", Stats.Histogram.quantile h 0.95);
             ])
    in
    counters @ gauges t @ summaries @ histograms
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let snapshot_prefixed ~prefix t =
    List.map (fun (k, v) -> (prefix ^ k, v)) (snapshot t)

  let pp ppf t =
    Format.fprintf ppf "@[<v>%s/p%d:" t.labels.protocol t.labels.process;
    List.iter
      (fun (k, v) -> Format.fprintf ppf "@,  %-24s %d" k v)
      (counters t);
    List.iter
      (fun (k, v) -> Format.fprintf ppf "@,  %-24s %g" k v)
      (gauges t);
    sorted_bindings t.summaries Fun.id
    |> List.iter (fun (k, s) ->
           Format.fprintf ppf "@,  %-24s %a" k Stats.Summary.pp s);
    Format.fprintf ppf "@]"
end

type registry = { mutable scopes_rev : S.t list }

let registry () = { scopes_rev = [] }

let scope_create ?registry ~protocol ~process () =
  let s = S.make { protocol; process } in
  (match registry with
  | Some r -> r.scopes_rev <- s :: r.scopes_rev
  | None -> ());
  s

let scopes r =
  List.rev_map (fun s -> (S.labels s, s)) r.scopes_rev

let selected ?protocol r =
  List.rev r.scopes_rev
  |> List.filter (fun (s : S.t) ->
         match protocol with
         | None -> true
         | Some p -> (S.labels s).protocol = p)

let totals ?protocol r =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun s ->
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt acc name with
          | Some cell -> cell := !cell + v
          | None -> Hashtbl.add acc name (ref v))
        (S.counters s))
    (selected ?protocol r);
  Hashtbl.fold (fun k v l -> (k, !v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total ?protocol r name =
  List.fold_left
    (fun acc s -> acc + S.get s name)
    0
    (selected ?protocol r)

type agg = { count : int; total : float; mean : float; min : float; max : float }

let aggregate ?protocol r name =
  let zero = { count = 0; total = 0.0; mean = 0.0; min = 0.0; max = 0.0 } in
  let merge acc s =
    match S.summary s name with
    | None -> acc
    | Some summ when Stats.Summary.count summ = 0 -> acc
    | Some summ ->
        let c = Stats.Summary.count summ in
        let t = Stats.Summary.total summ in
        let mn = Stats.Summary.min summ and mx = Stats.Summary.max summ in
        if acc.count = 0 then
          { count = c; total = t; mean = t /. float_of_int c; min = mn; max = mx }
        else
          let count = acc.count + c in
          let total = acc.total +. t in
          {
            count;
            total;
            mean = total /. float_of_int count;
            min = Float.min acc.min mn;
            max = Float.max acc.max mx;
          }
  in
  List.fold_left merge zero (selected ?protocol r)

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (_, s) ->
      if i > 0 then Format.fprintf ppf "@,";
      S.pp ppf s)
    (scopes r);
  Format.fprintf ppf "@]"

(* --- Prometheus text exposition --- *)

let prom_name name =
  let mangled =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
      name
  in
  "optimist_" ^ mangled

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let prom_labels (l : labels) extra =
  let base =
    [
      ("protocol", l.protocol); ("process", string_of_int l.process);
    ]
  in
  base @ extra
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v)
  |> String.concat ","

type prom_family = Prom_counter | Prom_gauge | Prom_summary | Prom_histogram

let to_prom r =
  let buf = Buffer.create 1024 in
  let scopes = List.rev r.scopes_rev in
  (* Families sorted by name so the output is deterministic; each TYPE
     line is emitted once, followed by one sample (or bucket series) per
     scope that owns the instrument, in registration order. *)
  let families = Hashtbl.create 32 in
  List.iter
    (fun (s : S.t) ->
      Hashtbl.iter (fun k _ -> Hashtbl.replace families k Prom_counter) s.S.counters;
      Hashtbl.iter (fun k _ -> Hashtbl.replace families k Prom_gauge) s.S.gauges;
      Hashtbl.iter (fun k _ -> Hashtbl.replace families k Prom_summary) s.S.summaries;
      Hashtbl.iter
        (fun k _ -> Hashtbl.replace families k Prom_histogram)
        s.S.histograms)
    scopes;
  let sorted =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) families []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let line name labels value =
    Buffer.add_string buf
      (Printf.sprintf "%s{%s} %s\n" name labels value)
  in
  List.iter
    (fun (name, fam) ->
      let pname = prom_name name in
      let ty =
        match fam with
        | Prom_counter -> "counter"
        | Prom_gauge -> "gauge"
        | Prom_summary -> "summary"
        | Prom_histogram -> "histogram"
      in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" pname ty);
      List.iter
        (fun (s : S.t) ->
          let labels extra = prom_labels s.S.labels extra in
          match fam with
          | Prom_counter -> (
              match Hashtbl.find_opt s.S.counters name with
              | None -> ()
              | Some v -> line pname (labels []) (string_of_int !v))
          | Prom_gauge -> (
              match Hashtbl.find_opt s.S.gauges name with
              | None -> ()
              | Some v -> line pname (labels []) (prom_float !v))
          | Prom_summary -> (
              match Hashtbl.find_opt s.S.summaries name with
              | None -> ()
              | Some summ ->
                  line (pname ^ "_count") (labels [])
                    (string_of_int (Stats.Summary.count summ));
                  line (pname ^ "_sum") (labels [])
                    (prom_float (Stats.Summary.total summ)))
          | Prom_histogram -> (
              match Hashtbl.find_opt s.S.histograms name with
              | None -> ()
              | Some h ->
                  let bounds = Stats.Histogram.bounds h in
                  let counts = Stats.Histogram.counts h in
                  let acc = ref 0 in
                  Array.iteri
                    (fun i b ->
                      acc := !acc + counts.(i);
                      line (pname ^ "_bucket")
                        (labels [ ("le", prom_float b) ])
                        (string_of_int !acc))
                    bounds;
                  line (pname ^ "_bucket")
                    (labels [ ("le", "+Inf") ])
                    (string_of_int (Stats.Histogram.count h));
                  line (pname ^ "_sum") (labels [])
                    (prom_float (Stats.Histogram.sum h));
                  line (pname ^ "_count") (labels [])
                    (string_of_int (Stats.Histogram.count h))))
        scopes)
    sorted;
  Buffer.contents buf

module Scope = struct
  include S

  let create = scope_create
end
