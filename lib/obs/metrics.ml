module Stats = Optimist_util.Stats

type labels = { protocol : string; process : int }

module S = struct
  type t = {
    labels : labels;
    counters : (string, int ref) Hashtbl.t;
    gauges : (string, float ref) Hashtbl.t;
    summaries : (string, Stats.Summary.t) Hashtbl.t;
    histograms : (string, Stats.Histogram.t) Hashtbl.t;
  }

  let make labels =
    {
      labels;
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 4;
      summaries = Hashtbl.create 4;
      histograms = Hashtbl.create 4;
    }

  let labels t = t.labels

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t.counters name (ref by)

  let get t name =
    match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

  let sorted_bindings tbl read =
    Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let counters t = sorted_bindings t.counters ( ! )

  let set_gauge t name v =
    match Hashtbl.find_opt t.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.add t.gauges name (ref v)

  let gauge t name =
    match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0.0

  let gauges t = sorted_bindings t.gauges ( ! )

  let observe t name v =
    let s =
      match Hashtbl.find_opt t.summaries name with
      | Some s -> s
      | None ->
          let s = Stats.Summary.create () in
          Hashtbl.add t.summaries name s;
          s
    in
    Stats.Summary.add s v

  let summary t name = Hashtbl.find_opt t.summaries name

  let observe_hist ?buckets t name v =
    let h =
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          let h = Stats.Histogram.create ?buckets () in
          Hashtbl.add t.histograms name h;
          h
    in
    Stats.Histogram.add h v

  let histogram t name = Hashtbl.find_opt t.histograms name

  let pp ppf t =
    Format.fprintf ppf "@[<v>%s/p%d:" t.labels.protocol t.labels.process;
    List.iter
      (fun (k, v) -> Format.fprintf ppf "@,  %-24s %d" k v)
      (counters t);
    List.iter
      (fun (k, v) -> Format.fprintf ppf "@,  %-24s %g" k v)
      (gauges t);
    sorted_bindings t.summaries Fun.id
    |> List.iter (fun (k, s) ->
           Format.fprintf ppf "@,  %-24s %a" k Stats.Summary.pp s);
    Format.fprintf ppf "@]"
end

type registry = { mutable scopes_rev : S.t list }

let registry () = { scopes_rev = [] }

let scope_create ?registry ~protocol ~process () =
  let s = S.make { protocol; process } in
  (match registry with
  | Some r -> r.scopes_rev <- s :: r.scopes_rev
  | None -> ());
  s

let scopes r =
  List.rev_map (fun s -> (S.labels s, s)) r.scopes_rev

let selected ?protocol r =
  List.rev r.scopes_rev
  |> List.filter (fun (s : S.t) ->
         match protocol with
         | None -> true
         | Some p -> (S.labels s).protocol = p)

let totals ?protocol r =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun s ->
      List.iter
        (fun (name, v) ->
          match Hashtbl.find_opt acc name with
          | Some cell -> cell := !cell + v
          | None -> Hashtbl.add acc name (ref v))
        (S.counters s))
    (selected ?protocol r);
  Hashtbl.fold (fun k v l -> (k, !v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total ?protocol r name =
  List.fold_left
    (fun acc s -> acc + S.get s name)
    0
    (selected ?protocol r)

type agg = { count : int; total : float; mean : float; min : float; max : float }

let aggregate ?protocol r name =
  let zero = { count = 0; total = 0.0; mean = 0.0; min = 0.0; max = 0.0 } in
  let merge acc s =
    match S.summary s name with
    | None -> acc
    | Some summ when Stats.Summary.count summ = 0 -> acc
    | Some summ ->
        let c = Stats.Summary.count summ in
        let t = Stats.Summary.total summ in
        let mn = Stats.Summary.min summ and mx = Stats.Summary.max summ in
        if acc.count = 0 then
          { count = c; total = t; mean = t /. float_of_int c; min = mn; max = mx }
        else
          let count = acc.count + c in
          let total = acc.total +. t in
          {
            count;
            total;
            mean = total /. float_of_int count;
            min = Float.min acc.min mn;
            max = Float.max acc.max mx;
          }
  in
  List.fold_left merge zero (selected ?protocol r)

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (_, s) ->
      if i > 0 then Format.fprintf ppf "@,";
      S.pp ppf s)
    (scopes r);
  Format.fprintf ppf "@]"

module Scope = struct
  include S

  let create = scope_create
end
