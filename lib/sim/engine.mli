(** Deterministic discrete-event simulation engine.

    The engine owns virtual time and a queue of pending events. Events
    scheduled for the same instant fire in scheduling order, so a run is a
    pure function of the seed and the model — which is what lets the test
    suite replay any failing scenario from its printed seed.

    The recovery protocols, the network model, and the failure injector are
    all expressed as event handlers over one shared engine. *)

type t

type time = float
(** Virtual time. Starts at 0. *)

type cancel
(** Handle for revoking a scheduled event. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes an engine whose PRNG is seeded with [seed]
    (default [1L]). *)

val now : t -> time

val rng : t -> Optimist_util.Prng.t
(** The engine's root PRNG. Components should [Prng.split] their own
    stream from it at setup time. *)

val tracer : t -> Optimist_obs.Trace.t
(** The trace recorder shared by everything built over this engine
    (network, processes, protocols). [Trace.null] unless
    {!set_tracer} was called — i.e. tracing is off by default and the
    instrumented hot paths pay only a [Trace.enabled] check. *)

val set_tracer : t -> Optimist_obs.Trace.t -> unit
(** Install a recorder. Call before constructing the model so every
    component picks it up. *)

val ensure_tracer : t -> Optimist_obs.Trace.t
(** The engine's recorder, installing a fresh enabled-capable one first
    if the current recorder is [Trace.null]. Lets observers (sanitizer
    monitors, ad-hoc sinks) attach to an engine whose caller did not ask
    for tracing, without clobbering a recorder that is already set. *)

val schedule : t -> ?daemon:bool -> delay:time -> (unit -> unit) -> cancel
(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative. Returns a cancellation handle.

    A [daemon] event (default [false]) does not keep the simulation alive:
    [run] stops once only daemon events remain. Periodic self-rescheduling
    timers (log flush, checkpointing) are daemons; everything that is real
    work (message deliveries, crashes, stimuli) is not. *)

val schedule_at : t -> ?daemon:bool -> time -> (unit -> unit) -> cancel
(** Absolute-time variant; the time must not be in the past. *)

val cancel : t -> cancel -> unit
(** Revoke a pending event; no effect if it already fired or was
    cancelled. *)

val run : ?until:time -> ?max_events:int -> t -> unit
(** Drain the event queue. Stops when no non-daemon events remain, when
    virtual time would exceed [until], or after [max_events] events (a
    runaway guard; default 50 million). Events at exactly [until] still
    fire.

    When [until] is given and the run stops with the clock still behind
    it, the clock is advanced to [until], so [now] afterwards reflects
    the requested end time even if the model went quiet first. Daemon
    events left queued before the horizon still fire (at the advanced
    clock) if the simulation is resumed. *)

val step : t -> bool
(** Fire the single next event; [false] when the queue is empty. *)

val pending : t -> int
(** Number of events still queued (including cancelled tombstones). *)

val events_fired : t -> int
(** Total events executed since creation. *)
