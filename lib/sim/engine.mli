(** Deterministic discrete-event simulation engine.

    The engine owns virtual time and a queue of pending events. Events
    scheduled for the same instant fire in scheduling order, so a run is a
    pure function of the seed and the model — which is what lets the test
    suite replay any failing scenario from its printed seed.

    The recovery protocols, the network model, and the failure injector are
    all expressed as event handlers over one shared engine. *)

type t

type time = float
(** Virtual time. Starts at 0. *)

type cancel
(** Handle for revoking a scheduled event. *)

type label = {
  l_kind : string;  (** e.g. ["deliver"], ["restart"], ["timer"] *)
  l_pid : int;  (** process the event acts on; [-1] when not applicable *)
  l_src : int;  (** sending process for deliveries; [-1] otherwise *)
  l_info : string;  (** free-form discriminator, e.g. the traffic lane *)
}
(** Identity of a scheduled event as seen by a scheduling strategy.
    Labels are stable across replays of the same model (they name what
    the event {e does}, not when it was scheduled), which is what lets
    the model checker address "the delivery from 0 to 2" across
    different interleavings. *)

val anon : label
(** The label events get when the scheduling site does not provide one.
    Anonymous events are still schedulable and explorable, but a
    strategy cannot tell two of them apart except by queue order. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes an engine whose PRNG is seeded with [seed]
    (default [1L]). *)

val now : t -> time

val rng : t -> Optimist_util.Prng.t
(** The engine's root PRNG. Components should [Prng.split] their own
    stream from it at setup time. *)

val tracer : t -> Optimist_obs.Trace.t
(** The trace recorder shared by everything built over this engine
    (network, processes, protocols). [Trace.null] unless
    {!set_tracer} was called — i.e. tracing is off by default and the
    instrumented hot paths pay only a [Trace.enabled] check. *)

val set_tracer : t -> Optimist_obs.Trace.t -> unit
(** Install a recorder. Call before constructing the model so every
    component picks it up. *)

val ensure_tracer : t -> Optimist_obs.Trace.t
(** The engine's recorder, installing a fresh enabled-capable one first
    if the current recorder is [Trace.null]. Lets observers (sanitizer
    monitors, ad-hoc sinks) attach to an engine whose caller did not ask
    for tracing, without clobbering a recorder that is already set. *)

val schedule :
  t -> ?daemon:bool -> ?label:label -> delay:time -> (unit -> unit) -> cancel
(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative. Returns a cancellation handle.

    A [daemon] event (default [false]) does not keep the simulation alive:
    [run] stops once only daemon events remain. Periodic self-rescheduling
    timers (log flush, checkpointing) are daemons; everything that is real
    work (message deliveries, crashes, stimuli) is not.

    [label] (default {!anon}) names the event for scheduling strategies;
    it has no effect on execution. *)

val schedule_at :
  t -> ?daemon:bool -> ?label:label -> time -> (unit -> unit) -> cancel
(** Absolute-time variant; the time must not be in the past. *)

val cancel : t -> cancel -> unit
(** Revoke a pending event; no effect if it already fired or was
    cancelled. *)

val run : ?until:time -> ?max_events:int -> t -> unit
(** Drain the event queue. Stops when no non-daemon events remain, when
    virtual time would exceed [until], or after [max_events] events (a
    runaway guard; default 50 million). Events at exactly [until] still
    fire.

    When [until] is given and the run stops with the clock still behind
    it, the clock is advanced to [until], so [now] afterwards reflects
    the requested end time even if the model went quiet first. Daemon
    events left queued before the horizon still fire (at the advanced
    clock) if the simulation is resumed. *)

val step : t -> bool
(** Fire the single next event; [false] when the queue is empty. With a
    strategy installed (see {!set_strategy}), fire the enabled event the
    strategy picks instead of the FIFO head. *)

(** {2 Scheduler seam}

    Events scheduled for the same virtual instant are mutually
    concurrent: the engine's default FIFO tie-break is one valid
    serialization among many. A {e strategy} replaces that tie-break
    with an arbitrary choice over the {e enabled set} — the non-cancelled
    events queued for the earliest instant — which is the seam the
    model checker ([lib/mc]) drives to enumerate interleavings. *)

type candidate = {
  c_seq : int;  (** engine sequence number; unique handle for this run *)
  c_at : time;
  c_daemon : bool;
  c_label : label;
}

type strategy = candidate array -> int
(** Called by {!step} with the enabled set (ascending [c_seq]); returns
    the index of the event to fire. The strategy may perform side
    effects (e.g. inject a crash) before answering; if its side effects
    cancel the chosen event, {!step} re-gathers and asks again. *)

val set_strategy : t -> strategy option -> unit
(** Install or remove a scheduling strategy. [None] (the initial state)
    restores the default deterministic FIFO order. *)

val enabled : t -> candidate array
(** The current enabled set, in ascending [c_seq] order; empty when the
    queue is drained. Inspection only — does not advance time. *)

val queued : t -> candidate array
(** Every pending non-cancelled event (daemons included), ascending
    [(time, seq)]. O(pending); meant for state fingerprinting in the
    model checker, not for hot paths. *)

val pending : t -> int
(** Number of events still queued (including cancelled tombstones). *)

val live_pending : t -> int
(** Number of queued events that will actually fire — cancelled
    tombstones excluded, daemons included. Unlike {!pending}, this is an
    accurate enabled-work measure. *)

val live_work : t -> int
(** Queued non-daemon, non-cancelled events — the count {!run} uses to
    decide quiescence. [0] means only daemon timers (or tombstones)
    remain. *)

val events_fired : t -> int
(** Total events executed since creation. *)
