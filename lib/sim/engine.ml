module Prng = Optimist_util.Prng
module Heap = Optimist_util.Heap
module Trace = Optimist_obs.Trace

type time = float

type key = { at : time; seq : int }

type event = {
  action : unit -> unit;
  daemon : bool;
  mutable cancelled : bool;
}

type cancel = event

type t = {
  mutable clock : time;
  mutable seq : int;
  mutable fired : int;
  mutable live_work : int; (* pending non-daemon, non-cancelled events *)
  queue : (key, event) Heap.t;
  rng : Prng.t;
  mutable tracer : Trace.t;
}

let compare_key a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 1L) () =
  {
    clock = 0.0;
    seq = 0;
    fired = 0;
    live_work = 0;
    queue = Heap.create ~cmp:compare_key ();
    rng = Prng.create seed;
    tracer = Trace.null;
  }

let now t = t.clock

let rng t = t.rng

let tracer t = t.tracer

let set_tracer t tr = t.tracer <- tr

let ensure_tracer t =
  if t.tracer == Trace.null then t.tracer <- Trace.create ();
  t.tracer

let schedule_at t ?(daemon = false) at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %g is in the past (now %g)" at
         t.clock);
  let ev = { action; daemon; cancelled = false } in
  Heap.push t.queue { at; seq = t.seq } ev;
  t.seq <- t.seq + 1;
  if not daemon then t.live_work <- t.live_work + 1;
  ev

let schedule t ?daemon ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ?daemon (t.clock +. delay) action

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    if not ev.daemon then t.live_work <- t.live_work - 1
  end

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (key, ev) ->
      (* [run ~until] may already have advanced the clock past a stale
         daemon event's timestamp; never move time backwards. *)
      t.clock <- Float.max t.clock key.at;
      if not ev.cancelled then begin
        if not ev.daemon then t.live_work <- t.live_work - 1;
        t.fired <- t.fired + 1;
        ev.action ()
      end;
      true

let run ?until ?(max_events = 50_000_000) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    if t.live_work = 0 then continue := false
    else
      match Heap.peek t.queue with
      | None -> continue := false
      | Some (key, _) -> (
          match until with
          | Some horizon when key.at > horizon -> continue := false
          | _ ->
              ignore (step t);
              decr budget)
  done;
  if !budget = 0 then failwith "Engine.run: event budget exhausted";
  (* A horizon stop leaves [now] at the requested end time, so callers
     measuring elapsed virtual time see the full interval they asked for. *)
  match until with
  | Some horizon when t.clock < horizon -> t.clock <- horizon
  | _ -> ()

let pending t = Heap.length t.queue

let events_fired t = t.fired
