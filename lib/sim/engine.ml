module Prng = Optimist_util.Prng
module Heap = Optimist_util.Heap
module Trace = Optimist_obs.Trace

type time = float

type key = { at : time; seq : int }

type label = { l_kind : string; l_pid : int; l_src : int; l_info : string }

let anon = { l_kind = ""; l_pid = -1; l_src = -1; l_info = "" }

type event = {
  action : unit -> unit;
  daemon : bool;
  label : label;
  mutable cancelled : bool;
}

type cancel = event

type candidate = {
  c_seq : int;
  c_at : time;
  c_daemon : bool;
  c_label : label;
}

type strategy = candidate array -> int

type t = {
  mutable clock : time;
  mutable seq : int;
  mutable fired : int;
  mutable live_work : int; (* pending non-daemon, non-cancelled events *)
  mutable queued_live : int; (* pending non-cancelled events, daemons too *)
  queue : (key, event) Heap.t;
  (* Events popped off the heap while gathering the enabled set of the
     current instant but not yet fired; ascending seq order. Always
     pushed back before anything else looks at the heap. *)
  mutable stash : (key * event) list;
  mutable strategy : strategy option;
  rng : Prng.t;
  mutable tracer : Trace.t;
}

let compare_key a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 1L) () =
  {
    clock = 0.0;
    seq = 0;
    fired = 0;
    live_work = 0;
    queued_live = 0;
    queue = Heap.create ~cmp:compare_key ();
    stash = [];
    strategy = None;
    rng = Prng.create seed;
    tracer = Trace.null;
  }

let now t = t.clock

let rng t = t.rng

let tracer t = t.tracer

let set_tracer t tr = t.tracer <- tr

let ensure_tracer t =
  if t.tracer == Trace.null then t.tracer <- Trace.create ();
  t.tracer

let schedule_at t ?(daemon = false) ?(label = anon) at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %g is in the past (now %g)" at
         t.clock);
  let ev = { action; daemon; label; cancelled = false } in
  Heap.push t.queue { at; seq = t.seq } ev;
  t.seq <- t.seq + 1;
  if not daemon then t.live_work <- t.live_work + 1;
  t.queued_live <- t.queued_live + 1;
  ev

let schedule t ?daemon ?label ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ?daemon ?label (t.clock +. delay) action

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    if not ev.daemon then t.live_work <- t.live_work - 1;
    t.queued_live <- t.queued_live - 1
  end

let set_strategy t s = t.strategy <- s

let restash t =
  match t.stash with
  | [] -> ()
  | entries ->
      List.iter (fun (k, ev) -> Heap.push t.queue k ev) entries;
      t.stash <- []

(* Pop every non-cancelled event scheduled for the earliest queued
   instant into the stash (ascending seq). Tombstones encountered on the
   way are discarded — their live counters were adjusted at cancel time. *)
let gather t =
  restash t;
  let rec skip_tombstones () =
    match Heap.peek t.queue with
    | Some (_, ev) when ev.cancelled ->
        ignore (Heap.pop t.queue);
        skip_tombstones ()
    | other -> other
  in
  match skip_tombstones () with
  | None -> [||]
  | Some (k0, _) ->
      let at = k0.at in
      let rec collect acc =
        match Heap.peek t.queue with
        | Some (k, ev) when k.at = at ->
            ignore (Heap.pop t.queue);
            if ev.cancelled then collect acc else collect ((k, ev) :: acc)
        | _ -> List.rev acc
      in
      let entries = collect [] in
      t.stash <- entries;
      Array.of_list
        (List.map
           (fun ((k : key), ev) ->
             { c_seq = k.seq; c_at = k.at; c_daemon = ev.daemon;
               c_label = ev.label })
           entries)

let enabled t =
  let cands = gather t in
  restash t;
  cands

let queued t =
  let live =
    List.filter (fun (_, ev) -> not ev.cancelled)
      (t.stash @ Heap.to_list t.queue)
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare_key a b) live in
  Array.of_list
    (List.map
       (fun ((k : key), ev) ->
         { c_seq = k.seq; c_at = k.at; c_daemon = ev.daemon;
           c_label = ev.label })
       sorted)

let fire_event t (k : key) ev =
  (* [run ~until] may already have advanced the clock past a stale
     daemon event's timestamp; never move time backwards. *)
  t.clock <- Float.max t.clock k.at;
  if not ev.cancelled then begin
    if not ev.daemon then t.live_work <- t.live_work - 1;
    t.queued_live <- t.queued_live - 1;
    t.fired <- t.fired + 1;
    ev.action ();
    true
  end
  else false

(* Fire the stashed event with the given seq; everything else goes back
   on the heap first so handler-scheduled events interleave correctly. *)
let fire_stashed t seq =
  let chosen, rest = List.partition (fun ((k : key), _) -> k.seq = seq) t.stash in
  t.stash <- rest;
  restash t;
  match chosen with
  | [ (k, ev) ] -> fire_event t k ev
  | _ -> invalid_arg "Engine: strategy chose an event that is not enabled"

let step t =
  match t.strategy with
  | None -> (
      restash t;
      match Heap.pop t.queue with
      | None -> false
      | Some (key, ev) ->
          ignore (fire_event t key ev);
          true)
  | Some strat ->
      (* The strategy's side effects (e.g. a crash injected at the choice
         point) may cancel the event it then picks; skip and re-choose. *)
      let rec go () =
        let cands = gather t in
        let n = Array.length cands in
        if n = 0 then false
        else begin
          let i = strat cands in
          if i < 0 || i >= n then
            invalid_arg "Engine.step: strategy returned an out-of-range index";
          if fire_stashed t cands.(i).c_seq then true else go ()
        end
      in
      go ()

(* Peek past cancelled tombstones so the [until] horizon is checked
   against the next event that will actually fire. *)
let rec peek_live t =
  match Heap.peek t.queue with
  | Some (_, ev) when ev.cancelled ->
      ignore (Heap.pop t.queue);
      peek_live t
  | other -> other

let run ?until ?(max_events = 50_000_000) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    if t.live_work = 0 then continue := false
    else begin
      restash t;
      match peek_live t with
      | None -> continue := false
      | Some (key, _) -> (
          match until with
          | Some horizon when key.at > horizon -> continue := false
          | _ ->
              ignore (step t);
              decr budget)
    end
  done;
  if !budget = 0 then failwith "Engine.run: event budget exhausted";
  (* A horizon stop leaves [now] at the requested end time, so callers
     measuring elapsed virtual time see the full interval they asked for. *)
  match until with
  | Some horizon when t.clock < horizon -> t.clock <- horizon
  | _ -> ()

let pending t = Heap.length t.queue + List.length t.stash

let live_pending t = t.queued_live

let live_work t = t.live_work

let events_fired t = t.fired
