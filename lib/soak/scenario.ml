module Prng = Optimist_util.Prng
module Json = Optimist_obs.Json
module Worker = Optimist_live.Worker

(* One randomized fault scenario, decided entirely by (campaign seed,
   scenario index): everything a live run needs — size, traffic shape,
   SIGKILL schedule, network-fault plan — is drawn from a PRNG derived
   from those two numbers, so a failing scenario is reproducible from
   its replay token alone and the shrinker can emit strictly simpler
   variants of the same record. *)

type kill = { kl_at : float; kl_pid : int }

type partition = { pr_start : float; pr_stop : float; pr_island : int list }

type t = {
  sc_seed : int64;
  sc_index : int;
  sc_protocol : string;
  sc_n : int;
  sc_duration : float;
  sc_settle : float;
  sc_rate : float;
  sc_hops : int;
  sc_restart_delay : float;
  sc_kills : kill list;
  sc_drop : float;
  sc_dup : float;
  sc_partitions : partition list;
}

(* Mix the campaign seed with the index through SplitMix's odd constant
   so adjacent indices get statistically unrelated streams. *)
let rng_of ~seed ~index =
  Prng.create
    (Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1))))

let round2 x = Float.round (x *. 100.0) /. 100.0

let generate ~seed ~index ~protocol =
  let rng = rng_of ~seed ~index in
  let n = 3 + Prng.int rng 3 in
  let duration = round2 (1.2 +. Prng.float rng 0.8) in
  let rate = round2 (4.0 +. Prng.float rng 6.0) in
  let hops = 2 + Prng.int rng 3 in
  let restart_delay = round2 (0.2 +. Prng.float rng 0.2) in
  let kill_count = 1 + Prng.int rng 2 in
  let kills =
    List.init kill_count (fun _ ->
        {
          kl_at = round2 (0.2 +. Prng.float rng (0.55 *. duration));
          kl_pid = Prng.int rng n;
        })
    |> List.sort compare
  in
  (* Duplicate datagrams are only injected for the paper's protocol: its
     uid-based history filter discards them (Lemma 4); the baselines make
     no such promise and a wire-level dup would trip their own
     duplicate-delivery rules through no protocol fault. *)
  let dup =
    if protocol = "dg" && Prng.bool rng then round2 (Prng.float rng 0.05)
    else 0.0
  in
  let drop = if Prng.bool rng then round2 (Prng.float rng 0.05) else 0.0 in
  let partitions =
    if Prng.bool rng then
      let start = round2 (0.3 +. Prng.float rng (0.4 *. duration)) in
      [
        {
          pr_start = start;
          pr_stop = round2 (start +. 0.15 +. Prng.float rng 0.2);
          pr_island = [ Prng.int rng n ];
        };
      ]
    else []
  in
  {
    sc_seed = seed;
    sc_index = index;
    sc_protocol = protocol;
    sc_n = n;
    sc_duration = duration;
    sc_settle = 1.0;
    sc_rate = rate;
    sc_hops = hops;
    sc_restart_delay = restart_delay;
    sc_kills = kills;
    sc_drop = drop;
    sc_dup = dup;
    sc_partitions = partitions;
  }

let plan ~seed ~count ~protocols =
  if count < 1 then invalid_arg "scenario count must be at least 1";
  if protocols = [] then invalid_arg "protocol list must not be empty";
  let protos = Array.of_list protocols in
  List.init count (fun index ->
      generate ~seed ~index
        ~protocol:
          (Worker.protocol_name protos.(index mod Array.length protos)))

(* --- shrinking ---

   Candidates are strict simplifications: each one reduces the measure
   (kills, partitions, drop, dup) lexicographically, so a shrink descent
   terminates and can only make the scenario smaller. *)

let measure t =
  ( List.length t.sc_kills,
    List.length t.sc_partitions,
    t.sc_drop,
    t.sc_dup )

let shrink_candidates t =
  let drop_nth l n = List.filteri (fun i _ -> i <> n) l in
  let without_kill =
    (* Keep at least one kill: a scenario with no crash exercises
       nothing the soak is hunting for. *)
    if List.length t.sc_kills <= 1 then []
    else
      List.mapi
        (fun i _ -> { t with sc_kills = drop_nth t.sc_kills i })
        t.sc_kills
  in
  let without_partition =
    List.mapi
      (fun i _ -> { t with sc_partitions = drop_nth t.sc_partitions i })
      t.sc_partitions
  in
  (* Rates are quantized to 2 decimals, so halving 0.01 rounds back to
     itself — below that, zeroing is the only strict simplification. *)
  let less_drop =
    if t.sc_drop = 0.0 then []
    else if t.sc_drop <= 0.01 then [ { t with sc_drop = 0.0 } ]
    else [ { t with sc_drop = 0.0 }; { t with sc_drop = round2 (t.sc_drop /. 2.0) } ]
  in
  let less_dup =
    if t.sc_dup = 0.0 then []
    else if t.sc_dup <= 0.01 then [ { t with sc_dup = 0.0 } ]
    else [ { t with sc_dup = 0.0 }; { t with sc_dup = round2 (t.sc_dup /. 2.0) } ]
  in
  without_kill @ without_partition @ less_drop @ less_dup

(* --- JSON round-trip --- *)

let to_json t =
  Json.Obj
    [
      ("seed", Json.String (Int64.to_string t.sc_seed));
      ("index", Json.Int t.sc_index);
      ("protocol", Json.String t.sc_protocol);
      ("n", Json.Int t.sc_n);
      ("duration", Json.Float t.sc_duration);
      ("settle", Json.Float t.sc_settle);
      ("rate", Json.Float t.sc_rate);
      ("hops", Json.Int t.sc_hops);
      ("restart_delay", Json.Float t.sc_restart_delay);
      ( "kills",
        Json.List
          (List.map
             (fun k ->
               Json.Obj
                 [ ("at", Json.Float k.kl_at); ("pid", Json.Int k.kl_pid) ])
             t.sc_kills) );
      ("drop", Json.Float t.sc_drop);
      ("dup", Json.Float t.sc_dup);
      ( "partitions",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("start", Json.Float p.pr_start);
                   ("stop", Json.Float p.pr_stop);
                   ( "island",
                     Json.List (List.map (fun i -> Json.Int i) p.pr_island) );
                 ])
             t.sc_partitions) );
    ]

let of_json j =
  let ( let* ) = Option.bind in
  let field name conv = Option.bind (Json.mem name j) conv in
  let result =
    let* seed = field "seed" Json.string_value in
    let* seed = Int64.of_string_opt seed in
    let* index = field "index" Json.to_int in
    let* protocol = field "protocol" Json.string_value in
    let* n = field "n" Json.to_int in
    let* duration = field "duration" Json.to_float in
    let* settle = field "settle" Json.to_float in
    let* rate = field "rate" Json.to_float in
    let* hops = field "hops" Json.to_int in
    let* restart_delay = field "restart_delay" Json.to_float in
    let* kills = field "kills" Json.list_value in
    let* kills =
      List.fold_right
        (fun k acc ->
          let* acc = acc in
          let* at = Option.bind (Json.mem "at" k) Json.to_float in
          let* pid = Option.bind (Json.mem "pid" k) Json.to_int in
          Some ({ kl_at = at; kl_pid = pid } :: acc))
        kills (Some [])
    in
    let* drop = field "drop" Json.to_float in
    let* dup = field "dup" Json.to_float in
    let* partitions = field "partitions" Json.list_value in
    let* partitions =
      List.fold_right
        (fun p acc ->
          let* acc = acc in
          let* start = Option.bind (Json.mem "start" p) Json.to_float in
          let* stop = Option.bind (Json.mem "stop" p) Json.to_float in
          let* island = Option.bind (Json.mem "island" p) Json.list_value in
          let* island =
            List.fold_right
              (fun i acc ->
                let* acc = acc in
                let* i = Json.to_int i in
                Some (i :: acc))
              island (Some [])
          in
          Some ({ pr_start = start; pr_stop = stop; pr_island = island } :: acc))
        partitions (Some [])
    in
    Some
      {
        sc_seed = seed;
        sc_index = index;
        sc_protocol = protocol;
        sc_n = n;
        sc_duration = duration;
        sc_settle = settle;
        sc_rate = rate;
        sc_hops = hops;
        sc_restart_delay = restart_delay;
        sc_kills = kills;
        sc_drop = drop;
        sc_dup = dup;
        sc_partitions = partitions;
      }
  in
  match result with
  | Some t -> Ok t
  | None -> Error "malformed scenario record"

let replay_token t =
  Printf.sprintf "%Ld:%d:%s" t.sc_seed t.sc_index t.sc_protocol

(* A replay token regenerates the scenario from scratch; a shrunk
   (minimal) scenario is not reachable from any token, so it is replayed
   from its JSON artifact instead — [of_token] accepts both. *)
let of_token s =
  if Sys.file_exists s then begin
    let ic = open_in s in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match Json.of_string line with
    | Ok j -> of_json j
    | Error msg -> Error (Printf.sprintf "%s: %s" s msg)
  end
  else
    match String.split_on_char ':' s with
    | [ seed; index; protocol ] -> (
        match (Int64.of_string_opt seed, int_of_string_opt index) with
        | Some seed, Some index when index >= 0 -> (
            match Worker.protocol_of_string protocol with
            | None ->
                Error
                  (Printf.sprintf "unknown protocol %S in replay token" protocol)
            | Some p ->
                Ok (generate ~seed ~index ~protocol:(Worker.protocol_name p)))
        | _ ->
            Error
              (Printf.sprintf "expected SEED:INDEX:PROTOCOL or a scenario file, got %S" s)
        )
    | _ ->
        Error
          (Printf.sprintf "expected SEED:INDEX:PROTOCOL or a scenario file, got %S"
             s)

(* The supervisor seed of a run: derived, so the same scenario (and its
   shrunk variants, which keep seed and index) replays the same
   workload. *)
let run_seed t = Int64.add t.sc_seed (Int64.of_int (t.sc_index + 1))
