module Worker = Optimist_live.Worker
module Supervisor = Optimist_live.Supervisor
module Livenet = Optimist_live.Livenet
module Check = Optimist_check.Check
module Trace = Optimist_obs.Trace
module Json = Optimist_obs.Json
module Report = Optimist_obs.Report
module Traffic = Optimist_workload.Traffic

(* The soak harness: run seeded scenarios against the live runtime, lint
   every merged trace against the protocol's declared sanitizer rules,
   cross-check the supervisor's ground truth (every SIGKILL must produce
   a recovery in the trace), and on failure shrink to a minimal
   reproducer. The campaign's JSONL summary is the artifact CI keeps. *)

type run_result = {
  rr_crashes : int;
  rr_events : int;
  rr_violations : (string * int) list;  (** rule id -> count, id order *)
  rr_oracle : string option;  (** ground-truth mismatch, when any *)
  rr_merged : string;  (** merged trace path *)
}

let failed r = r.rr_violations <> [] || r.rr_oracle <> None

(* Supervisor ground truth: the supervisor counted every SIGKILL it
   actually delivered; each one respawns an incarnation whose recovery
   emits exactly one Failure and one Restart record. A merged trace with
   fewer of either lost a recovery. *)
let oracle_check ~crashes merged =
  let failures = ref 0 and restarts = ref 0 in
  Trace.iter_file merged ~f:(fun ~line:_ -> function
    | Ok e -> (
        match e.Trace.kind with
        | Trace.Failure -> incr failures
        | Trace.Restart _ -> incr restarts
        | _ -> ())
    | Error _ -> ());
  if !failures < crashes then
    Some
      (Printf.sprintf "%d crash(es) delivered but only %d failure record(s)"
         crashes !failures)
  else if !restarts < crashes then
    Some
      (Printf.sprintf "%d crash(es) delivered but only %d restart record(s)"
         crashes !restarts)
  else None

let supervisor_cfg ~dir (s : Scenario.t) =
  match Worker.protocol_of_string s.Scenario.sc_protocol with
  | None ->
      Error (Printf.sprintf "unknown protocol %S" s.Scenario.sc_protocol)
  | Some protocol ->
      Ok
        {
          Supervisor.dir;
          n = s.sc_n;
          protocol;
          seed = Scenario.run_seed s;
          duration = s.sc_duration;
          settle = s.sc_settle;
          rate = s.sc_rate;
          hops = s.sc_hops;
          pattern = Traffic.Uniform;
          faults =
            List.map (fun k -> (k.Scenario.kl_at, k.Scenario.kl_pid)) s.sc_kills;
          net_faults =
            {
              Livenet.drop_rate = s.sc_drop;
              dup_rate = s.sc_dup;
              partitions =
                List.map
                  (fun p ->
                    {
                      Livenet.pt_start = p.Scenario.pr_start;
                      pt_stop = p.Scenario.pr_stop;
                      pt_island = p.Scenario.pr_island;
                    })
                  s.sc_partitions;
            };
          restart_delay = s.sc_restart_delay;
          jitter = Supervisor.default_cfg.Supervisor.jitter;
          telemetry = Worker.Full;
          link = None;
        }

let count_by_rule violations =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v : Check.violation) ->
      let id = v.rule.Check.id in
      Hashtbl.replace tbl id (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id)))
    violations;
  Hashtbl.fold (fun id n acc -> (id, n) :: acc) tbl []
  |> List.sort compare

(* Judge a finished run: lint the merged trace against the protocol's
   declared rules and cross-check the crash count. Shared by the
   single-host runner below and the cluster runner, which produces the
   same (crashes, events, merged) triple from remote agents. *)
let assess ~crashes ~events ~merged (s : Scenario.t) =
  let rules =
    match Worker.protocol_of_string s.Scenario.sc_protocol with
    | Some p -> Worker.live_check_rules p
    | None -> []
  in
  match Check.Lint.run ~only:rules merged with
  | Error msg -> Error msg
  | Ok lint ->
      Ok
        {
          rr_crashes = crashes;
          rr_events = events;
          rr_violations = count_by_rule lint.Check.Lint.violations;
          rr_oracle = oracle_check ~crashes merged;
          rr_merged = merged;
        }

let run_scenario ~dir (s : Scenario.t) =
  match supervisor_cfg ~dir s with
  | Error _ as e -> e
  | Ok cfg -> (
      match Supervisor.run cfg with
      | exception Invalid_argument msg -> Error msg
      | r ->
          assess ~crashes:r.Supervisor.crashes ~events:r.Supervisor.events
            ~merged:r.Supervisor.merged s)

(* Greedy shrink descent: re-run each strict simplification; the first
   one that still fails becomes the new current scenario. Every live run
   costs wall-clock seconds, so the descent is budgeted in runs, not
   candidates. *)
let shrink ?(runner = run_scenario) ~dir ~budget s =
  let runs = ref 0 in
  let rec go current =
    let rec try_candidates = function
      | [] -> current
      | c :: rest ->
          if !runs >= budget then current
          else begin
            incr runs;
            match runner ~dir c with
            | Ok r when failed r -> go c
            | Ok _ | Error _ -> try_candidates rest
          end
    in
    try_candidates (Scenario.shrink_candidates current)
  in
  go s

(* --- campaign --- *)

type outcome = {
  oc_scenario : Scenario.t;
  oc_result : (run_result, string) result;
  oc_minimal : Scenario.t option;  (** shrunk reproducer, when failing *)
}

type summary = {
  sm_outcomes : outcome list;
  sm_failed : int;  (** scenarios with violations or oracle mismatches *)
  sm_errors : int;  (** scenarios that could not run at all *)
  sm_crashes : int;
  sm_events : int;
  sm_rule_counts : (string * int) list;  (** rule id -> total, id order *)
}

let summarize outcomes =
  let failed_n = ref 0 and errors = ref 0 and crashes = ref 0 in
  let events = ref 0 in
  let rules = Hashtbl.create 8 in
  List.iter
    (fun o ->
      match o.oc_result with
      | Error _ -> incr errors
      | Ok r ->
          if failed r then incr failed_n;
          crashes := !crashes + r.rr_crashes;
          events := !events + r.rr_events;
          List.iter
            (fun (id, n) ->
              Hashtbl.replace rules id
                (n + Option.value ~default:0 (Hashtbl.find_opt rules id)))
            r.rr_violations)
    outcomes;
  {
    sm_outcomes = outcomes;
    sm_failed = !failed_n;
    sm_errors = !errors;
    sm_crashes = !crashes;
    sm_events = !events;
    sm_rule_counts =
      Hashtbl.fold (fun id n acc -> (id, n) :: acc) rules [] |> List.sort compare;
  }

(* One campaign.jsonl line per scenario. Pure over the outcome, so the
   determinism property (same seed, same outcomes -> byte-identical
   summary) is testable without live processes. *)
let outcome_json o =
  let base = [ ("scenario", Scenario.to_json o.oc_scenario) ] in
  let body =
    match o.oc_result with
    | Error msg -> [ ("status", Json.String "error"); ("error", Json.String msg) ]
    | Ok r ->
        [
          ( "status",
            Json.String (if failed r then "violation" else "ok") );
          ("crashes", Json.Int r.rr_crashes);
          ("events", Json.Int r.rr_events);
          ( "violations",
            Json.Obj (List.map (fun (id, n) -> (id, Json.Int n)) r.rr_violations)
          );
          ( "oracle",
            match r.rr_oracle with
            | None -> Json.Null
            | Some msg -> Json.String msg );
        ]
  in
  let minimal =
    match o.oc_minimal with
    | None -> []
    | Some m ->
        [
          ("minimal", Scenario.to_json m);
          ("replay", Json.String (Scenario.replay_token m));
        ]
  in
  Json.Obj (base @ body @ minimal)

let summary_json sm =
  Json.Obj
    [
      ("record", Json.String "campaign");
      ("scenarios", Json.Int (List.length sm.sm_outcomes));
      ("failed", Json.Int sm.sm_failed);
      ("errors", Json.Int sm.sm_errors);
      ("crashes", Json.Int sm.sm_crashes);
      ("events", Json.Int sm.sm_events);
      ( "violations",
        Json.Obj (List.map (fun (id, n) -> (id, Json.Int n)) sm.sm_rule_counts)
      );
    ]

(* Recovery-latency quantiles over every merged trace the campaign
   produced, via the offline profiler. Wall-clock latencies are not
   deterministic, so this is a separate record from the campaign
   summary. *)
let profile_json outcomes =
  let merged =
    List.filter_map
      (fun o ->
        match o.oc_result with
        | Ok r when Sys.file_exists r.rr_merged -> Some r.rr_merged
        | _ -> None)
      outcomes
  in
  if merged = [] then None
  else
    match Report.of_files merged with
    | Error _ -> None
    | Ok t ->
        Some
          (Json.Obj
             [
               ("record", Json.String "profile");
               ( "protocols",
                 Json.List
                   (List.map
                      (fun (p : Report.proto) ->
                        Json.Obj
                          [
                            ("protocol", Json.String p.Report.protocol);
                            ( "recoveries",
                              Json.Int (List.length p.Report.recoveries) );
                            ("latency_p50", Json.Float p.Report.latency_p50);
                            ("latency_p95", Json.Float p.Report.latency_p95);
                            ("latency_max", Json.Float p.Report.latency_max);
                            ("replayed", Json.Int p.Report.replayed_total);
                            ("bytes_reread", Json.Int p.Report.bytes_total);
                          ])
                      t.Report.protocols) );
             ])

let campaign_file out = Filename.concat out "campaign.jsonl"

let minimal_file out index =
  Filename.concat out (Printf.sprintf "minimal.%d.json" index)

let write_campaign ~out summary =
  let oc = open_out (campaign_file out) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun o ->
          output_string oc (Json.to_string (outcome_json o));
          output_char oc '\n')
        summary.sm_outcomes;
      output_string oc (Json.to_string (summary_json summary));
      output_char oc '\n';
      match profile_json summary.sm_outcomes with
      | Some j ->
          output_string oc (Json.to_string j);
          output_char oc '\n'
      | None -> ())

let run_campaign ?(runner = run_scenario) ?(shrink_budget = 12)
    ?(log = fun _ -> ()) ~out ~plan () =
  if not (Sys.file_exists out) then Unix.mkdir out 0o755;
  let outcomes =
    List.map
      (fun (s : Scenario.t) ->
        let dir = Filename.concat out (Printf.sprintf "s%d" s.sc_index) in
        log
          (Printf.sprintf "scenario %d: %s n=%d kills=%d drop=%g dup=%g%s"
             s.sc_index s.sc_protocol s.sc_n (List.length s.sc_kills)
             s.sc_drop s.sc_dup
             (if s.sc_partitions <> [] then " partition" else ""));
        let result = runner ~dir s in
        let minimal =
          match result with
          | Ok r when failed r ->
              log
                (Printf.sprintf "scenario %d FAILED (%s); shrinking..."
                   s.sc_index
                   (match r.rr_oracle with
                   | Some msg -> msg
                   | None ->
                       String.concat ","
                         (List.map
                            (fun (id, n) -> Printf.sprintf "%s x%d" id n)
                            r.rr_violations)));
              let m =
                shrink ~runner
                  ~dir:(Filename.concat out "shrink")
                  ~budget:shrink_budget s
              in
              (* Re-run the minimal scenario in its own directory so the
                 kept artifacts (merged trace, run.json) match it. *)
              let mdir = Filename.concat out (Printf.sprintf "minimal.%d" s.sc_index) in
              ignore (runner ~dir:mdir m);
              let path = minimal_file out s.sc_index in
              let oc = open_out path in
              output_string oc (Json.to_string (Scenario.to_json m));
              output_char oc '\n';
              close_out oc;
              log
                (Printf.sprintf "scenario %d minimal reproducer: %s (replay: %s)"
                   s.sc_index path path);
              Some m
          | _ -> None
        in
        { oc_scenario = s; oc_result = result; oc_minimal = minimal })
      plan
  in
  let summary = summarize outcomes in
  write_campaign ~out summary;
  summary
