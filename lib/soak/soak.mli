(** Seeded live soak harness ([recsim live soak]).

    From a single campaign seed, generate randomized fault scenarios
    ({!Scenario}), run each against the live runtime ({!Optimist_live}),
    lint the merged trace against the protocol's declared sanitizer
    rules, cross-check the supervisor's ground truth (every delivered
    SIGKILL must produce a Failure and a Restart record), and shrink any
    failing scenario to a minimal reproducer. The campaign writes a
    JSONL summary ([campaign.jsonl]) with one record per scenario, an
    aggregate record, and a recovery-latency profile. *)

type run_result = {
  rr_crashes : int;  (** SIGKILLs actually delivered *)
  rr_events : int;  (** merged trace events *)
  rr_violations : (string * int) list;  (** rule id -> count, id order *)
  rr_oracle : string option;  (** ground-truth mismatch, when any *)
  rr_merged : string;  (** merged trace path *)
}

val failed : run_result -> bool
(** Any lint violation or oracle mismatch. *)

val assess :
  crashes:int ->
  events:int ->
  merged:string ->
  Scenario.t ->
  (run_result, string) result
(** Judge a finished run: lint [merged] against the scenario protocol's
    {!Optimist_live.Worker.live_check_rules} and oracle-check the crash
    count. Shared by {!run_scenario} and alternative runners (the
    cluster's multi-host runner) that produce the same triple. *)

val run_scenario : dir:string -> Scenario.t -> (run_result, string) result
(** One live run of the scenario in [dir] (cleared first), linted
    against {!Optimist_live.Worker.live_check_rules} for its protocol.
    [Error] when the scenario cannot run at all (unknown protocol,
    invalid parameters, unreadable trace) — never for violations. *)

val shrink :
  ?runner:(dir:string -> Scenario.t -> (run_result, string) result) ->
  dir:string ->
  budget:int ->
  Scenario.t ->
  Scenario.t
(** Greedy descent over {!Scenario.shrink_candidates}: re-run each
    strict simplification (at most [budget] live runs total) and keep
    descending while the failure reproduces. Returns the smallest
    scenario that still failed — the input itself when nothing simpler
    does. [runner] (default {!run_scenario}) executes each candidate. *)

type outcome = {
  oc_scenario : Scenario.t;
  oc_result : (run_result, string) result;
  oc_minimal : Scenario.t option;  (** shrunk reproducer, when failing *)
}

type summary = {
  sm_outcomes : outcome list;
  sm_failed : int;  (** scenarios with violations or oracle mismatches *)
  sm_errors : int;  (** scenarios that could not run at all *)
  sm_crashes : int;
  sm_events : int;
  sm_rule_counts : (string * int) list;  (** rule id -> total, id order *)
}

val summarize : outcome list -> summary

val outcome_json : outcome -> Optimist_obs.Json.t
(** One [campaign.jsonl] record. Pure over the outcome — equal outcomes
    yield byte-identical lines (the determinism property). *)

val summary_json : summary -> Optimist_obs.Json.t
(** The aggregate [campaign.jsonl] record ([{"record":"campaign",...}]).
    Pure over the summary. *)

val campaign_file : string -> string
(** [out]'s campaign summary path ([campaign.jsonl]). *)

val minimal_file : string -> int -> string
(** The minimal-reproducer artifact for a scenario index. *)

val run_campaign :
  ?runner:(dir:string -> Scenario.t -> (run_result, string) result) ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  out:string ->
  plan:Scenario.t list ->
  unit ->
  summary
(** Run the whole plan; scenario [i] runs in [out/s<i>]. Failing
    scenarios are shrunk (default budget 12 runs each), the minimal
    scenario is re-run in [out/minimal.<i>] and written to
    [out/minimal.<i>.json], and [out/campaign.jsonl] is written last.
    [log] receives one-line progress messages. [runner] (default
    {!run_scenario}, the single-host live runtime) executes each
    scenario — the cluster runner substitutes its multi-host variant. *)
