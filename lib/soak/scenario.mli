(** Seeded fault scenarios for the live soak harness.

    A scenario is everything one live run needs — process count, traffic
    shape, SIGKILL schedule, drop/dup rates, burst partitions — decided
    entirely by the (campaign seed, scenario index) pair. The same pair
    always yields the byte-identical scenario (the determinism property
    the soak's replay tokens rely on); shrunk variants keep the pair and
    travel as JSON artifacts instead. *)

type kill = { kl_at : float; kl_pid : int }

type partition = { pr_start : float; pr_stop : float; pr_island : int list }

type t = {
  sc_seed : int64;  (** campaign seed the scenario was drawn from *)
  sc_index : int;
  sc_protocol : string;  (** canonical live-protocol name *)
  sc_n : int;
  sc_duration : float;
  sc_settle : float;
  sc_rate : float;
  sc_hops : int;
  sc_restart_delay : float;
  sc_kills : kill list;  (** sorted by time *)
  sc_drop : float;
  sc_dup : float;  (** non-zero only for the core protocol *)
  sc_partitions : partition list;
}

val generate : seed:int64 -> index:int -> protocol:string -> t
(** Deterministic: equal inputs yield equal records. *)

val plan : seed:int64 -> count:int -> protocols:Optimist_live.Worker.protocol list -> t list
(** [count] scenarios cycling through [protocols] (index [i] gets
    protocol [i mod length]). Raises [Invalid_argument] on an empty
    protocol list or [count < 1]. *)

val measure : t -> int * int * float * float
(** Shrink ordering: (kills, partitions, drop, dup), compared
    lexicographically. *)

val shrink_candidates : t -> t list
(** Strict simplifications of the scenario: every candidate has a
    strictly smaller {!measure} (drop a kill — keeping at least one —
    drop a partition, zero or halve the drop/dup rates). Empty when the
    scenario is already minimal. *)

val to_json : t -> Optimist_obs.Json.t
(** Deterministic single-line encoding; round-trips through
    {!of_json}. *)

val of_json : Optimist_obs.Json.t -> (t, string) result

val replay_token : t -> string
(** ["SEED:INDEX:PROTOCOL"] — regenerates the scenario via
    {!of_token}. Only exact for unshrunk scenarios. *)

val of_token : string -> (t, string) result
(** Accepts a ["SEED:INDEX:PROTOCOL"] token or a path to a scenario
    JSON file (the shrinker's minimal artifact). *)

val run_seed : t -> int64
(** The supervisor seed for this scenario's live runs (derived from
    seed and index, stable under shrinking). *)
